#!/usr/bin/env python
"""Graph-neural-network feature aggregation (GraphSAGE-style) as SpMM.

Graph learning is one of the paper's SpMM motivations (Section 2.4,
GraphSAGE matrices in Table 5): each layer aggregates neighbor features,
``H' = relu(A @ H @ W)``, whose bottleneck is the sparse-dense product
``A @ H``. This example runs a two-layer aggregation over a citation-graph
adjacency matrix on the simulated accelerator and verifies the result.

Run:  python examples/graph_embedding_spmm.py
"""

import numpy as np

from repro import Tensaurus, datasets
from repro.baselines import CPUBaseline, GPUBaseline, matrix_workload
from repro.formats import CSRMatrix
from repro.kernels import spmm
from repro.util.rng import make_rng


def main() -> None:
    graph = datasets.load_matrix("cora")  # citation graph (Table 5)
    n = graph.shape[0]
    print(f"graph: {n} nodes, {graph.nnz} edges")

    rng = make_rng(9)
    features = rng.random((n, 128))
    weights = [rng.standard_normal((128, 128)) / 12,
               rng.standard_normal((128, 64)) / 12]

    acc = Tensaurus()
    cpu, gpu = CPUBaseline(), GPUBaseline()
    csr = CSRMatrix.from_coo(graph)

    h = features
    total_sim = 0.0
    for layer, w in enumerate(weights):
        report = acc.run_spmm(graph, h)  # neighbor aggregation A @ H
        assert np.allclose(report.output, spmm(csr, h))
        h = np.maximum(report.output @ w, 0.0)  # dense W product + ReLU
        total_sim += report.time_s
        stats = matrix_workload("spmm", graph, report.output.shape[1])
        t_cpu = cpu.run(stats).time_s
        t_gpu = gpu.run(stats).time_s
        print(
            f"layer {layer}: SpMM {report.summary()}\n"
            f"  vs CPU {t_cpu / report.time_s:.0f}x, "
            f"vs GPU {t_gpu / report.time_s:.2f}x"
        )

    print(f"embeddings: {h.shape}, accelerator time {total_sim * 1e6:.1f} us")
    norms = np.linalg.norm(h, axis=1)
    hubs = np.argsort(norms)[::-1][:5]
    print(f"highest-activation nodes: {[int(h) for h in hubs]}")


if __name__ == "__main__":
    main()
