#!/usr/bin/env python
"""Pruned-CNN inference layers on the accelerator (the Fig. 10 workload).

Magnitude-pruned convolution layers become SpMM (sparse weights x dense
im2col activations) and pruned fully-connected layers become SpMV. This
example runs a slice of the pruned AlexNet pipeline from Table 4 on the
simulated Tensaurus and compares against the Cambricon-X sparse-CNN
accelerator model — the paper's head-to-head.

Run:  python examples/sparse_cnn_inference.py
"""

import numpy as np

from repro import Tensaurus, datasets
from repro.baselines import CambriconXBaseline, matrix_workload
from repro.energy import CAMBRICON_POWER, accelerator_energy
from repro.util.rng import make_rng

#: im2col output pixels for the conv layers (batch of one 227x227 image).
CONV_PIXELS = 256


def main() -> None:
    acc = Tensaurus()
    cambricon = CambriconXBaseline()
    rng = make_rng(14)

    total_tens = total_cam = 0.0
    e_tens = e_cam = 0.0
    for lname in datasets.list_cnn_layers("alexnet"):
        spec = datasets.CNN_LAYERS[lname]
        weights = spec.load()
        if spec.is_fc:
            activations = rng.random(weights.shape[1])
            report = acc.run_spmv(weights, activations, compute_output=False)
            stats = matrix_workload("spmv", weights)
            kind = "SpMV"
        else:
            activations = rng.random((weights.shape[1], CONV_PIXELS))
            report = acc.run_spmm(weights, activations, compute_output=False)
            stats = matrix_workload("spmm", weights, CONV_PIXELS)
            kind = "SpMM"
        cam = cambricon.run(stats)
        total_tens += report.time_s
        total_cam += cam.time_s
        e_tens += accelerator_energy(report, acc.config.peak_gops)
        e_cam += cam.energy_j
        print(
            f"{spec.layer:>4} ({kind}, density {spec.density:.2f}): "
            f"Tensaurus {report.time_s * 1e6:7.1f} us ({report.gops:5.0f} GOP/s)"
            f"  Cambricon-X {cam.time_s * 1e6:7.1f} us"
        )

    print(
        f"\npruned AlexNet total: Tensaurus {total_tens * 1e3:.2f} ms, "
        f"Cambricon-X {total_cam * 1e3:.2f} ms "
        f"({total_cam / total_tens:.2f}x)"
    )
    print(
        f"energy: Tensaurus {e_tens * 1e3:.2f} mJ, "
        f"Cambricon-X {e_cam * 1e3:.2f} mJ "
        f"(Cambricon core power {CAMBRICON_POWER.compute_w * 1e3:.0f} mW)"
    )


if __name__ == "__main__":
    main()
