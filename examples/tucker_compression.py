#!/usr/bin/env python
"""Compressing a dense 3-d signal with Tucker decomposition on the
accelerator.

Tucker decomposition compresses a tensor into a small core plus per-mode
orthonormal bases (Section 2.3); the paper cites neural-network and
scientific-data compression as applications. This example builds a smooth
synthetic volume (separable cosine modes plus noise), runs HOOI with every
TTMc on the simulated Tensaurus, and reports the compression ratio and
reconstruction error.

Run:  python examples/tucker_compression.py
"""

import numpy as np

from repro.factorization import accelerated_tucker_hooi
from repro.util.rng import make_rng


def smooth_volume(shape=(64, 60, 56), components=4, noise=0.02):
    """A low-multilinear-rank volume: sums of separable cosine modes."""
    rng = make_rng(5)
    out = np.zeros(shape)
    for c in range(components):
        waves = []
        for s in shape:
            grid = np.linspace(0, (c + 1) * np.pi, s)
            waves.append(np.cos(grid + rng.random() * np.pi))
        out += np.einsum("i,j,k->ijk", *waves) / (c + 1)
    out += noise * rng.standard_normal(shape)
    return out


def main() -> None:
    volume = smooth_volume()
    ranks = (6, 6, 6)
    print(f"volume {volume.shape} -> Tucker ranks {ranks}")

    run = accelerated_tucker_hooi(volume, ranks, num_iters=4)
    tk = run.decomposition
    recon = tk.to_dense()
    rel_err = np.linalg.norm(recon - volume) / np.linalg.norm(volume)

    original = volume.size
    compressed = tk.core.size + sum(f.size for f in tk.factors)
    print(f"fit: {tk.fit:.4f}, relative error: {rel_err:.4f}")
    print(
        f"compression: {original} -> {compressed} values "
        f"({original / compressed:.1f}x)"
    )
    print(
        f"accelerator: {len(run.reports)} TTMc invocations, "
        f"{run.accelerator_seconds * 1e3:.3f} ms simulated"
    )
    dense_gops = np.mean([r.gops for r in run.reports])
    print(f"average DTTMc throughput: {dense_gops:.0f} GOP/s")


if __name__ == "__main__":
    main()
