#!/usr/bin/env python
"""Quickstart: encode a sparse tensor in CISS, run SpMTTKRP on the simulated
Tensaurus accelerator, and compare against the CPU/GPU baseline models.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SparseTensor, Tensaurus
from repro.baselines import CPUBaseline, GPUBaseline, tensor_workload
from repro.energy import accelerator_energy
from repro.formats import CISSTensor
from repro.kernels import mttkrp_sparse


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. Build a sparse tensor (here: random; see repro.datasets for the
    #    paper's workloads).
    shape = (2000, 400, 300)
    nnz = 50_000
    lin = rng.choice(shape[0] * shape[1] * shape[2], size=nnz, replace=False)
    coords = np.stack(
        [
            lin // (shape[1] * shape[2]),
            (lin // shape[2]) % shape[1],
            lin % shape[2],
        ],
        axis=1,
    )
    tensor = SparseTensor(shape, coords, rng.standard_normal(nnz))
    print(f"tensor: {tensor}")

    # 2. Look at its CISS encoding — the paper's storage format.
    ciss = CISSTensor.from_sparse(tensor, num_lanes=8)
    print(
        f"CISS: {ciss.num_entries} entries x {ciss.entry_bytes()} B, "
        f"padding {ciss.padding_fraction():.1%}, "
        f"lane nnz counts {ciss.lane_nnz_counts()}"
    )

    # 3. Run SpMTTKRP (the CP-ALS bottleneck kernel) on the accelerator.
    rank = 32
    mat_b = rng.random((shape[1], rank))
    mat_c = rng.random((shape[2], rank))
    acc = Tensaurus()
    report = acc.run_mttkrp(tensor, mat_b, mat_c, mode=0)
    print(f"simulated: {report.summary()}")
    print(f"  MSU reduction mode: {report.detail['msu_mode']}")

    # The simulator's output is the real kernel result.
    reference = mttkrp_sparse(tensor, [mat_b, mat_c], mode=0)
    assert np.allclose(report.output, reference)
    print("  output verified against the reference kernel")

    # 4. Compare against the CPU (SPLATT) and GPU (ParTI) cost models.
    stats = tensor_workload("mttkrp", tensor, rank)
    cpu = CPUBaseline().run(stats)
    gpu = GPUBaseline().run(stats)
    energy = accelerator_energy(report, acc.config.peak_gops)
    print(f"speedup over CPU: {cpu.time_s / report.time_s:.1f}x")
    print(f"speedup over GPU: {gpu.time_s / report.time_s:.1f}x")
    print(f"energy benefit over CPU: {cpu.energy_j / energy:.0f}x")


if __name__ == "__main__":
    main()
