#!/usr/bin/env python
"""Driving the accelerator the way host software would, then zooming into
cycle-level behavior.

Three levels of the stack in one script:

1. the **instruction interface** (Section 6's co-processor configuration):
   assemble a program, execute it on the device, read back results;
2. the **event-driven microarchitecture engine**: the same tile stepped
   cycle by cycle through TLU / SPM-arbiter / PE / MSU components, showing
   where stalls come from;
3. a **PE-lane trace**: the per-record micro-events of one lane.

Run:  python examples/device_driver_and_trace.py
"""

import numpy as np

from repro.formats import CISSTensor
from repro.sim import TensaurusDevice, assemble_mttkrp
from repro.sim.config import TensaurusConfig
from repro.sim.costs import kernel_costs
from repro.sim.event import EventDrivenTensaurus
from repro.sim.pe import PELane
from repro.tensor import SparseTensor
from repro.util.rng import make_rng


def build_tensor(rng, shape=(400, 80, 64), nnz=12_000):
    lin = rng.choice(shape[0] * shape[1] * shape[2], size=nnz, replace=False)
    coords = np.stack(
        [lin // (shape[1] * shape[2]), (lin // shape[2]) % shape[1],
         lin % shape[2]], axis=1,
    )
    vals = rng.standard_normal(nnz)
    vals[vals == 0] = 1.0
    return SparseTensor(shape, coords, vals)


def main() -> None:
    rng = make_rng(0)
    tensor = build_tensor(rng)
    rank = 16
    b = rng.random((tensor.shape[1], rank))
    c = rng.random((tensor.shape[2], rank))

    # --- 1. The co-processor instruction interface.
    device = TensaurusDevice()
    program = assemble_mttkrp(tensor, b, c, mode=0)
    print("driver program:")
    for inst in program:
        operand = inst.operand
        if inst.opcode.value == "bind_operand":
            slot, data = operand
            desc = f"({slot}, {type(data).__name__}{tuple(data.shape)})"
        else:
            desc = repr(operand)
        print(f"  {inst.opcode.value:<16} {desc}")
    (report,) = device.execute(program)
    print(f"device executed: {report.summary()}\n")

    # --- 2. The event-driven engine on one CISS tile.
    cfg = TensaurusConfig()
    ciss = CISSTensor.from_sparse(tensor, cfg.rows)
    costs = kernel_costs("spmttkrp", cfg, fiber_elems=rank)
    engine = EventDrivenTensaurus(cfg, costs, fiber0=c, fiber1=b)
    result = engine.run(ciss, (tensor.shape[0], rank))
    assert np.allclose(result.output, report.output)
    util = result.lane_busy_cycles / max(result.cycles, 1)
    print(
        f"event engine: {result.cycles} cycles, "
        f"{result.bank_conflict_stalls} bank-conflict stalls, "
        f"{result.msu_stalls} MSU stalls, "
        f"{result.tlu_stall_cycles} TLU back-pressure cycles"
    )
    print(
        "lane utilization: "
        + " ".join(f"{u:.0%}" for u in util)
    )

    # --- 3. One lane's micro-event trace (first 12 events).
    pe = PELane(costs, fiber0=c, fiber1=b)
    out = np.zeros((tensor.shape[0], rank))
    trace = []
    pe.run(ciss.lane_records(0)[:40], out, trace=trace)
    print("\nlane-0 trace (first 12 events):")
    for cyc, event, detail in trace[:12]:
        print(f"  cycle {cyc:4d}: {event:<7} idx={detail}")


if __name__ == "__main__":
    main()
