#!/usr/bin/env python
"""Recommender-system embeddings via CP decomposition on the accelerator.

The paper's motivating application (Section 1): factorizing a sparse
(user x item x time) ratings tensor — the Netflix workload — into rank-F
factor matrices that embed users and items in a latent space. Every MTTKRP
of the CP-ALS solver executes on the simulated Tensaurus, and the script
reports both the model quality (fit, a sample recommendation) and the
accelerator activity.

Run:  python examples/recommender_cp.py
"""

import numpy as np

from repro import SparseTensor, datasets
from repro.factorization import accelerated_cp_als
from repro.util.rng import make_rng


def plant_preferences(structure: SparseTensor, rank: int = 8) -> SparseTensor:
    """Replace the observed ratings with a low-rank preference model.

    The *sparsity pattern* (which user rated which movie when) comes from
    the Netflix-like dataset; the rating values come from a planted rank-8
    user/movie/time model plus noise, so CP-ALS has real structure to find
    — like actual ratings do.
    """
    rng = make_rng(77)
    u = rng.standard_normal((structure.shape[0], rank))
    v = rng.standard_normal((structure.shape[1], rank))
    w = 1.0 + 0.1 * rng.standard_normal((structure.shape[2], rank))
    c = structure.coords
    vals = np.einsum("nf,nf,nf->n", u[c[:, 0]], v[c[:, 1]], w[c[:, 2]])
    vals += 0.05 * rng.standard_normal(vals.shape[0])
    vals[vals == 0.0] = 0.05
    return SparseTensor(structure.shape, c, vals)


def main() -> None:
    # A Netflix-like (user, movie, week) ratings tensor with planted
    # low-rank preferences. Dimensions follow Table 3's shape but densified
    # (~75 ratings per user) so a 4-sweep demo can actually recover the
    # preference structure; the full-scale pattern is what the Fig. 8
    # benchmarks use.
    structure = datasets.random_sparse_tensor(
        (4000, 800, 40), 300_000, skew=1.1, seed=15
    )
    ratings = plant_preferences(structure)
    users, movies, weeks = ratings.shape
    print(
        f"ratings tensor: {users} users x {movies} movies x {weeks} weeks, "
        f"{ratings.nnz} ratings (density {ratings.density:.2e})"
    )

    rank = 8
    run = accelerated_cp_als(ratings, rank=rank, num_iters=6, seed=7)
    cp = run.decomposition
    print(f"CP rank-{rank} fit after {len(cp.fit_trace)} sweeps: {cp.fit:.4f}")

    # Accelerator activity: one MTTKRP per mode per sweep.
    print(
        f"accelerator: {len(run.reports)} MTTKRP invocations, "
        f"{run.accelerator_seconds * 1e3:.2f} ms simulated, "
        f"{run.total_ops / 1e9:.2f} GOP, {run.total_bytes / 1e6:.1f} MB moved"
    )
    by_mode = {}
    for rep, mode in zip(run.reports, [0, 1, 2] * (len(run.reports) // 3)):
        by_mode.setdefault(mode, []).append(rep.gops)
    for mode, gops in sorted(by_mode.items()):
        print(f"  mode-{mode} MTTKRP: {np.mean(gops):.0f} GOP/s average")

    # Use the embedding: recommend movies for one user by scoring the
    # reconstructed slice (sum over time).
    user_fac, movie_fac, week_fac = cp.factors
    rng = make_rng(1)
    user = int(rng.integers(0, users))
    time_profile = week_fac.sum(axis=0)  # aggregate over weeks
    scores = (user_fac[user] * cp.weights * time_profile) @ movie_fac.T
    top = np.argsort(scores)[::-1][:5]
    print(f"top-5 recommended movie ids for user {user}: {[int(m) for m in top]}")


if __name__ == "__main__":
    main()
