"""Tensor factorization algorithms.

The two decompositions the accelerator serves (Section 1): canonical
polyadic decomposition via alternating least squares (whose bottleneck is
MTTKRP) and Tucker decomposition via higher-order orthogonal iterations
(whose bottleneck is TTMc). Both run every inner product through
:mod:`repro.kernels`, so they double as end-to-end exercises of the
accelerated kernels.
"""

from repro.factorization.cp import CPDecomposition, cp_als
from repro.factorization.tucker import TuckerDecomposition, tucker_hooi, hosvd
from repro.factorization.accelerated import (
    AcceleratedRun,
    accelerated_cp_als,
    accelerated_tucker_hooi,
)
from repro.factorization.nonneg import accelerated_cp_nonneg, cp_nonneg
from repro.factorization.metrics import (
    congruence,
    cp_factor_match,
    factor_match_score,
    fit_score,
    normalize_factors,
)

__all__ = [
    "CPDecomposition",
    "cp_als",
    "TuckerDecomposition",
    "tucker_hooi",
    "hosvd",
    "AcceleratedRun",
    "accelerated_cp_als",
    "accelerated_tucker_hooi",
    "congruence",
    "cp_factor_match",
    "factor_match_score",
    "fit_score",
    "normalize_factors",
    "cp_nonneg",
    "accelerated_cp_nonneg",
]
