"""Nonnegative CP decomposition via multiplicative ALS updates.

The paper's introduction cites sparse *nonnegative* tensor factorization
(Marble-style high-throughput phenotyping, ref. [7]) among the motivating
applications. This module implements the classic Lee-Seung-style
multiplicative update generalized to CP (Welling & Weber): each factor
update needs exactly one MTTKRP — the kernel Tensaurus accelerates — plus
cheap Gram-matrix algebra, so the accelerated path carries over unchanged.

Update rule per mode ``n``::

    A_n <- A_n * MTTKRP(X, {A_m}, n) / (A_n @ V + eps),
    V = hadamard_{m != n} (A_m^T A_m)

which preserves nonnegativity and monotonically decreases the residual for
nonnegative data.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.factorization.cp import CPDecomposition, _mttkrp, _tensor_norm
from repro.tensor import SparseTensor
from repro.util.errors import KernelError
from repro.util.rng import make_rng
from repro.util.validation import check_positive

TensorLike = Union[SparseTensor, np.ndarray]

_EPS = 1.0e-12


def _check_nonnegative(tensor: TensorLike) -> None:
    values = tensor.values if isinstance(tensor, SparseTensor) else np.asarray(tensor)
    if values.size and float(np.min(values)) < 0:
        raise KernelError("nonnegative CP requires a nonnegative tensor")


def cp_nonneg(
    tensor: TensorLike,
    rank: int,
    num_iters: int = 50,
    tol: float = 1.0e-8,
    seed: Optional[int] = None,
    mttkrp_fn=None,
) -> CPDecomposition:
    """Fit a nonnegative rank-``rank`` CP model with multiplicative updates.

    Same contract as :func:`repro.factorization.cp_als` (including the
    ``mttkrp_fn`` hook used to route the kernel through the accelerator),
    but every factor stays elementwise nonnegative and initialization is
    strictly positive.
    """
    check_positive("rank", rank)
    check_positive("num_iters", num_iters)
    _check_nonnegative(tensor)
    shape = tensor.shape
    ndim = len(shape)
    if ndim < 2:
        raise KernelError("CP requires at least a 2-d tensor")
    rng = make_rng(seed)
    factors: List[np.ndarray] = [rng.random((s, rank)) + 0.1 for s in shape]
    grams = [f.T @ f for f in factors]
    norm_x = _tensor_norm(tensor)
    mttkrp = mttkrp_fn if mttkrp_fn is not None else _mttkrp
    fit_trace: List[float] = []
    prev_fit = -np.inf
    last = None
    for _sweep in range(num_iters):
        for mode in range(ndim):
            m = mttkrp(tensor, factors, mode)
            v = np.ones((rank, rank))
            for other in range(ndim):
                if other != mode:
                    v *= grams[other]
            denom = factors[mode] @ v + _EPS
            factors[mode] = factors[mode] * np.maximum(m, 0.0) / denom
            grams[mode] = factors[mode].T @ factors[mode]
            last = (m, mode)
        m, mode = last
        inner = float(np.sum(m * factors[mode]))
        gram_all = np.ones((rank, rank))
        for g in grams:
            gram_all *= g
        norm_model_sq = float(gram_all.sum())
        resid_sq = max(norm_x**2 + norm_model_sq - 2.0 * inner, 0.0)
        fit = 1.0 - (np.sqrt(resid_sq) / norm_x if norm_x > 0 else 0.0)
        fit_trace.append(fit)
        if abs(fit - prev_fit) < tol:
            break
        prev_fit = fit
    # Normalize columns into weights for the standard CPDecomposition form.
    weights = np.ones(rank)
    normalized: List[np.ndarray] = []
    for f in factors:
        norms = np.linalg.norm(f, axis=0)
        norms = np.where(norms > 0, norms, 1.0)
        weights = weights * norms
        normalized.append(f / norms)
    return CPDecomposition(
        weights=weights, factors=normalized, fit_trace=fit_trace
    )


def accelerated_cp_nonneg(
    tensor: TensorLike,
    rank: int,
    num_iters: int = 20,
    tol: float = 1.0e-8,
    seed: Optional[int] = None,
    accelerator=None,
):
    """Nonnegative CP whose MTTKRPs execute on the simulated Tensaurus."""
    from repro.factorization.accelerated import AcceleratedRun
    from repro.sim.accelerator import Tensaurus

    if len(tensor.shape) != 3:
        raise KernelError("the accelerator factorizes 3-d tensors")
    acc = accelerator or Tensaurus()
    reports = []

    def mttkrp_on_accelerator(t, factors: Sequence[np.ndarray], mode: int):
        rest = [f for m, f in enumerate(factors) if m != mode]
        report = acc.run_mttkrp(t, rest[0], rest[1], mode=mode)
        reports.append(report)
        return report.output

    model = cp_nonneg(
        tensor, rank, num_iters=num_iters, tol=tol, seed=seed,
        mttkrp_fn=mttkrp_on_accelerator,
    )
    return AcceleratedRun(decomposition=model, reports=reports)
