"""Canonical polyadic decomposition via alternating least squares (CP-ALS).

CP approximates a tensor as a sum of ``rank`` rank-one tensors
(Section 2.2): ``X ≈ sum_f lambda_f * a_f ∘ b_f ∘ c_f``. Each ALS sweep
solves a least-squares problem per mode whose dominant cost is an MTTKRP —
the kernel Tensaurus accelerates — so this module drives
:func:`repro.kernels.mttkrp_sparse` exactly the way SPLATT does on the CPU
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.kernels.linalg import khatri_rao
from repro.kernels.mttkrp import mttkrp_dense, mttkrp_sparse
from repro.tensor import SparseTensor
from repro.util.errors import KernelError
from repro.util.rng import make_rng
from repro.util.validation import check_positive

TensorLike = Union[SparseTensor, np.ndarray]


@dataclass
class CPDecomposition:
    """A rank-F CP model: column weights plus one factor matrix per mode."""

    weights: np.ndarray
    factors: List[np.ndarray]
    fit_trace: List[float]

    @property
    def rank(self) -> int:
        return int(self.weights.shape[0])

    @property
    def shape(self) -> tuple:
        return tuple(f.shape[0] for f in self.factors)

    def to_dense(self) -> np.ndarray:
        """Materialize the model: fold the weighted Khatri-Rao product."""
        kr = khatri_rao(self.factors)  # first mode varies fastest
        full = kr @ self.weights  # (prod(shape),)
        return full.reshape(self.shape, order="F")

    @property
    def fit(self) -> float:
        """Final fit ``1 - ||X - model|| / ||X||`` from the ALS trace."""
        return self.fit_trace[-1] if self.fit_trace else 0.0

    def model_norm(self) -> float:
        """||model||_F via the Gram trick (no materialization)."""
        gram = np.ones((self.rank, self.rank))
        for f in self.factors:
            gram *= f.T @ f
        val = float(self.weights @ gram @ self.weights)
        return float(np.sqrt(max(val, 0.0)))


def _tensor_norm(tensor: TensorLike) -> float:
    if isinstance(tensor, SparseTensor):
        return tensor.norm()
    return float(np.linalg.norm(np.asarray(tensor).ravel()))


def _mttkrp(tensor: TensorLike, factors: Sequence[np.ndarray], mode: int) -> np.ndarray:
    rest = [f for m, f in enumerate(factors) if m != mode]
    if isinstance(tensor, SparseTensor):
        return mttkrp_sparse(tensor, rest, mode)
    return mttkrp_dense(np.asarray(tensor, dtype=np.float64), rest, mode)


def cp_als(
    tensor: TensorLike,
    rank: int,
    num_iters: int = 25,
    tol: float = 1.0e-8,
    seed: Optional[int] = None,
    init_factors: Optional[Sequence[np.ndarray]] = None,
    mttkrp_fn=None,
    on_sweep=None,
) -> CPDecomposition:
    """Fit a rank-``rank`` CP model with alternating least squares.

    Parameters
    ----------
    tensor:
        Sparse or dense input tensor (any dimensionality >= 2).
    rank:
        Number of rank-one components F.
    num_iters / tol:
        Sweep budget and relative fit-change stopping threshold.
    seed / init_factors:
        Random initialization seed, or explicit initial factors.
    mttkrp_fn:
        Optional override ``(tensor, factors, mode) -> matrix`` for the
        MTTKRP — this is how :mod:`repro.factorization.accelerated` routes
        the bottleneck kernel through the simulated accelerator.
    on_sweep:
        Optional callback ``(sweep, factors, weights, fit)`` invoked after
        every completed sweep — the checkpoint hook of
        :mod:`repro.resilience` (callees must copy what they keep: the
        factor list is mutated in place).

    Returns a :class:`CPDecomposition` whose ``fit_trace`` holds the fit
    after each sweep (monotone non-decreasing up to numerical noise).
    """
    check_positive("rank", rank)
    check_positive("num_iters", num_iters)
    shape = tensor.shape
    ndim = len(shape)
    if ndim < 2:
        raise KernelError("CP requires at least a 2-d tensor")
    rng = make_rng(seed)
    if init_factors is not None:
        factors = [np.array(f, dtype=np.float64) for f in init_factors]
        if len(factors) != ndim:
            raise KernelError("need one initial factor per mode")
    else:
        factors = [rng.random((s, rank)) for s in shape]
    weights = np.ones(rank)
    norm_x = _tensor_norm(tensor)
    grams = [f.T @ f for f in factors]
    fit_trace: List[float] = []
    prev_fit = -np.inf
    last_mttkrp = None
    mttkrp = mttkrp_fn if mttkrp_fn is not None else _mttkrp
    for sweep in range(num_iters):
        for mode in range(ndim):
            m = mttkrp(tensor, factors, mode)
            v = np.ones((rank, rank))
            for other in range(ndim):
                if other != mode:
                    v *= grams[other]
            new_factor = m @ np.linalg.pinv(v)
            # Column normalization: 2-norm on the first sweep, max-norm
            # afterwards (the SPLATT/tensor-toolbox convention, which keeps
            # factors bounded without shrinking weights to zero).
            if sweep == 0:
                lambdas = np.linalg.norm(new_factor, axis=0)
            else:
                lambdas = np.maximum(np.abs(new_factor).max(axis=0), 1.0)
            lambdas = np.where(lambdas > 0, lambdas, 1.0)
            new_factor = new_factor / lambdas
            factors[mode] = new_factor
            grams[mode] = new_factor.T @ new_factor
            weights = lambdas
            last_mttkrp = (m, mode)
        # Efficient fit: ||X - M||^2 = ||X||^2 + ||M||^2 - 2 <X, M>, with
        # <X, M> = sum(MTTKRP(last mode) * factor_last * lambda).
        m, mode = last_mttkrp
        inner = float(np.sum(m * factors[mode] * weights[None, :]))
        gram_all = np.ones((rank, rank))
        for g in grams:
            gram_all *= g
        norm_model_sq = float(weights @ gram_all @ weights)
        resid_sq = max(norm_x**2 + norm_model_sq - 2.0 * inner, 0.0)
        fit = 1.0 - (np.sqrt(resid_sq) / norm_x if norm_x > 0 else 0.0)
        fit_trace.append(fit)
        if on_sweep is not None:
            on_sweep(sweep, factors, weights, fit)
        if abs(fit - prev_fit) < tol:
            break
        prev_fit = fit
    return CPDecomposition(weights=weights, factors=factors, fit_trace=fit_trace)
