"""Tucker decomposition via higher-order orthogonal iterations (HOOI).

Tucker approximates a tensor by a small dense core plus one orthonormal
factor matrix per mode (Section 2.3). Each HOOI sweep computes, per mode, a
TTMc — the tensor contracted with every other factor — then takes leading
singular vectors of its unfolding. TTMc is the second kernel Tensaurus
accelerates, so this module drives :func:`repro.kernels.ttmc_sparse` the way
HOOI implementations (e.g. SPLATT's Tucker mode) do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.kernels.ttmc import ttmc_dense, ttmc_sparse
from repro.tensor import SparseTensor, unfold_dense
from repro.util.errors import KernelError, ShapeError
from repro.util.validation import check_positive

TensorLike = Union[SparseTensor, np.ndarray]


@dataclass
class TuckerDecomposition:
    """A Tucker model: dense core tensor plus orthonormal factors."""

    core: np.ndarray
    factors: List[np.ndarray]
    fit_trace: List[float]

    @property
    def ranks(self) -> tuple:
        return self.core.shape

    @property
    def shape(self) -> tuple:
        return tuple(f.shape[0] for f in self.factors)

    def to_dense(self) -> np.ndarray:
        """Materialize ``core x_0 U_0 x_1 U_1 ...``."""
        out = self.core
        for mode, factor in enumerate(self.factors):
            out = np.tensordot(out, factor, axes=([0], [1]))
            # tensordot consumed axis 0 and appended the new axis last;
            # after all modes the axes are back in order.
        return out

    @property
    def fit(self) -> float:
        return self.fit_trace[-1] if self.fit_trace else 0.0


def _validate_ranks(shape: Sequence[int], ranks: Sequence[int]) -> List[int]:
    if len(ranks) != len(shape):
        raise KernelError("need one Tucker rank per mode")
    out = []
    for mode, (s, r) in enumerate(zip(shape, ranks)):
        check_positive(f"rank[{mode}]", r)
        if r > s:
            raise ShapeError(f"rank[{mode}]={r} exceeds dimension {s}")
        out.append(int(r))
    return out


def _mode_unfolding(tensor: TensorLike, mode: int) -> np.ndarray:
    """Dense mode-``n`` unfolding (HOSVD init only; kept small by callers)."""
    if isinstance(tensor, SparseTensor):
        rows, cols, shape2d = tensor.unfold(mode)
        out = np.zeros(shape2d)
        np.add.at(out, (rows, cols), tensor.values)
        return out
    return unfold_dense(np.asarray(tensor, dtype=np.float64), mode)


def _leading_left_singular(matrix: np.ndarray, rank: int) -> np.ndarray:
    """Leading ``rank`` left singular vectors, via the thin Gram eigenproblem
    when the unfolding is wide (the common tensor case)."""
    rows, cols = matrix.shape
    if cols >= rows:
        gram = matrix @ matrix.T
        vals, vecs = np.linalg.eigh(gram)
        order = np.argsort(vals)[::-1][:rank]
        return vecs[:, order]
    u, _s, _vt = np.linalg.svd(matrix, full_matrices=False)
    return u[:, :rank]


def hosvd(tensor: TensorLike, ranks: Sequence[int]) -> List[np.ndarray]:
    """Higher-order SVD: per-mode leading singular vectors (HOOI's init)."""
    ranks = _validate_ranks(tensor.shape, ranks)
    return [
        _leading_left_singular(_mode_unfolding(tensor, mode), rank)
        for mode, rank in enumerate(ranks)
    ]


def _ttmc(tensor: TensorLike, factors: Sequence[np.ndarray], mode: int) -> np.ndarray:
    rest = [f for m, f in enumerate(factors) if m != mode]
    if isinstance(tensor, SparseTensor):
        return ttmc_sparse(tensor, rest, mode)
    return ttmc_dense(np.asarray(tensor, dtype=np.float64), rest, mode)


def tucker_hooi(
    tensor: TensorLike,
    ranks: Sequence[int],
    num_iters: int = 25,
    tol: float = 1.0e-8,
    init: Optional[Sequence[np.ndarray]] = None,
    ttmc_fn=None,
    on_sweep=None,
) -> TuckerDecomposition:
    """Fit a Tucker model with higher-order orthogonal iterations.

    Per sweep and mode: ``Y = X x_{m != n} U_m`` (a TTMc, the accelerated
    kernel), then ``U_n`` = leading left singular vectors of ``Y_(n)``.
    The core is the full contraction with the final factors. ``fit_trace``
    records ``1 - ||X - model||/||X||`` per sweep; for orthonormal factors
    ``||model|| = ||core||`` so the fit needs no materialization.
    ``on_sweep(sweep, factors, core, fit)`` is the per-sweep checkpoint
    hook of :mod:`repro.resilience` (callees must copy what they keep).
    """
    ranks = _validate_ranks(tensor.shape, ranks)
    check_positive("num_iters", num_iters)
    ndim = len(tensor.shape)
    factors = list(init) if init is not None else hosvd(tensor, ranks)
    if len(factors) != ndim:
        raise KernelError("need one factor per mode")
    if isinstance(tensor, SparseTensor):
        norm_x = tensor.norm()
    else:
        norm_x = float(np.linalg.norm(np.asarray(tensor).ravel()))
    fit_trace: List[float] = []
    prev_fit = -np.inf
    core = None
    ttmc = ttmc_fn if ttmc_fn is not None else _ttmc
    for sweep in range(num_iters):
        for mode in range(ndim):
            y = ttmc(tensor, factors, mode)
            factors[mode] = _leading_left_singular(
                unfold_dense(y, 0).reshape(y.shape[0], -1), ranks[mode]
            )
        # Core: contract the last TTMc result (mode N-1 leading, other ranks
        # trailing in order) with the last factor; axes land in rank order.
        core = np.tensordot(y, factors[ndim - 1], axes=([0], [0]))
        norm_core = float(np.linalg.norm(core.ravel()))
        resid_sq = max(norm_x**2 - norm_core**2, 0.0)
        fit = 1.0 - (np.sqrt(resid_sq) / norm_x if norm_x > 0 else 0.0)
        fit_trace.append(fit)
        if on_sweep is not None:
            on_sweep(sweep, factors, core, fit)
        if abs(fit - prev_fit) < tol:
            break
        prev_fit = fit
    return TuckerDecomposition(core=core, factors=factors, fit_trace=fit_trace)
