"""Factorization quality metrics.

Fit, factor congruence (the standard factor-recovery score) and
normalization helpers used by the tests, examples and applications to
judge decompositions beyond the raw ALS fit trace.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.factorization.cp import CPDecomposition
from repro.tensor import SparseTensor
from repro.tensor.ops import residual_norm
from repro.util.errors import ShapeError

TensorLike = Union[SparseTensor, np.ndarray]


def fit_score(tensor: TensorLike, model_dense: np.ndarray) -> float:
    """``1 - ||X - M|| / ||X||``; 1.0 is a perfect fit."""
    if isinstance(tensor, SparseTensor):
        norm_x = tensor.norm()
        resid = residual_norm(tensor, model_dense)
    else:
        tensor = np.asarray(tensor, dtype=np.float64)
        if tensor.shape != np.asarray(model_dense).shape:
            raise ShapeError("tensor and model shapes differ")
        norm_x = float(np.linalg.norm(tensor.ravel()))
        resid = float(np.linalg.norm((tensor - model_dense).ravel()))
    if norm_x == 0:
        return 1.0 if resid == 0 else 0.0
    return 1.0 - resid / norm_x


def normalize_factors(
    factors: Sequence[np.ndarray],
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Pull column norms out of each factor: ``(weights, unit factors)``."""
    weights = None
    normalized = []
    for f in factors:
        f = np.asarray(f, dtype=np.float64)
        norms = np.linalg.norm(f, axis=0)
        norms = np.where(norms > 0, norms, 1.0)
        normalized.append(f / norms)
        weights = norms if weights is None else weights * norms
    return weights, normalized


def congruence(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Column-wise cosine similarity matrix between two factor matrices."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape[0] != b.shape[0]:
        raise ShapeError("factor matrices must share the row dimension")
    na = a / np.maximum(np.linalg.norm(a, axis=0), 1e-300)
    nb = b / np.maximum(np.linalg.norm(b, axis=0), 1e-300)
    return na.T @ nb


def factor_match_score(
    estimated: Sequence[np.ndarray], reference: Sequence[np.ndarray]
) -> float:
    """The factor match score (FMS) between two CP factor sets.

    Greedily matches estimated components to reference components by the
    product of per-mode congruences (absolute value: CP components have a
    sign/permutation ambiguity) and averages the matched scores. 1.0 means
    the decomposition recovered every planted component.
    """
    if len(estimated) != len(reference):
        raise ShapeError("factor lists must cover the same modes")
    rank = np.asarray(estimated[0]).shape[1]
    score = np.ones((rank, np.asarray(reference[0]).shape[1]))
    for est, ref in zip(estimated, reference):
        score = score * np.abs(congruence(est, ref))
    matched = []
    used_rows: set = set()
    used_cols: set = set()
    flat = [
        (float(score[r, c]), r, c)
        for r in range(score.shape[0])
        for c in range(score.shape[1])
    ]
    for s, r, c in sorted(flat, reverse=True):
        if r in used_rows or c in used_cols:
            continue
        matched.append(s)
        used_rows.add(r)
        used_cols.add(c)
        if len(matched) == min(score.shape):
            break
    return float(np.mean(matched)) if matched else 0.0


def cp_factor_match(model: CPDecomposition, reference: Sequence[np.ndarray]) -> float:
    """FMS of a fitted CP model against planted factors."""
    return factor_match_score(model.factors, reference)
