"""Tensor factorizations running on the simulated accelerator.

These wrappers route every MTTKRP / TTMc of CP-ALS / Tucker-HOOI through
:class:`repro.sim.Tensaurus` — using the accelerator's *own* output for the
factor updates, so numerical convergence genuinely flows through the
simulated dataflow — and collect the per-invocation
:class:`~repro.sim.report.SimReport` timings. This is the end-to-end story
of the paper's introduction: tensor factorization as the application, the
accelerator as its kernel engine.

Note the accelerator is a 3-d design (Section 5); these wrappers therefore
accept 3-d tensors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.factorization.cp import CPDecomposition, cp_als
from repro.factorization.tucker import TuckerDecomposition, tucker_hooi
from repro.sim.accelerator import Tensaurus
from repro.sim.report import SimReport
from repro.tensor import SparseTensor
from repro.util.errors import KernelError

TensorLike = Union[SparseTensor, np.ndarray]


def _cache_delta(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
    """Hit/miss counters accumulated between two cache snapshots."""
    return {
        "hits": after["hits"] - before["hits"],
        "misses": after["misses"] - before["misses"],
        "entries": after["entries"],
        "max_entries": after["max_entries"],
    }


@dataclass
class AcceleratedRun:
    """A decomposition plus the accelerator activity that produced it."""

    decomposition: Union[CPDecomposition, TuckerDecomposition]
    reports: List[SimReport] = field(default_factory=list)
    #: Encoding-cache counters of the accelerator that ran the kernels,
    #: delta over this run (hits/misses/entries). Across an N-iteration
    #: ALS sweep all but the first visit of each (operand, mode) should hit.
    cache_info: Dict[str, int] = field(default_factory=dict)

    @property
    def accelerator_seconds(self) -> float:
        """Total simulated accelerator time across all kernel invocations."""
        return sum(r.time_s for r in self.reports)

    @property
    def total_ops(self) -> int:
        return sum(r.ops for r in self.reports)

    @property
    def total_bytes(self) -> int:
        return sum(r.total_bytes for r in self.reports)


def accelerated_cp_als(
    tensor: TensorLike,
    rank: int,
    num_iters: int = 10,
    tol: float = 1.0e-8,
    seed: Optional[int] = None,
    accelerator: Optional[Tensaurus] = None,
) -> AcceleratedRun:
    """CP-ALS whose MTTKRPs execute on the simulated Tensaurus."""
    ndim = len(tensor.shape)
    if ndim != 3:
        raise KernelError("the accelerator factorizes 3-d tensors")
    acc = accelerator or Tensaurus()
    reports: List[SimReport] = []
    before = acc.cache_info()

    def mttkrp_on_accelerator(t, factors: Sequence[np.ndarray], mode: int):
        rest = [f for m, f in enumerate(factors) if m != mode]
        report = acc.run_mttkrp(t, rest[0], rest[1], mode=mode)
        reports.append(report)
        return report.output

    decomposition = cp_als(
        tensor,
        rank,
        num_iters=num_iters,
        tol=tol,
        seed=seed,
        mttkrp_fn=mttkrp_on_accelerator,
    )
    return AcceleratedRun(
        decomposition=decomposition,
        reports=reports,
        cache_info=_cache_delta(before, acc.cache_info()),
    )


def accelerated_tucker_hooi(
    tensor: TensorLike,
    ranks: Sequence[int],
    num_iters: int = 10,
    tol: float = 1.0e-8,
    accelerator: Optional[Tensaurus] = None,
) -> AcceleratedRun:
    """Tucker-HOOI whose TTMcs execute on the simulated Tensaurus."""
    ndim = len(tensor.shape)
    if ndim != 3:
        raise KernelError("the accelerator factorizes 3-d tensors")
    acc = accelerator or Tensaurus()
    reports: List[SimReport] = []
    before = acc.cache_info()

    def ttmc_on_accelerator(t, factors: Sequence[np.ndarray], mode: int):
        rest = [f for m, f in enumerate(factors) if m != mode]
        report = acc.run_ttmc(t, rest[0], rest[1], mode=mode)
        reports.append(report)
        return report.output

    decomposition = tucker_hooi(
        tensor,
        list(ranks),
        num_iters=num_iters,
        tol=tol,
        ttmc_fn=ttmc_on_accelerator,
    )
    return AcceleratedRun(
        decomposition=decomposition,
        reports=reports,
        cache_info=_cache_delta(before, acc.cache_info()),
    )
