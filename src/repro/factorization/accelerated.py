"""Tensor factorizations running on the simulated accelerator.

These wrappers route every MTTKRP / TTMc of CP-ALS / Tucker-HOOI through
:class:`repro.sim.Tensaurus` — using the accelerator's *own* output for the
factor updates, so numerical convergence genuinely flows through the
simulated dataflow — and collect the per-invocation
:class:`~repro.sim.report.SimReport` timings. This is the end-to-end story
of the paper's introduction: tensor factorization as the application, the
accelerator as its kernel engine.

Resilience: with a :class:`~repro.resilience.RetryPolicy` the wrappers
survive an armed :class:`~repro.sim.faults.FaultPlan`. Every completed
sweep is checkpointed to a :class:`~repro.resilience.CheckpointStore`; a
kernel fault (launch abort, unrecoverable corruption) advances the
accelerator's fault epoch, backs off per the policy, and resumes from the
last checkpoint instead of restarting — so the factors a faulty run
converges to match the fault-free ones. Exhausting the policy raises
:class:`~repro.util.errors.RetryExhaustedError`.

Note the accelerator is a 3-d design (Section 5); these wrappers therefore
accept 3-d tensors.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.factorization.cp import CPDecomposition, cp_als
from repro.factorization.tucker import TuckerDecomposition, tucker_hooi
from repro.resilience import CheckpointStore, RetryPolicy
from repro.sim.accelerator import Tensaurus
from repro.sim.report import SimReport
from repro.tensor import SparseTensor
from repro.util.errors import (
    FaultError,
    KernelError,
    RetryExhaustedError,
    SimulationError,
)

TensorLike = Union[SparseTensor, np.ndarray]

logger = obs.get_logger(__name__)


def _cache_delta(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
    """Hit/miss counters accumulated between two cache snapshots."""
    return {
        "hits": after["hits"] - before["hits"],
        "misses": after["misses"] - before["misses"],
        "entries": after["entries"],
        "max_entries": after["max_entries"],
    }


@dataclass
class AcceleratedRun:
    """A decomposition plus the accelerator activity that produced it."""

    decomposition: Union[CPDecomposition, TuckerDecomposition]
    reports: List[SimReport] = field(default_factory=list)
    #: Encoding-cache counters of the accelerator that ran the kernels,
    #: delta over this run (hits/misses/entries). Across an N-iteration
    #: ALS sweep all but the first visit of each (operand, mode) should hit.
    cache_info: Dict[str, int] = field(default_factory=dict)
    #: Recovery bookkeeping when a retry policy is armed: ``fault_retries``
    #: (attempts lost to faults), ``resumed_iteration`` (first sweep of the
    #: last resume, 0 when never resumed), ``checkpoints`` (saves taken).
    resilience: Dict[str, int] = field(default_factory=dict)

    @property
    def accelerator_seconds(self) -> float:
        """Total simulated accelerator time across all kernel invocations
        (aborted attempts' kernels included — their cycles were spent)."""
        return sum(r.time_s for r in self.reports)

    @property
    def total_ops(self) -> int:
        return sum(r.ops for r in self.reports)

    @property
    def total_bytes(self) -> int:
        return sum(r.total_bytes for r in self.reports)


def _resilient_fit(
    acc: Tensaurus,
    policy: Optional[RetryPolicy],
    sleep: Callable[[float], None],
    resilience: Dict[str, int],
    attempt_fn: Callable[[], Union[CPDecomposition, TuckerDecomposition]],
):
    """Run ``attempt_fn`` until it completes or the policy is exhausted.

    Each caught simulator fault advances the accelerator's fault epoch (so
    the re-attempt draws fresh fault streams) and sleeps the policy's
    backoff. Without a policy, faults propagate unchanged.
    """
    max_attempts = 1 + (policy.max_retries if policy is not None else 0)
    last: Optional[BaseException] = None
    for attempt in range(max_attempts):
        try:
            with obs.tracer().span(
                "factorization.attempt", args={"attempt": attempt}
            ):
                return attempt_fn()
        except (FaultError, SimulationError) as exc:  # noqa: PERF203
            if policy is None:
                raise
            last = exc
            if attempt >= policy.max_retries:
                break
            resilience["fault_retries"] += 1
            reg = obs.metrics()
            if reg.enabled:
                reg.counter(
                    "factorization.fault_retries",
                    "factorization attempts lost to simulator faults",
                ).inc()
            logger.warning(
                "factorization attempt %d faulted (%s); retrying on a "
                "fresh fault epoch",
                attempt,
                exc,
            )
            acc.advance_fault_epoch()
            sleep(policy.delay(attempt))
    raise RetryExhaustedError(
        f"factorization gave up after {max_attempts} attempt(s): {last}",
        attempts=max_attempts,
        last_error=last,
    ) from last


def accelerated_cp_als(
    tensor: TensorLike,
    rank: int,
    num_iters: int = 10,
    tol: float = 1.0e-8,
    seed: Optional[int] = None,
    accelerator: Optional[Tensaurus] = None,
    checkpoint_store: Optional[CheckpointStore] = None,
    retry_policy: Optional[RetryPolicy] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> AcceleratedRun:
    """CP-ALS whose MTTKRPs execute on the simulated Tensaurus.

    ``retry_policy`` arms fault recovery: sweeps checkpoint to
    ``checkpoint_store`` (auto-created when omitted) and a faulted attempt
    resumes from the last completed sweep on a fresh fault epoch. The
    resumed run re-normalizes on its first sweep, which is exactly the
    stored state's convention, so convergence continues unperturbed.
    """
    ndim = len(tensor.shape)
    if ndim != 3:
        raise KernelError("the accelerator factorizes 3-d tensors")
    acc = accelerator or Tensaurus()
    store = checkpoint_store
    if store is None and retry_policy is not None:
        store = CheckpointStore()
    reports: List[SimReport] = []
    resilience: Dict[str, int] = {"fault_retries": 0, "resumed_iteration": 0}
    before = acc.cache_info()

    def mttkrp_on_accelerator(t, factors: Sequence[np.ndarray], mode: int):
        rest = [f for m, f in enumerate(factors) if m != mode]
        report = acc.run_mttkrp(t, rest[0], rest[1], mode=mode)
        reports.append(report)
        return report.output

    def attempt() -> CPDecomposition:
        latest = store.latest() if store is not None else None
        completed = (latest.iteration + 1) if latest is not None else 0
        if latest is not None and completed >= num_iters:
            # Every sweep already checkpointed: rebuild, don't re-run.
            return CPDecomposition(
                weights=np.array(latest.weights, copy=True),
                factors=[np.array(f, copy=True) for f in latest.factors],
                fit_trace=store.fit_trace(),
            )
        if completed:
            resilience["resumed_iteration"] = completed
            logger.info(
                "cp_als resuming from checkpointed sweep %d of %d",
                completed,
                num_iters,
            )
        on_sweep = None
        if store is not None:

            def on_sweep(sweep, factors, weights, fit, _base=completed):
                store.save(_base + sweep, factors, weights=weights, fit=fit)

        return cp_als(
            tensor,
            rank,
            num_iters=num_iters - completed,
            tol=tol,
            seed=seed,
            init_factors=latest.factors if latest is not None else None,
            mttkrp_fn=mttkrp_on_accelerator,
            on_sweep=on_sweep,
        )

    with obs.tracer().span(
        "cp_als", cat="factorization", args={"rank": rank, "num_iters": num_iters}
    ):
        decomposition = _resilient_fit(
            acc, retry_policy, sleep, resilience, attempt
        )
    if store is not None and store.fit_history:
        # Stitch the full trace across resumes (pre-fault sweeps included).
        decomposition.fit_trace = store.fit_trace()
        resilience["checkpoints"] = store.saves
    return AcceleratedRun(
        decomposition=decomposition,
        reports=reports,
        cache_info=_cache_delta(before, acc.cache_info()),
        resilience=resilience,
    )


def accelerated_tucker_hooi(
    tensor: TensorLike,
    ranks: Sequence[int],
    num_iters: int = 10,
    tol: float = 1.0e-8,
    accelerator: Optional[Tensaurus] = None,
    checkpoint_store: Optional[CheckpointStore] = None,
    retry_policy: Optional[RetryPolicy] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> AcceleratedRun:
    """Tucker-HOOI whose TTMcs execute on the simulated Tensaurus.

    ``retry_policy`` arms the same checkpoint/resume loop as
    :func:`accelerated_cp_als`, with the dense core stored alongside the
    factors in each checkpoint.
    """
    ndim = len(tensor.shape)
    if ndim != 3:
        raise KernelError("the accelerator factorizes 3-d tensors")
    acc = accelerator or Tensaurus()
    store = checkpoint_store
    if store is None and retry_policy is not None:
        store = CheckpointStore()
    reports: List[SimReport] = []
    resilience: Dict[str, int] = {"fault_retries": 0, "resumed_iteration": 0}
    before = acc.cache_info()

    def ttmc_on_accelerator(t, factors: Sequence[np.ndarray], mode: int):
        rest = [f for m, f in enumerate(factors) if m != mode]
        report = acc.run_ttmc(t, rest[0], rest[1], mode=mode)
        reports.append(report)
        return report.output

    def attempt() -> TuckerDecomposition:
        latest = store.latest() if store is not None else None
        completed = (latest.iteration + 1) if latest is not None else 0
        if latest is not None and completed >= num_iters:
            return TuckerDecomposition(
                core=np.array(latest.core, copy=True),
                factors=[np.array(f, copy=True) for f in latest.factors],
                fit_trace=store.fit_trace(),
            )
        if completed:
            resilience["resumed_iteration"] = completed
            logger.info(
                "tucker_hooi resuming from checkpointed sweep %d of %d",
                completed,
                num_iters,
            )
        on_sweep = None
        if store is not None:

            def on_sweep(sweep, factors, core, fit, _base=completed):
                store.save(_base + sweep, factors, core=core, fit=fit)

        return tucker_hooi(
            tensor,
            list(ranks),
            num_iters=num_iters - completed,
            tol=tol,
            init=latest.factors if latest is not None else None,
            ttmc_fn=ttmc_on_accelerator,
            on_sweep=on_sweep,
        )

    with obs.tracer().span(
        "tucker_hooi",
        cat="factorization",
        args={"ranks": list(ranks), "num_iters": num_iters},
    ):
        decomposition = _resilient_fit(
            acc, retry_policy, sleep, resilience, attempt
        )
    if store is not None and store.fit_history:
        decomposition.fit_trace = store.fit_trace()
        resilience["checkpoints"] = store.saves
    return AcceleratedRun(
        decomposition=decomposition,
        reports=reports,
        cache_info=_cache_delta(before, acc.cache_info()),
        resilience=resilience,
    )
