"""Dataset file I/O: FROSTT ``.tns`` tensors and MatrixMarket ``.mtx``
matrices.

The paper's tensors come from FROSTT (ref. [50]) and its matrices from
SuiteSparse (ref. [49]); both collections distribute plain-text formats.
This module reads and writes them so a user with network access can drop
the real files in place of the synthetic generators:

- **FROSTT .tns** — whitespace-separated lines of ``i_1 ... i_N value``
  with 1-based indices; ``#`` comment lines allowed.
- **MatrixMarket coordinate** — a ``%%MatrixMarket matrix coordinate ...``
  header, ``%`` comments, a ``rows cols nnz`` size line, then 1-based
  ``row col [value]`` entries. ``pattern`` matrices get unit values;
  ``symmetric`` matrices are expanded.
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import List, Sequence, TextIO, Tuple, Union

import numpy as np

from repro.formats.coo import COOMatrix
from repro.tensor import SparseTensor
from repro.util.errors import FormatError

PathLike = Union[str, Path]


def _open_for_read(source: Union[PathLike, TextIO]) -> Tuple[TextIO, bool]:
    if hasattr(source, "read"):
        return source, False
    return open(source, "r", encoding="utf-8"), True


def _open_for_write(target: Union[PathLike, TextIO]) -> Tuple[TextIO, bool]:
    if hasattr(target, "write"):
        return target, False
    return open(target, "w", encoding="utf-8"), True


# ----------------------------------------------------------------------
# FROSTT .tns
# ----------------------------------------------------------------------
def read_tns(
    source: Union[PathLike, TextIO],
    shape: Sequence[int] | None = None,
) -> SparseTensor:
    """Read a FROSTT ``.tns`` tensor (1-based indices).

    ``shape`` overrides the inferred dimensions (the max index per mode)
    when the true extent exceeds the occupied extent.
    """
    handle, owned = _open_for_read(source)
    try:
        coords: List[List[int]] = []
        values: List[float] = []
        ndim = None
        for lineno, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            parts = text.split()
            if ndim is None:
                ndim = len(parts) - 1
                if ndim < 1:
                    raise FormatError(f"line {lineno}: too few fields")
            if len(parts) != ndim + 1:
                raise FormatError(
                    f"line {lineno}: expected {ndim + 1} fields, got {len(parts)}"
                )
            try:
                idx = [int(p) - 1 for p in parts[:-1]]
                val = float(parts[-1])
            except ValueError as exc:
                raise FormatError(f"line {lineno}: {exc}") from exc
            if any(i < 0 for i in idx):
                raise FormatError(f"line {lineno}: indices are 1-based")
            coords.append(idx)
            values.append(val)
    finally:
        if owned:
            handle.close()
    if ndim is None:
        raise FormatError("empty .tns input")
    coords_arr = np.array(coords, dtype=np.int64)
    if shape is None:
        shape = tuple(int(coords_arr[:, m].max()) + 1 for m in range(ndim))
    return SparseTensor(shape, coords_arr, np.array(values))


def write_tns(
    tensor: SparseTensor, target: Union[PathLike, TextIO]
) -> None:
    """Write a tensor as FROSTT ``.tns`` (1-based indices)."""
    handle, owned = _open_for_write(target)
    try:
        handle.write(f"# shape: {' '.join(map(str, tensor.shape))}\n")
        for idx, val in tensor.iter_entries():
            fields = " ".join(str(i + 1) for i in idx)
            handle.write(f"{fields} {val:.17g}\n")
    finally:
        if owned:
            handle.close()


# ----------------------------------------------------------------------
# MatrixMarket coordinate
# ----------------------------------------------------------------------
def read_mtx(source: Union[PathLike, TextIO]) -> COOMatrix:
    """Read a MatrixMarket coordinate matrix (real/integer/pattern;
    general or symmetric)."""
    handle, owned = _open_for_read(source)
    try:
        header = handle.readline()
        if not header.startswith("%%MatrixMarket"):
            raise FormatError("missing MatrixMarket header")
        tokens = header.strip().split()
        if len(tokens) < 5 or tokens[1] != "matrix" or tokens[2] != "coordinate":
            raise FormatError(f"unsupported MatrixMarket header: {header!r}")
        field = tokens[3]
        symmetry = tokens[4]
        if field not in ("real", "integer", "pattern"):
            raise FormatError(f"unsupported field type {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise FormatError(f"unsupported symmetry {symmetry!r}")
        size_line = None
        for line in handle:
            text = line.strip()
            if not text or text.startswith("%"):
                continue
            size_line = text
            break
        if size_line is None:
            raise FormatError("missing size line")
        try:
            nrows, ncols, nnz = (int(x) for x in size_line.split())
        except ValueError as exc:
            raise FormatError(f"bad size line {size_line!r}") from exc
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        stored = 0
        for line in handle:
            text = line.strip()
            if not text or text.startswith("%"):
                continue
            parts = text.split()
            r, c = int(parts[0]) - 1, int(parts[1]) - 1
            v = 1.0 if field == "pattern" else float(parts[2])
            stored += 1
            rows.append(r)
            cols.append(c)
            vals.append(v)
            if symmetry == "symmetric" and r != c:
                rows.append(c)
                cols.append(r)
                vals.append(v)
        if stored != nnz:
            raise FormatError(f"expected {nnz} stored entries, found {stored}")
    finally:
        if owned:
            handle.close()
    return COOMatrix(
        (nrows, ncols),
        np.array(rows, dtype=np.int64),
        np.array(cols, dtype=np.int64),
        np.array(vals),
    )


def write_mtx(matrix: COOMatrix, target: Union[PathLike, TextIO]) -> None:
    """Write a matrix in MatrixMarket coordinate/real/general form."""
    handle, owned = _open_for_write(target)
    try:
        handle.write("%%MatrixMarket matrix coordinate real general\n")
        handle.write(f"{matrix.shape[0]} {matrix.shape[1]} {matrix.nnz}\n")
        for r, c, v in zip(matrix.rows, matrix.cols, matrix.vals):
            handle.write(f"{r + 1} {c + 1} {v:.17g}\n")
    finally:
        if owned:
            handle.close()


def tns_dumps(tensor: SparseTensor) -> str:
    """Serialize a tensor to a ``.tns`` string."""
    buf = _io.StringIO()
    write_tns(tensor, buf)
    return buf.getvalue()


def tns_loads(text: str, shape: Sequence[int] | None = None) -> SparseTensor:
    """Parse a ``.tns`` string."""
    return read_tns(_io.StringIO(text), shape=shape)
