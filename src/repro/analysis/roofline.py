"""Roofline model helpers (Williams et al., the Fig. 7 evaluation frame)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.report import SimReport


def attainable_gops(op_intensity: float, peak_gops: float, peak_bw_gbs: float) -> float:
    """The roofline: min(peak compute, intensity * peak bandwidth)."""
    if op_intensity < 0:
        raise ValueError("operation intensity must be non-negative")
    return min(peak_gops, op_intensity * peak_bw_gbs)


def classify_point(
    op_intensity: float, peak_gops: float, peak_bw_gbs: float
) -> str:
    """"memory"- or "compute"-bound side of the ridge point."""
    ridge = peak_gops / peak_bw_gbs
    return "memory" if op_intensity < ridge else "compute"


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel run placed under the roofline."""

    label: str
    op_intensity: float
    gops: float
    attainable: float
    bound: str

    @property
    def efficiency(self) -> float:
        """Achieved / attainable (1.0 == sitting on the roofline)."""
        if self.attainable <= 0:
            return 0.0
        return self.gops / self.attainable

    @classmethod
    def from_report(
        cls, label: str, report: SimReport, peak_gops: float, peak_bw_gbs: float
    ) -> "RooflinePoint":
        oi = report.op_intensity
        return cls(
            label=label,
            op_intensity=oi,
            gops=report.gops,
            attainable=attainable_gops(oi, peak_gops, peak_bw_gbs),
            bound=classify_point(oi, peak_gops, peak_bw_gbs),
        )
