"""Result-table assembly and plain-text rendering for the benchmarks."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's aggregate for speedups)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [
        [f"{c:.3g}" if isinstance(c, float) else str(c) for c in row]
        for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for n, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if n == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


@dataclass
class SpeedupRow:
    """One benchmark row: per-platform times and energies vs the CPU."""

    label: str
    times: Dict[str, float]  # platform -> seconds
    energies: Dict[str, float]  # platform -> joules

    def speedup(self, platform: str, over: str = "cpu") -> float:
        if self.times.get(platform, 0) <= 0:
            return 0.0
        return self.times[over] / self.times[platform]

    def energy_benefit(self, platform: str, over: str = "cpu") -> float:
        if self.energies.get(platform, 0) <= 0:
            return 0.0
        return self.energies[over] / self.energies[platform]


def speedup_table(
    rows: List[SpeedupRow],
    platforms: Sequence[str],
    over: str = "cpu",
    metric: str = "speedup",
) -> str:
    """Render the Fig. 8-12 style table: per-row factors plus the geomean."""
    headers = ["benchmark"] + [f"{p} {metric}" for p in platforms]
    body: List[List[object]] = []
    per_platform: Dict[str, List[float]] = {p: [] for p in platforms}
    for row in rows:
        cells: List[object] = [row.label]
        for p in platforms:
            val = (
                row.speedup(p, over)
                if metric == "speedup"
                else row.energy_benefit(p, over)
            )
            per_platform[p].append(val)
            cells.append(val)
        body.append(cells)
    body.append(
        ["geomean"] + [geomean(per_platform[p]) for p in platforms]
    )
    return format_table(headers, body)
