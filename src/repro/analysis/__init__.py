"""Analysis helpers: roofline math, speedup/energy tables, text rendering."""

from repro.analysis.roofline import RooflinePoint, attainable_gops, classify_point
from repro.analysis.tables import (
    geomean,
    format_table,
    speedup_table,
    SpeedupRow,
)
from repro.analysis.charts import ascii_bars, ascii_roofline

__all__ = [
    "RooflinePoint",
    "attainable_gops",
    "classify_point",
    "geomean",
    "format_table",
    "speedup_table",
    "SpeedupRow",
    "ascii_bars",
    "ascii_roofline",
]
