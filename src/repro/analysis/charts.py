"""Plain-text charts for terminal-friendly result inspection.

The benchmark harness records tables; these helpers additionally render the
Fig. 7-style roofline as an ASCII log-log scatter and simple horizontal bar
charts for the speedup figures — no plotting dependencies required.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.analysis.roofline import RooflinePoint
from repro.util.errors import ConfigError

_MARKS = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"


def _log_bucket(value: float, lo: float, hi: float, cells: int) -> int:
    """Map ``value`` onto ``[0, cells)`` on a log scale, clamped."""
    if value <= lo:
        return 0
    if value >= hi:
        return cells - 1
    frac = (math.log10(value) - math.log10(lo)) / (
        math.log10(hi) - math.log10(lo)
    )
    return min(cells - 1, int(frac * cells))


def ascii_roofline(
    points: Sequence[RooflinePoint],
    peak_gops: float,
    peak_bw_gbs: float,
    width: int = 64,
    height: int = 18,
    oi_range: Tuple[float, float] = (0.1, 100.0),
    perf_range: Tuple[float, float] = (1.0, 1000.0),
) -> str:
    """Render roofline points under the roof on a log-log character grid.

    Each point is drawn with a letter; a legend maps letters to labels.
    The roof itself is drawn with ``/`` (bandwidth slope) and ``-`` (compute
    ceiling).
    """
    if width < 16 or height < 6:
        raise ConfigError("chart must be at least 16x6 cells")
    if len(points) > len(_MARKS):
        raise ConfigError(f"too many points (max {len(_MARKS)})")
    grid = [[" "] * width for _ in range(height)]
    # Draw the roof: for each column's OI, the attainable performance.
    oi_lo, oi_hi = oi_range
    p_lo, p_hi = perf_range
    for col in range(width):
        frac = col / (width - 1)
        oi = 10 ** (
            math.log10(oi_lo) + frac * (math.log10(oi_hi) - math.log10(oi_lo))
        )
        attain = min(peak_gops, oi * peak_bw_gbs)
        row = height - 1 - _log_bucket(attain, p_lo, p_hi, height)
        grid[row][col] = "-" if attain >= peak_gops else "/"
    # Plot the points (later points overwrite the roof, not each other's
    # legend entries).
    legend: List[str] = []
    for i, pt in enumerate(points):
        mark = _MARKS[i]
        col = _log_bucket(pt.op_intensity, oi_lo, oi_hi, width)
        row = height - 1 - _log_bucket(max(pt.gops, p_lo), p_lo, p_hi, height)
        grid[row][col] = mark
        legend.append(
            f"  {mark} = {pt.label} (OI {pt.op_intensity:.2f}, "
            f"{pt.gops:.0f} GOP/s, {pt.bound})"
        )
    lines = [f"{'GOP/s':>8} ^"]
    for r, row in enumerate(grid):
        ylabel = ""
        if r == 0:
            ylabel = f"{p_hi:g}"
        elif r == height - 1:
            ylabel = f"{p_lo:g}"
        lines.append(f"{ylabel:>8} |{''.join(row)}|")
    lines.append(f"{'':>8} +{'-' * width}> OI (op/byte), "
                 f"{oi_lo:g} .. {oi_hi:g} log scale")
    lines.extend(legend)
    return "\n".join(lines)


def ascii_bars(
    values: Dict[str, float],
    width: int = 50,
    unit: str = "x",
) -> str:
    """Horizontal bar chart (linear scale), e.g. for speedup comparisons."""
    if not values:
        return "(no data)"
    peak = max(values.values())
    if peak <= 0:
        raise ConfigError("bar values must include a positive maximum")
    label_w = max(len(k) for k in values)
    lines = []
    for name, val in values.items():
        bar = "#" * max(1, int(round(width * val / peak))) if val > 0 else ""
        lines.append(f"{name:>{label_w}} | {bar} {val:.2f}{unit}")
    return "\n".join(lines)
