"""Functional reference kernels.

Every computation the accelerator supports (Table 1) has a numpy reference
implementation here: MTTKRP and TTMc (dense and sparse, naive and
operand-factored), GEMM/SpMM, GEMV/SpMV, and the SF3 compute-pattern
executor the hardware is built around. The simulator's outputs are checked
against these, and the factorization algorithms call them.
"""

from repro.kernels.linalg import hadamard, khatri_rao, kron_vec
from repro.kernels.mttkrp import (
    mttkrp_dense,
    mttkrp_dense_factored,
    mttkrp_sparse,
    mttkrp_sparse_factored,
    mttkrp_flops,
)
from repro.kernels.ttmc import (
    ttmc_dense,
    ttmc_dense_factored,
    ttmc_sparse,
    ttmc_sparse_factored,
    ttmc_flops,
)
from repro.kernels.matmul import gemm, gemv, spmm, spmv
from repro.kernels.sf3 import (
    SF3ArraySpec,
    SF3Spec,
    execute_sf3,
    execute_sf3_arrays,
    sf3_spec_mttkrp,
    sf3_spec_ttmc,
    sf3_spec_spmm,
    sf3_spec_spmv,
)

__all__ = [
    "hadamard",
    "khatri_rao",
    "kron_vec",
    "mttkrp_dense",
    "mttkrp_dense_factored",
    "mttkrp_sparse",
    "mttkrp_sparse_factored",
    "mttkrp_flops",
    "ttmc_dense",
    "ttmc_dense_factored",
    "ttmc_sparse",
    "ttmc_sparse_factored",
    "ttmc_flops",
    "gemm",
    "gemv",
    "spmm",
    "spmv",
    "SF3ArraySpec",
    "SF3Spec",
    "execute_sf3",
    "execute_sf3_arrays",
    "sf3_spec_mttkrp",
    "sf3_spec_ttmc",
    "sf3_spec_spmm",
    "sf3_spec_spmv",
]
