"""MTTKRP — matricized tensor times Khatri-Rao product (Section 2.2).

Four reference implementations:

- :func:`mttkrp_dense` — the naive triple loop of Eq. (1) (as einsum).
- :func:`mttkrp_dense_factored` — the Hadamard-factored form of Eq. (2)/(3),
  the algorithm the accelerator implements (fewer multiplications).
- :func:`mttkrp_sparse` — sparse tensor, fully vectorized over nonzeros.
- :func:`mttkrp_sparse_factored` — sparse tensor evaluated fiber-by-fiber in
  the exact dataflow order of Fig. 2a / Fig. 4 (inner sum over k in TSR,
  then Hadamard with B(j,:) accumulated into OSR). Used to validate the
  simulator's PE schedule against the mathematical definition.

All support any target mode and tensors of any dimensionality >= 2.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.kernels.linalg import khatri_rao
from repro.tensor import SparseTensor, unfold_dense
from repro.util.errors import KernelError, ShapeError
from repro.util.validation import check_mode, check_shape_match


def _check_factors(
    shape: Sequence[int], mode: int, factors: Sequence[np.ndarray]
) -> List[np.ndarray]:
    """Validate the N-1 factor matrices for an MTTKRP along ``mode``.

    ``factors`` are the matrices for every mode except ``mode``, in
    increasing mode order (e.g. for mode 1 of a 3-d tensor: [M0, M2]).
    """
    rest = [m for m in range(len(shape)) if m != mode]
    if len(factors) != len(rest):
        raise KernelError(
            f"expected {len(rest)} factor matrices for mode {mode}, got {len(factors)}"
        )
    mats = [np.asarray(f, dtype=np.float64) for f in factors]
    rank = mats[0].shape[1] if mats else 0
    for m, mat in zip(rest, mats):
        if mat.ndim != 2:
            raise KernelError("factor matrices must be 2-d")
        check_shape_match(f"tensor mode {m}", shape[m], "factor rows", mat.shape[0])
        if mat.shape[1] != rank:
            raise ShapeError("factor matrices must share the rank F")
    return mats


def mttkrp_dense(
    tensor: np.ndarray, factors: Sequence[np.ndarray], mode: int = 0
) -> np.ndarray:
    """Naive MTTKRP (Eq. 1 generalized): unfold then multiply by Khatri-Rao."""
    tensor = np.asarray(tensor, dtype=np.float64)
    check_mode(mode, tensor.ndim)
    mats = _check_factors(tensor.shape, mode, factors)
    return unfold_dense(tensor, mode) @ khatri_rao(mats)


def mttkrp_dense_factored(
    tensor: np.ndarray, factors: Sequence[np.ndarray], mode: int = 0
) -> np.ndarray:
    """Operand-factored MTTKRP (Eq. 2/3): innermost mode contracted first.

    For a 3-d tensor along mode 0 this computes, per (i, j):
    ``t = sum_k A(i,j,k) * C(k,:)`` then ``Y(i,:) += B(j,:) ◦ t`` — reducing
    multiplications from ``2*I*J*K*F`` to ``I*J*F*(K+1)``.
    """
    tensor = np.asarray(tensor, dtype=np.float64)
    check_mode(mode, tensor.ndim)
    mats = _check_factors(tensor.shape, mode, factors)
    rest = [m for m in range(tensor.ndim) if m != mode]
    # Bring target mode first; contract remaining modes innermost-first.
    work = np.transpose(tensor, [mode] + rest)
    # Contract the last remaining mode with its factor, then Hadamard-fold
    # the earlier ones one at a time (Eq. 3 right-to-left).
    acc = np.tensordot(work, mats[-1], axes=([work.ndim - 1], [0]))
    for mat in reversed(mats[:-1]):
        # acc has shape (I, ..., size_m, F); fold mode m via Hadamard+sum.
        acc = np.einsum("...jf,jf->...f", acc, mat)
    return acc


def mttkrp_sparse(
    tensor: SparseTensor, factors: Sequence[np.ndarray], mode: int = 0
) -> np.ndarray:
    """SpMTTKRP, vectorized over nonzeros (reference implementation)."""
    check_mode(mode, tensor.ndim)
    mats = _check_factors(tensor.shape, mode, factors)
    rank = mats[0].shape[1]
    out = np.zeros((tensor.shape[mode], rank), dtype=np.float64)
    if tensor.nnz == 0:
        return out
    rest = [m for m in range(tensor.ndim) if m != mode]
    contrib = tensor.values[:, None] * mats[-1][tensor.coords[:, rest[-1]], :]
    for m, mat in zip(reversed(rest[:-1]), reversed(mats[:-1])):
        contrib = contrib * mat[tensor.coords[:, m], :]
    np.add.at(out, tensor.coords[:, mode], contrib)
    return out


def mttkrp_sparse_factored(
    tensor: SparseTensor, factors: Sequence[np.ndarray], mode: int = 0
) -> np.ndarray:
    """SpMTTKRP in the accelerator's fiber-by-fiber dataflow (Fig. 2a).

    Only 3-d tensors: the PE schedule the paper describes walks slices of the
    target mode, and within a slice walks mode-1 fibers, accumulating
    ``sum_k a*C(k,:)`` (TSR) then ``B(j,:) ◦ TSR`` into the output row (OSR).
    """
    if tensor.ndim != 3:
        raise KernelError("factored sparse MTTKRP is defined for 3-d tensors")
    check_mode(mode, tensor.ndim)
    mats = _check_factors(tensor.shape, mode, factors)
    mat_b, mat_c = mats
    rank = mat_b.shape[1]
    rest = [m for m in range(3) if m != mode]
    perm = tensor.permute_modes([mode] + rest)
    out = np.zeros((perm.shape[0], rank), dtype=np.float64)
    coords, vals = perm.coords, perm.values
    n = perm.nnz
    if n == 0:
        return out
    # Fiber boundaries: canonical order sorts by (i, j, k) so each (i, j)
    # fiber is one contiguous run.
    fiber_break = np.ones(n, dtype=bool)
    fiber_break[1:] = (coords[1:, 0] != coords[:-1, 0]) | (
        coords[1:, 1] != coords[:-1, 1]
    )
    starts = np.flatnonzero(fiber_break)
    # TSR phase: per-fiber sum over k of a * C(k,:).
    scaled = vals[:, None] * mat_c[coords[:, 2], :]
    tsr = np.add.reduceat(scaled, starts, axis=0)
    # OSR phase: Hadamard with B(j,:) and accumulate per slice i.
    fiber_i = coords[starts, 0]
    fiber_j = coords[starts, 1]
    np.add.at(out, fiber_i, mat_b[fiber_j, :] * tsr)
    return out


def mttkrp_flops(
    shape: Sequence[int],
    rank: int,
    nnz: int | None = None,
    factored: bool = True,
) -> int:
    """Multiplication+addition count for MTTKRP (paper's Section 2.2 math).

    Dense naive 3-d: ``2*I*J*K*F`` multiplies (plus the same order of adds);
    factored: ``I*J*F*(K+1)`` multiplies. For sparse tensors pass ``nnz``:
    the factored form does ``F`` multiply-adds per nonzero for the inner
    contraction plus ``F`` multiply-adds per nonempty fiber (approximated by
    per-nonzero for an upper bound when fiber counts are unknown).

    Returns total *operations* (1 multiply or 1 add = 1 op), the unit the
    rooflines use (GOP/s).
    """
    shape = tuple(int(s) for s in shape)
    rank = int(rank)
    if nnz is None:
        total = 1
        for s in shape:
            total *= s
        if factored:
            # Innermost contraction: 2 ops per element per rank column; each
            # outer fold adds 2 ops per surviving element.
            muls = total * rank + (total // shape[-1]) * rank * (len(shape) - 2 + 1)
            return 2 * muls
        return 2 * total * rank * (len(shape) - 1)
    # Sparse: scalar-fiber product (mul+add) per nonzero per rank column,
    # plus the fiber-level Hadamard fold, bounded by one per nonzero.
    return 2 * int(nnz) * rank * 2
