"""Matrix-matrix and matrix-vector kernels (Sections 2.4, 2.5).

GEMM/GEMV take dense operands; SpMM/SpMV take the sparse operand as a
:class:`repro.formats.CSRMatrix` (the software-side format) and compute
row-by-row exactly as the SF3 mapping in Table 1 prescribes: ``Y(i,:) =
sum_{j in row i} A(i,j) * B(j,:)``.
"""

from __future__ import annotations

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.util.errors import KernelError
from repro.util.validation import check_shape_match


def gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense matrix-matrix product ``Y = A @ B``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2:
        raise KernelError("gemm expects 2-d operands")
    check_shape_match("A columns", a.shape[1], "B rows", b.shape[0])
    return a @ b


def gemv(a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Dense matrix-vector product ``y = A @ x``."""
    a = np.asarray(a, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    if a.ndim != 2 or x.ndim != 1:
        raise KernelError("gemv expects a matrix and a vector")
    check_shape_match("A columns", a.shape[1], "x length", x.shape[0])
    return a @ x


def spmm(a: CSRMatrix, b: np.ndarray) -> np.ndarray:
    """Sparse × dense matrix product, accumulated row-wise (SF3 order)."""
    b = np.asarray(b, dtype=np.float64)
    if b.ndim != 2:
        raise KernelError("spmm expects a dense 2-d right operand")
    check_shape_match("A columns", a.shape[1], "B rows", b.shape[0])
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.float64)
    if a.nnz == 0:
        return out
    rows = np.repeat(np.arange(a.shape[0]), np.diff(a.indptr))
    np.add.at(out, rows, a.data[:, None] * b[a.indices, :])
    return out


def spmv(a: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Sparse matrix × dense vector product."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise KernelError("spmv expects a dense vector right operand")
    check_shape_match("A columns", a.shape[1], "x length", x.shape[0])
    out = np.zeros(a.shape[0], dtype=np.float64)
    if a.nnz == 0:
        return out
    rows = np.repeat(np.arange(a.shape[0]), np.diff(a.indptr))
    np.add.at(out, rows, a.data * x[a.indices])
    return out
