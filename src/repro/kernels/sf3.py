"""The SF3 compute pattern (Section 3, Eq. 9) as an executable abstraction.

    fibers_out = sum_{D1} fiber1  op  sum_{D0} (scalar * fiber0)

:class:`SF3Spec` captures one kernel instance as the hardware sees it: an
iteration space of output groups (slices/rows), each a set of D1 points, each
of which owns a set of D0 points carrying a scalar; plus the two fiber
sources and the combining ``op`` (Hadamard, Kronecker, or none). Table 1's
eight kernels are produced by the ``sf3_spec_*`` builders, and
:func:`execute_sf3` evaluates any spec in exactly the accelerator's
TSR-then-OSR order. Tests assert the generic executor matches every direct
kernel, which is the paper's central claim: one pattern covers them all.

Two spec layouts coexist:

- :class:`SF3Spec` — the tuple/dict reference form, one Python object per
  domain point. Kept as the readable specification of the pattern.
- :class:`SF3ArraySpec` — the array-backed form: CSR-style ``group_ptr`` /
  ``d1_ptr`` segment pointers over flat index/scalar arrays. Built without
  materializing any per-point Python objects (``layout="array"`` on the
  builders) and executed by :func:`execute_sf3_arrays`, whose ``np.add.at``
  segment accumulations replay the reference executor's exact left-to-right
  floating-point op order — outputs are byte-identical, not just close.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.kernels.linalg import hadamard, kron_vec
from repro.tensor import SparseTensor
from repro.util.errors import KernelError
from repro.util.validation import check_mode

#: D0 point: (fiber0 index, scalar value)
D0Point = Tuple[int, float]
#: D1 point: (fiber1 index or -1 when fiber1 is not applicable, D0 set)
D1Point = Tuple[int, List[D0Point]]


@dataclass
class SF3Spec:
    """One kernel instance expressed in the SF3 pattern.

    Attributes
    ----------
    kernel:
        Human-readable kernel name (``"spmttkrp"`` etc.), for reporting.
    groups:
        ``{output index i: [(d1_index, [(d0_index, scalar), ...]), ...]}``.
        For kernels without ``fiber1`` (SpMM/SpMV/GEMM/GEMV) ``d1_index`` is
        ``-1`` and there is exactly one D1 point per group.
    fiber0 / fiber1:
        Dense fiber sources: ``fiber0[d0]`` and ``fiber1[d1]`` are the fibers
        of Eq. (9). ``fiber1`` is ``None`` when not applicable.
    op:
        ``"hadamard"``, ``"kron"`` or ``None`` (Table 1's op column).
    out_shape:
        Shape of the full output (first axis indexes the output groups).
    """

    kernel: str
    groups: Dict[int, List[D1Point]]
    fiber0: np.ndarray
    fiber1: Optional[np.ndarray]
    op: Optional[str]
    out_shape: Tuple[int, ...]
    flop_count: int = field(default=0)

    def __post_init__(self) -> None:
        if self.op not in (None, "hadamard", "kron"):
            raise KernelError(f"unknown op {self.op!r}")
        if (self.op is None) != (self.fiber1 is None):
            raise KernelError("fiber1 must be present exactly when op is set")

    def to_array_spec(self) -> "SF3ArraySpec":
        """Flatten the tuple/dict form into the array-backed layout."""
        group_ids: List[int] = []
        group_ptr: List[int] = [0]
        d1_idx: List[int] = []
        d1_ptr: List[int] = [0]
        d0_idx: List[int] = []
        d0_val: List[float] = []
        for i, d1_points in self.groups.items():
            group_ids.append(int(i))
            for d1_index, d0_points in d1_points:
                d1_idx.append(int(d1_index))
                for d0_index, scalar in d0_points:
                    d0_idx.append(int(d0_index))
                    d0_val.append(float(scalar))
                d1_ptr.append(len(d0_idx))
            group_ptr.append(len(d1_idx))
        return SF3ArraySpec(
            kernel=self.kernel,
            group_ids=np.asarray(group_ids, dtype=np.int64),
            group_ptr=np.asarray(group_ptr, dtype=np.int64),
            d1_idx=np.asarray(d1_idx, dtype=np.int64),
            d1_ptr=np.asarray(d1_ptr, dtype=np.int64),
            d0_idx=np.asarray(d0_idx, dtype=np.int64),
            d0_val=np.asarray(d0_val, dtype=np.float64),
            fiber0=self.fiber0,
            fiber1=self.fiber1,
            op=self.op,
            out_shape=self.out_shape,
            flop_count=self.flop_count,
        )


@dataclass
class SF3ArraySpec:
    """Array-backed SF3 kernel instance (CSR-style segment pointers).

    The iteration space is stored as three flat levels:

    - ``group_ids[g]`` — output index of group ``g``; its D1 points are
      ``group_ptr[g]:group_ptr[g+1]``.
    - ``d1_idx[p]`` — fiber1 index of D1 point ``p`` (``-1`` when the
      kernel has no fiber1); its D0 points are ``d1_ptr[p]:d1_ptr[p+1]``.
    - ``d0_idx[q]`` / ``d0_val[q]`` — fiber0 index and scalar of D0 point
      ``q``.

    ``fiber0`` / ``fiber1`` / ``op`` / ``out_shape`` / ``flop_count`` mean
    exactly what they do on :class:`SF3Spec`.
    """

    kernel: str
    group_ids: np.ndarray
    group_ptr: np.ndarray
    d1_idx: np.ndarray
    d1_ptr: np.ndarray
    d0_idx: np.ndarray
    d0_val: np.ndarray
    fiber0: np.ndarray
    fiber1: Optional[np.ndarray]
    op: Optional[str]
    out_shape: Tuple[int, ...]
    flop_count: int = field(default=0)

    def __post_init__(self) -> None:
        if self.op not in (None, "hadamard", "kron"):
            raise KernelError(f"unknown op {self.op!r}")
        if (self.op is None) != (self.fiber1 is None):
            raise KernelError("fiber1 must be present exactly when op is set")
        self.group_ids = np.asarray(self.group_ids, dtype=np.int64)
        self.group_ptr = np.asarray(self.group_ptr, dtype=np.int64)
        self.d1_idx = np.asarray(self.d1_idx, dtype=np.int64)
        self.d1_ptr = np.asarray(self.d1_ptr, dtype=np.int64)
        self.d0_idx = np.asarray(self.d0_idx, dtype=np.int64)
        self.d0_val = np.asarray(self.d0_val, dtype=np.float64)
        if self.group_ptr.shape != (self.group_ids.shape[0] + 1,):
            raise KernelError("group_ptr must have num_groups + 1 entries")
        if self.d1_ptr.shape != (self.d1_idx.shape[0] + 1,):
            raise KernelError("d1_ptr must have num_d1 + 1 entries")
        if self.d0_idx.shape != self.d0_val.shape:
            raise KernelError("d0_idx and d0_val must align")
        for name, ptr, count in (
            ("group_ptr", self.group_ptr, self.d1_idx.shape[0]),
            ("d1_ptr", self.d1_ptr, self.d0_idx.shape[0]),
        ):
            if ptr[0] != 0 or ptr[-1] != count or np.any(np.diff(ptr) < 0):
                raise KernelError(f"{name} is not a valid segment pointer array")

    @property
    def num_groups(self) -> int:
        return int(self.group_ids.shape[0])

    @property
    def num_d1(self) -> int:
        return int(self.d1_idx.shape[0])

    @property
    def num_d0(self) -> int:
        return int(self.d0_idx.shape[0])

    def to_spec(self) -> SF3Spec:
        """Expand back into the tuple/dict reference form."""
        groups: Dict[int, List[D1Point]] = {}
        for g in range(self.num_groups):
            d1_points: List[D1Point] = []
            for p in range(int(self.group_ptr[g]), int(self.group_ptr[g + 1])):
                lo, hi = int(self.d1_ptr[p]), int(self.d1_ptr[p + 1])
                d0_points = [
                    (int(self.d0_idx[q]), float(self.d0_val[q]))
                    for q in range(lo, hi)
                ]
                d1_points.append((int(self.d1_idx[p]), d0_points))
            groups[int(self.group_ids[g])] = d1_points
        return SF3Spec(
            kernel=self.kernel,
            groups=groups,
            fiber0=self.fiber0,
            fiber1=self.fiber1,
            op=self.op,
            out_shape=self.out_shape,
            flop_count=self.flop_count,
        )


def execute_sf3(spec: "SF3Spec | SF3ArraySpec") -> np.ndarray:
    """Evaluate an SF3 spec in the accelerator's dataflow order.

    Per output group: for each D1 point, the inner sum over D0 accumulates
    ``scalar * fiber0`` (the TSR contents), then ``fiber1 op TSR`` (or TSR
    itself when op is None) accumulates into the group's output (the OSR).
    Array-backed specs dispatch to :func:`execute_sf3_arrays`.
    """
    if isinstance(spec, SF3ArraySpec):
        return execute_sf3_arrays(spec)
    out = np.zeros(spec.out_shape, dtype=np.float64)
    f0 = np.asarray(spec.fiber0, dtype=np.float64)
    f1 = None if spec.fiber1 is None else np.asarray(spec.fiber1, dtype=np.float64)
    for i, d1_points in spec.groups.items():
        acc = np.zeros(spec.out_shape[1:], dtype=np.float64)
        for d1_index, d0_points in d1_points:
            tsr = np.zeros(f0.shape[1:] if f0.ndim > 1 else (), dtype=np.float64)
            for d0_index, scalar in d0_points:
                tsr = tsr + scalar * f0[d0_index]
            if spec.op is None:
                acc = acc + tsr
            elif spec.op == "hadamard":
                acc = acc + hadamard(f1[d1_index], tsr)
            else:  # kron
                acc = acc + kron_vec(f1[d1_index], tsr)
        out[i] = acc
    return out


def execute_sf3_arrays(spec: SF3ArraySpec) -> np.ndarray:
    """Vectorized SF3 evaluation, byte-identical to the reference executor.

    Both accumulation levels use ``np.add.at``, which adds in index order —
    the same left-to-right floating-point fold (starting from zeros) the
    reference executor performs, so outputs match bit for bit. (A
    ``reduceat`` would be faster still but sums pairwise, changing the
    rounding.) The elementwise products — ``scalar * fiber0``,
    ``fiber1 * TSR`` (Hadamard) and the broadcast outer product (Kronecker)
    — are the reference's exact elementary operations.
    """
    out = np.zeros(spec.out_shape, dtype=np.float64)
    if spec.num_d1 == 0:
        return out
    f0 = np.asarray(spec.fiber0, dtype=np.float64)
    # TSR fill: per-D1 inner sums of scalar * fiber0.
    d1_of_d0 = np.repeat(
        np.arange(spec.num_d1, dtype=np.int64), np.diff(spec.d1_ptr)
    )
    contrib = (
        spec.d0_val * f0[spec.d0_idx]
        if f0.ndim == 1
        else spec.d0_val[:, None] * f0[spec.d0_idx]
    )
    tsr = np.zeros((spec.num_d1,) + f0.shape[1:], dtype=np.float64)
    np.add.at(tsr, d1_of_d0, contrib)
    # OSR drain: per-group sums of fiber1 op TSR.
    if spec.op is None:
        terms = tsr
    else:
        f1 = np.asarray(spec.fiber1, dtype=np.float64)[spec.d1_idx]
        if spec.op == "hadamard":
            terms = f1 * tsr
        else:  # kron: row-wise outer products
            terms = f1[:, :, None] * tsr[:, None, :]
    group_of_d1 = np.repeat(
        np.arange(spec.num_groups, dtype=np.int64), np.diff(spec.group_ptr)
    )
    np.add.at(out, spec.group_ids[group_of_d1], terms)
    return out


def _tensor_groups(tensor: SparseTensor, mode: int) -> Dict[int, List[D1Point]]:
    """Group a 3-d tensor's nonzeros as {i: [(j, [(k, val), ...]), ...]}."""
    rest = [m for m in range(3) if m != mode]
    perm = tensor.permute_modes([mode] + rest)
    groups: Dict[int, List[D1Point]] = {}
    coords, vals = perm.coords, perm.values
    for (i, j, k), v in zip(coords, vals):
        i, j, k = int(i), int(j), int(k)
        d1_points = groups.setdefault(i, [])
        if not d1_points or d1_points[-1][0] != j:
            d1_points.append((j, []))
        d1_points[-1][1].append((k, float(v)))
    return groups


def _tensor_array_domains(
    tensor: SparseTensor, mode: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized tensor iteration space for the array layout.

    The mode-permuted canonical order makes groups (``i`` runs) and D1
    points (``(i, j)`` runs) contiguous, so run-boundary masks produce the
    same domains as :func:`_tensor_groups` without any per-nonzero Python.
    """
    rest = [m for m in range(3) if m != mode]
    perm = tensor.permute_modes([mode] + rest)
    coords, vals = perm.coords, perm.values
    n = perm.nnz
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        zero_ptr = np.zeros(1, dtype=np.int64)
        return (
            empty, zero_ptr, empty.copy(), zero_ptr.copy(),
            empty.copy(), np.empty(0, dtype=np.float64),
        )
    i_col, j_col = coords[:, 0], coords[:, 1]
    new_i = np.empty(n, dtype=bool)
    new_i[0] = True
    np.not_equal(i_col[1:], i_col[:-1], out=new_i[1:])
    new_d1 = new_i.copy()
    new_d1[1:] |= j_col[1:] != j_col[:-1]
    d1_starts = np.flatnonzero(new_d1)
    d1_ptr = np.append(d1_starts, n)
    d1_idx = j_col[d1_starts]
    group_first = np.flatnonzero(new_i[d1_starts])
    group_ptr = np.append(group_first, d1_starts.shape[0])
    group_ids = i_col[d1_starts[group_first]]
    return group_ids, group_ptr, d1_idx, d1_ptr, coords[:, 2].copy(), vals


def _check_layout(layout: str) -> None:
    if layout not in ("tuple", "array"):
        raise KernelError(f"layout must be 'tuple' or 'array', not {layout!r}")


def _matrix_array_domains(
    a: CSRMatrix,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Nonempty-row iteration space for SpMM/SpMV in the array layout.

    One D1 point per nonempty row. Empty rows occupy zero-length CSR
    segments, so consecutive nonempty rows' data is adjacent and the row
    starts double as the D0 segment pointers.
    """
    nz_rows = np.flatnonzero(np.diff(a.indptr)).astype(np.int64)
    group_ptr = np.arange(nz_rows.shape[0] + 1, dtype=np.int64)
    d1_idx = np.full(nz_rows.shape[0], -1, dtype=np.int64)
    d1_ptr = np.append(a.indptr[nz_rows], a.nnz).astype(np.int64)
    if nz_rows.shape[0] == 0:
        d1_ptr = np.zeros(1, dtype=np.int64)
    return nz_rows, group_ptr, d1_idx, d1_ptr


def sf3_spec_mttkrp(
    tensor: SparseTensor,
    mat_b: np.ndarray,
    mat_c: np.ndarray,
    mode: int = 0,
    layout: str = "tuple",
) -> "SF3Spec | SF3ArraySpec":
    """Table 1 row (Sp/D)MTTKRP: fiber1=B rows, op=◦, fiber0=C rows.

    ``mat_b`` / ``mat_c`` are the factors for the first / second remaining
    mode in increasing mode order (matching :func:`repro.kernels.mttkrp`).
    ``layout="array"`` returns the equivalent :class:`SF3ArraySpec`.
    """
    if tensor.ndim != 3:
        raise KernelError("SF3 MTTKRP spec is defined for 3-d tensors")
    check_mode(mode, 3)
    _check_layout(layout)
    mat_b = np.asarray(mat_b, dtype=np.float64)
    mat_c = np.asarray(mat_c, dtype=np.float64)
    rank = mat_b.shape[1]
    if layout == "array":
        gids, gptr, d1i, d1p, d0i, d0v = _tensor_array_domains(tensor, mode)
        return SF3ArraySpec(
            kernel="mttkrp",
            group_ids=gids, group_ptr=gptr,
            d1_idx=d1i, d1_ptr=d1p, d0_idx=d0i, d0_val=d0v,
            fiber0=mat_c,
            fiber1=mat_b,
            op="hadamard",
            out_shape=(tensor.shape[mode], rank),
            flop_count=2 * tensor.nnz * rank + 2 * int(d1i.shape[0]) * rank,
        )
    groups = _tensor_groups(tensor, mode)
    fibers = sum(len(v) for v in groups.values())
    return SF3Spec(
        kernel="mttkrp",
        groups=groups,
        fiber0=mat_c,
        fiber1=mat_b,
        op="hadamard",
        out_shape=(tensor.shape[mode], rank),
        flop_count=2 * tensor.nnz * rank + 2 * fibers * rank,
    )


def sf3_spec_ttmc(
    tensor: SparseTensor,
    mat_b: np.ndarray,
    mat_c: np.ndarray,
    mode: int = 0,
    layout: str = "tuple",
) -> "SF3Spec | SF3ArraySpec":
    """Table 1 row (Sp/D)TTMc: same domains as MTTKRP but op=⊗."""
    if tensor.ndim != 3:
        raise KernelError("SF3 TTMc spec is defined for 3-d tensors")
    check_mode(mode, 3)
    _check_layout(layout)
    mat_b = np.asarray(mat_b, dtype=np.float64)
    mat_c = np.asarray(mat_c, dtype=np.float64)
    f1, f2 = mat_b.shape[1], mat_c.shape[1]
    if layout == "array":
        gids, gptr, d1i, d1p, d0i, d0v = _tensor_array_domains(tensor, mode)
        return SF3ArraySpec(
            kernel="ttmc",
            group_ids=gids, group_ptr=gptr,
            d1_idx=d1i, d1_ptr=d1p, d0_idx=d0i, d0_val=d0v,
            fiber0=mat_c,
            fiber1=mat_b,
            op="kron",
            out_shape=(tensor.shape[mode], f1, f2),
            flop_count=2 * tensor.nnz * f2 + 2 * int(d1i.shape[0]) * f1 * f2,
        )
    groups = _tensor_groups(tensor, mode)
    fibers = sum(len(v) for v in groups.values())
    return SF3Spec(
        kernel="ttmc",
        groups=groups,
        fiber0=mat_c,
        fiber1=mat_b,
        op="kron",
        out_shape=(tensor.shape[mode], f1, f2),
        flop_count=2 * tensor.nnz * f2 + 2 * fibers * f1 * f2,
    )


def sf3_spec_spmm(
    a: CSRMatrix, mat_b: np.ndarray, layout: str = "tuple"
) -> "SF3Spec | SF3ArraySpec":
    """Table 1 row SpMM/GEMM: no fiber1/op; D0 = nonzeros of row i."""
    _check_layout(layout)
    mat_b = np.asarray(mat_b, dtype=np.float64)
    if layout == "array":
        gids, gptr, d1i, d1p = _matrix_array_domains(a)
        return SF3ArraySpec(
            kernel="spmm",
            group_ids=gids, group_ptr=gptr, d1_idx=d1i, d1_ptr=d1p,
            d0_idx=a.indices.astype(np.int64, copy=False),
            d0_val=a.data.astype(np.float64, copy=False),
            fiber0=mat_b,
            fiber1=None,
            op=None,
            out_shape=(a.shape[0], mat_b.shape[1]),
            flop_count=2 * a.nnz * mat_b.shape[1],
        )
    groups: Dict[int, List[D1Point]] = {}
    for i, cols, vals in a.iter_rows():
        if cols.size == 0:
            continue
        groups[i] = [(-1, [(int(j), float(v)) for j, v in zip(cols, vals)])]
    return SF3Spec(
        kernel="spmm",
        groups=groups,
        fiber0=mat_b,
        fiber1=None,
        op=None,
        out_shape=(a.shape[0], mat_b.shape[1]),
        flop_count=2 * a.nnz * mat_b.shape[1],
    )


def sf3_spec_spmv(
    a: CSRMatrix, vec: np.ndarray, layout: str = "tuple"
) -> "SF3Spec | SF3ArraySpec":
    """Table 1 row SpMV/GEMV: fiber0 degenerates to vector elements."""
    _check_layout(layout)
    vec = np.asarray(vec, dtype=np.float64)
    if layout == "array":
        gids, gptr, d1i, d1p = _matrix_array_domains(a)
        return SF3ArraySpec(
            kernel="spmv",
            group_ids=gids, group_ptr=gptr, d1_idx=d1i, d1_ptr=d1p,
            d0_idx=a.indices.astype(np.int64, copy=False),
            d0_val=a.data.astype(np.float64, copy=False),
            fiber0=vec,
            fiber1=None,
            op=None,
            out_shape=(a.shape[0],),
            flop_count=2 * a.nnz,
        )
    groups: Dict[int, List[D1Point]] = {}
    for i, cols, vals in a.iter_rows():
        if cols.size == 0:
            continue
        groups[i] = [(-1, [(int(j), float(v)) for j, v in zip(cols, vals)])]
    return SF3Spec(
        kernel="spmv",
        groups=groups,
        fiber0=vec,
        fiber1=None,
        op=None,
        out_shape=(a.shape[0],),
        flop_count=2 * a.nnz,
    )
