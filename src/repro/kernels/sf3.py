"""The SF3 compute pattern (Section 3, Eq. 9) as an executable abstraction.

    fibers_out = sum_{D1} fiber1  op  sum_{D0} (scalar * fiber0)

:class:`SF3Spec` captures one kernel instance as the hardware sees it: an
iteration space of output groups (slices/rows), each a set of D1 points, each
of which owns a set of D0 points carrying a scalar; plus the two fiber
sources and the combining ``op`` (Hadamard, Kronecker, or none). Table 1's
eight kernels are produced by the ``sf3_spec_*`` builders, and
:func:`execute_sf3` evaluates any spec in exactly the accelerator's
TSR-then-OSR order. Tests assert the generic executor matches every direct
kernel, which is the paper's central claim: one pattern covers them all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.kernels.linalg import hadamard, kron_vec
from repro.tensor import SparseTensor
from repro.util.errors import KernelError
from repro.util.validation import check_mode

#: D0 point: (fiber0 index, scalar value)
D0Point = Tuple[int, float]
#: D1 point: (fiber1 index or -1 when fiber1 is not applicable, D0 set)
D1Point = Tuple[int, List[D0Point]]


@dataclass
class SF3Spec:
    """One kernel instance expressed in the SF3 pattern.

    Attributes
    ----------
    kernel:
        Human-readable kernel name (``"spmttkrp"`` etc.), for reporting.
    groups:
        ``{output index i: [(d1_index, [(d0_index, scalar), ...]), ...]}``.
        For kernels without ``fiber1`` (SpMM/SpMV/GEMM/GEMV) ``d1_index`` is
        ``-1`` and there is exactly one D1 point per group.
    fiber0 / fiber1:
        Dense fiber sources: ``fiber0[d0]`` and ``fiber1[d1]`` are the fibers
        of Eq. (9). ``fiber1`` is ``None`` when not applicable.
    op:
        ``"hadamard"``, ``"kron"`` or ``None`` (Table 1's op column).
    out_shape:
        Shape of the full output (first axis indexes the output groups).
    """

    kernel: str
    groups: Dict[int, List[D1Point]]
    fiber0: np.ndarray
    fiber1: Optional[np.ndarray]
    op: Optional[str]
    out_shape: Tuple[int, ...]
    flop_count: int = field(default=0)

    def __post_init__(self) -> None:
        if self.op not in (None, "hadamard", "kron"):
            raise KernelError(f"unknown op {self.op!r}")
        if (self.op is None) != (self.fiber1 is None):
            raise KernelError("fiber1 must be present exactly when op is set")


def execute_sf3(spec: SF3Spec) -> np.ndarray:
    """Evaluate an :class:`SF3Spec` in the accelerator's dataflow order.

    Per output group: for each D1 point, the inner sum over D0 accumulates
    ``scalar * fiber0`` (the TSR contents), then ``fiber1 op TSR`` (or TSR
    itself when op is None) accumulates into the group's output (the OSR).
    """
    out = np.zeros(spec.out_shape, dtype=np.float64)
    f0 = np.asarray(spec.fiber0, dtype=np.float64)
    f1 = None if spec.fiber1 is None else np.asarray(spec.fiber1, dtype=np.float64)
    for i, d1_points in spec.groups.items():
        acc = np.zeros(spec.out_shape[1:], dtype=np.float64)
        for d1_index, d0_points in d1_points:
            tsr = np.zeros(f0.shape[1:] if f0.ndim > 1 else (), dtype=np.float64)
            for d0_index, scalar in d0_points:
                tsr = tsr + scalar * f0[d0_index]
            if spec.op is None:
                acc = acc + tsr
            elif spec.op == "hadamard":
                acc = acc + hadamard(f1[d1_index], tsr)
            else:  # kron
                acc = acc + kron_vec(f1[d1_index], tsr)
        out[i] = acc
    return out


def _tensor_groups(tensor: SparseTensor, mode: int) -> Dict[int, List[D1Point]]:
    """Group a 3-d tensor's nonzeros as {i: [(j, [(k, val), ...]), ...]}."""
    rest = [m for m in range(3) if m != mode]
    perm = tensor.permute_modes([mode] + rest)
    groups: Dict[int, List[D1Point]] = {}
    coords, vals = perm.coords, perm.values
    for (i, j, k), v in zip(coords, vals):
        i, j, k = int(i), int(j), int(k)
        d1_points = groups.setdefault(i, [])
        if not d1_points or d1_points[-1][0] != j:
            d1_points.append((j, []))
        d1_points[-1][1].append((k, float(v)))
    return groups


def sf3_spec_mttkrp(
    tensor: SparseTensor, mat_b: np.ndarray, mat_c: np.ndarray, mode: int = 0
) -> SF3Spec:
    """Table 1 row (Sp/D)MTTKRP: fiber1=B rows, op=◦, fiber0=C rows.

    ``mat_b`` / ``mat_c`` are the factors for the first / second remaining
    mode in increasing mode order (matching :func:`repro.kernels.mttkrp`).
    """
    if tensor.ndim != 3:
        raise KernelError("SF3 MTTKRP spec is defined for 3-d tensors")
    check_mode(mode, 3)
    mat_b = np.asarray(mat_b, dtype=np.float64)
    mat_c = np.asarray(mat_c, dtype=np.float64)
    groups = _tensor_groups(tensor, mode)
    rank = mat_b.shape[1]
    fibers = sum(len(v) for v in groups.values())
    return SF3Spec(
        kernel="mttkrp",
        groups=groups,
        fiber0=mat_c,
        fiber1=mat_b,
        op="hadamard",
        out_shape=(tensor.shape[mode], rank),
        flop_count=2 * tensor.nnz * rank + 2 * fibers * rank,
    )


def sf3_spec_ttmc(
    tensor: SparseTensor, mat_b: np.ndarray, mat_c: np.ndarray, mode: int = 0
) -> SF3Spec:
    """Table 1 row (Sp/D)TTMc: same domains as MTTKRP but op=⊗."""
    if tensor.ndim != 3:
        raise KernelError("SF3 TTMc spec is defined for 3-d tensors")
    check_mode(mode, 3)
    mat_b = np.asarray(mat_b, dtype=np.float64)
    mat_c = np.asarray(mat_c, dtype=np.float64)
    groups = _tensor_groups(tensor, mode)
    f1, f2 = mat_b.shape[1], mat_c.shape[1]
    fibers = sum(len(v) for v in groups.values())
    return SF3Spec(
        kernel="ttmc",
        groups=groups,
        fiber0=mat_c,
        fiber1=mat_b,
        op="kron",
        out_shape=(tensor.shape[mode], f1, f2),
        flop_count=2 * tensor.nnz * f2 + 2 * fibers * f1 * f2,
    )


def sf3_spec_spmm(a: CSRMatrix, mat_b: np.ndarray) -> SF3Spec:
    """Table 1 row SpMM/GEMM: no fiber1/op; D0 = nonzeros of row i."""
    mat_b = np.asarray(mat_b, dtype=np.float64)
    groups: Dict[int, List[D1Point]] = {}
    for i, cols, vals in a.iter_rows():
        if cols.size == 0:
            continue
        groups[i] = [(-1, [(int(j), float(v)) for j, v in zip(cols, vals)])]
    return SF3Spec(
        kernel="spmm",
        groups=groups,
        fiber0=mat_b,
        fiber1=None,
        op=None,
        out_shape=(a.shape[0], mat_b.shape[1]),
        flop_count=2 * a.nnz * mat_b.shape[1],
    )


def sf3_spec_spmv(a: CSRMatrix, vec: np.ndarray) -> SF3Spec:
    """Table 1 row SpMV/GEMV: fiber0 degenerates to vector elements."""
    vec = np.asarray(vec, dtype=np.float64)
    groups: Dict[int, List[D1Point]] = {}
    for i, cols, vals in a.iter_rows():
        if cols.size == 0:
            continue
        groups[i] = [(-1, [(int(j), float(v)) for j, v in zip(cols, vals)])]
    return SF3Spec(
        kernel="spmv",
        groups=groups,
        fiber0=vec,
        fiber1=None,
        op=None,
        out_shape=(a.shape[0],),
        flop_count=2 * a.nnz,
    )
