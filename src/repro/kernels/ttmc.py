"""TTMc — tensor times matrix chain (Section 2.3).

- :func:`ttmc_dense` — naive Eq. (4) (as einsum over the full tensor).
- :func:`ttmc_dense_factored` — Kronecker-factored Eq. (5)/(6).
- :func:`ttmc_sparse` — sparse reference, vectorized over nonzeros.
- :func:`ttmc_sparse_factored` — fiber-by-fiber dataflow of Fig. 2b: the
  inner sum over k is held in TSR, then each element of B(j,:) scales TSR
  into a distinct OSR register (the outer product, Section 5.2.4).

For a 3-d tensor along mode 0: ``Y(i, f1, f2) = sum_{j,k} A(i,j,k) *
B(j,f1) * C(k,f2)`` — the output is a dense ``I x F1 x F2`` tensor.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.tensor import SparseTensor
from repro.util.errors import KernelError
from repro.util.validation import check_mode, check_shape_match


def _check_factors(
    shape: Sequence[int], mode: int, factors: Sequence[np.ndarray]
) -> List[np.ndarray]:
    """Validate the N-1 factor matrices; unlike MTTKRP, ranks may differ."""
    rest = [m for m in range(len(shape)) if m != mode]
    if len(factors) != len(rest):
        raise KernelError(
            f"expected {len(rest)} factor matrices for mode {mode}, got {len(factors)}"
        )
    mats = [np.asarray(f, dtype=np.float64) for f in factors]
    for m, mat in zip(rest, mats):
        if mat.ndim != 2:
            raise KernelError("factor matrices must be 2-d")
        check_shape_match(f"tensor mode {m}", shape[m], "factor rows", mat.shape[0])
    return mats


def ttmc_dense(
    tensor: np.ndarray, factors: Sequence[np.ndarray], mode: int = 0
) -> np.ndarray:
    """Naive TTMc: contract every non-target mode with its matrix."""
    tensor = np.asarray(tensor, dtype=np.float64)
    check_mode(mode, tensor.ndim)
    mats = _check_factors(tensor.shape, mode, factors)
    rest = [m for m in range(tensor.ndim) if m != mode]
    out = np.transpose(tensor, [mode] + rest)
    # Contract each remaining mode in turn. Contracting axis 1 repeatedly
    # appends rank axes at the tail in rest order, yielding (I, F1, ..., Fp).
    for mat in mats:
        out = np.tensordot(out, mat, axes=([1], [0]))
    return out


def ttmc_dense_factored(
    tensor: np.ndarray, factors: Sequence[np.ndarray], mode: int = 0
) -> np.ndarray:
    """Kronecker-factored TTMc (Eq. 5/6).

    Contracts the innermost remaining mode first (``sum_k A(i,j,k)*C(k,:)``),
    then expands outward with Kronecker products against the earlier factor
    rows — cutting multiplications from ``2*I*J*K*F1*F2`` to
    ``I*J*(K*F2 + F1*F2)`` for the 3-d case.
    """
    tensor = np.asarray(tensor, dtype=np.float64)
    check_mode(mode, tensor.ndim)
    mats = _check_factors(tensor.shape, mode, factors)
    rest = [m for m in range(tensor.ndim) if m != mode]
    work = np.transpose(tensor, [mode] + rest)
    # Innermost contraction: sum over the last remaining mode.
    acc = np.tensordot(work, mats[-1], axes=([work.ndim - 1], [0]))
    # Outer folds (Eq. 6 right-to-left): fold each earlier structural axis q
    # with its factor; the new rank axis must land where the structural axis
    # was so rank axes end up in rest order.
    for q in range(len(rest) - 2, -1, -1):
        axis = 1 + q  # axis of the structural mode being folded
        acc = np.moveaxis(
            np.tensordot(acc, mats[q], axes=([axis], [0])), -1, axis
        )
    return acc


def ttmc_sparse(
    tensor: SparseTensor, factors: Sequence[np.ndarray], mode: int = 0
) -> np.ndarray:
    """SpTTMc, vectorized over nonzeros (reference implementation)."""
    check_mode(mode, tensor.ndim)
    mats = _check_factors(tensor.shape, mode, factors)
    rest = [m for m in range(tensor.ndim) if m != mode]
    ranks = tuple(mat.shape[1] for mat in mats)
    out = np.zeros((tensor.shape[mode],) + ranks, dtype=np.float64)
    if tensor.nnz == 0:
        return out
    # contrib[n] = v_n * outer(M_{rest[0]}[i_{rest[0]}], ..., M_{rest[-1]}[...])
    contrib = tensor.values.reshape((-1,) + (1,) * len(rest))
    for pos, (m, mat) in enumerate(zip(rest, mats)):
        sel = mat[tensor.coords[:, m], :]
        shape = [tensor.nnz] + [1] * len(rest)
        shape[1 + pos] = mat.shape[1]
        contrib = contrib * sel.reshape(shape)
    np.add.at(out, tensor.coords[:, mode], contrib)
    return out


def ttmc_sparse_factored(
    tensor: SparseTensor, factors: Sequence[np.ndarray], mode: int = 0
) -> np.ndarray:
    """SpTTMc in the accelerator's fiber-by-fiber dataflow (Fig. 2b).

    3-d only: per (i, j) fiber accumulate ``t = sum_k a*C(k,:)`` (TSR), then
    stream B(j,:) one element at a time, each scaling TSR into one OSR
    register — the outer product ``B(j,:) ⊗ t`` — accumulated per slice.
    """
    if tensor.ndim != 3:
        raise KernelError("factored sparse TTMc is defined for 3-d tensors")
    check_mode(mode, tensor.ndim)
    mats = _check_factors(tensor.shape, mode, factors)
    mat_b, mat_c = mats
    rest = [m for m in range(3) if m != mode]
    perm = tensor.permute_modes([mode] + rest)
    out = np.zeros(
        (perm.shape[0], mat_b.shape[1], mat_c.shape[1]), dtype=np.float64
    )
    coords, vals = perm.coords, perm.values
    n = perm.nnz
    if n == 0:
        return out
    fiber_break = np.ones(n, dtype=bool)
    fiber_break[1:] = (coords[1:, 0] != coords[:-1, 0]) | (
        coords[1:, 1] != coords[:-1, 1]
    )
    starts = np.flatnonzero(fiber_break)
    scaled = vals[:, None] * mat_c[coords[:, 2], :]
    tsr = np.add.reduceat(scaled, starts, axis=0)  # (fibers, F2)
    fiber_i = coords[starts, 0]
    fiber_j = coords[starts, 1]
    outer = mat_b[fiber_j, :, None] * tsr[:, None, :]  # (fibers, F1, F2)
    np.add.at(out, fiber_i, outer)
    return out


def ttmc_flops(
    shape: Sequence[int],
    ranks: Sequence[int],
    nnz: int | None = None,
    factored: bool = True,
) -> int:
    """Operation count for 3-d TTMc per the paper's Section 2.3 arithmetic.

    Dense naive: ``2 * I*J*K * F1*F2`` multiplies; factored:
    ``I*J*(K*F2 + F1*F2)``. Counts mul+add pairs as 2 ops. For sparse pass
    ``nnz``: the factored form costs ``2*nnz*F2`` for the inner contraction
    plus ``2*fibers*F1*F2`` for the Kronecker fold (fibers bounded by nnz).
    """
    shape = tuple(int(s) for s in shape)
    f1, f2 = int(ranks[0]), int(ranks[1])
    if nnz is None:
        i, j, k = shape
        if factored:
            return 2 * i * j * (k * f2 + f1 * f2)
        return 2 * i * j * k * f1 * f2 * 2 // 2
    return 2 * int(nnz) * f2 + 2 * int(nnz) * f1 * f2
