"""Vector/matrix products underlying the tensor kernels.

The paper builds MTTKRP on the Hadamard product (element-wise, Eq. 2) and
TTMc on the Kronecker product (outer, Eq. 5); the Khatri-Rao product is the
column-wise Kronecker that matricized MTTKRP multiplies by.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.errors import ShapeError


def hadamard(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise product of two arrays of identical shape (the paper's ◦)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ShapeError(f"hadamard operands differ in shape: {a.shape} vs {b.shape}")
    return a * b


def kron_vec(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Kronecker (outer) product of two vectors, shaped ``(len(a), len(b))``.

    This is the paper's ⊗ as used in TTMc: ``fiber1 ⊗ fiber0`` produces the
    ``F1 x F2`` output slice contribution.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 1 or b.ndim != 1:
        raise ShapeError("kron_vec expects 1-d operands")
    return np.outer(a, b)


def khatri_rao(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Column-wise Khatri-Rao product with first-matrix-fastest row order.

    For matrices ``M_0 (I0 x F), ..., M_{p-1} (I_{p-1} x F)`` the result has
    ``I0 * ... * I_{p-1}`` rows and ``F`` columns, where row
    ``i0 + I0*i1 + I0*I1*i2 + ...`` equals ``M_0(i0,:) ◦ M_1(i1,:) ◦ ...``.

    This row order matches :meth:`repro.tensor.SparseTensor.unfold` (earliest
    remaining mode varies fastest), so ``mttkrp(A, n) == unfold(A, n) @
    khatri_rao(factors except n)`` holds directly.
    """
    mats = [np.asarray(m, dtype=np.float64) for m in matrices]
    if not mats:
        raise ShapeError("khatri_rao needs at least one matrix")
    ncols = mats[0].shape[1]
    for m in mats:
        if m.ndim != 2 or m.shape[1] != ncols:
            raise ShapeError("khatri_rao operands must share the column count")
    out = mats[0]
    for m in mats[1:]:
        # New rows: existing index varies fastest -> repeat new matrix rows,
        # tile the accumulated block.
        out = np.repeat(m, out.shape[0], axis=0) * np.tile(out, (m.shape[0], 1))
    return out
