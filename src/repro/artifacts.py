"""Content-addressed on-disk artifact store for the benchmark harness.

Every figure/ablation module in ``benchmarks/`` regenerates the same
expensive intermediates: synthetic datasets, CISS encodings, baseline
workload statistics and full simulator reports. This module memoizes them
across modules *and across pytest sessions* in a directory of pickle files
keyed by content fingerprints — the same blake2b scheme
:class:`repro.sim.batch.EncodingCache` uses in memory, extended to whole
values (tensors, matrices, configs, argument tuples). A key never aliases:
it digests the operand *contents*, so regenerating with different data
misses instead of returning a stale artifact.

Pieces:

- :func:`fingerprint_value` — stable hex digest of an arbitrary composite
  of arrays / sparse operands / scalars / containers.
- :class:`ArtifactStore` — ``get(namespace, parts, builder)`` with
  hit/miss/byte counters, atomic writes and corruption-tolerant reads.
- :class:`MemoizedTensaurus` — a transparent :class:`repro.sim.Tensaurus`
  wrapper whose ``run_*`` kernels are memoized by (config, operands,
  arguments). Fault-injecting accelerators are never memoized: with a
  :class:`FaultPlan` armed, successive runs advance the fault stream, so
  replaying a cached report would change observable behavior.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Optional

import numpy as np

from repro import obs
from repro.sim.batch import fingerprint_arrays

logger = obs.get_logger(__name__)

_SCHEMA_VERSION = 1


def default_artifact_root() -> Path:
    """Store location: ``$REPRO_ARTIFACTS_DIR`` or ``benchmarks/.artifacts``."""
    env = os.environ.get("REPRO_ARTIFACTS_DIR")
    if env:
        return Path(env)
    return Path("benchmarks") / ".artifacts"


def _feed(h: "hashlib._Hash", part: Any) -> None:
    """Recursively mix one key part into the digest, type-tagged."""
    if part is None:
        h.update(b"\x00N")
    elif isinstance(part, np.ndarray):
        h.update(b"\x00A")
        h.update(fingerprint_arrays(part))
    elif isinstance(part, (bytes, bytearray)):
        h.update(b"\x00B")
        h.update(bytes(part))
    elif isinstance(part, str):
        h.update(b"\x00S")
        h.update(part.encode())
    elif isinstance(part, bool):
        h.update(b"\x00b" + (b"1" if part else b"0"))
    elif isinstance(part, (int, float, complex)):
        h.update(b"\x00n" + repr(part).encode())
    elif isinstance(part, (tuple, list)):
        h.update(b"\x00T" + str(len(part)).encode())
        for item in part:
            _feed(h, item)
    elif isinstance(part, dict):
        h.update(b"\x00D" + str(len(part)).encode())
        for key in sorted(part, key=repr):
            _feed(h, key)
            _feed(h, part[key])
    elif hasattr(part, "coords") and hasattr(part, "values"):
        # SparseTensor (duck-typed to avoid import cycles)
        h.update(b"\x00t")
        _feed(h, tuple(part.shape))
        h.update(fingerprint_arrays(part.coords, part.values))
    elif hasattr(part, "rows") and hasattr(part, "cols") and hasattr(part, "vals"):
        # COOMatrix
        h.update(b"\x00m")
        _feed(h, tuple(part.shape))
        h.update(fingerprint_arrays(part.rows, part.cols, part.vals))
    elif hasattr(part, "indptr") and hasattr(part, "indices"):
        # CSRMatrix / CSCMatrix
        h.update(b"\x00c" + type(part).__name__.encode())
        _feed(h, tuple(part.shape))
        h.update(fingerprint_arrays(part.indptr, part.indices, part.data))
    else:
        # Frozen dataclasses (TensaurusConfig, WorkloadStats, specs with
        # stable fields) fall through to their deterministic repr.
        h.update(b"\x00R")
        h.update(repr(part).encode())


def fingerprint_value(*parts: Any) -> str:
    """Stable hex digest of a composite key (arrays digested by content)."""
    h = hashlib.blake2b(digest_size=16)
    h.update(b"repro-artifact-v%d" % _SCHEMA_VERSION)
    for part in parts:
        _feed(h, part)
    return h.hexdigest()


class ArtifactStore:
    """A directory of content-fingerprint-keyed pickled artifacts.

    ``get`` either loads ``<root>/<namespace>/<digest>.pkl`` or calls the
    builder and persists its result (atomic rename, so concurrent
    ``--regen-workers`` processes never observe torn files). A disabled
    store (``enabled=False``) counts misses but touches no disk — the
    escape hatch for ``--no-artifact-cache`` runs.
    """

    def __init__(self, root: os.PathLike | str | None = None, enabled: bool = True):
        self.root = Path(root) if root is not None else default_artifact_root()
        self.enabled = bool(enabled)
        self.hits = 0
        self.misses = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.read_errors = 0

    # ------------------------------------------------------------------
    def path_for(self, namespace: str, parts: Iterable[Any]) -> Path:
        return self.root / namespace / f"{fingerprint_value(*parts)}.pkl"

    def get(
        self, namespace: str, parts: Iterable[Any], builder: Callable[[], Any]
    ) -> Any:
        """Return the cached artifact for ``parts``, building it on miss."""
        parts = tuple(parts)
        if not self.enabled:
            self.misses += 1
            return builder()
        path = self.path_for(namespace, parts)
        if path.exists():
            try:
                blob = path.read_bytes()
                value = pickle.loads(blob)
            except Exception:
                # Torn/corrupt entry (e.g. killed writer): rebuild below.
                self.read_errors += 1
            else:
                self.hits += 1
                self.bytes_read += len(blob)
                return value
        value = builder()
        self.misses += 1
        self._write(path, value)
        return value

    def put(self, namespace: str, parts: Iterable[Any], value: Any) -> Optional[Path]:
        """Persist ``value`` under the key ``parts`` unconditionally.

        The imperative sibling of :meth:`get` for callers that produce
        values on their own schedule (checkpoint stores, decision logs).
        Returns the written path, or ``None`` when the store is disabled
        or the value is unpicklable.
        """
        if not self.enabled:
            return None
        path = self.path_for(namespace, tuple(parts))
        before = self.bytes_written
        self._write(path, value)
        return path if self.bytes_written > before else None

    def load(self, namespace: str, parts: Iterable[Any], default: Any = None) -> Any:
        """Load the artifact stored under ``parts``; ``default`` on a miss
        or on a torn/corrupt entry (counted in ``read_errors``)."""
        if not self.enabled:
            return default
        path = self.path_for(namespace, tuple(parts))
        if not path.exists():
            return default
        try:
            blob = path.read_bytes()
            value = pickle.loads(blob)
        except Exception:
            self.read_errors += 1
            return default
        self.hits += 1
        self.bytes_read += len(blob)
        return value

    def _write(self, path: Path, value: Any) -> None:
        try:
            blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return  # unpicklable artifacts simply aren't persisted
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        self.bytes_written += len(blob)

    # ------------------------------------------------------------------
    # Namespace index: a human-readable JSON sidecar mapping entry keys
    # to metadata (the chaos regression corpus keeps its manifest here).
    # The pickled blobs stay authoritative — a torn or truncated index is
    # detected, rebuilt from the blobs on disk, and warned about, never
    # allowed to poison the store.
    # ------------------------------------------------------------------
    def index_path(self, namespace: str) -> Path:
        return self.root / namespace / "index.json"

    def write_index(self, namespace: str, entries: Dict[str, Any]) -> Optional[Path]:
        """Atomically write ``entries`` as the namespace's ``index.json``."""
        if not self.enabled:
            return None
        path = self.index_path(namespace)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(entries, indent=2, sort_keys=True).encode()
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return None
        self.bytes_written += len(blob)
        return path

    def read_index(
        self,
        namespace: str,
        recover: Optional[Callable[[Path, Any], Optional[tuple]]] = None,
    ) -> Dict[str, Any]:
        """The namespace's index mapping; ``{}`` when none exists.

        A truncated / partially-written / otherwise invalid ``index.json``
        is *detected* (counted in ``read_errors``, logged as a warning)
        and the index is rebuilt from the pickled blobs on disk: each blob
        is loaded and handed to ``recover(path, value)``, which returns a
        ``(key, metadata)`` pair to re-index it under (or ``None`` to skip
        it). The rebuilt index is written back so the next reader gets a
        clean file. Without a ``recover`` hook, corruption degrades to an
        empty index — a warning, never a crash.
        """
        if not self.enabled:
            return {}
        path = self.index_path(namespace)
        if not path.exists():
            # No index at all: with a recover hook, treat a deleted /
            # never-written index the same as a corrupt one and rebuild
            # from whatever blobs exist (an empty namespace rebuilds to
            # {} without touching disk).
            if recover is not None and self.list_namespace(namespace):
                entries = self._rebuild_index(namespace, recover)
                self.write_index(namespace, entries)
                return entries
            return {}
        try:
            blob = path.read_bytes()
            entries = json.loads(blob)
            if not isinstance(entries, dict):
                raise ValueError(
                    f"index root is {type(entries).__name__}, expected object"
                )
        except Exception as exc:
            self.read_errors += 1
            logger.warning(
                "corrupt index for namespace %r (%s); rebuilding from "
                "on-disk blobs", namespace, exc,
            )
            entries = self._rebuild_index(namespace, recover)
            self.write_index(namespace, entries)
            return entries
        self.bytes_read += len(blob)
        return entries

    def _rebuild_index(
        self,
        namespace: str,
        recover: Optional[Callable[[Path, Any], Optional[tuple]]],
    ) -> Dict[str, Any]:
        entries: Dict[str, Any] = {}
        if recover is None:
            return entries
        for path in self.list_namespace(namespace):
            try:
                value = pickle.loads(path.read_bytes())
            except Exception:
                self.read_errors += 1
                logger.warning(
                    "skipping unreadable blob %s during index rebuild", path
                )
                continue
            pair = recover(path, value)
            if pair is None:
                continue
            key, meta = pair
            entries[str(key)] = meta
        logger.warning(
            "rebuilt index for namespace %r with %d entr%s",
            namespace, len(entries), "y" if len(entries) == 1 else "ies",
        )
        return entries

    # ------------------------------------------------------------------
    def list_namespace(self, namespace: str) -> list:
        """Paths of every artifact stored under ``namespace`` (sorted).

        Registries layered on the store (the tuned-config registry, the
        CLI's ``artifacts info``) use this to enumerate what exists
        without knowing the original key parts.
        """
        ns = self.root / namespace
        if not ns.is_dir():
            return []
        return sorted(ns.glob("*.pkl"))

    def entry_count(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def total_bytes(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(p.stat().st_size for p in self.root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete all stored artifacts; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*/*.pkl"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "read_errors": self.read_errors,
        }

    def report_line(self) -> str:
        """One-line summary for session logs / CI output."""
        state = "" if self.enabled else " (disabled)"
        return (
            f"artifact cache{state}: {self.hits} hits, {self.misses} misses, "
            f"{self.bytes_read / 1e6:.1f} MB read, "
            f"{self.bytes_written / 1e6:.1f} MB written, "
            f"{self.entry_count()} entries ({self.total_bytes() / 1e6:.1f} MB) "
            f"in {self.root}"
        )

    def __repr__(self) -> str:
        return (
            f"ArtifactStore(root={str(self.root)!r}, enabled={self.enabled}, "
            f"hits={self.hits}, misses={self.misses})"
        )


def _operand_key(operand: Any) -> Any:
    """Normalize a kernel operand into a fingerprintable key part."""
    if isinstance(operand, np.ndarray):
        return np.ascontiguousarray(operand, dtype=np.float64)
    return operand


class MemoizedTensaurus:
    """Transparent ``Tensaurus`` wrapper memoizing kernel reports on disk.

    Keys combine the kernel name, the config's deterministic repr and the
    content fingerprints of every operand and keyword argument, so a cached
    :class:`repro.sim.SimReport` (cycles, bytes, numeric output) is only
    replayed for an identical simulation. Accelerators with an armed fault
    plan run live — their per-run fault stream makes replay incorrect.

    Everything else (``config``, ``cache_info``, ``clear_cache``, ...)
    passes through to the wrapped instance.
    """

    def __init__(self, inner: Any, store: ArtifactStore):
        self._inner = inner
        self._store = store

    # ------------------------------------------------------------------
    @property
    def inner(self) -> Any:
        return self._inner

    @property
    def store(self) -> ArtifactStore:
        return self._store

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    def _memoized(self, kernel: str, operands: tuple, kwargs: dict, runner):
        if self._inner.fault_plan is not None:
            return runner()
        parts = (
            "simreport",
            _SCHEMA_VERSION,
            kernel,
            repr(self._inner.config),
            tuple(_operand_key(op) for op in operands),
            {k: _operand_key(v) for k, v in kwargs.items()},
        )
        return self._store.get("simreport", parts, runner)

    # ------------------------------------------------------------------
    def run_mttkrp(self, tensor, mat_b, mat_c, mode=0, msu_mode="auto",
                   compute_output=True):
        kwargs = dict(mode=mode, msu_mode=msu_mode, compute_output=compute_output)
        return self._memoized(
            "mttkrp", (tensor, mat_b, mat_c), kwargs,
            lambda: self._inner.run_mttkrp(tensor, mat_b, mat_c, **kwargs),
        )

    def run_ttmc(self, tensor, mat_b, mat_c, mode=0, msu_mode="auto",
                 compute_output=True):
        kwargs = dict(mode=mode, msu_mode=msu_mode, compute_output=compute_output)
        return self._memoized(
            "ttmc", (tensor, mat_b, mat_c), kwargs,
            lambda: self._inner.run_ttmc(tensor, mat_b, mat_c, **kwargs),
        )

    def run_spmm(self, a, mat_b, msu_mode="auto", compute_output=True):
        kwargs = dict(msu_mode=msu_mode, compute_output=compute_output)
        return self._memoized(
            "spmm", (a, mat_b), kwargs,
            lambda: self._inner.run_spmm(a, mat_b, **kwargs),
        )

    def run_spmv(self, a, vec, msu_mode="auto", compute_output=True):
        kwargs = dict(msu_mode=msu_mode, compute_output=compute_output)
        return self._memoized(
            "spmv", (a, vec), kwargs,
            lambda: self._inner.run_spmv(a, vec, **kwargs),
        )

    def __repr__(self) -> str:
        return f"MemoizedTensaurus({self._inner!r}, store={self._store!r})"
