"""Synthetic dataset generators and the experiment dataset registry.

No network access is available, so the paper's public datasets (FROSTT
tensors, SuiteSparse matrices, pruned CNN weights) are replaced by
generators that reproduce the published shape, nonzero count / density and
the structural property that drives performance (slice-size skew for the
web-scale tensors, banded structure for FEM/EM matrices, power-law degrees
for graphs, uniform masks for pruned weights). The registry records both
the paper's full-size numbers and the scaled size actually generated.
"""

from repro.datasets.generators import (
    random_sparse_tensor,
    random_sparse_tensor_nd,
    poisson3d_tensor,
    pruned_weight_matrix,
    graph_matrix,
    banded_matrix,
    uniform_matrix,
)
from repro.datasets.registry import (
    TensorSpec,
    NDTensorSpec,
    TENSOR4D_DATASETS,
    list_tensors_4d,
    load_tensor_4d,
    MatrixSpec,
    CNNLayerSpec,
    TENSOR_DATASETS,
    SUITESPARSE_DATASETS,
    CNN_LAYERS,
    load_tensor,
    load_matrix,
    load_cnn_layer,
    list_tensors,
    list_matrices,
    list_cnn_layers,
)

__all__ = [
    "random_sparse_tensor",
    "random_sparse_tensor_nd",
    "poisson3d_tensor",
    "pruned_weight_matrix",
    "graph_matrix",
    "banded_matrix",
    "uniform_matrix",
    "TensorSpec",
    "NDTensorSpec",
    "TENSOR4D_DATASETS",
    "list_tensors_4d",
    "load_tensor_4d",
    "MatrixSpec",
    "CNNLayerSpec",
    "TENSOR_DATASETS",
    "SUITESPARSE_DATASETS",
    "CNN_LAYERS",
    "load_tensor",
    "load_matrix",
    "load_cnn_layer",
    "list_tensors",
    "list_matrices",
    "list_cnn_layers",
]
