"""Structure-preserving synthetic sparse data generators."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.formats.coo import COOMatrix
from repro.tensor import SparseTensor
from repro.util.errors import ShapeError
from repro.util.rng import derive_seed, make_rng


def _unique_linear_sample(
    rng: np.random.Generator, space: int, count: int
) -> np.ndarray:
    """Sample ``count`` distinct linear indices from ``[0, space)``.

    Rejection-based so it works when ``space`` exceeds what
    ``rng.choice(..., replace=False)`` can materialize.
    """
    if count > space:
        raise ShapeError(f"cannot place {count} nonzeros in {space} cells")
    if space <= 8 * count or space <= 1 << 22:
        return rng.choice(space, size=count, replace=False).astype(np.int64)
    picked = np.unique(rng.integers(0, space, size=int(count * 1.2)))
    while picked.shape[0] < count:
        extra = rng.integers(0, space, size=count)
        picked = np.unique(np.concatenate([picked, extra]))
    rng.shuffle(picked)
    return np.sort(picked[:count])


def _zipf_weights(n: int, alpha: float) -> np.ndarray:
    """Normalized Zipf(alpha) weights over ``n`` items."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks**-alpha
    return w / w.sum()


def random_sparse_tensor(
    shape: Sequence[int],
    nnz: int,
    skew: float = 1.0,
    seed: int = 0,
) -> SparseTensor:
    """A 3-d sparse tensor with Zipf-distributed mode-0 slice sizes.

    ``skew`` is the Zipf exponent of nonzeros-per-slice (web-scale tensors
    like NELL-2 and Netflix have heavy slice skew, which is what stresses
    the CISS load balancer); ``skew=0`` gives uniform slices. Indices
    within a slice are uniform.
    """
    shape = tuple(int(s) for s in shape)
    if len(shape) != 3:
        raise ShapeError("random_sparse_tensor builds 3-d tensors")
    i_dim, j_dim, k_dim = shape
    if nnz > i_dim * j_dim * k_dim:
        raise ShapeError(f"cannot place {nnz} nonzeros in {shape}")
    rng = make_rng(derive_seed(seed, "tensor", shape, nnz, skew))
    weights = _zipf_weights(i_dim, skew) if skew > 0 else np.full(i_dim, 1.0 / i_dim)
    # Shuffle slice identities so the heavy slices are not the low indices.
    slice_order = rng.permutation(i_dim)
    counts = rng.multinomial(nnz, weights)
    counts = counts[np.argsort(slice_order, kind="stable")]
    counts = np.minimum(counts, j_dim * k_dim)
    deficit = nnz - int(counts.sum())
    while deficit > 0:  # redistribute clipped mass
        room = j_dim * k_dim - counts
        open_slices = np.flatnonzero(room > 0)
        add = rng.multinomial(deficit, np.full(open_slices.size, 1.0 / open_slices.size))
        counts[open_slices] += np.minimum(add, room[open_slices])
        deficit = nnz - int(counts.sum())
    i_idx = np.repeat(np.arange(i_dim), counts)
    jk = np.concatenate(
        [
            _unique_linear_sample(rng, j_dim * k_dim, int(c))
            for c in counts
            if c > 0
        ]
    )
    coords = np.stack([i_idx, jk // k_dim, jk % k_dim], axis=1)
    values = rng.standard_normal(nnz)
    values[values == 0.0] = 1.0
    return SparseTensor(shape, coords, values)


def poisson3d_tensor(n: int, nnz: int, seed: int = 0) -> SparseTensor:
    """A banded n x n x n tensor emulating a 3-d Poisson/FEM discretization.

    Nonzeros cluster near the (i ~ j ~ k) diagonal, giving the dense-ish,
    well-balanced structure of the paper's poisson3D tensor.
    """
    rng = make_rng(derive_seed(seed, "poisson3d", n, nnz))
    # Band half-width chosen so the band holds ~2x the requested nonzeros.
    band = max(2, int(np.ceil(np.sqrt(nnz / (2.0 * n)))))
    i = rng.integers(0, n, size=int(nnz * 1.6))
    j = i + rng.integers(-band, band + 1, size=i.shape[0])
    k = i + rng.integers(-band, band + 1, size=i.shape[0])
    ok = (j >= 0) & (j < n) & (k >= 0) & (k < n)
    i, j, k = i[ok], j[ok], k[ok]
    lin = (i * n + j) * n + k
    lin = np.unique(lin)
    while lin.shape[0] < nnz:
        i2 = rng.integers(0, n, size=nnz)
        j2 = np.clip(i2 + rng.integers(-band, band + 1, size=nnz), 0, n - 1)
        k2 = np.clip(i2 + rng.integers(-band, band + 1, size=nnz), 0, n - 1)
        lin = np.unique(np.concatenate([lin, (i2 * n + j2) * n + k2]))
    rng.shuffle(lin)
    lin = lin[:nnz]
    coords = np.stack([lin // (n * n), (lin // n) % n, lin % n], axis=1)
    values = rng.standard_normal(nnz)
    values[values == 0.0] = 1.0
    return SparseTensor((n, n, n), coords, values)


def pruned_weight_matrix(
    rows: int, cols: int, density: float, seed: int = 0
) -> COOMatrix:
    """A magnitude-pruned CNN weight matrix: uniform mask, Gaussian values."""
    rng = make_rng(derive_seed(seed, "weights", rows, cols, density))
    nnz = max(1, int(round(rows * cols * density)))
    lin = _unique_linear_sample(rng, rows * cols, nnz)
    vals = rng.standard_normal(nnz)
    vals[vals == 0.0] = 1.0
    return COOMatrix((rows, cols), lin // cols, lin % cols, vals)


def graph_matrix(
    n: int, nnz: int, power: float = 1.2, seed: int = 0
) -> COOMatrix:
    """An n x n adjacency-like matrix with power-law out-degrees."""
    rng = make_rng(derive_seed(seed, "graph", n, nnz, power))
    weights = _zipf_weights(n, power)
    rows_id = rng.permutation(n)
    counts = rng.multinomial(nnz, weights)[np.argsort(rows_id, kind="stable")]
    counts = np.minimum(counts, n)
    deficit = nnz - int(counts.sum())
    while deficit > 0:
        room = n - counts
        open_rows = np.flatnonzero(room > 0)
        add = rng.multinomial(deficit, np.full(open_rows.size, 1.0 / open_rows.size))
        counts[open_rows] += np.minimum(add, room[open_rows])
        deficit = nnz - int(counts.sum())
    rows = np.repeat(np.arange(n), counts)
    cols = np.concatenate(
        [rng.choice(n, size=int(c), replace=False) for c in counts if c > 0]
    )
    vals = rng.standard_normal(nnz)
    vals[vals == 0.0] = 1.0
    return COOMatrix((n, n), rows, cols, vals)


def banded_matrix(n: int, nnz: int, seed: int = 0) -> COOMatrix:
    """An n x n banded matrix emulating FEM/EM discretizations."""
    rng = make_rng(derive_seed(seed, "banded", n, nnz))
    band = max(1, int(np.ceil(nnz / (2.0 * n))))
    rows = rng.integers(0, n, size=int(nnz * 1.6))
    cols = rows + rng.integers(-band, band + 1, size=rows.shape[0])
    ok = (cols >= 0) & (cols < n)
    lin = np.unique(rows[ok] * n + cols[ok])
    while lin.shape[0] < nnz:
        r2 = rng.integers(0, n, size=nnz)
        c2 = np.clip(r2 + rng.integers(-band, band + 1, size=nnz), 0, n - 1)
        lin = np.unique(np.concatenate([lin, r2 * n + c2]))
    rng.shuffle(lin)
    lin = lin[:nnz]
    vals = rng.standard_normal(nnz)
    vals[vals == 0.0] = 1.0
    return COOMatrix((n, n), lin // n, lin % n, vals)


def uniform_matrix(
    shape: Tuple[int, int], density: float, seed: int = 0
) -> COOMatrix:
    """A uniformly random sparse matrix (the Fig. 13 density sweep)."""
    rows, cols = int(shape[0]), int(shape[1])
    rng = make_rng(derive_seed(seed, "uniform", rows, cols, density))
    nnz = max(1, int(round(rows * cols * density)))
    lin = _unique_linear_sample(rng, rows * cols, nnz)
    vals = rng.standard_normal(nnz)
    vals[vals == 0.0] = 1.0
    return COOMatrix((rows, cols), lin // cols, lin % cols, vals)


def random_sparse_tensor_nd(
    shape: Sequence[int],
    nnz: int,
    skew: float = 1.0,
    seed: int = 0,
) -> SparseTensor:
    """An N-dimensional sparse tensor with Zipf mode-0 slice sizes.

    The N-d analogue of :func:`random_sparse_tensor`, used for the 4-d
    FROSTT-style datasets that exercise the N-d CISS generalization.
    """
    shape = tuple(int(s) for s in shape)
    if len(shape) < 2:
        raise ShapeError("need at least 2 modes")
    total = 1
    for s_ in shape:
        total *= s_
    if nnz > total:
        raise ShapeError(f"cannot place {nnz} nonzeros in {shape}")
    rng = make_rng(derive_seed(seed, "tensor_nd", shape, nnz, skew))
    i_dim = shape[0]
    rest = shape[1:]
    rest_space = total // i_dim
    weights = _zipf_weights(i_dim, skew) if skew > 0 else np.full(i_dim, 1.0 / i_dim)
    slice_order = rng.permutation(i_dim)
    counts = rng.multinomial(nnz, weights)[np.argsort(slice_order, kind="stable")]
    counts = np.minimum(counts, rest_space)
    deficit = nnz - int(counts.sum())
    while deficit > 0:
        room = rest_space - counts
        open_slices = np.flatnonzero(room > 0)
        add = rng.multinomial(
            deficit, np.full(open_slices.size, 1.0 / open_slices.size)
        )
        counts[open_slices] += np.minimum(add, room[open_slices])
        deficit = nnz - int(counts.sum())
    i_idx = np.repeat(np.arange(i_dim), counts)
    lin = np.concatenate(
        [_unique_linear_sample(rng, rest_space, int(c)) for c in counts if c > 0]
    )
    cols = [i_idx]
    remaining = lin
    for m in range(len(rest) - 1):
        stride = 1
        for s_ in rest[m + 1:]:
            stride *= s_
        cols.append(remaining // stride)
        remaining = remaining % stride
    cols.append(remaining)
    coords = np.stack(cols, axis=1)
    values = rng.standard_normal(nnz)
    values[values == 0.0] = 1.0
    return SparseTensor(shape, coords, values)
