"""Dataset registry: the paper's Tables 3, 4 and 5 as generator specs.

Each spec records the *published* full-size shape and nonzero count plus
the scale the reproduction generates at (tensors at 1/10 per mode, large
matrices at 1/4 per side — preserving density and structure while keeping
pure-Python simulation tractable; small matrices generate full size).
EXPERIMENTS.md carries the same table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.datasets.generators import (
    banded_matrix,
    random_sparse_tensor_nd,
    graph_matrix,
    poisson3d_tensor,
    pruned_weight_matrix,
    random_sparse_tensor,
)
from repro.formats.coo import COOMatrix
from repro.tensor import SparseTensor
from repro.util.errors import ConfigError
from repro.util.rng import derive_seed


@dataclass(frozen=True)
class TensorSpec:
    """One Table 3 tensor."""

    name: str
    full_dims: Tuple[int, int, int]
    full_nnz: int
    domain: str
    scale: float  # per-mode linear scale of the generated instance
    generator: Callable[["TensorSpec"], SparseTensor]

    @property
    def dims(self) -> Tuple[int, int, int]:
        return tuple(max(8, int(round(d * self.scale))) for d in self.full_dims)

    @property
    def density(self) -> float:
        total = 1
        for d in self.full_dims:
            total *= d
        return self.full_nnz / total

    @property
    def nnz(self) -> int:
        total = 1
        for d in self.dims:
            total *= d
        return max(64, int(round(total * self.density)))

    def load(self) -> SparseTensor:
        return self.generator(self)

    @property
    def cache_token(self) -> Tuple:
        """Stable artifact-store key: every field that shapes the generated
        instance, *excluding* the generator callable (its repr carries a
        memory address). The generator's identity is captured by ``name``.
        """
        return ("tensor", self.name, self.full_dims, self.full_nnz, self.scale)


@dataclass(frozen=True)
class MatrixSpec:
    """One Table 4 / Table 5 matrix."""

    name: str
    full_dims: Tuple[int, int]
    full_nnz: int
    domain: str
    scale: float
    kind: str  # "graph" | "banded" | "pruned"

    @property
    def dims(self) -> Tuple[int, int]:
        return tuple(max(8, int(round(d * self.scale))) for d in self.full_dims)

    @property
    def density(self) -> float:
        return self.full_nnz / (self.full_dims[0] * self.full_dims[1])

    @property
    def nnz(self) -> int:
        return max(16, int(round(self.dims[0] * self.dims[1] * self.density)))

    def load(self) -> COOMatrix:
        if self.kind == "graph":
            return graph_matrix(self.dims[0], self.nnz, power=1.1, seed=derive_seed(0, self.name))
        if self.kind == "banded":
            return banded_matrix(self.dims[0], self.nnz, seed=derive_seed(0, self.name))
        if self.kind == "pruned":
            return pruned_weight_matrix(
                self.dims[0], self.dims[1], self.density,
                seed=derive_seed(0, self.name),
            )
        raise ConfigError(f"unknown matrix kind {self.kind!r}")

    @property
    def cache_token(self) -> Tuple:
        return (
            "matrix", self.name, self.full_dims, self.full_nnz,
            self.scale, self.kind,
        )


def _web_tensor(spec: TensorSpec) -> SparseTensor:
    return random_sparse_tensor(spec.dims, spec.nnz, skew=1.1, seed=derive_seed(0, spec.name))


def _poisson_tensor(spec: TensorSpec) -> SparseTensor:
    return poisson3d_tensor(spec.dims[0], spec.nnz, seed=derive_seed(0, spec.name))


#: Table 3 — sparse tensors (generated at 1/10 linear scale).
TENSOR_DATASETS: Dict[str, TensorSpec] = {
    "nell-2": TensorSpec(
        "nell-2", (12092, 9184, 28818), 77_000_000, "NLP", 0.1, _web_tensor
    ),
    "netflix": TensorSpec(
        "netflix", (480_189, 17_770, 2182), 100_000_000, "Rec. Sys.", 0.1, _web_tensor
    ),
    "poisson3D": TensorSpec(
        "poisson3D", (3000, 3000, 3000), 99_000_000, "Synthetic", 0.1, _poisson_tensor
    ),
}

#: Table 5 — SuiteSparse / GraphSAGE matrices, generated at full size
#: (matrix kernels are cheap enough to simulate unscaled).
_SUITESPARSE_RAW = [
    # (name, n, nnz, domain, kind)
    ("amazon0312", 401_000, 3_200_000, "Copurchase network", "graph"),
    ("m133-b3", 200_000, 801_000, "Combinatorics", "graph"),
    ("scircuit", 171_000, 959_000, "Circuit simulation", "banded"),
    ("p2p-Gnutella31", 63_000, 148_000, "p2p network", "graph"),
    ("offshore", 260_000, 4_200_000, "EM problem", "banded"),
    ("cage12", 130_000, 2_000_000, "Weighted graph", "banded"),
    ("2cubes_sphere", 101_000, 1_600_000, "EM problem", "banded"),
    ("filter3D", 106_000, 2_700_000, "Reduction problem", "banded"),
    ("email-Enron", 36_700, 368_000, "Email network", "graph"),
    ("citeseer", 3300, 4700, "Graph learning", "graph"),
    ("cora", 2700, 5300, "Graph learning", "graph"),
    ("wiki-Vote", 8300, 104_000, "Wikipedia network", "graph"),
    ("poisson3Da", 14_000, 353_000, "Fluid dynamics", "banded"),
]

SUITESPARSE_DATASETS: Dict[str, MatrixSpec] = {
    name: MatrixSpec(
        name, (n, n), nnz, domain,
        scale=1.0, kind=kind,
    )
    for name, n, nnz, domain, kind in _SUITESPARSE_RAW
}

#: Table 4 — pruned AlexNet / VGG-16 layers (generated full size).
_CNN_RAW = [
    # (net, layer, rows, cols, density, is_fc)
    ("alexnet", "c1", 96, 363, 0.84, False),
    ("alexnet", "c2", 256, 1200, 0.38, False),
    ("alexnet", "c3", 384, 2304, 0.35, False),
    ("alexnet", "c4", 384, 1728, 0.37, False),
    ("alexnet", "c5", 256, 1728, 0.37, False),
    ("alexnet", "fc6", 9216, 4096, 0.09, True),
    ("alexnet", "fc7", 4096, 4096, 0.09, True),
    ("alexnet", "fc8", 4096, 1000, 0.25, True),
    ("vgg16", "c1_1", 64, 27, 0.58, False),
    ("vgg16", "c1_2", 64, 576, 0.22, False),
    ("vgg16", "c2_1", 128, 1152, 0.34, False),
    ("vgg16", "c2_2", 128, 1152, 0.36, False),
    ("vgg16", "c3_1", 256, 1152, 0.53, False),
    ("vgg16", "c3_2", 256, 2304, 0.24, False),
    ("vgg16", "c3_3", 256, 2304, 0.42, False),
    ("vgg16", "c4_1", 512, 2304, 0.32, False),
    ("vgg16", "c4_2", 512, 4608, 0.27, False),
    ("vgg16", "c4_3", 512, 4608, 0.34, False),
    ("vgg16", "c5_1", 512, 4608, 0.35, False),
    ("vgg16", "c5_2", 512, 4608, 0.29, False),
    ("vgg16", "c5_3", 512, 4608, 0.36, False),
    ("vgg16", "fc6", 25088, 4096, 0.01, True),
    ("vgg16", "fc7", 4096, 4096, 0.02, True),
    ("vgg16", "fc8", 4096, 1000, 0.09, True),
]


@dataclass(frozen=True)
class CNNLayerSpec:
    """One pruned CNN layer: conv layers run SpMM, fc layers run SpMV."""

    network: str
    layer: str
    rows: int
    cols: int
    density: float
    is_fc: bool

    @property
    def name(self) -> str:
        return f"{self.network}-{self.layer}"

    @property
    def nnz(self) -> int:
        return max(1, int(round(self.rows * self.cols * self.density)))

    def load(self) -> COOMatrix:
        return pruned_weight_matrix(
            self.rows, self.cols, self.density, seed=derive_seed(0, self.name)
        )

    @property
    def cache_token(self) -> Tuple:
        return (
            "cnn-layer", self.name, self.rows, self.cols,
            self.density, self.is_fc,
        )


CNN_LAYERS: Dict[str, CNNLayerSpec] = {
    f"{net}-{layer}": CNNLayerSpec(net, layer, rows, cols, dens, is_fc)
    for net, layer, rows, cols, dens, is_fc in _CNN_RAW
}


def list_tensors() -> List[str]:
    return sorted(TENSOR_DATASETS)


def list_matrices() -> List[str]:
    return list(SUITESPARSE_DATASETS)


def list_cnn_layers(network: str | None = None) -> List[str]:
    names = [k for k, v in CNN_LAYERS.items() if network in (None, v.network)]
    return names


def _load_spec(spec, store):
    """Generate, or replay from an artifact store keyed by the spec token."""
    if store is None:
        return spec.load()
    return store.get("dataset", spec.cache_token, spec.load)


def load_tensor(name: str, store=None) -> SparseTensor:
    if name not in TENSOR_DATASETS:
        raise ConfigError(f"unknown tensor dataset {name!r}; see list_tensors()")
    return _load_spec(TENSOR_DATASETS[name], store)


def load_matrix(name: str, store=None) -> COOMatrix:
    if name not in SUITESPARSE_DATASETS:
        raise ConfigError(f"unknown matrix dataset {name!r}; see list_matrices()")
    return _load_spec(SUITESPARSE_DATASETS[name], store)


def load_cnn_layer(name: str, store=None) -> COOMatrix:
    if name not in CNN_LAYERS:
        raise ConfigError(f"unknown CNN layer {name!r}; see list_cnn_layers()")
    return _load_spec(CNN_LAYERS[name], store)


@dataclass(frozen=True)
class NDTensorSpec:
    """A FROSTT 4-d tensor for the N-dimensional CISS extension.

    Unlike the 3-d Table 3 tensors, the published 4-d tensors are so
    hyper-sparse (densities below 1e-12) that density-preserving scaling
    would leave no nonzeros; the generated instance instead preserves the
    published *mode-size proportions* and slice skew at a fixed nonzero
    budget, documented here alongside the published numbers.
    """

    name: str
    full_dims: Tuple[int, int, int, int]
    full_nnz: int
    domain: str
    dims: Tuple[int, int, int, int]
    nnz: int

    def load(self) -> SparseTensor:
        return random_sparse_tensor_nd(
            self.dims, self.nnz, skew=1.1, seed=derive_seed(0, self.name)
        )

    @property
    def cache_token(self) -> Tuple:
        return ("tensor-4d", self.name, self.dims, self.nnz)


#: FROSTT 4-d tensors (for the CISS N-d generalization experiments).
TENSOR4D_DATASETS: Dict[str, NDTensorSpec] = {
    "delicious-4d": NDTensorSpec(
        "delicious-4d",
        (532_924, 17_262_471, 2_480_308, 1443),
        140_126_181,
        "Tagging (user x item x tag x date)",
        dims=(1066, 3452, 2480, 96),
        nnz=120_000,
    ),
    "flickr-4d": NDTensorSpec(
        "flickr-4d",
        (319_686, 28_153_045, 1_607_191, 731),
        112_890_310,
        "Tagging (user x item x tag x date)",
        dims=(640, 5630, 1607, 48),
        nnz=100_000,
    ),
}


def list_tensors_4d() -> List[str]:
    return sorted(TENSOR4D_DATASETS)


def load_tensor_4d(name: str, store=None) -> SparseTensor:
    if name not in TENSOR4D_DATASETS:
        raise ConfigError(
            f"unknown 4-d tensor dataset {name!r}; see list_tensors_4d()"
        )
    return _load_spec(TENSOR4D_DATASETS[name], store)
