"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    List the registered workloads (Tables 3/4/5) with published vs
    generated sizes.
``run``
    Run one kernel on a registered dataset through the simulator and print
    the report (plus CPU/GPU comparison).
``roofline``
    Run a kernel across datasets and draw the ASCII roofline.
``info``
    Print the accelerator design point and derived peaks.
``artifacts``
    Inspect or clear the on-disk artifact cache used by the benchmark
    harness (``repro.artifacts``).
``regen``
    Regenerate the ``benchmarks/`` figure data, optionally fanning the
    figure modules over worker processes and reusing cached artifacts.
``trace``
    Run one kernel (or a short CP-ALS) with tracing enabled and export a
    Chrome ``trace_event`` JSON (``chrome://tracing`` / Perfetto) plus a
    text flamegraph summary. ``--check`` validates the trace schema and
    asserts the instrumented run is bit-identical to an uninstrumented one.
``metrics``
    Same workloads with the metrics registry enabled; prints the counter /
    histogram table and optionally writes the snapshot JSON.
``serve-replay``
    Replay a deterministic synthetic request trace through the
    overload-safe serving layer (``repro.serving``) and print the
    admission / degradation / deadline summary; ``--naive`` compares
    against the unbounded FIFO baseline, ``--faults`` layers launch
    aborts under the overload spike.
``fleet-replay``
    Replay a trace through the sharded serving fleet
    (``repro.serving.fleet``): cache-affinity consistent-hash routing,
    per-tenant quotas, health-driven autoscaling; ``--kill SID@FRAC``
    kills a shard mid-trace and exercises cross-shard failover.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Tuple

import numpy as np

from repro import datasets
from repro.analysis import RooflinePoint, ascii_roofline, format_table
from repro.baselines import CPUBaseline, GPUBaseline, matrix_workload, tensor_workload
from repro.energy import accelerator_energy
from repro.sim import Tensaurus, TensaurusConfig
from repro.util.rng import make_rng

TENSOR_KERNELS = ("spmttkrp", "spttmc")
MATRIX_KERNELS = ("spmm", "spmv")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tensaurus (HPCA 2020) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list registered workloads")
    sub.add_parser("info", help="print the accelerator design point")

    run = sub.add_parser("run", help="run one kernel on one dataset")
    run.add_argument("kernel", choices=TENSOR_KERNELS + MATRIX_KERNELS)
    run.add_argument("dataset", help="a registered dataset name")
    run.add_argument("--mode", type=int, default=0, help="tensor target mode")
    run.add_argument("--rank", type=int, default=32, help="F / F1=F2 / N")
    run.add_argument(
        "--msu-mode", choices=("auto", "buffered", "direct"), default="auto"
    )

    roof = sub.add_parser("roofline", help="ASCII roofline across datasets")
    roof.add_argument("kernel", choices=TENSOR_KERNELS)
    roof.add_argument("--rank", type=int, default=32)

    conv = sub.add_parser(
        "convert", help="convert a .tns/.mtx file between storage formats"
    )
    conv.add_argument("path", help="input .tns (tensor) or .mtx (matrix) file")
    conv.add_argument("format", help="target format (see repro.formats)")
    conv.add_argument("--lanes", type=int, default=8)
    conv.add_argument("--block", type=int, default=128)

    art = sub.add_parser("artifacts", help="inspect/clear the artifact cache")
    art.add_argument("action", choices=("info", "clear"))
    art.add_argument(
        "--dir", default=None,
        help="cache directory (default: $REPRO_ARTIFACTS_DIR or benchmarks/.artifacts)",
    )

    regen = sub.add_parser(
        "regen", help="regenerate benchmarks/ figure data (memoized)"
    )
    regen.add_argument(
        "--workers", type=int, default=1,
        help="fan figure modules over N pytest worker processes",
    )
    regen.add_argument(
        "--artifact-dir", default=None,
        help="artifact cache directory to reuse across runs",
    )
    regen.add_argument(
        "--no-artifact-cache", action="store_true",
        help="regenerate everything from scratch (no memoization)",
    )

    obs_kernels = TENSOR_KERNELS + MATRIX_KERNELS + ("cp-als",)

    def _obs_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("kernel", choices=obs_kernels)
        p.add_argument("dataset", help="a registered dataset name")
        p.add_argument("--mode", type=int, default=0, help="tensor target mode")
        p.add_argument("--rank", type=int, default=32, help="F / F1=F2 / N")
        p.add_argument("--iters", type=int, default=3, help="cp-als sweeps")

    trace = sub.add_parser(
        "trace", help="run a kernel with tracing on; export Chrome trace JSON"
    )
    _obs_args(trace)
    trace.add_argument("--out", default="trace.json", help="trace JSON path")
    trace.add_argument(
        "--micro", action="store_true",
        help="also record per-record firehose events (large traces)",
    )
    trace.add_argument(
        "--check", action="store_true",
        help="validate the trace schema, reconcile phase cycles against the "
        "reports, and assert the run is bit-identical to an uninstrumented one",
    )

    metrics = sub.add_parser(
        "metrics", help="run a kernel with the metrics registry on"
    )
    _obs_args(metrics)
    metrics.add_argument(
        "--out", default=None, help="also write the snapshot as JSON"
    )

    serve = sub.add_parser(
        "serve-replay",
        help="replay a synthetic request trace through the serving layer",
    )
    serve.add_argument("--seed", type=int, default=0, help="trace + server seed")
    serve.add_argument("--duration", type=float, default=0.6,
                       help="virtual trace length in seconds")
    serve.add_argument("--rate", type=float, default=120.0,
                       help="baseline arrival rate (requests/s)")
    serve.add_argument("--spike", type=float, default=10.0,
                       help="overload multiplier during the spike window")
    serve.add_argument("--deadline", type=float, default=0.05,
                       help="nominal per-request deadline budget (s)")
    serve.add_argument("--replicas", type=int, default=2)
    serve.add_argument("--naive", action="store_true",
                       help="unbounded FIFO baseline (no overload controls)")
    serve.add_argument("--faults", type=float, default=0.0, metavar="RATE",
                       help="also arm a launch-abort FaultPlan at RATE")
    serve.add_argument("--out", default=None,
                       help="write the summary + decision log as JSON")

    fleet = sub.add_parser(
        "fleet-replay",
        help="replay a trace through the sharded serving fleet "
        "(cache-affinity routing, tenant quotas, shard-kill failover)",
    )
    fleet.add_argument("--seed", type=int, default=0,
                       help="trace + fleet seed")
    fleet.add_argument("--duration", type=float, default=0.6,
                       help="virtual trace length in seconds")
    fleet.add_argument("--rate", type=float, default=120.0,
                       help="baseline arrival rate (requests/s)")
    fleet.add_argument("--spike", type=float, default=5.0,
                       help="overload multiplier during the spike window")
    fleet.add_argument("--deadline", type=float, default=0.05,
                       help="nominal per-request deadline budget (s)")
    fleet.add_argument("--shards", type=int, default=3)
    fleet.add_argument("--replicas", type=int, default=2,
                       help="replicas per shard")
    fleet.add_argument("--routing", choices=("affinity", "random"),
                       default="affinity")
    fleet.add_argument("--tenants", default="acme,beta,core",
                       help="comma-separated tenant names for the trace")
    fleet.add_argument("--kill", action="append", default=[],
                       metavar="SID@FRAC",
                       help="kill shard SID at FRAC of the arrival window "
                       "(repeatable), e.g. --kill 1@0.5")
    fleet.add_argument("--out", default=None,
                       help="write the summary + decision log as JSON")
    fleet.add_argument("--trace-out", default=None, metavar="PATH",
                       help="also record per-request span trees and write "
                       "them as a Chrome trace (validated + reconciled)")
    fleet.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="also collect fleet metrics and write them as "
                       "OpenMetrics text exposition")

    obs_p = sub.add_parser(
        "obs",
        help="fleet telemetry: OpenMetrics export, SLO burn-rate "
        "evaluation, benchmark regression sentinel",
    )
    obs_sub = obs_p.add_subparsers(dest="obs_command", required=True)

    def _replay_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--duration", type=float, default=0.6,
                       help="virtual trace length in seconds")
        p.add_argument("--rate", type=float, default=120.0,
                       help="baseline arrival rate (requests/s)")
        p.add_argument("--spike", type=float, default=5.0)
        p.add_argument("--deadline", type=float, default=0.05)
        p.add_argument("--shards", type=int, default=3)
        p.add_argument("--replicas", type=int, default=2)
        p.add_argument("--kill", action="append", default=[],
                       metavar="SID@FRAC",
                       help="kill shard SID at FRAC of the arrival window")

    oexp = obs_sub.add_parser(
        "export",
        help="replay a fleet trace and emit its metrics as OpenMetrics "
        "text exposition (validated by the strict parser)",
    )
    _replay_args(oexp)
    oexp.add_argument("--out", default=None,
                      help="write the exposition here (default: stdout)")
    oexp.add_argument("--snapshots", default=None, metavar="PATH",
                      help="also append a JSON-lines registry snapshot "
                      "sidecar")

    oslo = obs_sub.add_parser(
        "slo",
        help="replay a fleet trace and evaluate SLO objectives with "
        "multi-window burn-rate alerting",
    )
    _replay_args(oslo)
    oslo.add_argument("--deadline-target", type=float, default=0.90)
    oslo.add_argument("--latency-threshold", type=float, default=0.05,
                      metavar="S")
    oslo.add_argument("--latency-target", type=float, default=0.99)
    oslo.add_argument("--error-target", type=float, default=0.999)
    oslo.add_argument("--json", default=None, metavar="PATH",
                      help="write the full SLO report as JSON")
    oslo.add_argument("--strict", action="store_true",
                      help="exit 1 when any objective is missed")

    osent = obs_sub.add_parser(
        "sentinel",
        help="compare BENCH_*.json headline figures against a baseline "
        "directory with per-metric tolerance bands",
    )
    osent.add_argument("--dir", default=".",
                       help="directory holding the current BENCH_*.json")
    osent.add_argument("--baseline", default=None, metavar="DIR",
                       help="baseline artifact directory (default: "
                       "compare --dir against itself, a schema self-check)")
    osent.add_argument("--json", default=None, metavar="PATH",
                       help="write the delta report as JSON")
    osent.add_argument("--warn-only", action="store_true",
                       help="report regressions but exit 0")

    tune = sub.add_parser(
        "tune",
        help="search the config space for a per-workload tuned design "
        "(learned-cost-model pruning, cycle-level simulator oracle)",
    )
    tune.add_argument("kernel", nargs="?",
                      choices=TENSOR_KERNELS + MATRIX_KERNELS)
    tune.add_argument("dataset", nargs="?", help="a registered dataset name")
    tune.add_argument("--rank", type=int, default=32, help="F / F1=F2 / N")
    tune.add_argument("--mode", type=int, default=0, help="tensor target mode")
    tune.add_argument("--budget", type=int, default=40,
                      help="oracle measurement budget (design points)")
    tune.add_argument("--seed", type=int, default=0, help="search seed")
    tune.add_argument("--workers", type=int, default=None,
                      help="fan oracle sims over N processes (shared-memory "
                      "operand handoff)")
    tune.add_argument("--quick-space", action="store_true",
                      help="use the 16-point smoke space instead of the "
                      "324-point default space")
    tune.add_argument("--store-dir", default=None,
                      help="artifact cache directory for oracle memoization "
                      "and the tuned registry (default: the repro cache)")
    tune.add_argument("--no-store", action="store_true",
                      help="skip oracle memoization and registry persistence")
    tune.add_argument("--out", default=None,
                      help="write the full search outcome as JSON")
    tune.add_argument("--list", action="store_true",
                      help="print the tuned-config registry and exit")

    chaos = sub.add_parser(
        "chaos",
        help="property-based fault-space verification: randomized "
        "schedule search, counterexample shrinking, corpus replay",
    )
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)

    csearch = chaos_sub.add_parser(
        "search",
        help="run the deterministic fleet under randomized fault "
        "schedules, checking every invariant on every run",
    )
    csearch.add_argument("--budget", type=int, default=50,
                         help="schedules to explore")
    csearch.add_argument("--seed", type=int, default=0,
                         help="generator seed (search is a pure function "
                         "of seed, start, and budget)")
    csearch.add_argument("--start", type=int, default=0,
                         help="first schedule index")
    csearch.add_argument("--min-events", type=int, default=2)
    csearch.add_argument("--max-events", type=int, default=10)
    csearch.add_argument("--mutate", default=None, metavar="NAME",
                         help="arm a named fault injection (mutation "
                         "test): the search must CATCH it, and failures "
                         "are shrunk to minimal reproducers")
    csearch.add_argument("--corpus-dir", default=None, metavar="DIR",
                         help="store shrunk reproducers in this corpus")
    csearch.add_argument("--out", default=None, metavar="PATH",
                         help="write the full search outcome as JSON")

    cshrink = chaos_sub.add_parser(
        "shrink",
        help="delta-debug a failing schedule (JSON file) to a minimal "
        "reproducer",
    )
    cshrink.add_argument("schedule", help="path to a ChaosSchedule JSON")
    cshrink.add_argument("--mutate", default=None, metavar="NAME",
                         help="arm a named fault injection while "
                         "shrinking")
    cshrink.add_argument("--out", default=None, metavar="PATH",
                         help="write the minimal schedule as JSON")

    creplay = chaos_sub.add_parser(
        "replay",
        help="re-run every schedule in a regression corpus; exit 1 on "
        "any invariant violation",
    )
    creplay.add_argument("--corpus-dir", required=True, metavar="DIR")
    creplay.add_argument("--mutate", default=None, metavar="NAME",
                         help="arm a named fault injection (the replay "
                         "is then expected to fail)")
    creplay.add_argument("--out", default=None, metavar="PATH",
                         help="write per-case results as JSON")
    return parser


def _cmd_datasets() -> int:
    rows = []
    for name, spec in datasets.TENSOR_DATASETS.items():
        rows.append(
            ["tensor", name, "x".join(map(str, spec.full_dims)),
             "x".join(map(str, spec.dims)), f"{spec.density:.2e}", spec.domain]
        )
    for name, spec in datasets.SUITESPARSE_DATASETS.items():
        rows.append(
            ["matrix", name, "x".join(map(str, spec.full_dims)),
             "x".join(map(str, spec.dims)), f"{spec.density:.2e}", spec.domain]
        )
    for name, spec in datasets.CNN_LAYERS.items():
        rows.append(
            ["cnn", name, f"{spec.rows}x{spec.cols}", f"{spec.rows}x{spec.cols}",
             f"{spec.density:.2f}", "fc" if spec.is_fc else "conv"]
        )
    print(format_table(
        ["kind", "name", "published", "generated", "density", "domain"], rows
    ))
    return 0


def _cmd_info() -> int:
    cfg = TensaurusConfig()
    print(format_table(
        ["parameter", "value"],
        [
            ["PE array", f"{cfg.rows}x{cfg.cols}"],
            ["VLEN", cfg.vlen],
            ["MAC units", cfg.mac_units],
            ["clock", f"{cfg.clock_ghz} GHz"],
            ["peak compute", f"{cfg.peak_gops:.0f} GOP/s"],
            ["peak bandwidth", f"{cfg.peak_bw_gbs:.0f} GB/s"],
            ["SPM (per column side)", f"{cfg.spm_kb} KB x {cfg.spm_banks} banks"],
            ["MSU buffer side", f"{cfg.msu_kb} KB"],
            ["CISS entry", f"{cfg.ciss_entry_bytes(2)} B"],
        ],
    ))
    return 0


def _load_any(name: str):
    if name in datasets.TENSOR_DATASETS:
        return "tensor", datasets.load_tensor(name)
    if name in datasets.SUITESPARSE_DATASETS:
        return "matrix", datasets.load_matrix(name)
    if name in datasets.CNN_LAYERS:
        return "matrix", datasets.load_cnn_layer(name)
    raise SystemExit(
        f"unknown dataset {name!r}; run `python -m repro datasets` for the list"
    )


def _cmd_run(args: argparse.Namespace) -> int:
    kind, data = _load_any(args.dataset)
    rng = make_rng(0)
    acc = Tensaurus()
    if args.kernel in TENSOR_KERNELS:
        if kind != "tensor":
            raise SystemExit(f"{args.kernel} needs a tensor dataset")
        rest = [m for m in range(3) if m != args.mode]
        b = rng.random((data.shape[rest[0]], args.rank))
        c = rng.random((data.shape[rest[1]], args.rank))
        if args.kernel == "spmttkrp":
            report = acc.run_mttkrp(
                data, b, c, mode=args.mode, msu_mode=args.msu_mode,
                compute_output=False,
            )
            stats = tensor_workload("mttkrp", data, args.rank, mode=args.mode)
        else:
            report = acc.run_ttmc(
                data, b, c, mode=args.mode, msu_mode=args.msu_mode,
                compute_output=False,
            )
            stats = tensor_workload("ttmc", data, args.rank, args.rank, mode=args.mode)
    else:
        if kind != "matrix":
            raise SystemExit(f"{args.kernel} needs a matrix dataset")
        if args.kernel == "spmm":
            b = rng.random((data.shape[1], args.rank))
            report = acc.run_spmm(data, b, msu_mode=args.msu_mode, compute_output=False)
            stats = matrix_workload("spmm", data, args.rank)
        else:
            x = rng.random(data.shape[1])
            report = acc.run_spmv(data, x, msu_mode=args.msu_mode, compute_output=False)
            stats = matrix_workload("spmv", data)
    cpu = CPUBaseline().run(stats)
    gpu = GPUBaseline().run(stats)
    energy = accelerator_energy(report, acc.config.peak_gops)
    print(report.summary())
    print(format_table(
        ["metric", "value"],
        [
            ["cycles", report.cycles],
            ["time", f"{report.time_s * 1e6:.1f} us"],
            ["throughput", f"{report.gops:.1f} GOP/s"],
            ["bandwidth", f"{report.achieved_bw_gbs:.1f} GB/s"],
            ["op intensity", f"{report.op_intensity:.2f} op/B"],
            ["MSU mode", report.detail.get("msu_mode", "-")],
            ["energy", f"{energy * 1e6:.1f} uJ"],
            ["speedup vs CPU", f"{cpu.time_s / report.time_s:.1f}x"],
            ["speedup vs GPU", f"{gpu.time_s / report.time_s:.2f}x"],
        ],
    ))
    return 0


def _cmd_roofline(args: argparse.Namespace) -> int:
    acc = Tensaurus()
    rng = make_rng(0)
    points = []
    for name in datasets.list_tensors():
        t = datasets.load_tensor(name)
        b = rng.random((t.shape[1], args.rank))
        c = rng.random((t.shape[2], args.rank))
        if args.kernel == "spmttkrp":
            report = acc.run_mttkrp(t, b, c, compute_output=False)
        else:
            report = acc.run_ttmc(t, b, c, compute_output=False)
        points.append(
            RooflinePoint.from_report(
                name, report, acc.config.peak_gops, acc.config.peak_bw_gbs
            )
        )
    print(ascii_roofline(points, acc.config.peak_gops, acc.config.peak_bw_gbs))
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    from repro.formats import convert_matrix, convert_tensor
    from repro.io import read_mtx, read_tns

    if args.path.endswith(".tns"):
        tensor = read_tns(args.path)
        encoded = convert_tensor(
            tensor, args.format, num_lanes=args.lanes, block=args.block
        )
        print(f"loaded {tensor}")
    elif args.path.endswith(".mtx"):
        matrix = read_mtx(args.path)
        encoded = convert_matrix(matrix, args.format, num_lanes=args.lanes)
        print(f"loaded {matrix}")
    else:
        raise SystemExit("input must be a .tns or .mtx file")
    print(f"encoded: {encoded!r}")
    for attr in ("num_entries", "entry_bytes", "padding_fraction",
                 "storage_bytes", "nnz"):
        value = getattr(encoded, attr, None)
        if callable(value):
            value = value()
        if value is not None:
            print(f"  {attr}: {value}")
    return 0


def _cmd_artifacts(args: argparse.Namespace) -> int:
    from repro.artifacts import ArtifactStore

    store = ArtifactStore(root=args.dir)
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} artifacts from {store.root}")
        return 0
    print(
        f"artifact cache at {store.root}: {store.entry_count()} entries, "
        f"{store.total_bytes() / 1e6:.1f} MB"
    )
    if store.root.is_dir():
        for ns_dir in sorted(p for p in store.root.iterdir() if p.is_dir()):
            entries = list(ns_dir.glob("*.pkl"))
            size = sum(p.stat().st_size for p in entries)
            print(f"  {ns_dir.name}: {len(entries)} entries, {size / 1e6:.1f} MB")
    return 0


def _cmd_regen(args: argparse.Namespace) -> int:
    import subprocess

    cmd = [sys.executable, "-m", "pytest", "benchmarks/", "-q"]
    if args.workers and args.workers > 1:
        cmd.append(f"--regen-workers={args.workers}")
    if args.artifact_dir:
        cmd.append(f"--artifact-dir={args.artifact_dir}")
    if args.no_artifact_cache:
        cmd.append("--no-artifact-cache")
    print("+ " + " ".join(cmd))
    return subprocess.call(cmd)


def _run_workload(args: argparse.Namespace):
    """Execute the trace/metrics workload once; returns the SimReports.

    A fresh accelerator per call, so repeated runs (the ``--check``
    baseline) see identical encoding-cache behaviour.
    """
    kind, data = _load_any(args.dataset)
    rng = make_rng(0)
    acc = Tensaurus()
    if args.kernel == "cp-als":
        if kind != "tensor":
            raise SystemExit("cp-als needs a tensor dataset")
        from repro.factorization.accelerated import accelerated_cp_als

        run = accelerated_cp_als(
            data, rank=args.rank, num_iters=args.iters, seed=0, accelerator=acc
        )
        return run.reports
    if args.kernel in TENSOR_KERNELS:
        if kind != "tensor":
            raise SystemExit(f"{args.kernel} needs a tensor dataset")
        rest = [m for m in range(3) if m != args.mode]
        b = rng.random((data.shape[rest[0]], args.rank))
        c = rng.random((data.shape[rest[1]], args.rank))
        if args.kernel == "spmttkrp":
            report = acc.run_mttkrp(data, b, c, mode=args.mode, compute_output=False)
        else:
            report = acc.run_ttmc(data, b, c, mode=args.mode, compute_output=False)
        return [report]
    if kind != "matrix":
        raise SystemExit(f"{args.kernel} needs a matrix dataset")
    if args.kernel == "spmm":
        b = rng.random((data.shape[1], args.rank))
        return [acc.run_spmm(data, b, compute_output=False)]
    x = rng.random(data.shape[1])
    return [acc.run_spmv(data, x, compute_output=False)]


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro import obs

    baseline = _run_workload(args) if args.check else None
    with obs.observe(micro=args.micro) as ob:
        reports = _run_workload(args)
        trace = ob.tracer.export_chrome(args.out)
        summary = ob.tracer.summary()
        snapshot = ob.registry.snapshot()
    count = obs.validate_chrome_trace(trace)
    print(summary)
    print(f"\nwrote {count} events to {args.out}")
    if args.check:
        if len(baseline) != len(reports) or any(
            a.cycles != b.cycles or a.detail != b.detail
            for a, b in zip(baseline, reports)
        ):
            raise SystemExit(
                "check failed: instrumented run diverged from uninstrumented run"
            )
        total = sum(r.cycles for r in reports)
        phase_total = snapshot.get("sim.phase_cycles", {}).get("value", 0)
        if phase_total != total:
            raise SystemExit(
                f"check failed: phase cycles {phase_total} != report cycles {total}"
            )
        print(
            f"check OK: schema valid, bit-identical to uninstrumented run, "
            f"{phase_total} phase cycles == {len(reports)} reports' total"
        )
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro import obs

    with obs.observe() as ob:
        _run_workload(args)
        rendered = ob.registry.render()
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(ob.registry.to_json())
    print(rendered)
    if args.out:
        print(f"\nwrote metrics snapshot to {args.out}")
    return 0


def _cmd_serve_replay(args: argparse.Namespace) -> int:
    from repro.serving import (
        ServingConfig, TensaurusServer, WorkloadPool, synthetic_trace,
    )
    from repro.serving.trace import trace_stats

    pool = WorkloadPool(seed=args.seed)
    trace = synthetic_trace(
        pool, duration_s=args.duration, base_rate=args.rate,
        spike_factor=args.spike, deadline_s=args.deadline, seed=args.seed,
    )
    fault_plan = None
    if args.faults > 0:
        from repro.sim.faults import FaultPlan

        fault_plan = FaultPlan(seed=args.seed, launch_abort_rate=args.faults)
    config = ServingConfig(
        seed=args.seed, replicas=args.replicas, shedding=not args.naive
    )
    server = TensaurusServer(
        config, fault_plan=fault_plan, pool=pool, calibrate=not args.naive
    )
    result = server.run_trace(trace)
    summary = result.summary()
    rows = [[k, f"{v:.4g}" if isinstance(v, float) else str(v)]
            for k, v in summary.items()]
    print(format_table(["metric", "value"], rows))
    stats = trace_stats(trace)
    print(
        f"\ntrace: {stats['count']} requests over {stats['duration_s']:.3f} "
        f"virtual seconds (spike x{args.spike:g})"
    )
    if result.breaker_transitions:
        print("breaker transitions:")
        for replica, when, old, new in result.breaker_transitions[:10]:
            print(f"  t={when:.4f}s replica {replica}: {old} -> {new}")
        if len(result.breaker_transitions) > 10:
            print(f"  ... {len(result.breaker_transitions) - 10} more")
    if args.out:
        import json

        payload = {
            "summary": summary,
            "trace": stats,
            "decision_log": [list(row) for row in result.decision_log],
            "breaker_transitions": [
                list(t) for t in result.breaker_transitions
            ],
        }
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=1)
        print(f"\nwrote replay record to {args.out}")
    return 0


def _parse_kills(specs: List[str]) -> List[Tuple[int, float]]:
    kills: List[Tuple[int, float]] = []
    for spec in specs:
        try:
            sid, frac = spec.split("@", 1)
            kills.append((int(sid), float(frac)))
        except ValueError:
            raise SystemExit(f"bad --kill spec {spec!r}; expected SID@FRAC")
    return kills


def _fleet_replay(args: argparse.Namespace, tenants: Tuple[str, ...],
                  routing: str = "affinity",
                  observed: bool = False):
    """Build + run the standard CLI fleet replay; returns
    ``(result, trace, observation-or-None)``."""
    from repro import obs
    from repro.serving import (
        FleetConfig, TensaurusFleet, WorkloadPool, synthetic_trace,
    )
    from repro.sim.faults import FaultPlan

    kills = _parse_kills(args.kill)
    pool = WorkloadPool(seed=args.seed, variants=3)
    trace = synthetic_trace(
        pool, duration_s=args.duration, base_rate=args.rate,
        spike_factor=args.spike, deadline_s=args.deadline, seed=args.seed,
        tenants=tenants,
    )
    fault_plan = (
        FaultPlan(seed=args.seed, forced_shard_kills=tuple(kills))
        if kills else None
    )
    config = FleetConfig(
        seed=args.seed, shards=args.shards,
        replicas_per_shard=args.replicas, routing=routing,
        queue_depth=64,
    )
    fleet = TensaurusFleet(config, fault_plan=fault_plan, pool=pool)
    if observed:
        from repro.obs import RequestTracer

        with obs.observe(requests=RequestTracer(seed=args.seed)) as ob:
            result = fleet.run_trace(trace)
        return result, trace, ob
    return fleet.run_trace(trace), trace, None


def _cmd_fleet_replay(args: argparse.Namespace) -> int:
    from repro.serving.trace import trace_stats

    tenants = tuple(t for t in args.tenants.split(",") if t) or ("default",)
    observed = bool(args.trace_out or args.metrics_out)
    result, trace, ob = _fleet_replay(
        args, tenants, routing=args.routing, observed=observed
    )
    summary = result.summary()
    rows = [[k, f"{v:.4g}" if isinstance(v, float) else str(v)]
            for k, v in summary.items()]
    print(format_table(["metric", "value"], rows))
    stats = trace_stats(trace)
    print(
        f"\ntrace: {stats['count']} requests over {stats['duration_s']:.3f} "
        f"virtual seconds across {len(tenants)} tenants "
        f"(routing={args.routing})"
    )
    print("per-shard:")
    for sid, st in result.shard_stats.items():
        status = (
            "killed" if st["killed_at"] is not None
            else "draining" if st["draining"] else "alive"
        )
        print(
            f"  shard {sid}: routed={st['routed']} served={st['served']} "
            f"cache {st['cache_hits']}/{st['cache_hits'] + st['cache_misses']}"
            f" warm, {status}"
        )
    print("per-tenant:")
    for name, st in result.tenant_stats.items():
        print(
            f"  {name}: admitted={st['admitted']} rejected={st['rejected']} "
            f"served={st['served']} usage={st['usage_s']:.4f}s "
            f"(weight {st['weight']:g})"
        )
    if result.fault_events:
        print(
            f"faults: {len(result.fault_events)} shard kills, "
            f"{result.counters['redeals']} requests re-dealt, "
            f"{result.counters['voided_inflight']} in-flight voided, "
            f"{len(result.lost_request_ids)} lost"
        )
    if args.out:
        import json

        payload = {
            "summary": summary,
            "trace": stats,
            "shard_stats": {str(k): v for k, v in result.shard_stats.items()},
            "tenant_stats": result.tenant_stats,
            "autoscale_events": [list(e) for e in result.autoscale_events],
            "health_transitions": [
                list(t) for t in result.health_transitions
            ],
            "decision_log": [list(row) for row in result.decision_log],
        }
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=1)
        print(f"\nwrote replay record to {args.out}")
    if args.trace_out:
        from repro.obs import validate_chrome_trace

        ob.requests.reconcile(result)
        payload = ob.requests.chrome_trace()
        validate_chrome_trace(payload)
        ob.requests.export_chrome(args.trace_out)
        print(
            f"wrote request trace to {args.trace_out} "
            f"({len(payload['traceEvents'])} events, validated, "
            "reconciled against "
            f"{sum(1 for r in result.responses if r.latency_s is not None)} "
            "served latencies)"
        )
    if args.metrics_out:
        from repro.obs.export import roundtrip

        text = roundtrip(ob.registry.snapshot())
        with open(args.metrics_out, "w") as fh:
            fh.write(text)
        print(
            f"wrote OpenMetrics exposition to {args.metrics_out} "
            f"({len(text.splitlines())} lines, round-trip validated)"
        )
    return 0


def _cmd_obs_export(args: argparse.Namespace) -> int:
    from repro.obs.export import SnapshotWriter, roundtrip

    result, _, ob = _fleet_replay(args, ("default",), observed=True)
    text = roundtrip(ob.registry.snapshot())
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(
            f"wrote OpenMetrics exposition to {args.out} "
            f"({len(text.splitlines())} lines, round-trip validated, "
            f"{len(result.responses)} requests replayed)"
        )
    else:
        sys.stdout.write(text)
    if args.snapshots:
        horizon = max(
            (r.finish_s for r in result.responses if r.finish_s is not None),
            default=0.0,
        )
        SnapshotWriter(args.snapshots).write(
            ob.registry.snapshot(), t=horizon
        )
        print(f"appended snapshot sidecar to {args.snapshots}")
    return 0


def _cmd_obs_slo(args: argparse.Namespace) -> int:
    from repro.obs.slo import SLOMonitor, default_objectives

    result, _, _ = _fleet_replay(args, ("default",), observed=False)
    monitor = SLOMonitor(default_objectives(
        deadline_target=args.deadline_target,
        latency_threshold_s=args.latency_threshold,
        latency_target=args.latency_target,
        error_target=args.error_target,
    ))
    report = monitor.evaluate(result)
    print(report.as_table())
    print(
        f"\nhorizon {report.horizon_s:.3f}s, "
        f"{len(report.fired)} alerts fired, digest {report.digest()}"
    )
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json())
        print(f"wrote SLO report to {args.json}")
    if args.strict and not report.ok:
        missed = [n for n, o in report.objectives.items() if not o["met"]]
        print(f"SLO MISSED: {', '.join(sorted(missed))}", file=sys.stderr)
        return 1
    return 0


def _cmd_obs_sentinel(args: argparse.Namespace) -> int:
    from repro.obs import sentinel

    report = sentinel.run(args.dir, baseline_dir=args.baseline)
    print(report.render())
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json())
        print(f"wrote sentinel report to {args.json}")
    if report.ok:
        return 0
    if args.warn_only:
        print("sentinel: regressions found (warn-only mode)", file=sys.stderr)
        return 0
    return 1


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "export":
        return _cmd_obs_export(args)
    if args.obs_command == "slo":
        return _cmd_obs_slo(args)
    if args.obs_command == "sentinel":
        return _cmd_obs_sentinel(args)
    raise SystemExit(f"unknown obs command {args.obs_command!r}")


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.artifacts import ArtifactStore
    from repro.tune import (
        Tuner, TunedRegistry, default_space, quick_space,
        workload_from_dataset,
    )

    store = None
    if not args.no_store:
        store = ArtifactStore(root=args.store_dir)
    if args.list:
        if store is None:
            raise SystemExit("--list needs the artifact store (drop --no-store)")
        print(TunedRegistry(store).as_table())
        return 0
    if not args.kernel or not args.dataset:
        raise SystemExit("tune needs KERNEL and DATASET (or --list)")
    workload = workload_from_dataset(
        args.kernel, args.dataset, rank=args.rank, mode=args.mode, store=store
    )
    space = quick_space() if args.quick_space else default_space()
    tuner = Tuner(
        workload, space, seed=args.seed, budget=args.budget,
        workers=args.workers, store=store,
    )
    print(
        f"tuning {workload.name}: space of {len(space)} configs, "
        f"budget {tuner.budget}, batch {tuner.batch}, seed {tuner.seed}"
    )
    outcome = tuner.search()
    params = ", ".join(
        f"{k}={v}" for k, v in sorted(outcome.best_params.items())
    )
    print(
        f"baseline {outcome.baseline_cycles:,} cycles -> tuned "
        f"{outcome.best_cycles:,} cycles "
        f"({outcome.improvement:.1%} faster, {outcome.speedup:.2f}x)"
    )
    print(f"tuned params: {params or '(paper default)'}")
    print(
        f"oracle: {outcome.oracle_evals} points measured, "
        f"{outcome.oracle_sims} simulated, {outcome.cache_hits} cached "
        f"(space is {outcome.space_size})"
    )
    if store is not None:
        entry = TunedRegistry(store).record(workload, outcome)
        print(f"recorded tuned config under {entry.fingerprint[:12]}…")
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(outcome.to_json(indent=1))
        print(f"wrote search outcome to {args.out}")
    return 0


def _chaos_runner(mutate: Optional[str]):
    from repro.chaos import MUTATIONS, ChaosRunner

    mutator = None
    if mutate is not None:
        try:
            mutator = MUTATIONS[mutate]
        except KeyError:
            raise SystemExit(
                f"unknown mutation {mutate!r}; have {sorted(MUTATIONS)}"
            )
    return ChaosRunner(mutator=mutator)


def _cmd_chaos_search(args: argparse.Namespace) -> int:
    from repro.artifacts import ArtifactStore
    from repro.chaos import (
        ChaosCorpus, ChaosSearch, ScheduleGenerator, shrink_schedule,
    )

    runner = _chaos_runner(args.mutate)
    generator = ScheduleGenerator(
        seed=args.seed, min_events=args.min_events,
        max_events=args.max_events,
    )
    outcome = ChaosSearch(runner, generator).run(
        args.budget, start=args.start
    )
    print(
        f"explored {outcome.schedules_run} schedules in "
        f"{outcome.elapsed_s:.2f}s ({outcome.schedules_per_s:.1f}/s), "
        f"{outcome.violation_count} violation(s) across "
        f"{len(outcome.failures)} schedule(s)"
    )
    shrunk = []
    if outcome.failures:
        for sched, violations in outcome.failures:
            names = sorted({v.invariant for v in violations})
            result = shrink_schedule(sched, runner, target=names)
            shrunk.append(result)
            print(
                f"  {', '.join(names)}: shrunk {sched.event_count} -> "
                f"{result.minimal.event_count} events "
                f"(ratio {result.ratio:.2f}, "
                f"{result.oracle_calls} oracle calls)"
            )
        if args.corpus_dir:
            corpus = ChaosCorpus(ArtifactStore(root=args.corpus_dir))
            for result in shrunk:
                key = corpus.add(
                    result.minimal, invariants=result.target,
                    note=f"shrunk from {result.original.event_count} "
                    f"events (seed {result.original.seed})",
                )
                print(f"  stored reproducer {key}")
    if args.out:
        data = outcome.to_json()
        data["shrunk"] = [r.to_json() for r in shrunk]
        with open(args.out, "w") as fh:
            json.dump(data, fh, indent=1)
        print(f"wrote search outcome to {args.out}")
    if args.mutate is not None:
        # Mutation testing: the armed bug MUST be caught.
        if not outcome.failures:
            print(f"mutation {args.mutate!r} went UNDETECTED")
            return 1
        return 0
    return 1 if outcome.failures else 0


def _cmd_chaos_shrink(args: argparse.Namespace) -> int:
    from repro.chaos import ChaosSchedule, shrink_schedule

    with open(args.schedule) as fh:
        schedule = ChaosSchedule.from_json(json.load(fh))
    runner = _chaos_runner(args.mutate)
    result = shrink_schedule(schedule, runner)
    print(
        f"shrunk {result.original.event_count} -> "
        f"{result.minimal.event_count} events (ratio {result.ratio:.2f}) "
        f"for {', '.join(result.target)} in {result.oracle_calls} "
        "oracle calls"
    )
    for ev in result.minimal.events:
        print(f"  {ev.kind} at={ev.at} target={ev.target} "
              f"magnitude={ev.magnitude}")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(result.minimal.to_json(), fh, indent=1)
        print(f"wrote minimal schedule to {args.out}")
    return 0


def _cmd_chaos_replay(args: argparse.Namespace) -> int:
    from repro.artifacts import ArtifactStore
    from repro.chaos import ChaosCorpus

    corpus = ChaosCorpus(ArtifactStore(root=args.corpus_dir))
    if not len(corpus):
        print(f"corpus at {args.corpus_dir} is empty")
        return 1
    runner = _chaos_runner(args.mutate)
    results = corpus.replay(runner)
    regressed = {k: v for k, v in results.items() if v}
    for key in sorted(results):
        names = sorted({v["invariant"] for v in results[key]})
        status = f"FAIL ({', '.join(names)})" if names else "ok"
        print(f"  {key}: {status}")
    print(
        f"replayed {len(results)} corpus case(s), "
        f"{len(regressed)} regressed"
    )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(results, fh, indent=1)
    return 1 if regressed else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.chaos_command == "search":
        return _cmd_chaos_search(args)
    if args.chaos_command == "shrink":
        return _cmd_chaos_shrink(args)
    if args.chaos_command == "replay":
        return _cmd_chaos_replay(args)
    raise SystemExit(f"unknown chaos command {args.chaos_command!r}")


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "datasets":
        return _cmd_datasets()
    if args.command == "info":
        return _cmd_info()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "roofline":
        return _cmd_roofline(args)
    if args.command == "convert":
        return _cmd_convert(args)
    if args.command == "artifacts":
        return _cmd_artifacts(args)
    if args.command == "regen":
        return _cmd_regen(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "serve-replay":
        return _cmd_serve_replay(args)
    if args.command == "fleet-replay":
        return _cmd_fleet_replay(args)
    if args.command == "tune":
        return _cmd_tune(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    raise SystemExit(f"unknown command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
