"""Compressed interleaved sparse row (CISR) — Fowers et al., FCCM 2014.

CISR stores the nonzeros consumed by different PEs at the same cycle in
adjacent memory slots, which fixes CSR's scattered accesses — but it needs a
*centralized* row-length decoder (each lane only carries (value, column);
row boundaries live in a separate row-length stream), forces lock-step lane
consumption, and is defined only for matrices. CISS (``ciss.py``) removes
all three limitations; this implementation exists as the prior-work
comparison point and ablation baseline.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.formats.coo import COOMatrix
from repro.util.errors import FormatError, ShapeError


class CISRMatrix:
    """CISR encoding of a sparse matrix for ``num_lanes`` parallel PEs.

    Attributes
    ----------
    lane_cols / lane_vals:
        ``(num_entries, num_lanes)`` interleaved column-index and value
        arrays; entry ``t`` holds what every lane consumes at step ``t``.
        Padding slots have column ``-1`` and value ``0``.
    row_lengths:
        The centralized decoder metadata: for each lane, the lengths of the
        rows assigned to it, in assignment order.
    lane_rows:
        For each lane, the row indices assigned to it, in order.
    """

    __slots__ = (
        "shape",
        "num_lanes",
        "lane_cols",
        "lane_vals",
        "row_lengths",
        "lane_rows",
    )

    def __init__(
        self,
        shape: Tuple[int, int],
        num_lanes: int,
        lane_cols: np.ndarray,
        lane_vals: np.ndarray,
        row_lengths: List[List[int]],
        lane_rows: List[List[int]],
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.num_lanes = int(num_lanes)
        self.lane_cols = np.asarray(lane_cols, dtype=np.int64)
        self.lane_vals = np.asarray(lane_vals, dtype=np.float64)
        if self.lane_cols.shape != self.lane_vals.shape:
            raise FormatError("lane_cols and lane_vals must align")
        if self.lane_cols.ndim != 2 or self.lane_cols.shape[1] != self.num_lanes:
            raise FormatError("lane arrays must be (entries, num_lanes)")
        if len(row_lengths) != self.num_lanes or len(lane_rows) != self.num_lanes:
            raise FormatError("per-lane metadata must have num_lanes entries")
        self.row_lengths = [list(map(int, lens)) for lens in row_lengths]
        self.lane_rows = [list(map(int, rows)) for rows in lane_rows]

    @property
    def num_entries(self) -> int:
        return int(self.lane_cols.shape[0])

    @classmethod
    def from_coo(cls, coo: COOMatrix, num_lanes: int) -> "CISRMatrix":
        """Encode with the least-loaded row scheduler of the CISR paper."""
        if num_lanes <= 0:
            raise ShapeError("num_lanes must be positive")
        counts = coo.row_nnz_counts()
        row_start = np.zeros(coo.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=row_start[1:])
        lane_stream_cols: List[List[int]] = [[] for _ in range(num_lanes)]
        lane_stream_vals: List[List[float]] = [[] for _ in range(num_lanes)]
        row_lengths: List[List[int]] = [[] for _ in range(num_lanes)]
        lane_rows: List[List[int]] = [[] for _ in range(num_lanes)]
        for i in range(coo.shape[0]):
            lo, hi = int(row_start[i]), int(row_start[i + 1])
            if lo == hi:
                continue
            lane = min(range(num_lanes), key=lambda p: len(lane_stream_cols[p]))
            lane_stream_cols[lane].extend(int(c) for c in coo.cols[lo:hi])
            lane_stream_vals[lane].extend(float(v) for v in coo.vals[lo:hi])
            row_lengths[lane].append(hi - lo)
            lane_rows[lane].append(i)
        depth = max((len(s) for s in lane_stream_cols), default=0)
        cols = np.full((depth, num_lanes), -1, dtype=np.int64)
        vals = np.zeros((depth, num_lanes), dtype=np.float64)
        for lane in range(num_lanes):
            n = len(lane_stream_cols[lane])
            cols[:n, lane] = lane_stream_cols[lane]
            vals[:n, lane] = lane_stream_vals[lane]
        return cls(coo.shape, num_lanes, cols, vals, row_lengths, lane_rows)

    def to_coo(self) -> COOMatrix:
        """Decode back to triplets using the centralized row-length stream."""
        rows_out: List[int] = []
        cols_out: List[int] = []
        vals_out: List[float] = []
        for lane in range(self.num_lanes):
            pos = 0
            for row, length in zip(self.lane_rows[lane], self.row_lengths[lane]):
                for _ in range(length):
                    col = int(self.lane_cols[pos, lane])
                    if col < 0:
                        raise FormatError("row length walked into padding")
                    rows_out.append(row)
                    cols_out.append(col)
                    vals_out.append(float(self.lane_vals[pos, lane]))
                    pos += 1
        return COOMatrix(
            self.shape,
            np.array(rows_out, dtype=np.int64),
            np.array(cols_out, dtype=np.int64),
            np.array(vals_out, dtype=np.float64),
        )

    def padding_fraction(self) -> float:
        """Fraction of lane slots wasted on padding (load imbalance cost)."""
        total = self.lane_cols.size
        if total == 0:
            return 0.0
        return float(np.count_nonzero(self.lane_cols < 0)) / total

    def __repr__(self) -> str:
        return (
            f"CISRMatrix(shape={self.shape}, lanes={self.num_lanes}, "
            f"entries={self.num_entries})"
        )
