"""Storage-format statistics.

One summary object per encoded tensor/matrix, used by the storage ablation
benchmark and the CLI: bytes per nonzero, index overhead, lane balance and
padding for the interleaved formats, clustering for HiCOO. Having these in
the library (rather than ad hoc in benches) lets downstream users profile
their own data before picking a format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.formats.cisr import CISRMatrix
from repro.formats.ciss import CISSMatrix, CISSTensor, KIND_NNZ
from repro.formats.ciss_nd import CISSTensorND
from repro.formats.coo import COOMatrix
from repro.formats.csf import CSFTensor
from repro.formats.csr import CSRMatrix
from repro.formats.extended_csr import ExtendedCSRTensor
from repro.formats.hicoo import HiCOOTensor
from repro.tensor import SparseTensor
from repro.util.errors import FormatError


@dataclass(frozen=True)
class FormatStats:
    """Storage/balance profile of one encoded object."""

    format_name: str
    nnz: int
    total_bytes: int
    value_bytes: int
    lane_imbalance: Optional[float]  # max/mean nonzeros per lane, if laned
    padding_fraction: Optional[float]  # wasted slots, if laned

    @property
    def bytes_per_nnz(self) -> float:
        if self.nnz == 0:
            return 0.0
        return self.total_bytes / self.nnz

    @property
    def index_overhead(self) -> float:
        """(total - values) / values: 0 means pure payload."""
        if self.value_bytes == 0:
            return 0.0
        return (self.total_bytes - self.value_bytes) / self.value_bytes

    def summary(self) -> str:
        parts = [
            f"{self.format_name}: {self.bytes_per_nnz:.2f} B/nnz",
            f"index overhead {self.index_overhead:.2f}x",
        ]
        if self.lane_imbalance is not None:
            parts.append(f"lane max/mean {self.lane_imbalance:.2f}")
        if self.padding_fraction is not None:
            parts.append(f"padding {self.padding_fraction:.1%}")
        return ", ".join(parts)


def _lane_imbalance(kinds: np.ndarray) -> float:
    counts = np.count_nonzero(kinds == KIND_NNZ, axis=0)
    mean = counts.mean() if counts.size else 0.0
    if mean == 0:
        return 1.0
    return float(counts.max() / mean)


def format_stats(encoded, data_width: int = 4, index_width: int = 2) -> FormatStats:
    """Profile any format object from this package."""
    dw = data_width
    if isinstance(encoded, SparseTensor):
        return FormatStats(
            "coo", encoded.nnz,
            encoded.nnz * (dw + encoded.ndim * 4), encoded.nnz * dw,
            None, None,
        )
    if isinstance(encoded, COOMatrix):
        return FormatStats(
            "coo", encoded.nnz, encoded.nnz * (dw + 8), encoded.nnz * dw,
            None, None,
        )
    if isinstance(encoded, CSRMatrix):
        return FormatStats(
            "csr", encoded.nnz, encoded.storage_bytes(dw, 4),
            encoded.nnz * dw, None, None,
        )
    if isinstance(encoded, ExtendedCSRTensor):
        total = (encoded.slice_ptr.shape[0] * 8
                 + encoded.nnz * encoded.record_bytes(dw, index_width))
        return FormatStats(
            "ext_csr", encoded.nnz, total, encoded.nnz * dw, None, None
        )
    if isinstance(encoded, CSFTensor):
        return FormatStats(
            "csf", encoded.nnz, encoded.traversal_word_count() * 4,
            encoded.nnz * dw, None, None,
        )
    if isinstance(encoded, HiCOOTensor):
        return FormatStats(
            "hicoo", encoded.nnz, encoded.storage_bytes(dw),
            encoded.nnz * dw, None, None,
        )
    if isinstance(encoded, (CISSTensor, CISSMatrix)):
        return FormatStats(
            "ciss", encoded.nnz,
            encoded.stream_bytes(dw, index_width), encoded.nnz * dw,
            _lane_imbalance(encoded.kinds), encoded.padding_fraction(),
        )
    if isinstance(encoded, CISSTensorND):
        return FormatStats(
            "ciss_nd", encoded.nnz,
            encoded.stream_bytes(dw, index_width), encoded.nnz * dw,
            _lane_imbalance(encoded.kinds), encoded.padding_fraction(),
        )
    if isinstance(encoded, CISRMatrix):
        nnz = int(np.count_nonzero(encoded.lane_cols >= 0))
        total = encoded.lane_cols.size * (dw + 4) + sum(
            len(lens) * 4 for lens in encoded.row_lengths
        )
        counts = np.count_nonzero(encoded.lane_cols >= 0, axis=0)
        mean = counts.mean() if counts.size else 0.0
        return FormatStats(
            "cisr", nnz, total, nnz * dw,
            float(counts.max() / mean) if mean else 1.0,
            encoded.padding_fraction(),
        )
    raise FormatError(f"cannot profile {type(encoded).__name__}")
