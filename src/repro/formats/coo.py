"""Coordinate-format sparse matrix."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.util.errors import ShapeError


class COOMatrix:
    """A 2-d sparse matrix as (row, col, value) triplets in row-major order.

    This is the matrix-rank-2 analogue of :class:`repro.tensor.SparseTensor`
    and the interchange point between the matrix formats.
    """

    __slots__ = ("shape", "rows", "cols", "vals")

    def __init__(
        self,
        shape: Tuple[int, int],
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if not (rows.shape == cols.shape == vals.shape) or rows.ndim != 1:
            raise ShapeError("rows, cols, vals must be 1-d arrays of equal length")
        if rows.size:
            if rows.min() < 0 or rows.max() >= self.shape[0]:
                raise ShapeError("row index out of range")
            if cols.min() < 0 or cols.max() >= self.shape[1]:
                raise ShapeError("col index out of range")
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        # Canonicalize like SparseTensor: sum duplicate coordinates and drop
        # explicit zeros, so to_dense() and the kernels agree on semantics.
        if rows.size:
            key = rows * self.shape[1] + cols
            unique_key, first = np.unique(key, return_index=True)
            if unique_key.shape[0] != key.shape[0]:
                vals = np.add.reduceat(vals, first)
                rows = rows[first]
                cols = cols[first]
            keep = vals != 0.0
            rows, cols, vals = rows[keep], cols[keep], vals[keep]
        self.rows = rows
        self.cols = cols
        self.vals = vals

    @property
    def nnz(self) -> int:
        return int(self.vals.shape[0])

    @property
    def density(self) -> float:
        return self.nnz / (self.shape[0] * self.shape[1])

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ShapeError("from_dense expects a 2-d array")
        rows, cols = np.nonzero(dense)
        return cls(dense.shape, rows, cols, dense[rows, cols])

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        out[self.rows, self.cols] = self.vals
        return out

    def row_nnz_counts(self) -> np.ndarray:
        """Nonzeros per row (the CISS/CISR schedulers balance these)."""
        return np.bincount(self.rows, minlength=self.shape[0])

    def __repr__(self) -> str:
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"
