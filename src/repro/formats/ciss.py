"""Compressed interleaved sparse slice (CISS) — the paper's contribution.

A CISS stream is an array of *entries*; each entry carries one record per PE
lane, so the data all ``P`` PEs consume at one cycle occupies one contiguous
memory block (Section 4, Fig. 3d). Each lane record is a triple
``(nnz, i/j, k)``:

- ``nnz == 0`` marks a **header**: ``i/j`` holds the index of the slice
  (tensor) or row (matrix) now assigned to this lane.
- ``nnz != 0`` marks a **nonzero**: ``i/j`` holds the mode-1 / column index
  and ``k`` the mode-2 index (tensors only).

Slices are dealt to lanes with a least-loaded greedy scheduler ("the next
available slice ... to the PE with the least data"), which both balances
work and determines the interleaving. Unlike CISR, every lane stream is
self-describing (headers travel in-band), so no centralized row decoder or
lock-step consumption is required, and the format extends to tensors.

The hardware discriminates headers by ``nnz == 0``; this implementation also
carries an explicit ``kind`` plane (header / nonzero / padding) so that the
simulator and the decoders never rely on floating-point comparison, and so
padding at the tail of short lanes is explicit and measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.formats.coo import COOMatrix
from repro.tensor import SparseTensor
from repro.util.errors import FormatError, ShapeError

KIND_HEADER = 0
KIND_NNZ = 1
KIND_PAD = 2


@dataclass(frozen=True)
class LaneRecord:
    """One decoded lane record (mostly for tests and debugging)."""

    kind: int
    a: int  # slice/row index for headers; j / column index for nonzeros
    k: int  # mode-2 index for tensor nonzeros; -1 otherwise
    val: float


class _CISSBase:
    """Shared storage and lane mechanics for CISS matrices and tensors."""

    __slots__ = ("shape", "num_lanes", "kinds", "a_idx", "k_idx", "vals")

    #: number of index fields per record (2 for tensors: i/j and k; 1 for
    #: matrices: i/j only). Subclasses override.
    index_fields = 2

    def __init__(
        self,
        shape: Sequence[int],
        num_lanes: int,
        kinds: np.ndarray,
        a_idx: np.ndarray,
        k_idx: np.ndarray,
        vals: np.ndarray,
    ) -> None:
        self.shape = tuple(int(s) for s in shape)
        self.num_lanes = int(num_lanes)
        if self.num_lanes <= 0:
            raise ShapeError("num_lanes must be positive")
        self.kinds = np.asarray(kinds, dtype=np.uint8)
        self.a_idx = np.asarray(a_idx, dtype=np.int64)
        self.k_idx = np.asarray(k_idx, dtype=np.int64)
        self.vals = np.asarray(vals, dtype=np.float64)
        expected = self.kinds.shape
        if len(expected) != 2 or expected[1] != self.num_lanes:
            raise FormatError("record planes must be (entries, num_lanes)")
        for plane in (self.a_idx, self.k_idx, self.vals):
            if plane.shape != expected:
                raise FormatError("record planes must all have the same shape")
        header_vals = self.vals[self.kinds == KIND_HEADER]
        if header_vals.size and np.any(header_vals != 0.0):
            raise FormatError("header records must carry value 0 (nnz==0 sentinel)")
        nnz_vals = self.vals[self.kinds == KIND_NNZ]
        if nnz_vals.size and np.any(nnz_vals == 0.0):
            raise FormatError("nonzero records must carry a nonzero value")

    # ------------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        """Number of CISS entries (the stream length in wide words)."""
        return int(self.kinds.shape[0])

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.kinds == KIND_NNZ))

    def entry_bytes(self, data_width: int = 4, index_width: int = 2) -> int:
        """Bytes per CISS entry: ``(dw + index_fields*iw) * P`` bits, in bytes.

        Matches the paper's ``(dw + 2*iw) * P`` for tensors.
        """
        bits = (8 * data_width + self.index_fields * 8 * index_width) * self.num_lanes
        return bits // 8

    def stream_bytes(self, data_width: int = 4, index_width: int = 2) -> int:
        """Total bytes of the encoded stream."""
        return self.num_entries * self.entry_bytes(data_width, index_width)

    def padding_fraction(self) -> float:
        """Fraction of lane slots that are padding (tail imbalance)."""
        total = self.kinds.size
        if total == 0:
            return 0.0
        return float(np.count_nonzero(self.kinds == KIND_PAD)) / total

    def lane_nnz_counts(self) -> np.ndarray:
        """Nonzero records per lane — the scheduler's balance target."""
        return np.count_nonzero(self.kinds == KIND_NNZ, axis=0)

    def lane_records(self, lane: int) -> List[LaneRecord]:
        """Decoded record list for one lane (headers, nonzeros, pads)."""
        if not 0 <= lane < self.num_lanes:
            raise ShapeError(f"lane {lane} out of range")
        return [
            LaneRecord(
                int(self.kinds[t, lane]),
                int(self.a_idx[t, lane]),
                int(self.k_idx[t, lane]),
                float(self.vals[t, lane]),
            )
            for t in range(self.num_entries)
        ]

    def pe_address_trace(
        self,
        num_pes: int | None = None,
        data_width: int = 4,
        index_width: int = 2,
        base_address: int = 0,
    ) -> List[List[Tuple[int, int]]]:
        """Per-cycle ``(address, size)`` requests when streaming the format.

        All lanes' data for entry ``t`` is one contiguous block, so each
        cycle issues a single wide request — the access pattern that lets
        CISS saturate bandwidth in Fig. 3e.
        """
        if num_pes is not None and num_pes != self.num_lanes:
            raise ShapeError(
                f"stream encoded for {self.num_lanes} lanes, not {num_pes}"
            )
        size = self.entry_bytes(data_width, index_width)
        return [
            [(base_address + t * size, size)] for t in range(self.num_entries)
        ]


def _schedule_groups(
    group_ids: np.ndarray,
    group_start: np.ndarray,
    num_lanes: int,
) -> List[List[Tuple[int, int, int]]]:
    """Deal groups (slices/rows) to lanes with the least-loaded policy.

    Returns, per lane, a list of ``(group_id, lo, hi)`` record ranges in
    assignment order. ``group_ids`` are the nonempty group indices in
    increasing order; ``group_start`` brackets each group's records. A
    group costs ``1 + (hi - lo)`` lane slots (header + nonzeros).
    """
    if num_lanes <= 0:
        raise ShapeError("num_lanes must be positive")
    loads = [0] * num_lanes
    assignment: List[List[Tuple[int, int, int]]] = [[] for _ in range(num_lanes)]
    for gid, lo, hi in zip(group_ids, group_start[:-1], group_start[1:]):
        lane = min(range(num_lanes), key=lambda p: loads[p])
        loads[lane] += 1 + int(hi - lo)
        assignment[lane].append((int(gid), int(lo), int(hi)))
    return assignment


def _build_planes(
    num_lanes: int,
    assignment: List[List[Tuple[int, int, int]]],
    a_src: np.ndarray,
    k_src: np.ndarray | None,
    val_src: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Materialize the record planes from a lane assignment (vectorized).

    ``assignment[lane]`` lists ``(group_id, lo, hi)`` record ranges;
    ``a_src``/``k_src``/``val_src`` are the source columns nonzero records
    draw from (indexed by record position ``lo..hi``).
    """
    depth = max(
        (sum(1 + hi - lo for _, lo, hi in asg) for asg in assignment),
        default=0,
    )
    kinds = np.full((depth, num_lanes), KIND_PAD, dtype=np.uint8)
    a_idx = np.full((depth, num_lanes), -1, dtype=np.int64)
    k_idx = np.full((depth, num_lanes), -1, dtype=np.int64)
    vals = np.zeros((depth, num_lanes), dtype=np.float64)
    for lane, asg in enumerate(assignment):
        if not asg:
            continue
        gids = np.array([g for g, _, _ in asg], dtype=np.int64)
        los = np.array([lo for _, lo, _ in asg], dtype=np.int64)
        his = np.array([hi for _, _, hi in asg], dtype=np.int64)
        seg = 1 + his - los
        ends = np.cumsum(seg)
        starts = ends - seg  # header slot of each group
        kinds[starts, lane] = KIND_HEADER
        a_idx[starts, lane] = gids
        total = int(ends[-1])
        mask = np.ones(total, dtype=bool)
        mask[starts] = False
        pos = np.flatnonzero(mask)
        if pos.size:
            src = np.concatenate(
                [np.arange(lo, hi, dtype=np.int64) for lo, hi in zip(los, his)]
            )
            kinds[pos, lane] = KIND_NNZ
            a_idx[pos, lane] = a_src[src]
            if k_src is not None:
                k_idx[pos, lane] = k_src[src]
            vals[pos, lane] = val_src[src]
    return kinds, a_idx, k_idx, vals


class CISSTensor(_CISSBase):
    """CISS encoding of a 3-d sparse tensor, sliced along a chosen mode."""

    index_fields = 2

    def __init__(self, shape, num_lanes, kinds, a_idx, k_idx, vals, mode: int = 0):
        if len(tuple(shape)) != 3:
            raise ShapeError("CISSTensor stores 3-d tensors")
        super().__init__(shape, num_lanes, kinds, a_idx, k_idx, vals)
        if not 0 <= mode < 3:
            raise ShapeError("slice mode must be 0, 1 or 2")
        self.mode = int(mode)

    __slots__ = ("mode",)

    @classmethod
    def from_sparse(
        cls, tensor: SparseTensor, num_lanes: int, mode: int = 0
    ) -> "CISSTensor":
        """Encode a 3-d sparse tensor, slicing along ``mode``.

        MTTKRP/TTMc along mode ``n`` iterate slices ``A(i, :, :)`` of that
        mode; the encoder permutes the tensor so the slice mode leads, then
        deals slices to lanes least-loaded-first.
        """
        if tensor.ndim != 3:
            raise ShapeError("CISSTensor stores 3-d tensors")
        if not 0 <= mode < 3:
            raise ShapeError("slice mode must be 0, 1 or 2")
        rest = [m for m in range(3) if m != mode]
        perm = tensor if mode == 0 else tensor.permute_modes([mode] + rest)
        counts = perm.slice_nnz_counts(0)
        nonempty = np.flatnonzero(counts)
        starts = np.zeros(perm.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        group_start = (
            np.append(starts[nonempty], perm.nnz)
            if nonempty.size
            else np.array([0], dtype=np.int64)
        )
        assignment = _schedule_groups(nonempty, group_start, num_lanes)
        coords = perm.coords
        planes = _build_planes(
            num_lanes, assignment, coords[:, 1], coords[:, 2], perm.values
        )
        return cls(tensor.shape, num_lanes, *planes, mode=mode)

    @classmethod
    def from_dense(
        cls, array: np.ndarray, num_lanes: int, mode: int = 0
    ) -> "CISSTensor":
        """On-the-fly CISS construction from dense data (TLU dense mode)."""
        return cls.from_sparse(SparseTensor.from_dense(array), num_lanes, mode)

    def to_sparse(self) -> SparseTensor:
        """Decode every lane independently back to canonical COO form."""
        coords: List[Tuple[int, int, int]] = []
        vals: List[float] = []
        for lane in range(self.num_lanes):
            current = -1
            for t in range(self.num_entries):
                kind = self.kinds[t, lane]
                if kind == KIND_PAD:
                    continue
                if kind == KIND_HEADER:
                    current = int(self.a_idx[t, lane])
                    continue
                if current < 0:
                    raise FormatError("nonzero record before any slice header")
                coords.append(
                    (current, int(self.a_idx[t, lane]), int(self.k_idx[t, lane]))
                )
                vals.append(float(self.vals[t, lane]))
        rest = [m for m in range(3) if m != self.mode]
        perm_shape = (self.shape[self.mode],) + tuple(self.shape[m] for m in rest)
        coords_arr = (
            np.array(coords, dtype=np.int64)
            if coords
            else np.empty((0, 3), dtype=np.int64)
        )
        perm = SparseTensor(perm_shape, coords_arr, np.array(vals, dtype=np.float64))
        inverse = np.argsort([self.mode] + rest)
        return perm.permute_modes(inverse)

    def __repr__(self) -> str:
        return (
            f"CISSTensor(shape={self.shape}, mode={self.mode}, "
            f"lanes={self.num_lanes}, entries={self.num_entries})"
        )


class CISSMatrix(_CISSBase):
    """CISS encoding of a sparse matrix (rows play the role of slices)."""

    index_fields = 1

    @classmethod
    def from_coo(cls, coo: COOMatrix, num_lanes: int) -> "CISSMatrix":
        counts = coo.row_nnz_counts()
        nonempty = np.flatnonzero(counts)
        starts = np.zeros(coo.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        group_start = (
            np.append(starts[nonempty], coo.nnz)
            if nonempty.size
            else np.array([0], dtype=np.int64)
        )
        assignment = _schedule_groups(nonempty, group_start, num_lanes)
        planes = _build_planes(num_lanes, assignment, coo.cols, None, coo.vals)
        return cls(coo.shape, num_lanes, *planes)

    @classmethod
    def from_dense(cls, array: np.ndarray, num_lanes: int) -> "CISSMatrix":
        """On-the-fly CISS construction from a dense matrix (TLU dense mode)."""
        return cls.from_coo(COOMatrix.from_dense(array), num_lanes)

    def to_coo(self) -> COOMatrix:
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for lane in range(self.num_lanes):
            current = -1
            for t in range(self.num_entries):
                kind = self.kinds[t, lane]
                if kind == KIND_PAD:
                    continue
                if kind == KIND_HEADER:
                    current = int(self.a_idx[t, lane])
                    continue
                if current < 0:
                    raise FormatError("nonzero record before any row header")
                rows.append(current)
                cols.append(int(self.a_idx[t, lane]))
                vals.append(float(self.vals[t, lane]))
        return COOMatrix(
            self.shape,
            np.array(rows, dtype=np.int64),
            np.array(cols, dtype=np.int64),
            np.array(vals, dtype=np.float64),
        )

    def __repr__(self) -> str:
        return (
            f"CISSMatrix(shape={self.shape}, lanes={self.num_lanes}, "
            f"entries={self.num_entries})"
        )
