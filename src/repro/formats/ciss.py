"""Compressed interleaved sparse slice (CISS) — the paper's contribution.

A CISS stream is an array of *entries*; each entry carries one record per PE
lane, so the data all ``P`` PEs consume at one cycle occupies one contiguous
memory block (Section 4, Fig. 3d). Each lane record is a triple
``(nnz, i/j, k)``:

- ``nnz == 0`` marks a **header**: ``i/j`` holds the index of the slice
  (tensor) or row (matrix) now assigned to this lane.
- ``nnz != 0`` marks a **nonzero**: ``i/j`` holds the mode-1 / column index
  and ``k`` the mode-2 index (tensors only).

Slices are dealt to lanes with a least-loaded greedy scheduler ("the next
available slice ... to the PE with the least data"), which both balances
work and determines the interleaving. Unlike CISR, every lane stream is
self-describing (headers travel in-band), so no centralized row decoder or
lock-step consumption is required, and the format extends to tensors.

The hardware discriminates headers by ``nnz == 0``; this implementation also
carries an explicit ``kind`` plane (header / nonzero / padding) so that the
simulator and the decoders never rely on floating-point comparison, and so
padding at the tail of short lanes is explicit and measurable.

Two encoder engines produce bit-identical streams:

- ``"fast"`` (the default) replays the least-loaded deal with an
  integer-encoded heap (``load * num_lanes + lane``, so the heap minimum is
  exactly the least-loaded / lowest-lane choice) and scatters all record
  planes in one vectorized pass.
- ``"legacy"`` is the original per-group reference encoder, kept selectable
  via the ``engine=`` argument, :func:`set_encoder_engine`, or the
  ``REPRO_ENCODER_ENGINE`` environment variable.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.formats.coo import COOMatrix
from repro.tensor import SparseTensor
from repro.util.errors import FormatError, ShapeError

KIND_HEADER = 0
KIND_NNZ = 1
KIND_PAD = 2

_ENGINES = ("fast", "legacy")
_default_engine = os.environ.get("REPRO_ENCODER_ENGINE", "fast")
if _default_engine not in _ENGINES:
    raise ValueError(
        f"REPRO_ENCODER_ENGINE must be one of {_ENGINES}, not {_default_engine!r}"
    )


def default_encoder_engine() -> str:
    """The engine used when ``encode(..., engine=None)``."""
    return _default_engine


def set_encoder_engine(engine: str) -> str:
    """Select the process-wide default encoder engine; returns the previous one."""
    global _default_engine
    if engine not in _ENGINES:
        raise ValueError(f"engine must be one of {_ENGINES}, not {engine!r}")
    previous = _default_engine
    _default_engine = engine
    return previous


def _resolve_engine(engine: str | None) -> str:
    """Validate/default an ``engine=`` argument (shared by all encoders)."""
    if engine is None:
        engine = _default_engine
    if engine not in _ENGINES:
        raise ValueError(f"engine must be one of {_ENGINES}, not {engine!r}")
    return engine


def _resolve_ciss_engine(engine: str | None) -> str:
    engine = _resolve_engine(engine)
    if engine == "fast" and _schedule_groups is not _REFERENCE_SCHEDULER:
        # An ablation has patched the scheduler seam; only the legacy
        # encoder routes through it.
        return "legacy"
    return engine


@dataclass(frozen=True)
class LaneRecord:
    """One decoded lane record (mostly for tests and debugging)."""

    kind: int
    a: int  # slice/row index for headers; j / column index for nonzeros
    k: int  # mode-2 index for tensor nonzeros; -1 otherwise
    val: float


class _CISSBase:
    """Shared storage and lane mechanics for CISS matrices and tensors."""

    __slots__ = ("shape", "num_lanes", "kinds", "a_idx", "k_idx", "vals", "_memo")

    #: number of index fields per record (2 for tensors: i/j and k; 1 for
    #: matrices: i/j only). Subclasses override.
    index_fields = 2

    def __init__(
        self,
        shape: Sequence[int],
        num_lanes: int,
        kinds: np.ndarray,
        a_idx: np.ndarray,
        k_idx: np.ndarray,
        vals: np.ndarray,
    ) -> None:
        self.shape = tuple(int(s) for s in shape)
        self.num_lanes = int(num_lanes)
        if self.num_lanes <= 0:
            raise ShapeError("num_lanes must be positive")
        self.kinds = np.asarray(kinds, dtype=np.uint8)
        self.a_idx = np.asarray(a_idx, dtype=np.int64)
        self.k_idx = np.asarray(k_idx, dtype=np.int64)
        self.vals = np.asarray(vals, dtype=np.float64)
        self._memo = {}
        expected = self.kinds.shape
        if len(expected) != 2 or expected[1] != self.num_lanes:
            raise FormatError("record planes must be (entries, num_lanes)")
        for plane in (self.a_idx, self.k_idx, self.vals):
            if plane.shape != expected:
                raise FormatError("record planes must all have the same shape")
        nonzero = self.vals != 0.0
        if np.any(nonzero & (self.kinds == KIND_HEADER)):
            raise FormatError("header records must carry value 0 (nnz==0 sentinel)")
        if np.any(~nonzero & (self.kinds == KIND_NNZ)):
            raise FormatError("nonzero records must carry a nonzero value")

    # ------------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        """Number of CISS entries (the stream length in wide words)."""
        return int(self.kinds.shape[0])

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.kinds == KIND_NNZ))

    def entry_bytes(self, data_width: int = 4, index_width: int = 2) -> int:
        """Bytes per CISS entry: ``(dw + index_fields*iw) * P`` bits, in bytes.

        Matches the paper's ``(dw + 2*iw) * P`` for tensors.
        """
        bits = (8 * data_width + self.index_fields * 8 * index_width) * self.num_lanes
        return bits // 8

    def stream_bytes(self, data_width: int = 4, index_width: int = 2) -> int:
        """Total bytes of the encoded stream."""
        return self.num_entries * self.entry_bytes(data_width, index_width)

    def padding_fraction(self) -> float:
        """Fraction of lane slots that are padding (tail imbalance)."""
        total = self.kinds.size
        if total == 0:
            return 0.0
        return float(np.count_nonzero(self.kinds == KIND_PAD)) / total

    def lane_nnz_counts(self) -> np.ndarray:
        """Nonzero records per lane — the scheduler's balance target."""
        return np.count_nonzero(self.kinds == KIND_NNZ, axis=0)

    def lane_records(self, lane: int) -> Tuple[LaneRecord, ...]:
        """Decoded record tuple for one lane (headers, nonzeros, pads).

        The decode is materialized once per lane and cached on the stream
        (the planes are immutable), so repeated calls — the PE interpreter,
        trace charts, tests — stop rebuilding per-entry Python objects.
        """
        if not 0 <= lane < self.num_lanes:
            raise ShapeError(f"lane {lane} out of range")
        key = ("lane", lane)
        cached = self._memo.get(key)
        if cached is None:
            kinds = self.kinds[:, lane].tolist()
            a_col = self.a_idx[:, lane].tolist()
            k_col = self.k_idx[:, lane].tolist()
            val_col = self.vals[:, lane].tolist()
            cached = tuple(
                LaneRecord(kind, a, k, val)
                for kind, a, k, val in zip(kinds, a_col, k_col, val_col)
            )
            self._memo[key] = cached
        return cached

    def lane_arrays(self, lane: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One lane's record columns as contiguous arrays (kinds, a, k, val).

        The array form of :meth:`lane_records`, consumed by the vectorized
        and jit PE paths: no per-record Python objects, just the four
        column vectors of length ``num_entries``. Cached per lane; the
        returned arrays are the cache — treat them as read-only.
        """
        if not 0 <= lane < self.num_lanes:
            raise ShapeError(f"lane {lane} out of range")
        key = ("lane_arrays", lane)
        cached = self._memo.get(key)
        if cached is None:
            cached = (
                np.ascontiguousarray(self.kinds[:, lane]),
                np.ascontiguousarray(self.a_idx[:, lane]),
                np.ascontiguousarray(self.k_idx[:, lane]),
                np.ascontiguousarray(self.vals[:, lane]),
            )
            self._memo[key] = cached
        return cached

    def pe_address_trace(
        self,
        num_pes: int | None = None,
        data_width: int = 4,
        index_width: int = 2,
        base_address: int = 0,
    ) -> Tuple[Tuple[Tuple[int, int], ...], ...]:
        """Per-cycle ``(address, size)`` requests when streaming the format.

        All lanes' data for entry ``t`` is one contiguous block, so each
        cycle issues a single wide request — the access pattern that lets
        CISS saturate bandwidth in Fig. 3e. Cached per parameterization.
        """
        if num_pes is not None and num_pes != self.num_lanes:
            raise ShapeError(
                f"stream encoded for {self.num_lanes} lanes, not {num_pes}"
            )
        key = ("trace", data_width, index_width, base_address)
        cached = self._memo.get(key)
        if cached is None:
            size = self.entry_bytes(data_width, index_width)
            cached = tuple(
                ((base_address + t * size, size),) for t in range(self.num_entries)
            )
            self._memo[key] = cached
        return cached


def least_loaded_deal(
    costs: np.ndarray, num_lanes: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized replay of the least-loaded greedy deal.

    Groups are dealt in order; group ``g`` (costing ``costs[g]`` lane slots)
    goes to the currently least-loaded lane, ties broken toward the lowest
    lane index — exactly the policy of :func:`_schedule_groups`. Returns
    ``(g_lane, g_off)``: the lane each group landed on and the entry row of
    its first slot (its running offset within that lane).

    Two fast strategies cover the real cases:

    - **uniform costs** (every group the same size, e.g. dense rows or
      rank-``r`` tile groups): the deal degenerates to round-robin —
      ``lane = g % P``, ``offset = (g // P) * cost`` — provable by
      induction since all lane loads stay within one cost of each other.
    - otherwise an **integer-encoded heap** holds ``load * P + lane`` per
      lane; the heap minimum is the lexicographic (load, lane) minimum, so
      popping and pushing back ``+ cost * P`` replays the exact greedy
      choice in ``O(G log P)`` without per-group Python list scans.
    """
    if num_lanes <= 0:
        raise ShapeError("num_lanes must be positive")
    costs = np.ascontiguousarray(costs, dtype=np.int64)
    num_groups = int(costs.shape[0])
    if num_groups == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    if num_lanes == 1:
        ends = np.cumsum(costs)
        return np.zeros(num_groups, dtype=np.int64), ends - costs
    if costs.min() == costs.max():
        cost = int(costs[0])
        grp = np.arange(num_groups, dtype=np.int64)
        return grp % num_lanes, (grp // num_lanes) * cost
    heap = list(range(num_lanes))
    encoded: List[int] = []
    append = encoded.append
    replace = heapq.heapreplace
    for step in (costs * num_lanes).tolist():
        value = heap[0]
        append(value)
        replace(heap, value + step)
    enc = np.array(encoded, dtype=np.int64)
    return enc % num_lanes, enc // num_lanes


def _schedule_groups(
    group_ids: np.ndarray,
    group_start: np.ndarray,
    num_lanes: int,
) -> List[List[Tuple[int, int, int]]]:
    """Deal groups (slices/rows) to lanes with the least-loaded policy.

    Returns, per lane, a list of ``(group_id, lo, hi)`` record ranges in
    assignment order. ``group_ids`` are the nonempty group indices in
    increasing order; ``group_start`` brackets each group's records. A
    group costs ``1 + (hi - lo)`` lane slots (header + nonzeros).
    """
    if num_lanes <= 0:
        raise ShapeError("num_lanes must be positive")
    loads = np.zeros(num_lanes, dtype=np.int64)
    assignment: List[List[Tuple[int, int, int]]] = [[] for _ in range(num_lanes)]
    for gid, lo, hi in zip(group_ids, group_start[:-1], group_start[1:]):
        lane = int(np.argmin(loads))
        loads[lane] += 1 + int(hi - lo)
        assignment[lane].append((int(gid), int(lo), int(hi)))
    return assignment


_REFERENCE_SCHEDULER = _schedule_groups


def _build_planes(
    num_lanes: int,
    assignment: List[List[Tuple[int, int, int]]],
    a_src: np.ndarray,
    k_src: np.ndarray | None,
    val_src: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Materialize the record planes from a lane assignment (legacy engine).

    ``assignment[lane]`` lists ``(group_id, lo, hi)`` record ranges;
    ``a_src``/``k_src``/``val_src`` are the source columns nonzero records
    draw from (indexed by record position ``lo..hi``).
    """
    depth = max(
        (sum(1 + hi - lo for _, lo, hi in asg) for asg in assignment),
        default=0,
    )
    kinds = np.full((depth, num_lanes), KIND_PAD, dtype=np.uint8)
    a_idx = np.full((depth, num_lanes), -1, dtype=np.int64)
    k_idx = np.full((depth, num_lanes), -1, dtype=np.int64)
    vals = np.zeros((depth, num_lanes), dtype=np.float64)
    for lane, asg in enumerate(assignment):
        if not asg:
            continue
        gids = np.array([g for g, _, _ in asg], dtype=np.int64)
        los = np.array([lo for _, lo, _ in asg], dtype=np.int64)
        his = np.array([hi for _, _, hi in asg], dtype=np.int64)
        seg = 1 + his - los
        ends = np.cumsum(seg)
        starts = ends - seg  # header slot of each group
        kinds[starts, lane] = KIND_HEADER
        a_idx[starts, lane] = gids
        total = int(ends[-1])
        mask = np.ones(total, dtype=bool)
        mask[starts] = False
        pos = np.flatnonzero(mask)
        if pos.size:
            src = np.concatenate(
                [np.arange(lo, hi, dtype=np.int64) for lo, hi in zip(los, his)]
            )
            kinds[pos, lane] = KIND_NNZ
            a_idx[pos, lane] = a_src[src]
            if k_src is not None:
                k_idx[pos, lane] = k_src[src]
            vals[pos, lane] = val_src[src]
    return kinds, a_idx, k_idx, vals


def _contiguous_groups(
    leading: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run-length encode a sorted leading-index column.

    Returns ``(group_ids, group_first, group_sizes)`` where ``group_first``
    is each run's first record position. Records are canonically sorted, so
    every nonempty slice/row is exactly one run, in increasing id order —
    the same group sequence the legacy encoder derives from nnz counts.
    """
    n = int(leading.shape[0])
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    np.not_equal(leading[1:], leading[:-1], out=new_group[1:])
    first = np.flatnonzero(new_group)
    sizes = np.diff(np.append(first, n))
    return leading[first], first, sizes


def _build_planes_fast(
    num_lanes: int,
    group_ids: np.ndarray,
    group_first: np.ndarray,
    group_sizes: np.ndarray,
    a_src: np.ndarray,
    k_src: np.ndarray | None,
    val_src: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized plane build: heap deal + one scatter per plane.

    Bit-identical to ``_schedule_groups`` + ``_build_planes``: the deal
    offsets *are* each lane's running cumsum (groups land on a lane in deal
    order), so scattering header slots at ``(g_off, g_lane)`` and record
    ``r`` of group ``g`` at ``(g_off + 1 + r, g_lane)`` reproduces the
    legacy layout exactly, including tail padding.
    """
    g_lane, g_off = least_loaded_deal(1 + group_sizes, num_lanes)
    num_groups = int(group_ids.shape[0])
    depth = int((g_off + 1 + group_sizes).max()) if num_groups else 0
    kinds = np.full((depth, num_lanes), KIND_PAD, dtype=np.uint8)
    a_idx = np.full((depth, num_lanes), -1, dtype=np.int64)
    k_idx = np.full((depth, num_lanes), -1, dtype=np.int64)
    vals = np.zeros((depth, num_lanes), dtype=np.float64)
    if num_groups:
        head_flat = g_off * num_lanes + g_lane
        kinds.ravel()[head_flat] = KIND_HEADER
        a_idx.ravel()[head_flat] = group_ids
        # Record ``t`` of group ``g`` lands at flat position
        # ``(g_off[g] + 1 + t - group_first[g]) * P + g_lane[g]``: a
        # per-group base (repeated over its records) plus ``t * P``.
        total = int(group_first[-1] + group_sizes[-1])
        flat = np.repeat(
            (g_off - group_first + 1) * num_lanes + g_lane, group_sizes
        )
        flat += np.arange(total, dtype=np.int64) * num_lanes
        kinds.ravel()[flat] = KIND_NNZ
        a_idx.ravel()[flat] = a_src
        if k_src is not None:
            k_idx.ravel()[flat] = k_src
        vals.ravel()[flat] = val_src
    return kinds, a_idx, k_idx, vals


class CISSTensor(_CISSBase):
    """CISS encoding of a 3-d sparse tensor, sliced along a chosen mode."""

    index_fields = 2

    def __init__(self, shape, num_lanes, kinds, a_idx, k_idx, vals, mode: int = 0):
        if len(tuple(shape)) != 3:
            raise ShapeError("CISSTensor stores 3-d tensors")
        super().__init__(shape, num_lanes, kinds, a_idx, k_idx, vals)
        if not 0 <= mode < 3:
            raise ShapeError("slice mode must be 0, 1 or 2")
        self.mode = int(mode)

    __slots__ = ("mode",)

    @classmethod
    def from_sparse(
        cls,
        tensor: SparseTensor,
        num_lanes: int,
        mode: int = 0,
        engine: str | None = None,
    ) -> "CISSTensor":
        """Encode a 3-d sparse tensor, slicing along ``mode``.

        MTTKRP/TTMc along mode ``n`` iterate slices ``A(i, :, :)`` of that
        mode; the encoder permutes the tensor so the slice mode leads, then
        deals slices to lanes least-loaded-first. ``engine`` selects the
        vectorized (``"fast"``) or reference (``"legacy"``) encoder; both
        produce bit-identical planes.
        """
        if tensor.ndim != 3:
            raise ShapeError("CISSTensor stores 3-d tensors")
        if not 0 <= mode < 3:
            raise ShapeError("slice mode must be 0, 1 or 2")
        rest = [m for m in range(3) if m != mode]
        perm = tensor if mode == 0 else tensor.permute_modes([mode] + rest)
        coords = perm.coords
        if _resolve_ciss_engine(engine) == "fast":
            group_ids, group_first, group_sizes = _contiguous_groups(coords[:, 0])
            planes = _build_planes_fast(
                num_lanes, group_ids, group_first, group_sizes,
                coords[:, 1], coords[:, 2], perm.values,
            )
            return cls(tensor.shape, num_lanes, *planes, mode=mode)
        counts = perm.slice_nnz_counts(0)
        nonempty = np.flatnonzero(counts)
        starts = np.zeros(perm.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        group_start = (
            np.append(starts[nonempty], perm.nnz)
            if nonempty.size
            else np.array([0], dtype=np.int64)
        )
        assignment = _schedule_groups(nonempty, group_start, num_lanes)
        planes = _build_planes(
            num_lanes, assignment, coords[:, 1], coords[:, 2], perm.values
        )
        return cls(tensor.shape, num_lanes, *planes, mode=mode)

    @classmethod
    def from_dense(
        cls, array: np.ndarray, num_lanes: int, mode: int = 0
    ) -> "CISSTensor":
        """On-the-fly CISS construction from dense data (TLU dense mode)."""
        return cls.from_sparse(SparseTensor.from_dense(array), num_lanes, mode)

    def to_sparse(self) -> SparseTensor:
        """Decode every lane independently back to canonical COO form."""
        coords: List[Tuple[int, int, int]] = []
        vals: List[float] = []
        for lane in range(self.num_lanes):
            current = -1
            for t in range(self.num_entries):
                kind = self.kinds[t, lane]
                if kind == KIND_PAD:
                    continue
                if kind == KIND_HEADER:
                    current = int(self.a_idx[t, lane])
                    continue
                if current < 0:
                    raise FormatError("nonzero record before any slice header")
                coords.append(
                    (current, int(self.a_idx[t, lane]), int(self.k_idx[t, lane]))
                )
                vals.append(float(self.vals[t, lane]))
        rest = [m for m in range(3) if m != self.mode]
        perm_shape = (self.shape[self.mode],) + tuple(self.shape[m] for m in rest)
        coords_arr = (
            np.array(coords, dtype=np.int64)
            if coords
            else np.empty((0, 3), dtype=np.int64)
        )
        perm = SparseTensor(perm_shape, coords_arr, np.array(vals, dtype=np.float64))
        inverse = np.argsort([self.mode] + rest)
        return perm.permute_modes(inverse)

    def __repr__(self) -> str:
        return (
            f"CISSTensor(shape={self.shape}, mode={self.mode}, "
            f"lanes={self.num_lanes}, entries={self.num_entries})"
        )


class CISSMatrix(_CISSBase):
    """CISS encoding of a sparse matrix (rows play the role of slices)."""

    index_fields = 1

    @classmethod
    def from_coo(
        cls, coo: COOMatrix, num_lanes: int, engine: str | None = None
    ) -> "CISSMatrix":
        if _resolve_ciss_engine(engine) == "fast":
            group_ids, group_first, group_sizes = _contiguous_groups(coo.rows)
            planes = _build_planes_fast(
                num_lanes, group_ids, group_first, group_sizes,
                coo.cols, None, coo.vals,
            )
            return cls(coo.shape, num_lanes, *planes)
        counts = coo.row_nnz_counts()
        nonempty = np.flatnonzero(counts)
        starts = np.zeros(coo.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        group_start = (
            np.append(starts[nonempty], coo.nnz)
            if nonempty.size
            else np.array([0], dtype=np.int64)
        )
        assignment = _schedule_groups(nonempty, group_start, num_lanes)
        planes = _build_planes(num_lanes, assignment, coo.cols, None, coo.vals)
        return cls(coo.shape, num_lanes, *planes)

    @classmethod
    def from_dense(cls, array: np.ndarray, num_lanes: int) -> "CISSMatrix":
        """On-the-fly CISS construction from a dense matrix (TLU dense mode)."""
        return cls.from_coo(COOMatrix.from_dense(array), num_lanes)

    def to_coo(self) -> COOMatrix:
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for lane in range(self.num_lanes):
            current = -1
            for t in range(self.num_entries):
                kind = self.kinds[t, lane]
                if kind == KIND_PAD:
                    continue
                if kind == KIND_HEADER:
                    current = int(self.a_idx[t, lane])
                    continue
                if current < 0:
                    raise FormatError("nonzero record before any row header")
                rows.append(current)
                cols.append(int(self.a_idx[t, lane]))
                vals.append(float(self.vals[t, lane]))
        return COOMatrix(
            self.shape,
            np.array(rows, dtype=np.int64),
            np.array(cols, dtype=np.int64),
            np.array(vals, dtype=np.float64),
        )

    def __repr__(self) -> str:
        return (
            f"CISSMatrix(shape={self.shape}, lanes={self.num_lanes}, "
            f"entries={self.num_entries})"
        )
