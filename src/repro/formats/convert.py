"""Format conversion dispatcher.

One entry point for moving tensors and matrices between the storage
formats in this package, so callers (and the CLI) don't need to know each
class's constructor conventions. All conversions route through the
canonical COO substrate, which every format round-trips exactly.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.formats.cisr import CISRMatrix
from repro.formats.ciss import CISSMatrix, CISSTensor
from repro.formats.ciss_nd import CISSTensorND
from repro.formats.coo import COOMatrix
from repro.formats.csf import CSFTensor
from repro.formats.csr import CSCMatrix, CSRMatrix
from repro.formats.extended_csr import ExtendedCSRTensor
from repro.formats.hicoo import HiCOOTensor
from repro.tensor import SparseTensor
from repro.util.errors import FormatError

TENSOR_FORMATS = ("coo", "ext_csr", "csf", "ciss", "ciss_nd", "hicoo")
MATRIX_FORMATS = ("coo", "csr", "csc", "cisr", "ciss")

TensorFormat = Union[
    SparseTensor, ExtendedCSRTensor, CSFTensor, CISSTensor, CISSTensorND,
    HiCOOTensor,
]
MatrixFormat = Union[COOMatrix, CSRMatrix, CSCMatrix, CISRMatrix, CISSMatrix]


def tensor_to_coo(encoded: TensorFormat) -> SparseTensor:
    """Decode any tensor format back to the canonical COO substrate."""
    if isinstance(encoded, SparseTensor):
        return encoded
    if isinstance(encoded, (ExtendedCSRTensor, CSFTensor, CISSTensor,
                            CISSTensorND, HiCOOTensor)):
        return encoded.to_sparse()
    raise FormatError(f"unknown tensor format {type(encoded).__name__}")


def convert_tensor(
    source: TensorFormat,
    target: str,
    *,
    num_lanes: int = 8,
    mode: int = 0,
    mode_order=None,
    block: int = 128,
) -> TensorFormat:
    """Convert a tensor between formats.

    ``target`` is one of ``coo | ext_csr | csf | ciss | ciss_nd | hicoo``;
    the keyword arguments parameterize the formats that need them (CISS
    lanes/slice mode, CSF mode order, HiCOO block size).
    """
    tensor = tensor_to_coo(source)
    target = target.lower()
    if target == "coo":
        return tensor
    if target == "ext_csr":
        return ExtendedCSRTensor.from_sparse(tensor)
    if target == "csf":
        return CSFTensor.from_sparse(tensor, mode_order)
    if target == "ciss":
        return CISSTensor.from_sparse(tensor, num_lanes, mode=mode)
    if target == "ciss_nd":
        return CISSTensorND.from_sparse(tensor, num_lanes, mode=mode)
    if target == "hicoo":
        return HiCOOTensor.from_sparse(tensor, block)
    raise FormatError(
        f"unknown tensor format {target!r}; expected one of {TENSOR_FORMATS}"
    )


def matrix_to_coo(encoded: Union[MatrixFormat, np.ndarray]) -> COOMatrix:
    """Decode any matrix format (or a dense array) to COO."""
    if isinstance(encoded, COOMatrix):
        return encoded
    if isinstance(encoded, np.ndarray):
        return COOMatrix.from_dense(encoded)
    if isinstance(encoded, (CSRMatrix, CISRMatrix, CISSMatrix)):
        return encoded.to_coo()
    if isinstance(encoded, CSCMatrix):
        return COOMatrix.from_dense(encoded.to_dense())
    raise FormatError(f"unknown matrix format {type(encoded).__name__}")


def convert_matrix(
    source: Union[MatrixFormat, np.ndarray],
    target: str,
    *,
    num_lanes: int = 8,
) -> MatrixFormat:
    """Convert a matrix between formats (``coo | csr | csc | cisr | ciss``)."""
    coo = matrix_to_coo(source)
    target = target.lower()
    if target == "coo":
        return coo
    if target == "csr":
        return CSRMatrix.from_coo(coo)
    if target == "csc":
        return CSCMatrix.from_coo(coo)
    if target == "cisr":
        return CISRMatrix.from_coo(coo, num_lanes)
    if target == "ciss":
        return CISSMatrix.from_coo(coo, num_lanes)
    raise FormatError(
        f"unknown matrix format {target!r}; expected one of {MATRIX_FORMATS}"
    )
