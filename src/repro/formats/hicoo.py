"""HiCOO — hierarchical COO (Li, Sun, Vuduc; SC 2018).

A related-work sparse tensor format the paper discusses (Section 8):
nonzeros are grouped into aligned ``B x B x B`` blocks; each block stores
its block coordinates once at full width while elements store only narrow
within-block offsets. The payoff is index compression for clustered
tensors — worth having in the reproduction both as a software baseline
format and for the storage-overhead comparison benchmark.

Layout (per the HiCOO paper, simplified to one superblock level):

- ``bptr``  — (num_blocks + 1) pointers into the element arrays;
- ``bidx``  — (num_blocks, ndim) block coordinates (wide integers);
- ``eidx``  — (nnz, ndim) within-block offsets (narrow integers, < B);
- ``vals``  — (nnz,) values.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.formats.ciss import _resolve_engine
from repro.tensor import SparseTensor
from repro.util.errors import FormatError, ShapeError


class HiCOOTensor:
    """Hierarchical COO storage of an N-dimensional sparse tensor."""

    __slots__ = ("shape", "block", "bptr", "bidx", "eidx", "vals")

    def __init__(
        self,
        shape: Tuple[int, ...],
        block: int,
        bptr: np.ndarray,
        bidx: np.ndarray,
        eidx: np.ndarray,
        vals: np.ndarray,
    ) -> None:
        self.shape = tuple(int(s) for s in shape)
        self.block = int(block)
        if self.block < 1 or self.block & (self.block - 1):
            raise FormatError("block size must be a positive power of two")
        self.bptr = np.asarray(bptr, dtype=np.int64)
        self.bidx = np.asarray(bidx, dtype=np.int64)
        self.eidx = np.asarray(eidx, dtype=np.int64)
        self.vals = np.asarray(vals, dtype=np.float64)
        ndim = len(self.shape)
        if self.bidx.ndim != 2 or self.bidx.shape[1] != ndim:
            raise FormatError("bidx must be (num_blocks, ndim)")
        if self.bptr.shape != (self.bidx.shape[0] + 1,):
            raise FormatError("bptr must have num_blocks + 1 entries")
        if self.eidx.shape != (self.vals.shape[0], ndim):
            raise FormatError("eidx must be (nnz, ndim)")
        if self.bptr.size and (
            self.bptr[0] != 0 or self.bptr[-1] != self.vals.shape[0]
        ):
            raise FormatError("bptr endpoints inconsistent with values")
        if self.eidx.size and self.eidx.max() >= self.block:
            raise FormatError("element offsets must be < block size")

    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return int(self.vals.shape[0])

    @property
    def num_blocks(self) -> int:
        return int(self.bidx.shape[0])

    @classmethod
    def from_sparse(
        cls, tensor: SparseTensor, block: int = 128, engine: str | None = None
    ) -> "HiCOOTensor":
        """Encode with aligned ``block``-sized cubes (power of two).

        ``engine`` selects the vectorized (``"fast"``) or reference
        (``"legacy"``) builder; both produce bit-identical arrays.
        """
        if block < 1 or block & (block - 1):
            raise FormatError("block size must be a positive power of two")
        coords = tensor.coords
        ndim = tensor.ndim
        if tensor.nnz == 0:
            return cls(
                tensor.shape, block,
                np.zeros(1, dtype=np.int64),
                np.empty((0, ndim), dtype=np.int64),
                np.empty((0, ndim), dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        shift = int(np.log2(block))
        if _resolve_engine(engine) == "fast":
            # Same linearized block key (and therefore the same stable total
            # order) as the reference builder, but narrowed to the smallest
            # dtype that holds it so NumPy's stable radix sort does fewer
            # passes, and block coordinates gathered only at block starts.
            total_blocks = 1
            for size in tensor.shape:
                total_blocks *= -(-size // block)
            if total_blocks <= np.iinfo(np.int64).max:
                key = np.zeros(tensor.nnz, dtype=np.int64)
                for m, size in enumerate(tensor.shape):
                    key *= -(-size // block)
                    key += coords[:, m] >> shift
                if total_blocks <= np.iinfo(np.int32).max:
                    key = key.astype(np.int32)
                order = np.argsort(key, kind="stable")
                key_s = key[order]
                boundary = np.ones(tensor.nnz, dtype=bool)
                np.not_equal(key_s[1:], key_s[:-1], out=boundary[1:])
                starts = np.flatnonzero(boundary)
                bidx = coords[order[starts]] >> shift
            else:
                # Key would overflow int64: stable lexsort over the block
                # coordinates induces the identical order without the key.
                blocks = coords >> shift
                order = np.lexsort(
                    tuple(blocks[:, m] for m in range(ndim - 1, -1, -1))
                )
                blocks_s = blocks[order]
                boundary = np.ones(tensor.nnz, dtype=bool)
                np.any(blocks_s[1:] != blocks_s[:-1], axis=1, out=boundary[1:])
                starts = np.flatnonzero(boundary)
                bidx = blocks_s[starts]
            bptr = np.append(starts, tensor.nnz).astype(np.int64)
            eidx = coords[order] & (block - 1)
            return cls(
                tensor.shape, block, bptr, bidx, eidx, tensor.values[order]
            )
        # Group by block: canonical COO order is element-lexicographic, so
        # sort by linearized block id (stable, keeping within-block order).
        blocks = coords >> shift
        key = np.zeros(tensor.nnz, dtype=np.int64)
        for m, size in enumerate(tensor.shape):
            key = key * (-(-size // block)) + blocks[:, m]
        order = np.argsort(key, kind="stable")
        key_s = key[order]
        boundary = np.ones(tensor.nnz, dtype=bool)
        boundary[1:] = key_s[1:] != key_s[:-1]
        starts = np.flatnonzero(boundary)
        bptr = np.append(starts, tensor.nnz).astype(np.int64)
        bidx = blocks[order][starts]
        eidx = coords[order] & (block - 1)
        return cls(tensor.shape, block, bptr, bidx, eidx, tensor.values[order])

    def to_sparse(self) -> SparseTensor:
        coords = np.repeat(
            self.bidx * self.block, np.diff(self.bptr), axis=0
        ) + self.eidx
        return SparseTensor(self.shape, coords, self.vals)

    # ------------------------------------------------------------------
    def storage_bytes(
        self,
        data_width: int = 4,
        block_index_width: int = 4,
        elem_index_width: int = 1,
    ) -> int:
        """HiCOO's storage: wide indices per block, narrow per element.

        Defaults follow the HiCOO paper: 32-bit block coordinates, 8-bit
        element offsets (valid while ``block <= 256``).
        """
        if self.block > (1 << (8 * elem_index_width)):
            raise FormatError("element index width too narrow for block size")
        return (
            self.bptr.shape[0] * 8
            + self.bidx.size * block_index_width
            + self.eidx.size * elem_index_width
            + self.vals.shape[0] * data_width
        )

    def compression_vs_coo(self, data_width: int = 4, index_width: int = 4) -> float:
        """COO bytes / HiCOO bytes (> 1 means HiCOO is smaller)."""
        coo_bytes = self.nnz * (data_width + self.ndim * index_width)
        return coo_bytes / self.storage_bytes(data_width)

    def average_block_occupancy(self) -> float:
        """Mean nonzeros per nonempty block (clustering metric)."""
        if self.num_blocks == 0:
            return 0.0
        return self.nnz / self.num_blocks

    def __repr__(self) -> str:
        return (
            f"HiCOOTensor(shape={self.shape}, block={self.block}, "
            f"nnz={self.nnz}, blocks={self.num_blocks})"
        )
