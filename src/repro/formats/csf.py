"""Compressed sparse fiber (CSF) — SPLATT's tensor format.

A CSF tensor is a forest: level 0 holds the distinct indices of the first
mode in ``mode_order``, level 1 the distinct (mode0, mode1) fibers, and the
last level the nonzero values. The CPU baseline (SPLATT) traverses this tree
for SpMTTKRP/SpTTMc, so the reproduction needs it both as a correctness
reference and for the CPU cost model's memory-traffic estimates.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.formats.ciss import _resolve_engine
from repro.tensor import SparseTensor
from repro.util.errors import FormatError, ShapeError


class CSFTensor:
    """Compressed sparse fiber tree for an N-dimensional sparse tensor.

    Attributes
    ----------
    mode_order:
        Permutation of modes from root (level 0) to leaves.
    fptr:
        ``fptr[l]`` are the child pointers from level ``l`` to level ``l+1``,
        for ``l in [0, ndim-2]``; length ``len(fids[l]) + 1``.
    fids:
        ``fids[l]`` are the index values at level ``l`` (in the original
        tensor's mode ``mode_order[l]``).
    vals:
        Leaf values aligned with ``fids[-1]``.
    """

    __slots__ = ("shape", "mode_order", "fptr", "fids", "vals")

    def __init__(
        self,
        shape: Sequence[int],
        mode_order: Sequence[int],
        fptr: List[np.ndarray],
        fids: List[np.ndarray],
        vals: np.ndarray,
    ) -> None:
        self.shape = tuple(int(s) for s in shape)
        self.mode_order = tuple(int(m) for m in mode_order)
        ndim = len(self.shape)
        if sorted(self.mode_order) != list(range(ndim)):
            raise ShapeError("mode_order must be a permutation of modes")
        if len(fids) != ndim or len(fptr) != ndim - 1:
            raise FormatError("level arrays inconsistent with dimensionality")
        self.fptr = [np.asarray(p, dtype=np.int64) for p in fptr]
        self.fids = [np.asarray(f, dtype=np.int64) for f in fids]
        self.vals = np.asarray(vals, dtype=np.float64)
        if self.fids[-1].shape != self.vals.shape:
            raise FormatError("leaf indices and values must align")
        for level in range(ndim - 1):
            if self.fptr[level].shape != (self.fids[level].shape[0] + 1,):
                raise FormatError(f"fptr[{level}] has wrong length")
            if self.fptr[level][-1] != self.fids[level + 1].shape[0]:
                raise FormatError(f"fptr[{level}] does not cover level {level + 1}")

    @property
    def nnz(self) -> int:
        return int(self.vals.shape[0])

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @classmethod
    def from_sparse(
        cls,
        tensor: SparseTensor,
        mode_order: Sequence[int] | None = None,
        engine: str | None = None,
    ) -> "CSFTensor":
        """Build a CSF tree; default mode order is natural (0, 1, ..., N-1).

        ``engine`` selects the vectorized (``"fast"``) or reference
        (``"legacy"``) builder; both produce bit-identical level arrays.
        """
        ndim = tensor.ndim
        if mode_order is None:
            mode_order = tuple(range(ndim))
        mode_order = tuple(int(m) for m in mode_order)
        if sorted(mode_order) != list(range(ndim)):
            raise ShapeError("mode_order must be a permutation of modes")
        perm = tensor.permute_modes(mode_order)
        coords = perm.coords  # canonical lexicographic order in permuted modes
        vals = perm.values
        fids: List[np.ndarray] = []
        fptr: List[np.ndarray] = []
        nnz = perm.nnz
        if nnz == 0:
            fids = [np.empty(0, dtype=np.int64) for _ in range(ndim)]
            fptr = [np.zeros(1, dtype=np.int64) for _ in range(ndim - 1)]
            return cls(tensor.shape, mode_order, fptr, fids, vals)
        if _resolve_engine(engine) == "fast" and ndim > 1:
            # Canonical coordinates are unique and sorted, so the full
            # prefix changes at every record: the leaf level is exactly
            # ``coords[:, -1]`` with one child per record, and only the
            # ``ndim - 1`` interior levels need change-flag scans. Level-
            # major flags keep each scan contiguous, and a running OR turns
            # per-mode changes into prefix changes.
            prefix = np.empty((ndim - 1, nnz), dtype=bool)
            prefix[:, 0] = True
            for level in range(ndim - 1):
                np.not_equal(
                    coords[1:, level], coords[:-1, level], out=prefix[level, 1:]
                )
                if level > 0:
                    prefix[level, 1:] |= prefix[level - 1, 1:]
            child_starts = np.flatnonzero(prefix[0])
            for level in range(ndim):
                if level == 0:
                    starts = child_starts
                elif level < ndim - 1:
                    starts = np.flatnonzero(prefix[level])
                else:
                    fids.append(coords[:, level].copy())
                    fptr.append(
                        np.append(child_starts, nnz).astype(np.int64)
                    )
                    break
                fids.append(coords[starts, level])
                if level > 0:
                    ptr = np.searchsorted(starts, child_starts)
                    ptr = np.append(ptr, starts.shape[0])
                    fptr.append(ptr.astype(np.int64))
                child_starts = starts
            return cls(tensor.shape, mode_order, fptr, fids, vals)
        # Walk levels top-down: at level l a new node starts whenever the
        # coordinate prefix (modes 0..l in permuted order) changes.
        prefix_change = np.zeros(nnz, dtype=bool)
        prefix_change[0] = True
        child_starts = np.flatnonzero(prefix_change)  # level -1 boundary
        for level in range(ndim):
            changed = np.zeros(nnz, dtype=bool)
            changed[0] = True
            changed[1:] = coords[1:, level] != coords[:-1, level]
            prefix_change |= changed
            starts = np.flatnonzero(prefix_change)
            fids.append(coords[starts, level])
            if level > 0:
                # Parent pointers: position of each parent start within starts.
                ptr = np.searchsorted(starts, child_starts)
                ptr = np.append(ptr, starts.shape[0])
                fptr.append(ptr.astype(np.int64))
            child_starts = starts
        return cls(tensor.shape, mode_order, fptr, fids, vals)

    def to_sparse(self) -> SparseTensor:
        """Decode the tree back to canonical COO form."""
        ndim = self.ndim
        nnz = self.nnz
        cols = np.zeros((nnz, ndim), dtype=np.int64)
        # Expand each level's fids down to the leaves via repeated fptr spans.
        for level in range(ndim):
            ids = self.fids[level]
            for lower in range(level, ndim - 1):
                ids = np.repeat(ids, np.diff(self.fptr[lower]))
            cols[:, self.mode_order[level]] = ids
        return SparseTensor(self.shape, cols, self.vals)

    def fiber_count(self, level: int) -> int:
        """Number of distinct fibers (nodes) at a tree level."""
        if not 0 <= level < self.ndim:
            raise ShapeError(f"level {level} out of range")
        return int(self.fids[level].shape[0])

    def traversal_word_count(self) -> int:
        """Words touched by one full SPLATT-style traversal (ptr + idx + val).

        This feeds the CPU baseline's memory-traffic estimate for SpMTTKRP.
        """
        words = self.vals.shape[0]  # values
        for level in range(self.ndim):
            words += self.fids[level].shape[0]
        for level in range(self.ndim - 1):
            words += self.fptr[level].shape[0]
        return int(words)

    def __repr__(self) -> str:
        return (
            f"CSFTensor(shape={self.shape}, order={self.mode_order}, "
            f"nnz={self.nnz})"
        )
