"""Compressed sparse row / column matrix formats.

Built from scratch (no scipy in the core path) so the reproduction controls
exactly what is stored and how many bytes each format streams — the quantity
the bandwidth experiments measure.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.formats.coo import COOMatrix
from repro.util.errors import FormatError, ShapeError


class CSRMatrix:
    """Compressed sparse row matrix: ``indptr`` / ``indices`` / ``data``."""

    __slots__ = ("shape", "indptr", "indices", "data")

    def __init__(
        self,
        shape: Tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        if self.indptr.shape != (self.shape[0] + 1,):
            raise FormatError(
                f"indptr must have length nrows+1={self.shape[0] + 1}, "
                f"got {self.indptr.shape}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.shape[0]:
            raise FormatError("indptr endpoints inconsistent with indices")
        if np.any(np.diff(self.indptr) < 0):
            raise FormatError("indptr must be non-decreasing")
        if self.indices.shape != self.data.shape:
            raise FormatError("indices and data must align")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.shape[1]
        ):
            raise ShapeError("column index out of range")

    @property
    def nnz(self) -> int:
        return int(self.data.shape[0])

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSRMatrix":
        counts = np.bincount(coo.rows, minlength=coo.shape[0])
        indptr = np.zeros(coo.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        # COOMatrix is already row-major sorted.
        return cls(coo.shape, indptr, coo.cols.copy(), coo.vals.copy())

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense))

    def to_coo(self) -> COOMatrix:
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        return COOMatrix(self.shape, rows, self.indices, self.data)

    def to_dense(self) -> np.ndarray:
        return self.to_coo().to_dense()

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Column indices and values of row ``i``."""
        if not 0 <= i < self.shape[0]:
            raise ShapeError(f"row {i} out of range")
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def iter_rows(self) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        for i in range(self.shape[0]):
            cols, vals = self.row(i)
            yield i, cols, vals

    def storage_bytes(self, data_width: int = 4, index_width: int = 4) -> int:
        """Bytes occupied: indptr + indices + data at the given widths."""
        return (
            self.indptr.shape[0] * index_width
            + self.indices.shape[0] * index_width
            + self.data.shape[0] * data_width
        )

    def __repr__(self) -> str:
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"


class CSCMatrix:
    """Compressed sparse column matrix (CSR of the transpose)."""

    __slots__ = ("shape", "indptr", "indices", "data")

    def __init__(
        self,
        shape: Tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ) -> None:
        # Validate by constructing the transposed CSR view.
        csr = CSRMatrix((shape[1], shape[0]), indptr, indices, data)
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = csr.indptr
        self.indices = csr.indices
        self.data = csr.data

    @property
    def nnz(self) -> int:
        return int(self.data.shape[0])

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSCMatrix":
        transposed = COOMatrix(
            (coo.shape[1], coo.shape[0]), coo.cols, coo.rows, coo.vals
        )
        csr = CSRMatrix.from_coo(transposed)
        return cls(coo.shape, csr.indptr, csr.indices, csr.data)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSCMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense))

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        for j in range(self.shape[1]):
            lo, hi = self.indptr[j], self.indptr[j + 1]
            out[self.indices[lo:hi], j] = self.data[lo:hi]
        return out

    def col(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """Row indices and values of column ``j``."""
        if not 0 <= j < self.shape[1]:
            raise ShapeError(f"column {j} out of range")
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def __repr__(self) -> str:
        return f"CSCMatrix(shape={self.shape}, nnz={self.nnz})"
