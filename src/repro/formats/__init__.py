"""Sparse storage formats.

This package implements every storage format the paper discusses:

- :class:`COOMatrix`, :class:`CSRMatrix`, :class:`CSCMatrix` — conventional
  matrix formats (Section 4, Related Work).
- :class:`ExtendedCSRTensor` — the paper's extended-CSR layout for 3-d
  tensors (Fig. 3b), the strawman CISS is compared against.
- :class:`CSFTensor` — SPLATT's compressed sparse fiber tree, used by the
  CPU baseline.
- :class:`CISRMatrix` — Fowers et al.'s compressed interleaved sparse row,
  the matrix-only prior work CISS generalizes.
- :class:`CISSMatrix` / :class:`CISSTensor` — the paper's contribution:
  compressed interleaved sparse slice, for matrices and 3-d tensors.

All formats encode from and decode back to the canonical COO substrate
(:class:`repro.tensor.SparseTensor` or raw triplets) so round-trips are
testable uniformly.
"""

from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix, CSCMatrix
from repro.formats.extended_csr import ExtendedCSRTensor
from repro.formats.csf import CSFTensor
from repro.formats.cisr import CISRMatrix
from repro.formats.ciss import (
    CISSMatrix,
    CISSTensor,
    KIND_HEADER,
    KIND_NNZ,
    KIND_PAD,
)
from repro.formats.ciss_nd import CISSTensorND
from repro.formats.hicoo import HiCOOTensor
from repro.formats.stats import FormatStats, format_stats
from repro.formats.convert import (
    convert_matrix,
    convert_tensor,
    matrix_to_coo,
    tensor_to_coo,
)

__all__ = [
    "CISSTensorND",
    "HiCOOTensor",
    "convert_matrix",
    "convert_tensor",
    "matrix_to_coo",
    "tensor_to_coo",
    "FormatStats",
    "format_stats",
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "ExtendedCSRTensor",
    "CSFTensor",
    "CISRMatrix",
    "CISSMatrix",
    "CISSTensor",
    "KIND_HEADER",
    "KIND_NNZ",
    "KIND_PAD",
]
