"""Extended CSR for 3-d tensors — the strawman format of Fig. 3b.

All nonzeros are stored contiguously as ``(value, j, k)`` records in slice
order, and an array of slice pointers marks where each mode-0 slice begins.
When multiple PEs each stream a different slice, their per-cycle accesses
land at far-apart addresses — the bandwidth pathology CISS fixes (Fig. 3c/e).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.tensor import SparseTensor
from repro.util.errors import FormatError, ShapeError


class ExtendedCSRTensor:
    """Slice-pointer + record-stream layout for a 3-d sparse tensor.

    Attributes
    ----------
    slice_ptr:
        ``(I + 1,)`` pointers into the record stream; slice ``i`` owns records
        ``[slice_ptr[i], slice_ptr[i+1])``.
    j_idx, k_idx, vals:
        Aligned record arrays for the mode-1 index, mode-2 index and value.
    """

    __slots__ = ("shape", "slice_ptr", "j_idx", "k_idx", "vals")

    def __init__(
        self,
        shape: Tuple[int, int, int],
        slice_ptr: np.ndarray,
        j_idx: np.ndarray,
        k_idx: np.ndarray,
        vals: np.ndarray,
    ) -> None:
        if len(shape) != 3:
            raise ShapeError("ExtendedCSRTensor stores 3-d tensors")
        self.shape = tuple(int(s) for s in shape)
        self.slice_ptr = np.asarray(slice_ptr, dtype=np.int64)
        self.j_idx = np.asarray(j_idx, dtype=np.int64)
        self.k_idx = np.asarray(k_idx, dtype=np.int64)
        self.vals = np.asarray(vals, dtype=np.float64)
        if self.slice_ptr.shape != (self.shape[0] + 1,):
            raise FormatError("slice_ptr must have length I+1")
        if not (self.j_idx.shape == self.k_idx.shape == self.vals.shape):
            raise FormatError("record arrays must align")
        if self.slice_ptr[0] != 0 or self.slice_ptr[-1] != self.vals.shape[0]:
            raise FormatError("slice_ptr endpoints inconsistent with records")
        if np.any(np.diff(self.slice_ptr) < 0):
            raise FormatError("slice_ptr must be non-decreasing")

    @property
    def nnz(self) -> int:
        return int(self.vals.shape[0])

    @classmethod
    def from_sparse(cls, tensor: SparseTensor) -> "ExtendedCSRTensor":
        if tensor.ndim != 3:
            raise ShapeError("ExtendedCSRTensor stores 3-d tensors")
        counts = tensor.slice_nnz_counts(0)
        slice_ptr = np.zeros(tensor.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=slice_ptr[1:])
        coords = tensor.coords  # canonical order is already slice-major
        return cls(
            tensor.shape, slice_ptr, coords[:, 1], coords[:, 2], tensor.values
        )

    def to_sparse(self) -> SparseTensor:
        i_idx = np.repeat(np.arange(self.shape[0]), np.diff(self.slice_ptr))
        coords = np.stack([i_idx, self.j_idx, self.k_idx], axis=1)
        return SparseTensor(self.shape, coords, self.vals)

    def slice_records(
        self, i: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The ``(j, k, value)`` records of slice ``i``."""
        if not 0 <= i < self.shape[0]:
            raise ShapeError(f"slice {i} out of range")
        lo, hi = self.slice_ptr[i], self.slice_ptr[i + 1]
        return self.j_idx[lo:hi], self.k_idx[lo:hi], self.vals[lo:hi]

    def record_bytes(self, data_width: int = 4, index_width: int = 2) -> int:
        """Bytes per ``(value, j, k)`` record at the given field widths."""
        return data_width + 2 * index_width

    def pe_address_trace(
        self,
        num_pes: int,
        data_width: int = 4,
        index_width: int = 2,
        base_address: int = 0,
    ) -> List[List[Tuple[int, int]]]:
        """Per-cycle ``(address, size)`` requests for ``num_pes`` streaming PEs.

        Slices are assigned to PEs with the same least-loaded policy CISS
        uses, so the comparison in Fig. 3e isolates *layout* (where the bytes
        live), not scheduling. Each inner list is the set of simultaneous
        requests at one cycle; PE ``p``'s request at cycle ``t`` is its
        ``t``-th record, located wherever the slice-major layout put it.
        """
        rec = self.record_bytes(data_width, index_width)
        # Least-loaded assignment over nonempty slices, in slice order.
        loads = [0] * num_pes
        per_pe_offsets: List[List[int]] = [[] for _ in range(num_pes)]
        for i in range(self.shape[0]):
            lo, hi = int(self.slice_ptr[i]), int(self.slice_ptr[i + 1])
            if lo == hi:
                continue
            pe = min(range(num_pes), key=lambda p: loads[p])
            # One extra access for the slice pointer itself.
            loads[pe] += 1 + (hi - lo)
            per_pe_offsets[pe].append(-1 - i)  # pointer fetch marker
            per_pe_offsets[pe].extend(range(lo, hi))
        depth = max((len(seq) for seq in per_pe_offsets), default=0)
        trace: List[List[Tuple[int, int]]] = []
        ptr_base = base_address
        rec_base = base_address + (self.shape[0] + 1) * 8
        for t in range(depth):
            cycle: List[Tuple[int, int]] = []
            for p in range(num_pes):
                if t >= len(per_pe_offsets[p]):
                    continue
                off = per_pe_offsets[p][t]
                if off < 0:  # slice-pointer access
                    cycle.append((ptr_base + (-off - 1) * 8, 8))
                else:
                    cycle.append((rec_base + off * rec, rec))
            trace.append(cycle)
        return trace

    def __repr__(self) -> str:
        return f"ExtendedCSRTensor(shape={self.shape}, nnz={self.nnz})"
