"""N-dimensional generalization of CISS.

Section 4: "Although described for 3-d tensors, the CISS format can be
easily generalized to 2-d matrices and tensors with more than three
dimensions." This module makes that concrete: a lane record for an
N-dimensional tensor carries ``N - 1`` index fields —

- header records (``nnz == 0``): the first index field holds the slice
  index along the slicing mode; the rest are don't-cares;
- nonzero records: the index fields hold the remaining modes' indices in
  increasing mode order.

The 3-d :class:`repro.formats.CISSTensor` is the ``ndim == 3`` special case
(same scheduling, same sentinel semantics); :class:`CISSTensorND` accepts
any ``ndim >= 2`` and exposes the same stream/byte accounting so the
bandwidth analyses extend to higher-order tensors.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.formats.ciss import (
    KIND_HEADER,
    KIND_NNZ,
    KIND_PAD,
    _contiguous_groups,
    _resolve_ciss_engine,
    _schedule_groups,
    least_loaded_deal,
)
from repro.tensor import SparseTensor
from repro.util.errors import FormatError, ShapeError


class CISSTensorND:
    """CISS encoding of an N-dimensional sparse tensor.

    Attributes
    ----------
    kinds:
        ``(entries, lanes)`` record-kind plane.
    idx:
        ``(entries, lanes, ndim - 1)`` index fields. For headers only field
        0 is meaningful (the slice index); for nonzeros field ``f`` is the
        index of remaining mode ``f``.
    vals:
        ``(entries, lanes)`` value plane (0 for headers/padding).
    """

    __slots__ = ("shape", "mode", "num_lanes", "kinds", "idx", "vals")

    def __init__(
        self,
        shape: Tuple[int, ...],
        mode: int,
        num_lanes: int,
        kinds: np.ndarray,
        idx: np.ndarray,
        vals: np.ndarray,
    ) -> None:
        self.shape = tuple(int(s) for s in shape)
        ndim = len(self.shape)
        if ndim < 2:
            raise ShapeError("CISSTensorND needs at least 2 modes")
        if not 0 <= mode < ndim:
            raise ShapeError(f"slice mode {mode} out of range")
        if num_lanes <= 0:
            raise ShapeError("num_lanes must be positive")
        self.mode = int(mode)
        self.num_lanes = int(num_lanes)
        self.kinds = np.asarray(kinds, dtype=np.uint8)
        self.idx = np.asarray(idx, dtype=np.int64)
        self.vals = np.asarray(vals, dtype=np.float64)
        if self.kinds.ndim != 2 or self.kinds.shape[1] != self.num_lanes:
            raise FormatError("kinds must be (entries, lanes)")
        if self.idx.shape != self.kinds.shape + (ndim - 1,):
            raise FormatError("idx must be (entries, lanes, ndim-1)")
        if self.vals.shape != self.kinds.shape:
            raise FormatError("vals must align with kinds")
        if np.any(self.vals[self.kinds == KIND_HEADER] != 0.0):
            raise FormatError("header records must carry value 0")
        if np.any(self.vals[self.kinds == KIND_NNZ] == 0.0):
            raise FormatError("nonzero records must carry a nonzero value")

    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def num_entries(self) -> int:
        return int(self.kinds.shape[0])

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.kinds == KIND_NNZ))

    @property
    def index_fields(self) -> int:
        return self.ndim - 1

    def entry_bytes(self, data_width: int = 4, index_width: int = 2) -> int:
        """Paper formula generalized: ``(dw + (ndim-1)*iw) * P``."""
        return (data_width + self.index_fields * index_width) * self.num_lanes

    def stream_bytes(self, data_width: int = 4, index_width: int = 2) -> int:
        return self.num_entries * self.entry_bytes(data_width, index_width)

    def lane_nnz_counts(self) -> np.ndarray:
        return np.count_nonzero(self.kinds == KIND_NNZ, axis=0)

    def padding_fraction(self) -> float:
        if self.kinds.size == 0:
            return 0.0
        return float(np.count_nonzero(self.kinds == KIND_PAD)) / self.kinds.size

    # ------------------------------------------------------------------
    @classmethod
    def from_sparse(
        cls,
        tensor: SparseTensor,
        num_lanes: int,
        mode: int = 0,
        engine: str | None = None,
    ) -> "CISSTensorND":
        """Encode, slicing along ``mode``; remaining modes keep their order.

        ``engine`` selects the vectorized (``"fast"``) or reference
        (``"legacy"``) encoder; both produce bit-identical planes.
        """
        ndim = tensor.ndim
        if ndim < 2:
            raise ShapeError("CISSTensorND needs at least 2 modes")
        if not 0 <= mode < ndim:
            raise ShapeError(f"slice mode {mode} out of range")
        rest = [m for m in range(ndim) if m != mode]
        perm = tensor if mode == 0 else tensor.permute_modes([mode] + rest)
        if _resolve_ciss_engine(engine) == "fast":
            return cls._from_sparse_fast(tensor, perm, num_lanes, mode)
        counts = perm.slice_nnz_counts(0)
        nonempty = np.flatnonzero(counts)
        starts = np.zeros(perm.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        group_start = (
            np.append(starts[nonempty], perm.nnz)
            if nonempty.size
            else np.array([0], dtype=np.int64)
        )
        assignment = _schedule_groups(nonempty, group_start, num_lanes)
        coords = perm.coords
        depth = max(
            (sum(1 + hi - lo for _g, lo, hi in asg) for asg in assignment),
            default=0,
        )
        kinds = np.full((depth, num_lanes), KIND_PAD, dtype=np.uint8)
        idx = np.full((depth, num_lanes, ndim - 1), -1, dtype=np.int64)
        vals = np.zeros((depth, num_lanes), dtype=np.float64)
        for lane, asg in enumerate(assignment):
            if not asg:
                continue
            gids = np.array([g for g, _lo, _hi in asg], dtype=np.int64)
            los = np.array([lo for _g, lo, _hi in asg], dtype=np.int64)
            his = np.array([hi for _g, _lo, hi in asg], dtype=np.int64)
            seg = 1 + his - los
            ends = np.cumsum(seg)
            heads = ends - seg
            kinds[heads, lane] = KIND_HEADER
            idx[heads, lane, 0] = gids
            total = int(ends[-1])
            mask = np.ones(total, dtype=bool)
            mask[heads] = False
            pos = np.flatnonzero(mask)
            if pos.size:
                src = np.concatenate(
                    [np.arange(lo, hi, dtype=np.int64) for lo, hi in zip(los, his)]
                )
                kinds[pos, lane] = KIND_NNZ
                idx[pos, lane, :] = coords[src][:, 1:]
                vals[pos, lane] = perm.values[src]
        return cls(tensor.shape, mode, num_lanes, kinds, idx, vals)

    @classmethod
    def _from_sparse_fast(
        cls,
        tensor: SparseTensor,
        perm: SparseTensor,
        num_lanes: int,
        mode: int,
    ) -> "CISSTensorND":
        """Vectorized encoder: heap deal + one scatter per plane.

        Same construction as :func:`repro.formats.ciss._build_planes_fast`
        with an ``(entries, lanes, ndim-1)`` index plane instead of the
        3-d ``a_idx``/``k_idx`` pair; bit-identical to the legacy loop.
        """
        ndim = tensor.ndim
        coords = perm.coords
        group_ids, group_first, group_sizes = _contiguous_groups(coords[:, 0])
        g_lane, g_off = least_loaded_deal(1 + group_sizes, num_lanes)
        num_groups = int(group_ids.shape[0])
        depth = int((g_off + 1 + group_sizes).max()) if num_groups else 0
        kinds = np.full((depth, num_lanes), KIND_PAD, dtype=np.uint8)
        idx = np.full((depth, num_lanes, ndim - 1), -1, dtype=np.int64)
        vals = np.zeros((depth, num_lanes), dtype=np.float64)
        if num_groups:
            kinds[g_off, g_lane] = KIND_HEADER
            idx[g_off, g_lane, 0] = group_ids
            total = int(group_first[-1] + group_sizes[-1])
            rec_group = np.repeat(np.arange(num_groups, dtype=np.int64), group_sizes)
            rec_row = (
                g_off[rec_group]
                + 1
                + (np.arange(total, dtype=np.int64) - group_first[rec_group])
            )
            rec_col = g_lane[rec_group]
            kinds[rec_row, rec_col] = KIND_NNZ
            idx[rec_row, rec_col, :] = coords[:, 1:]
            vals[rec_row, rec_col] = perm.values
        return cls(tensor.shape, mode, num_lanes, kinds, idx, vals)

    def to_sparse(self) -> SparseTensor:
        """Decode every lane independently back to canonical COO form."""
        ndim = self.ndim
        rest = [m for m in range(ndim) if m != self.mode]
        coords_out: List[np.ndarray] = []
        vals_out: List[float] = []
        for lane in range(self.num_lanes):
            current = -1
            for t in range(self.num_entries):
                kind = self.kinds[t, lane]
                if kind == KIND_PAD:
                    continue
                if kind == KIND_HEADER:
                    current = int(self.idx[t, lane, 0])
                    continue
                if current < 0:
                    raise FormatError("nonzero record before any slice header")
                row = np.empty(ndim, dtype=np.int64)
                row[0] = current
                row[1:] = self.idx[t, lane, :]
                coords_out.append(row)
                vals_out.append(float(self.vals[t, lane]))
        perm_shape = (self.shape[self.mode],) + tuple(self.shape[m] for m in rest)
        coords_arr = (
            np.stack(coords_out)
            if coords_out
            else np.empty((0, ndim), dtype=np.int64)
        )
        perm = SparseTensor(
            perm_shape, coords_arr, np.array(vals_out, dtype=np.float64)
        )
        inverse = np.argsort([self.mode] + rest)
        return perm.permute_modes(inverse)

    def __repr__(self) -> str:
        return (
            f"CISSTensorND(shape={self.shape}, mode={self.mode}, "
            f"lanes={self.num_lanes}, entries={self.num_entries})"
        )
