"""Per-workload tuned-config registry, persisted through the artifact store.

A :class:`TunedRegistry` records the winning design point of each
:class:`~repro.tune.search.TuneOutcome` under the workload's content
fingerprint, so later runs (CLI, benchmarks, serving setup) can ask "has
this exact workload been tuned?" and get the params back without
re-searching. A small index entry keeps the set of known workloads
enumerable (the store itself is content-addressed and unlistable by
meaning).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.artifacts import ArtifactStore
from repro.sim.config import TensaurusConfig
from repro.tune.search import TuneOutcome
from repro.tune.workload import TuneWorkload

#: Registry schema; bump when the entry layout changes.
TUNED_SCHEMA = "tuned-v1"
TUNED_NAMESPACE = "tuned"
_INDEX_PARTS = (TUNED_SCHEMA, "index")


@dataclass(frozen=True)
class TunedConfigEntry:
    """One tuned workload: the winning overrides and their provenance."""

    workload: str            # human-readable name at record time
    fingerprint: str         # content digest (the lookup key)
    kernel: str
    params: Dict[str, object]
    cycles: int
    baseline_cycles: int
    seed: int
    budget: int
    oracle_sims: int

    @property
    def improvement(self) -> float:
        return 1.0 - self.cycles / max(self.baseline_cycles, 1)

    def config(self, base: Optional[TensaurusConfig] = None) -> TensaurusConfig:
        """Realize the tuned config against ``base`` (paper default)."""
        return (base or TensaurusConfig()).scaled(**self.params)

    def to_json(self) -> dict:
        return {
            "workload": self.workload,
            "fingerprint": self.fingerprint,
            "kernel": self.kernel,
            "params": dict(self.params),
            "cycles": self.cycles,
            "baseline_cycles": self.baseline_cycles,
            "improvement": self.improvement,
            "seed": self.seed,
            "budget": self.budget,
            "oracle_sims": self.oracle_sims,
        }


class TunedRegistry:
    """Fingerprint-keyed store of tuned configs."""

    def __init__(self, store: ArtifactStore) -> None:
        self.store = store

    # ------------------------------------------------------------------
    def _parts(self, fingerprint: str) -> tuple:
        return (TUNED_SCHEMA, fingerprint)

    def _index(self) -> Dict[str, str]:
        """fingerprint -> workload name for every recorded entry."""
        return dict(self.store.load(TUNED_NAMESPACE, _INDEX_PARTS, {}))

    def record(
        self, workload: TuneWorkload, outcome: TuneOutcome
    ) -> TunedConfigEntry:
        """Persist a search outcome as the tuned entry for ``workload``."""
        fp = workload.fingerprint()
        entry = TunedConfigEntry(
            workload=workload.name,
            fingerprint=fp,
            kernel=workload.kernel,
            params=dict(outcome.best_params),
            cycles=outcome.best_cycles,
            baseline_cycles=outcome.baseline_cycles,
            seed=outcome.seed,
            budget=outcome.budget,
            oracle_sims=outcome.oracle_sims,
        )
        self.store.put(TUNED_NAMESPACE, self._parts(fp), entry)
        index = self._index()
        index[fp] = workload.name
        self.store.put(TUNED_NAMESPACE, _INDEX_PARTS, index)
        return entry

    def lookup(self, workload: TuneWorkload) -> Optional[TunedConfigEntry]:
        """The tuned entry for this exact workload content, if recorded."""
        return self.store.load(
            TUNED_NAMESPACE, self._parts(workload.fingerprint())
        )

    def config_for(
        self,
        workload: TuneWorkload,
        base: Optional[TensaurusConfig] = None,
    ) -> TensaurusConfig:
        """The tuned config for ``workload``, or ``base`` when untuned."""
        entry = self.lookup(workload)
        base = base or TensaurusConfig()
        return entry.config(base) if entry is not None else base

    def entries(self) -> List[TunedConfigEntry]:
        """Every recorded entry, sorted by workload name then fingerprint."""
        out = []
        for fp in self._index():
            entry = self.store.load(TUNED_NAMESPACE, self._parts(fp))
            if entry is not None:
                out.append(entry)
        return sorted(out, key=lambda e: (e.workload, e.fingerprint))

    def as_table(self) -> str:
        """Human-readable summary (the ``repro tune --list`` output)."""
        entries = self.entries()
        if not entries:
            return "no tuned configs recorded"
        lines = [
            f"{'workload':<28} {'kernel':<8} {'improvement':>11} "
            f"{'cycles':>12} {'params'}"
        ]
        for e in entries:
            params = ", ".join(f"{k}={v}" for k, v in sorted(e.params.items()))
            lines.append(
                f"{e.workload:<28} {e.kernel:<8} {e.improvement:>10.1%} "
                f"{e.cycles:>12,} {params or '(paper default)'}"
            )
        return "\n".join(lines)
