"""Workload descriptions the tuner optimizes against.

A :class:`TuneWorkload` pins down one kernel invocation — the sparse
operand, kernel, rank/mode parameters, MSU policy — in a form that every
tier of the tuner can consume:

- the **cheap tier** calls :meth:`fast_report` (closed-form
  :class:`~repro.sim.perfmodel.FastModel`);
- the **oracle tier** calls :meth:`runner`, a picklable callable suitable
  for :func:`repro.sim.sweep.sweep_points` process fan-out. The dense
  factor operands are synthesized deterministically inside the worker from
  shapes (timing ignores values under ``compute_output=False``), so only
  the sparse structure rides to workers — and with :meth:`shared`, even
  that collapses to shared-memory segment metadata
  (:class:`repro.sim.shm.SharedOperands`);
- the **artifact layer** keys oracle memoization on
  :meth:`fingerprint`, a content digest of the operand and kernel
  parameters, so cached cycle counts never alias across workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.artifacts import fingerprint_value
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.sim.config import TensaurusConfig
from repro.sim.perfmodel import FastModel
from repro.sim.report import SimReport
from repro.sim.shm import SharedOperands
from repro.tensor import SparseTensor
from repro.util.errors import ConfigError, KernelError
from repro.util.rng import make_rng

TENSOR_KERNELS = ("mttkrp", "ttmc")
MATRIX_KERNELS = ("spmm", "spmv")
#: Seed for the synthesized dense factors (values don't affect timing).
FACTOR_SEED = 0


def _canonical_kernel(kernel: str) -> str:
    k = kernel.lower()
    aliases = {
        "spmttkrp": "mttkrp", "dmttkrp": "mttkrp", "mttkrp": "mttkrp",
        "spttmc": "ttmc", "dttmc": "ttmc", "ttmc": "ttmc",
        "spmm": "spmm", "gemm": "spmm",
        "spmv": "spmv", "gemv": "spmv",
    }
    if k not in aliases:
        raise KernelError(f"unknown kernel {kernel!r}")
    return aliases[k]


@dataclass(frozen=True)
class TuneWorkload:
    """One kernel invocation to tune a config for."""

    kernel: str           # canonical: mttkrp | ttmc | spmm | spmv
    name: str             # human-readable registry key, e.g. "mttkrp/nell-2/r32"
    operand: object       # SparseTensor (tensor kernels) or COO/CSR matrix
    rank: int = 0         # F / F1 / SpMM dense columns
    rank2: int = 0        # TTMc F2
    mode: int = 0         # tensor target mode
    msu_mode: str = "auto"

    def __post_init__(self) -> None:
        object.__setattr__(self, "kernel", _canonical_kernel(self.kernel))
        if self.kernel in TENSOR_KERNELS:
            if not isinstance(self.operand, SparseTensor):
                raise ConfigError(f"{self.kernel} needs a SparseTensor operand")
            if self.rank <= 0:
                raise ConfigError(f"{self.kernel} needs a positive rank")
        else:
            if not isinstance(self.operand, (COOMatrix, CSRMatrix)):
                raise ConfigError(f"{self.kernel} needs a sparse matrix operand")
            if self.kernel == "spmm" and self.rank <= 0:
                raise ConfigError("spmm needs a positive column count (rank)")

    # ------------------------------------------------------------------
    @classmethod
    def mttkrp(cls, tensor, rank, mode=0, msu_mode="auto", name=None):
        return cls("mttkrp", name or f"mttkrp/r{rank}", tensor,
                   rank=rank, mode=mode, msu_mode=msu_mode)

    @classmethod
    def ttmc(cls, tensor, rank1, rank2=0, mode=0, msu_mode="auto", name=None):
        return cls("ttmc", name or f"ttmc/r{rank1}x{rank2 or rank1}", tensor,
                   rank=rank1, rank2=rank2 or rank1, mode=mode,
                   msu_mode=msu_mode)

    @classmethod
    def spmm(cls, matrix, ncols, msu_mode="auto", name=None):
        return cls("spmm", name or f"spmm/n{ncols}", matrix,
                   rank=ncols, msu_mode=msu_mode)

    @classmethod
    def spmv(cls, matrix, msu_mode="auto", name=None):
        return cls("spmv", name or "spmv", matrix, msu_mode=msu_mode)

    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Content digest for oracle memoization (excludes ``name``)."""
        return fingerprint_value(
            "tune-workload", self.kernel, self.operand,
            self.rank, self.rank2, self.mode, self.msu_mode,
        )

    def stats(self) -> dict:
        """Aggregate structure statistics (for logs and benchmarks)."""
        op = self.operand
        if isinstance(op, SparseTensor):
            shape, nnz = tuple(op.shape), op.nnz
        else:
            coo = op.to_coo() if isinstance(op, CSRMatrix) else op
            shape, nnz = tuple(coo.shape), coo.nnz
        return {
            "kernel": self.kernel,
            "shape": list(shape),
            "nnz": int(nnz),
            "density": float(nnz) / float(np.prod(shape)),
            "rank": self.rank,
            "rank2": self.rank2,
            "mode": self.mode,
            "msu_mode": self.msu_mode,
        }

    def fast_report(self, config: TensaurusConfig) -> SimReport:
        """Cheap-tier estimate under ``config`` (closed-form FastModel)."""
        return FastModel(config).run(
            self.kernel, self.operand, rank=self.rank, rank2=self.rank2,
            mode=self.mode, msu_mode=self.msu_mode,
        )

    # ------------------------------------------------------------------
    def _payload(self, shared: Optional[SharedOperands]) -> dict:
        """Serializable operand description for :class:`WorkloadRunner`."""
        op = self.operand
        common = dict(
            kernel=self.kernel, rank=self.rank, rank2=self.rank2,
            mode=self.mode, msu_mode=self.msu_mode,
        )
        if isinstance(op, SparseTensor):
            arrays = {"coords": op.coords, "values": op.values}
            common.update(kind="tensor", shape=tuple(op.shape))
        else:
            coo = op.to_coo() if isinstance(op, CSRMatrix) else op
            arrays = {"rows": coo.rows, "cols": coo.cols, "vals": coo.vals}
            common.update(kind="matrix", shape=tuple(coo.shape))
        if shared is None:
            common["arrays"] = {k: np.asarray(v) for k, v in arrays.items()}
        else:
            common["arrays"] = shared
        return common

    def shared(self) -> Tuple[SharedOperands, "WorkloadRunner"]:
        """A zero-copy oracle runner: operand arrays live in one POSIX
        shared-memory segment; the runner pickles as metadata only.

        The caller owns the segment — use the :class:`SharedOperands` as a
        context manager (or call ``close``/``unlink``) once the sweep that
        consumed the runner has finished.
        """
        op = self.operand
        if isinstance(op, SparseTensor):
            arrays = {"coords": op.coords, "values": op.values}
        else:
            coo = op.to_coo() if isinstance(op, CSRMatrix) else op
            arrays = {"rows": coo.rows, "cols": coo.cols, "vals": coo.vals}
        shm = SharedOperands.create(arrays)
        return shm, WorkloadRunner(self._payload(shm))

    def runner(self) -> "WorkloadRunner":
        """A picklable oracle runner carrying the operand arrays inline."""
        return WorkloadRunner(self._payload(None))


class WorkloadRunner:
    """Module-level picklable runner for ``sweep_configs``/``sweep_points``.

    Reconstructs the sparse operand (from inline arrays or a shared-memory
    mapping), synthesizes the dense factors from shapes with a fixed seed,
    and runs the kernel on the accelerator it is handed with
    ``compute_output=False`` (timing only — values never matter).
    """

    def __init__(self, payload: dict) -> None:
        self._p = payload
        self._operand = None

    def _get(self, key: str) -> np.ndarray:
        return self._p["arrays"][key]

    def _build_operand(self):
        if self._operand is None:
            if self._p["kind"] == "tensor":
                # Coordinates are canonical by construction (they came out
                # of a SparseTensor), so skip re-validation; the arrays may
                # be read-only shared-memory views, which the constructors
                # never mutate.
                self._operand = SparseTensor(
                    self._p["shape"], self._get("coords"),
                    self._get("values"), canonical=True,
                )
            else:
                self._operand = COOMatrix(
                    self._p["shape"], self._get("rows"),
                    self._get("cols"), self._get("vals"),
                )
        return self._operand

    def __call__(self, acc) -> SimReport:
        p = self._p
        op = self._build_operand()
        rng = make_rng(FACTOR_SEED)
        if p["kernel"] == "mttkrp":
            rest = [m for m in range(3) if m != p["mode"]]
            b = rng.random((op.shape[rest[0]], p["rank"]))
            c = rng.random((op.shape[rest[1]], p["rank"]))
            return acc.run_mttkrp(
                op, b, c, mode=p["mode"], msu_mode=p["msu_mode"],
                compute_output=False,
            )
        if p["kernel"] == "ttmc":
            rest = [m for m in range(3) if m != p["mode"]]
            b = rng.random((op.shape[rest[0]], p["rank"]))
            c = rng.random((op.shape[rest[1]], p["rank2"]))
            return acc.run_ttmc(
                op, b, c, mode=p["mode"], msu_mode=p["msu_mode"],
                compute_output=False,
            )
        if p["kernel"] == "spmm":
            b = rng.random((op.shape[1], p["rank"]))
            return acc.run_spmm(
                op, b, msu_mode=p["msu_mode"], compute_output=False
            )
        x = rng.random(op.shape[1])
        return acc.run_spmv(
            op, x, msu_mode=p["msu_mode"], compute_output=False
        )

    def __getstate__(self) -> dict:
        # The lazily-built operand never rides the pickle stream; workers
        # rebuild it from the (possibly shared-memory) arrays.
        return {"_p": self._p}

    def __setstate__(self, state: dict) -> None:
        self._p = state["_p"]
        self._operand = None

    def __repr__(self) -> str:
        via = (
            "shm" if isinstance(self._p["arrays"], SharedOperands)
            else "inline"
        )
        return f"WorkloadRunner({self._p['kernel']}, {via})"


def workload_from_dataset(
    kernel: str,
    dataset: str,
    rank: int = 32,
    mode: int = 0,
    msu_mode: str = "auto",
    store=None,
) -> TuneWorkload:
    """Build a :class:`TuneWorkload` from a registered dataset name."""
    from repro import datasets

    k = _canonical_kernel(kernel)
    name = f"{k}/{dataset}/r{rank}" if k != "spmv" else f"{k}/{dataset}"
    if k in TENSOR_KERNELS:
        tensor = datasets.load_tensor(dataset, store=store)
        if k == "mttkrp":
            return TuneWorkload.mttkrp(
                tensor, rank, mode=mode, msu_mode=msu_mode, name=name
            )
        return TuneWorkload.ttmc(
            tensor, rank, rank, mode=mode, msu_mode=msu_mode, name=name
        )
    if dataset in datasets.SUITESPARSE_DATASETS:
        matrix = datasets.load_matrix(dataset, store=store)
    elif dataset in datasets.CNN_LAYERS:
        matrix = datasets.load_cnn_layer(dataset, store=store)
    else:
        raise ConfigError(f"unknown matrix dataset {dataset!r}")
    if k == "spmm":
        return TuneWorkload.spmm(matrix, rank, msu_mode=msu_mode, name=name)
    return TuneWorkload.spmv(matrix, msu_mode=msu_mode, name=name)
