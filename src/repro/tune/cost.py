"""Learned cost model: featurized config x workload -> predicted cycles.

The model is a ridge regression (plain numpy normal equations) on
log-cycles, bootstrapped from the closed-form
:class:`repro.sim.perfmodel.FastModel` and refit incrementally as
cycle-level oracle measurements arrive. The key trick is that the fast
model's estimate is itself a *feature* (``log_fast``): with zero
measurements the model predicts the fast estimate verbatim, and every
oracle measurement teaches it a workload-specific correction — which knob
interactions the analytic model gets wrong (bank-conflict behaviour above
all; see the Spearman floor test in ``tests/test_perfmodel_agreement.py``
for what the fast tier does and does not rank correctly on its own).

Everything here is deterministic: same observations in, same weights out.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.sim.config import TensaurusConfig
from repro.sim.report import SimReport
from repro.util.errors import ConfigError

#: Feature vector layout (kept in one place so tests can assert against it).
FEATURE_NAMES = (
    "bias",
    "log_fast",          # the fast model's cycle estimate (the prior)
    "log_rows",
    "log_cols",
    "log_vlen",
    "log_spm_banks",
    "log_spm_kb",
    "log_msu_kb",
    "lanes_per_bank",    # rows/spm_banks drives bank-conflict stalls
    "log_macs",
    "log_passes",
    "mem_fraction",      # memory share of the fast model's max(compute, mem)
)

#: Refuse to extrapolate from fewer oracle points than features would allow
#: even ridge-regularized; below this the model just echoes ``log_fast``.
MIN_OBSERVATIONS = 4


def featurize(config: TensaurusConfig, fast_report: SimReport) -> np.ndarray:
    """One candidate's feature vector from its config and fast estimate."""
    fast = max(float(fast_report.cycles), 1.0)
    detail = fast_report.detail
    compute = float(detail.get("compute_cycles", fast))
    mem = float(detail.get("memory_cycles", fast))
    passes = max(int(detail.get("passes", 1)), 1)
    return np.array(
        [
            1.0,
            math.log(fast),
            math.log(config.rows),
            math.log(config.cols),
            math.log(config.vlen),
            math.log(config.spm_banks),
            math.log(config.spm_kb),
            math.log(config.msu_kb),
            config.rows / config.spm_banks,
            math.log(config.mac_units),
            math.log(passes),
            mem / max(compute + mem, 1e-12),
        ]
    )


class CostModel:
    """Ridge regression over :func:`featurize` vectors, in log-cycle space.

    ``observe`` accumulates (features, measured cycles) pairs; ``fit``
    re-solves the normal equations over everything observed so far (the
    design matrices here are tiny — tens of rows, a dozen columns — so a
    full refit per round costs microseconds and keeps the estimator
    deterministic and replayable).
    """

    def __init__(self, ridge_lambda: float = 1e-2) -> None:
        if ridge_lambda <= 0:
            raise ConfigError("ridge_lambda must be positive")
        self.ridge_lambda = float(ridge_lambda)
        self._features: List[np.ndarray] = []
        self._targets: List[float] = []
        self.weights: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def num_observations(self) -> int:
        return len(self._targets)

    @property
    def fitted(self) -> bool:
        return self.weights is not None

    def observe(self, features: np.ndarray, cycles: float) -> None:
        if cycles <= 0:
            raise ConfigError("measured cycles must be positive")
        self._features.append(np.asarray(features, dtype=float))
        self._targets.append(math.log(float(cycles)))

    def fit(self) -> bool:
        """Refit on everything observed. Returns True once fitted."""
        if self.num_observations < MIN_OBSERVATIONS:
            self.weights = None
            return False
        a = np.vstack(self._features)
        y = np.array(self._targets)
        gram = a.T @ a + self.ridge_lambda * np.eye(a.shape[1])
        self.weights = np.linalg.solve(gram, a.T @ y)
        return True

    def predict_log(self, features: np.ndarray) -> np.ndarray:
        """Predicted log-cycles for a (n, features) matrix or one vector.

        Unfitted, the prediction *is* the fast-model prior: the
        ``log_fast`` feature passes through unchanged.
        """
        x = np.atleast_2d(np.asarray(features, dtype=float))
        if self.weights is None:
            out = x[:, FEATURE_NAMES.index("log_fast")]
        else:
            out = x @ self.weights
        return out if np.asarray(features).ndim > 1 else out[0]

    def predict_cycles(self, features: np.ndarray) -> np.ndarray:
        return np.exp(self.predict_log(features))

    def training_rmse(self) -> float:
        """Log-space RMSE on the observations (0.0 until fitted)."""
        if self.weights is None or not self._targets:
            return 0.0
        a = np.vstack(self._features)
        y = np.array(self._targets)
        resid = a @ self.weights - y
        return float(np.sqrt(np.mean(resid**2)))

    def snapshot(self) -> dict:
        """JSON-friendly state summary for tune trajectories/benchmarks."""
        return {
            "observations": self.num_observations,
            "fitted": self.fitted,
            "ridge_lambda": self.ridge_lambda,
            "training_rmse": self.training_rmse(),
            "weights": (
                None if self.weights is None
                else [float(w) for w in self.weights]
            ),
        }


def rank_candidates(
    model: CostModel, feature_rows: Sequence[np.ndarray]
) -> np.ndarray:
    """Candidate indices sorted by predicted cycles, ascending.

    A stable argsort, so equal predictions keep enumeration order and the
    search trajectory is bit-reproducible.
    """
    preds = model.predict_log(np.vstack(feature_rows))
    return np.argsort(preds, kind="stable")
