"""Declarative search space over :class:`TensaurusConfig` fields.

A :class:`ConfigSpace` is a dict of config-field-name -> candidate-value
tuples plus validity constraints (predicates over the *realized* config, so
they can reference derived quantities like ``mac_units``). It owns the two
operations the tuner needs and nothing more:

- **deterministic enumeration** — the Cartesian product in sorted field
  order with values in declaration order, filtered by the constraints.
  Every consumer (tuner, exhaustive-grid baseline, tests) sees the same
  point list in the same order.
- **seeded sampling** — a without-replacement subset drawn with
  :func:`repro.util.rng.make_rng`, returned in enumeration order so a
  sampled search stays a prefix-stable subset of the full space.

Spaces are cheap descriptions; nothing is simulated here. The paper's
evaluated design point is always reachable as the empty-override dict
(``{}`` is *not* part of a space — the tuner measures the base config
separately so a search can never return something worse than the paper's
design).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import fields
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sim.config import TensaurusConfig
from repro.util.errors import ConfigError
from repro.util.rng import make_rng

#: A validity predicate over a realized config. Named functions (not
#: lambdas) keep spaces picklable and their reprs meaningful.
Constraint = Callable[[TensaurusConfig], bool]

#: Enumeration guard: spaces larger than this must be sampled, not listed.
MAX_ENUM = 1_000_000


def first_col_double(config: TensaurusConfig) -> bool:
    """The first SPM column holds two operand tiles (Section 5.2.3), so a
    consistent design point doubles it relative to the other columns."""
    return config.spm_first_col_kb == 2 * config.spm_kb


class max_mac_units:  # noqa: N801 — reads as a constraint factory
    """Constraint: at most ``limit`` scalar multipliers (iso-area-ish
    searches that must not "win" by simply building a bigger PE array)."""

    def __init__(self, limit: int) -> None:
        self.limit = int(limit)

    def __call__(self, config: TensaurusConfig) -> bool:
        return config.mac_units <= self.limit

    def __repr__(self) -> str:
        return f"max_mac_units({self.limit})"


class ConfigSpace:
    """An ordered, constrained, seeded-samplable config space."""

    def __init__(
        self,
        params: Mapping[str, Sequence],
        constraints: Sequence[Constraint] = (),
        base: Optional[TensaurusConfig] = None,
    ) -> None:
        self.base = base if base is not None else TensaurusConfig()
        valid = tuple(f.name for f in fields(TensaurusConfig))
        if not params:
            raise ConfigError("empty parameter space")
        clean: Dict[str, Tuple] = {}
        for name in sorted(params):
            if name not in valid:
                raise ConfigError(
                    f"unknown config field {name!r}; valid fields: "
                    + ", ".join(valid)
                )
            values = tuple(params[name])
            if not values:
                raise ConfigError(f"field {name!r} has no candidate values")
            if len(set(map(repr, values))) != len(values):
                raise ConfigError(f"field {name!r} has duplicate values")
            clean[name] = values
        self.params = clean
        self.constraints = tuple(constraints)
        self._points: Optional[List[Dict[str, object]]] = None

    # ------------------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self.params)

    @property
    def raw_size(self) -> int:
        """Product of the value-list lengths, before constraint filtering."""
        return math.prod(len(v) for v in self.params.values())

    @property
    def size(self) -> int:
        """Number of *valid* points (constraints applied)."""
        return len(self.points())

    def _realize(self, point: Dict[str, object]) -> TensaurusConfig:
        return self.base.scaled(**point)

    def is_valid(self, point: Dict[str, object]) -> bool:
        try:
            config = self._realize(point)
        except ConfigError:
            return False
        return all(c(config) for c in self.constraints)

    def points(self) -> List[Dict[str, object]]:
        """All valid points, in deterministic enumeration order (cached)."""
        if self._points is None:
            if self.raw_size > MAX_ENUM:
                raise ConfigError(
                    f"space has {self.raw_size} raw points (> {MAX_ENUM}); "
                    "use sample(n, seed) instead of full enumeration"
                )
            names = self.names
            self._points = [
                point
                for combo in itertools.product(
                    *(self.params[n] for n in names)
                )
                if self.is_valid(point := dict(zip(names, combo)))
            ]
            if not self._points:
                raise ConfigError("constraints reject every point in space")
        return self._points

    def configs(self) -> List[Tuple[Dict[str, object], TensaurusConfig]]:
        """``(params, realized config)`` for every valid point."""
        return [(p, self._realize(p)) for p in self.points()]

    def sample(self, n: int, seed: int = 0) -> List[Dict[str, object]]:
        """A seeded without-replacement subset, in enumeration order.

        For spaces past the enumeration guard, candidate raw points are
        drawn by mixed-radix index (still seeded and deterministic) and
        filtered; the draw oversamples to survive constraint rejection.
        """
        if n <= 0:
            raise ConfigError("sample size must be positive")
        rng = make_rng(seed)
        if self.raw_size <= MAX_ENUM:
            pts = self.points()
            if n >= len(pts):
                return list(pts)
            idx = rng.choice(len(pts), size=n, replace=False)
            return [pts[i] for i in sorted(idx.tolist())]
        names = self.names
        radices = [len(self.params[m]) for m in names]
        seen = set()
        picked: List[Tuple[int, Dict[str, object]]] = []
        # Rejection-sample raw indices; bounded rounds keep this finite
        # even when constraints are punishing.
        for _ in range(64):
            if len(picked) >= n:
                break
            draws = rng.integers(0, self.raw_size, size=4 * n)
            for lin in draws.tolist():
                if lin in seen:
                    continue
                seen.add(lin)
                point, rem = {}, lin
                for name, radix in zip(reversed(names), reversed(radices)):
                    point[name] = self.params[name][rem % radix]
                    rem //= radix
                point = {m: point[m] for m in names}
                if self.is_valid(point):
                    picked.append((lin, point))
                    if len(picked) >= n:
                        break
        return [p for _, p in sorted(picked, key=lambda t: t[0])]

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        dims = "x".join(str(len(v)) for v in self.params.values())
        cons = f", {len(self.constraints)} constraints" if self.constraints else ""
        return f"ConfigSpace({', '.join(self.names)}; {dims}{cons})"


def default_space(base: Optional[TensaurusConfig] = None) -> ConfigSpace:
    """The standard tuning space around the paper's design point.

    Sweeps the knobs the ablations identified as cycle-relevant — lane
    count (PE rows), SIMD width, SPM bank count, SPM/MSU sizing — with the
    first-column SPM tied to double the others (it holds two operand
    tiles). 972 raw points, 324 valid.
    """
    return ConfigSpace(
        {
            "rows": (4, 8, 16),
            "vlen": (2, 4, 8),
            "spm_banks": (4, 8, 16, 32),
            "spm_kb": (4, 16, 64),
            "spm_first_col_kb": (8, 32, 128),
            "msu_kb": (32, 128, 512),
        },
        constraints=(first_col_double,),
        base=base,
    )


def quick_space(base: Optional[TensaurusConfig] = None) -> ConfigSpace:
    """A 16-point space for smoke tests and tiny-budget CLI runs."""
    return ConfigSpace(
        {
            "rows": (8, 16),
            "spm_banks": (8, 32),
            "spm_kb": (16, 64),
            "msu_kb": (128, 512),
        },
        base=base,
    )
