"""Budgeted config search: the cost model prunes, the simulator decides.

The :class:`Tuner` runs a seeded successive-refinement loop over a
:class:`~repro.tune.space.ConfigSpace`:

1. **Bootstrap round** — rank every candidate by the closed-form
   :class:`~repro.sim.perfmodel.FastModel` estimate; measure the top half
   of the first batch on the cycle-level simulator plus a seeded-random
   half (so the ridge fit sees contrast, not just the analytic model's
   favourites).
2. **Refinement rounds** — refit the :class:`~repro.tune.cost.CostModel`
   on every oracle measurement so far, measure the top ``batch - 1``
   unmeasured candidates by *predicted* cycles plus one seeded-random
   exploration pick, until the measurement budget is spent.

The cycle-level oracle is dispatched through
:func:`repro.sim.sweep.sweep_points` (process fan-out with a
shared-memory operand handoff when ``workers > 1``) and memoized in an
:class:`~repro.artifacts.ArtifactStore` keyed on the workload fingerprint
and the realized config — a re-run of the same search costs zero
simulations and returns a bit-identical outcome.

Determinism contract: the search trajectory depends only on
``(workload, space, base, seed, budget, batch)``. Cache warmth changes
``oracle_sims`` (how many simulator invocations actually ran), never
``oracle_evals`` (how many design points were measured) nor which points
those are. The baseline config is always measured, so the tuned config is
never worse than the paper's fixed design.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.artifacts import ArtifactStore
from repro.sim.config import TensaurusConfig
from repro.sim.sweep import sweep_points
from repro.tune.cost import CostModel, featurize
from repro.tune.space import ConfigSpace
from repro.tune.workload import TuneWorkload
from repro.util.errors import ConfigError
from repro.util.rng import make_rng

#: Oracle-cache schema; bump when the cached summary layout changes.
ORACLE_SCHEMA = "tune-oracle-v1"
ORACLE_NAMESPACE = "tune-oracle"


def _point_key(params: Dict[str, object]) -> str:
    """Canonical JSON key for a parameter override dict."""
    return json.dumps(params, sort_keys=True, default=repr)


@dataclass
class Measurement:
    """One oracle-measured design point."""

    params: Dict[str, object]
    cycles: int
    ops: int
    total_bytes: int
    source: str  # "sim" | "cache"

    def to_json(self) -> dict:
        return {
            "params": dict(self.params),
            "cycles": self.cycles,
            "ops": self.ops,
            "total_bytes": self.total_bytes,
            "source": self.source,
        }


@dataclass
class TuneRound:
    """One batch of oracle measurements plus the model state that chose it."""

    index: int
    kind: str  # "baseline" | "bootstrap" | "refine"
    measurements: List[Measurement]
    best_cycles: int          # best seen after this round
    model: dict = field(default_factory=dict)  # CostModel.snapshot()

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "measurements": [m.to_json() for m in self.measurements],
            "best_cycles": self.best_cycles,
            "model": self.model,
        }


@dataclass
class TuneOutcome:
    """Everything a search produced, JSON-serializable for benchmarks."""

    workload: str
    kernel: str
    seed: int
    budget: int
    batch: int
    space_size: int
    baseline_cycles: int
    best_params: Dict[str, object]
    best_cycles: int
    best_config: TensaurusConfig
    rounds: List[TuneRound]
    oracle_evals: int   # measured design points (baseline included)
    oracle_sims: int    # actual simulator invocations (cache misses)
    cache_hits: int

    @property
    def improvement(self) -> float:
        """Fractional cycle reduction vs the baseline config (>= 0)."""
        return 1.0 - self.best_cycles / max(self.baseline_cycles, 1)

    @property
    def speedup(self) -> float:
        return self.baseline_cycles / max(self.best_cycles, 1)

    def trajectory_digest(self) -> str:
        """Digest of everything cache warmth must not change: which points
        were measured in which order, their cycle counts, the model
        weights, and the winner. Two searches with the same (workload,
        space, base, seed, budget, batch) must agree on this whether their
        oracle calls hit the memo store or ran the simulator."""
        from repro.artifacts import fingerprint_value

        trail = [
            (
                r.kind,
                [(_point_key(m.params), m.cycles) for m in r.measurements],
                r.model.get("weights"),
            )
            for r in self.rounds
        ]
        return fingerprint_value(
            "tune-trajectory-v1", self.workload, self.seed, self.budget,
            self.batch, self.space_size, self.baseline_cycles,
            _point_key(self.best_params), self.best_cycles, repr(trail),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        payload = {
            "workload": self.workload,
            "kernel": self.kernel,
            "seed": self.seed,
            "budget": self.budget,
            "batch": self.batch,
            "space_size": self.space_size,
            "baseline_cycles": self.baseline_cycles,
            "best_params": dict(self.best_params),
            "best_cycles": self.best_cycles,
            "improvement": self.improvement,
            "speedup": self.speedup,
            "oracle_evals": self.oracle_evals,
            "oracle_sims": self.oracle_sims,
            "cache_hits": self.cache_hits,
            "trajectory_digest": self.trajectory_digest(),
            "rounds": [r.to_json() for r in self.rounds],
        }
        return json.dumps(payload, indent=indent, default=repr)


class Tuner:
    """Seeded, budgeted, cache-aware search over a config space."""

    def __init__(
        self,
        workload: TuneWorkload,
        space: Optional[ConfigSpace] = None,
        base: Optional[TensaurusConfig] = None,
        *,
        seed: int = 0,
        budget: int = 32,
        batch: Optional[int] = None,
        workers: Optional[int] = None,
        store: Optional[ArtifactStore] = None,
        ridge_lambda: float = 1e-2,
    ) -> None:
        from repro.tune.space import default_space

        self.workload = workload
        self.space = space if space is not None else default_space(base)
        self.base = base if base is not None else self.space.base
        if budget < 2:
            raise ConfigError("budget must be at least 2 measurements")
        self.seed = int(seed)
        self.budget = int(budget)
        self.batch = int(batch) if batch else max(2, min(8, budget // 4))
        self.workers = workers
        self.store = store
        self.model = CostModel(ridge_lambda=ridge_lambda)
        self.oracle_sims = 0
        self.cache_hits = 0

    # ------------------------------------------------------------------
    def _oracle_parts(self, config: TensaurusConfig) -> tuple:
        return (ORACLE_SCHEMA, self.workload.fingerprint(), repr(config))

    def _measure(
        self, points: Sequence[Dict[str, object]], runner
    ) -> List[Measurement]:
        """Oracle-measure ``points`` (store-memoized), preserving order."""
        cached: Dict[int, dict] = {}
        misses: List[Tuple[int, Dict[str, object]]] = []
        for i, params in enumerate(points):
            config = self.base.scaled(**params)
            summary = (
                self.store.load(ORACLE_NAMESPACE, self._oracle_parts(config))
                if self.store is not None
                else None
            )
            if summary is not None:
                cached[i] = summary
            else:
                misses.append((i, params))
        counter = obs.metrics().counter(
            "tune.oracle", "oracle measurements by source", ("status",)
        )
        self.cache_hits += len(cached)
        counter.labels(status="cached").inc(len(cached))
        if misses:
            result = sweep_points(
                self.base,
                [params for _, params in misses],
                runner,
                workers=self.workers,
            )
            self.oracle_sims += len(misses)
            counter.labels(status="sim").inc(len(misses))
            for (i, _params), point in zip(misses, result):
                summary = {
                    "cycles": int(point.report.cycles),
                    "ops": int(point.report.ops),
                    "total_bytes": int(point.report.total_bytes),
                    "msu_mode": point.report.detail.get("msu_mode"),
                }
                cached[i] = summary
                if self.store is not None:
                    self.store.put(
                        ORACLE_NAMESPACE,
                        self._oracle_parts(point.config),
                        summary,
                    )
        out: List[Measurement] = []
        for i, params in enumerate(points):
            s = cached[i]
            out.append(
                Measurement(
                    params=dict(params),
                    cycles=s["cycles"],
                    ops=s["ops"],
                    total_bytes=s["total_bytes"],
                    source="cache" if i not in {m for m, _ in misses} else "sim",
                )
            )
        return out

    # ------------------------------------------------------------------
    def search(self) -> TuneOutcome:
        """Run the budgeted search and return the tuned outcome."""
        wl = self.workload
        candidates = self.space.points()
        rng = make_rng(self.seed)
        shm = None
        if self.workers and self.workers > 1:
            shm, runner = wl.shared()
        else:
            runner = wl.runner()
        try:
            with obs.tracer().span(
                "tune.search",
                args={
                    "workload": wl.name,
                    "budget": self.budget,
                    "space": len(candidates),
                },
            ):
                return self._search(candidates, rng, runner)
        finally:
            if shm is not None:
                shm.close()
                shm.unlink()

    def _search(self, candidates, rng, runner) -> TuneOutcome:
        wl = self.workload
        # Features are cheap-tier only — compute them once for everyone.
        feats = [
            featurize(cfg, wl.fast_report(cfg))
            for _params, cfg in self.space.configs()
        ]
        fast_order = np.argsort(
            [f[1] for f in feats], kind="stable"
        )  # f[1] is log_fast
        rounds: List[TuneRound] = []
        measured: Dict[str, Measurement] = {}

        def run_round(kind: str, idxs: Sequence[int]) -> None:
            points = [candidates[i] for i in idxs]
            with obs.tracer().span(
                "tune.round", args={"kind": kind, "points": len(points)}
            ):
                batch = self._measure(points, runner)
            for i, m in zip(idxs, batch):
                measured[_point_key(m.params)] = m
                self.model.observe(feats[i], m.cycles)
            best = min(m.cycles for m in measured.values())
            rounds.append(
                TuneRound(
                    index=len(rounds),
                    kind=kind,
                    measurements=batch,
                    best_cycles=min(best, baseline.cycles),
                    model=self.model.snapshot(),
                )
            )

        # Baseline: the paper's fixed design, measured through the same
        # memoized oracle path (the search can never return worse).
        baseline = self._measure([{}], runner)[0]
        self.model.observe(featurize(self.base, wl.fast_report(self.base)),
                           baseline.cycles)
        rounds.append(
            TuneRound(
                index=0,
                kind="baseline",
                measurements=[baseline],
                best_cycles=baseline.cycles,
                model=self.model.snapshot(),
            )
        )

        unmeasured = list(range(len(candidates)))

        def take(idxs: List[int]) -> List[int]:
            for i in idxs:
                unmeasured.remove(i)
            return idxs

        remaining = min(self.budget, len(candidates))
        # Bootstrap: half analytic-model favourites, half seeded-random.
        first = min(self.batch, remaining)
        n_top = (first + 1) // 2
        picks = take([int(i) for i in fast_order[:n_top]])
        pool = sorted(unmeasured)
        n_rand = min(first - len(picks), len(pool))
        if n_rand > 0:
            ridx = rng.choice(len(pool), size=n_rand, replace=False)
            picks += take(sorted(pool[i] for i in ridx.tolist()))
        run_round("bootstrap", picks)
        remaining -= len(picks)

        # Refinement: refit, exploit top predictions, keep one explore slot.
        while remaining > 0 and unmeasured:
            self.model.fit()
            first = min(self.batch, remaining, len(unmeasured))
            pool = sorted(unmeasured)
            preds = self.model.predict_log(np.vstack([feats[i] for i in pool]))
            order = np.argsort(np.atleast_1d(preds), kind="stable")
            n_exploit = first - 1 if first > 1 and len(pool) > first else first
            picks = take([pool[int(i)] for i in order[:n_exploit]])
            if n_exploit < first:
                pool = sorted(unmeasured)
                ridx = int(rng.integers(0, len(pool)))
                picks += take([pool[ridx]])
            run_round("refine", picks)
            remaining -= len(picks)

        # Deterministic winner: fewest cycles, then canonical params key.
        best = min(
            measured.values(), key=lambda m: (m.cycles, _point_key(m.params))
        )
        if best.cycles >= baseline.cycles:
            best = baseline
        obs.metrics().counter(
            "tune.searches", "completed tune searches", ("kernel",)
        ).labels(kernel=wl.kernel).inc()
        return TuneOutcome(
            workload=wl.name,
            kernel=wl.kernel,
            seed=self.seed,
            budget=self.budget,
            batch=self.batch,
            space_size=len(candidates),
            baseline_cycles=baseline.cycles,
            best_params=dict(best.params),
            best_cycles=best.cycles,
            best_config=self.base.scaled(**best.params),
            rounds=rounds,
            oracle_evals=len(measured) + 1,
            oracle_sims=self.oracle_sims,
            cache_hits=self.cache_hits,
        )


def exhaustive_search(
    workload: TuneWorkload,
    space: ConfigSpace,
    base: Optional[TensaurusConfig] = None,
    *,
    workers: Optional[int] = None,
    store: Optional[ArtifactStore] = None,
) -> Tuple[Dict[str, object], int, int]:
    """Oracle-measure *every* point (the tuner's ground-truth baseline).

    Returns ``(best_params, best_cycles, oracle_sims)``. Shares the tuner's
    memoized oracle, so a grid run after a search only simulates the
    points the search skipped.
    """
    tuner = Tuner(
        workload, space, base, budget=2, workers=workers, store=store
    )
    shm = None
    if workers and workers > 1:
        shm, runner = workload.shared()
    else:
        runner = workload.runner()
    try:
        points = space.points()
        baseline = tuner._measure([{}], runner)[0]
        batch = tuner._measure(points, runner)
    finally:
        if shm is not None:
            shm.close()
            shm.unlink()
    best = min(batch, key=lambda m: (m.cycles, _point_key(m.params)))
    if best.cycles >= baseline.cycles:
        best = baseline
    return dict(best.params), best.cycles, tuner.oracle_sims
