"""Auto-tuning config search over the Tensaurus design space.

The package splits the tuner into four orthogonal pieces:

- :mod:`repro.tune.space` — declarative, constrained, seeded-samplable
  search spaces over :class:`~repro.sim.config.TensaurusConfig` fields;
- :mod:`repro.tune.cost` — the learned cost model (ridge regression on
  log-cycles, bootstrapped from the closed-form fast model);
- :mod:`repro.tune.workload` — workload descriptions with picklable
  oracle runners (shared-memory operand handoff for process fan-out);
- :mod:`repro.tune.search` — the budgeted search loop where the cost
  model prunes and the cycle-level simulator is the memoized oracle;
- :mod:`repro.tune.tuned` — the persisted per-workload tuned-config
  registry behind ``repro tune``.
"""

from repro.tune.cost import (
    FEATURE_NAMES,
    MIN_OBSERVATIONS,
    CostModel,
    featurize,
    rank_candidates,
)
from repro.tune.search import (
    Measurement,
    TuneOutcome,
    TuneRound,
    Tuner,
    exhaustive_search,
)
from repro.tune.space import (
    ConfigSpace,
    default_space,
    first_col_double,
    max_mac_units,
    quick_space,
)
from repro.tune.tuned import TunedConfigEntry, TunedRegistry
from repro.tune.workload import (
    TuneWorkload,
    WorkloadRunner,
    workload_from_dataset,
)

__all__ = [
    "FEATURE_NAMES",
    "MIN_OBSERVATIONS",
    "CostModel",
    "featurize",
    "rank_candidates",
    "Measurement",
    "TuneOutcome",
    "TuneRound",
    "Tuner",
    "exhaustive_search",
    "ConfigSpace",
    "default_space",
    "first_col_double",
    "max_mac_units",
    "quick_space",
    "TunedConfigEntry",
    "TunedRegistry",
    "TuneWorkload",
    "WorkloadRunner",
    "workload_from_dataset",
]
