"""Shared workload descriptors for the baseline cost models.

A :class:`WorkloadStats` captures everything the analytical baselines need
about one kernel invocation: operand shapes, nonzero structure (count,
fibers, nonempty rows/slices) and the rank parameters. The builders extract
these exactly from real operands so baseline estimates and simulator runs
describe the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.tensor import SparseTensor
from repro.util.errors import KernelError


@dataclass(frozen=True)
class WorkloadStats:
    """Structure statistics of one kernel invocation."""

    kernel: str
    dims: Tuple[int, ...]  # operand dims, output mode first for tensors
    nnz: int  # nonzeros of the sparse operand (== volume when dense)
    fibers: int  # nonempty (i, j) fibers (tensor kernels)
    out_rows: int  # nonempty output rows/slices
    rank: int  # F (MTTKRP/SpMM cols); F1 for TTMc
    rank2: int  # F2 for TTMc, else 0
    dense: bool

    @property
    def ops(self) -> int:
        """Algorithmic operation count (operand-factored forms)."""
        if self.kernel in ("mttkrp",):
            return 2 * self.nnz * self.rank + 2 * self.fibers * self.rank
        if self.kernel in ("ttmc",):
            return 2 * self.nnz * self.rank2 + 2 * self.fibers * self.rank * self.rank2
        if self.kernel in ("spmm", "gemm"):
            return 2 * self.nnz * self.rank
        if self.kernel in ("spmv", "gemv"):
            return 2 * self.nnz
        raise KernelError(f"unknown kernel {self.kernel!r}")

    @property
    def factor_bytes(self) -> int:
        """Bytes of the dense operand matrices (one full read)."""
        if self.kernel == "mttkrp":
            return (self.dims[1] + self.dims[2]) * self.rank * 4
        if self.kernel == "ttmc":
            return (self.dims[1] * self.rank + self.dims[2] * self.rank2) * 4
        if self.kernel in ("spmm", "gemm"):
            return self.dims[1] * self.rank * 4
        return self.dims[1] * 4

    @property
    def output_bytes(self) -> int:
        """Bytes of one full output write."""
        if self.kernel == "ttmc":
            return self.out_rows * self.rank * self.rank2 * 4
        if self.kernel in ("spmv", "gemv"):
            return self.out_rows * 4
        return self.out_rows * self.rank * 4

    @property
    def sparse_bytes(self) -> int:
        """Bytes of one streaming read of the sparse operand (CSR/CSF-like:
        value plus ~1.5 index words per nonzero)."""
        if self.dense:
            return self.nnz * 4
        return self.nnz * 10


@dataclass(frozen=True)
class BaselineResult:
    """Time/energy estimate of one kernel on one baseline platform."""

    platform: str
    kernel: str
    time_s: float
    energy_j: float
    ops: int
    bytes_moved: int

    @property
    def gops(self) -> float:
        if self.time_s <= 0:
            return 0.0
        return self.ops / self.time_s / 1.0e9


def tensor_workload(
    kernel: str,
    tensor: Union[SparseTensor, np.ndarray],
    rank: int,
    rank2: int = 0,
    mode: int = 0,
    store=None,
) -> WorkloadStats:
    """Build stats for MTTKRP (``rank``) or TTMc (``rank``, ``rank2``).

    ``store`` (an :class:`repro.artifacts.ArtifactStore`) memoizes the
    extraction — the unique-fiber scan is the expensive part — keyed on the
    operand's content fingerprint and the arguments.
    """
    if kernel not in ("mttkrp", "ttmc"):
        raise KernelError(f"tensor_workload got {kernel!r}")
    if store is not None:
        return store.get(
            "workload",
            ("tensor", kernel, rank, rank2, mode, tensor),
            lambda: tensor_workload(kernel, tensor, rank, rank2, mode),
        )
    if isinstance(tensor, SparseTensor):
        rest = [m for m in range(3) if m != mode]
        perm = tensor if mode == 0 else tensor.permute_modes([mode] + rest)
        coords = perm.coords
        fibers = int(
            np.unique(coords[:, 0] * perm.shape[1] + coords[:, 1]).shape[0]
        )
        out_rows = int(np.unique(coords[:, 0]).shape[0])
        return WorkloadStats(
            kernel=kernel,
            dims=perm.shape,
            nnz=perm.nnz,
            fibers=fibers,
            out_rows=out_rows,
            rank=rank,
            rank2=rank2,
            dense=False,
        )
    shape = tensor.shape
    rest = [m for m in range(3) if m != mode]
    dims = (shape[mode], shape[rest[0]], shape[rest[1]])
    volume = dims[0] * dims[1] * dims[2]
    return WorkloadStats(
        kernel=kernel,
        dims=dims,
        nnz=volume,
        fibers=dims[0] * dims[1],
        out_rows=dims[0],
        rank=rank,
        rank2=rank2,
        dense=True,
    )


def matrix_workload(
    kernel: str,
    a: Union[CSRMatrix, COOMatrix, np.ndarray],
    ncols: int = 1,
    store=None,
) -> WorkloadStats:
    """Build stats for SpMM/GEMM (``ncols``) or SpMV/GEMV.

    ``store`` memoizes the extraction like :func:`tensor_workload`.
    """
    if kernel not in ("spmm", "gemm", "spmv", "gemv"):
        raise KernelError(f"matrix_workload got {kernel!r}")
    if store is not None:
        return store.get(
            "workload",
            ("matrix", kernel, ncols, a),
            lambda: matrix_workload(kernel, a, ncols),
        )
    if isinstance(a, np.ndarray):
        rows, cols = a.shape
        return WorkloadStats(
            kernel=kernel,
            dims=(rows, cols),
            nnz=rows * cols,
            fibers=0,
            out_rows=rows,
            rank=ncols,
            rank2=0,
            dense=True,
        )
    coo = a.to_coo() if isinstance(a, CSRMatrix) else a
    out_rows = int(np.unique(coo.rows).shape[0])
    return WorkloadStats(
        kernel=kernel,
        dims=coo.shape,
        nnz=coo.nnz,
        fibers=0,
        out_rows=out_rows,
        rank=ncols,
        rank2=0,
        dense=False,
    )
