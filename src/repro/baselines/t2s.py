"""T2S-Tensor baseline (Srivastava et al., FCCM 2019) for dense kernels.

The paper compares Tensaurus's dense mode against T2S-Tensor scaled to the
same MAC count and clock, reporting the absolute throughputs of Table 6
(986.3 / 926.6 / 1019.8 GOP/s for DMTTKRP / DTTMc / GEMM). Because T2S
generates fully pipelined spatial designs with no sparse machinery, it
sustains roughly 2x Tensaurus's dense throughput (Tensaurus spends every
other cycle on scratchpad access); the paper calls its own scaling
"pessimistic" since it assumes perfect T2S scaling. We model T2S as those
fixed throughputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.baselines.base import BaselineResult, WorkloadStats
from repro.util.errors import KernelError

#: Table 6 throughputs (GOP/s) of the scaled T2S-Tensor designs.
T2S_THROUGHPUT_GOPS: Dict[str, float] = {
    "mttkrp": 986.3,
    "ttmc": 926.6,
    "gemm": 1019.8,
    "spmm": 1019.8,  # dense ndarray operands route through gemm
}


@dataclass
class T2SBaseline:
    """Fixed-throughput model of the scaled T2S-Tensor dense designs."""

    #: FPGA power at the scaled design point (Arria-10 class, W).
    power_w: float = 15.0
    throughput: Dict[str, float] = field(
        default_factory=lambda: dict(T2S_THROUGHPUT_GOPS)
    )

    def run(self, stats: WorkloadStats) -> BaselineResult:
        if not stats.dense:
            raise KernelError("T2S-Tensor supports dense kernels only")
        if stats.kernel not in self.throughput:
            raise KernelError(f"T2S-Tensor does not implement {stats.kernel!r}")
        gops = self.throughput[stats.kernel]
        time_s = stats.ops / (gops * 1.0e9)
        return BaselineResult(
            platform="t2s-tensor",
            kernel=stats.kernel,
            time_s=time_s,
            energy_j=self.power_w * time_s,
            ops=stats.ops,
            bytes_moved=stats.sparse_bytes + stats.factor_bytes + stats.output_bytes,
        )
