"""Cambricon-X baseline (Zhang et al., MICRO 2016), scaled per the paper.

The paper implements Cambricon-X in gem5 "scaled to have the same bitwidth,
clock frequency, number of MAC units, size of on-chip RAM and DRAM
bandwidth as our accelerator". We model the architecture's two structural
properties that drive the comparison:

1. **Step indexing.** Cambricon-X compresses the sparse operand with
   fixed-width *step* (delta) indices. A step field of ``step_bits`` can
   encode a column gap of at most ``2**step_bits``; larger gaps insert
   explicit zero entries. At CNN densities (~0.1-0.8) gaps are tiny and the
   format is compact, but at graph/SuiteSparse densities (1e-5..1e-3) the
   padding explodes — each stored row carries ~``ncols / 2**step_bits``
   filler entries — which is the mechanism behind Tensaurus's ~120x win in
   Fig. 11 and the density crossover in Fig. 13.
2. **No cross-PE load balancing.** Rows are statically assigned to the 16
   PEs; skewed row lengths leave PEs idle (CISS's least-loaded scheduling
   is the contrast), modelled as a fixed imbalance factor on compute time.

Dense-operand traffic uses the shared on-chip buffer: operands that fit
stream once; otherwise each nonzero's fetch misses proportionally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import BaselineResult, WorkloadStats
from repro.energy.model import CAMBRICON_POWER
from repro.util.errors import KernelError


@dataclass
class CambriconXBaseline:
    """Analytical model of the scaled Cambricon-X."""

    num_pes: int = 16
    macs_per_pe: int = 16  # 256 MACs total == Tensaurus's MAC count
    clock_ghz: float = 2.0
    bw_gbs: float = 128.0
    buffer_bytes: int = 512 * 1024  # scaled to Tensaurus's on-chip RAM
    step_bits: int = 8
    imbalance: float = 1.7  # lock-step PE array + static row assignment
    bw_efficiency: float = 0.30  # centralized IM: narrow, scattered fetches

    def run(self, stats: WorkloadStats) -> BaselineResult:
        """Estimate SpMM/SpMV (the kernels Cambricon-X supports)."""
        if stats.kernel not in ("spmm", "gemm", "spmv", "gemv"):
            raise KernelError("Cambricon-X accelerates matrix kernels only")
        padded = self._padded_nnz(stats)
        ncols_out = max(1, stats.rank)
        # The B operand is processed macs_per_pe output columns at a time;
        # each pass re-streams the sparse operand (Cambricon-X has no
        # cross-pass weight reuse at this scale).
        passes = max(1, -(-ncols_out // self.macs_per_pe))
        # Each (real or filler) entry occupies a PE for one MAC cycle plus
        # one buffer-access cycle per pass.
        compute_cycles = padded * 2.0 * passes / self.num_pes
        compute_s = (
            compute_cycles * self.imbalance / (self.clock_ghz * 1.0e9)
        )
        bytes_moved = self._traffic(stats, padded, passes)
        memory_s = bytes_moved / (self.bw_gbs * 1.0e9 * self.bw_efficiency)
        time_s = max(compute_s, memory_s)
        energy = CAMBRICON_POWER.energy(time_s, bytes_moved)
        return BaselineResult(
            platform="cambricon-x",
            kernel=stats.kernel,
            time_s=time_s,
            energy_j=energy,
            ops=stats.ops,
            bytes_moved=bytes_moved,
        )

    def _padded_nnz(self, stats: WorkloadStats) -> int:
        """Stored entries after step-index padding."""
        if stats.dense:
            return stats.nnz  # dense mode stores everything anyway
        max_gap = 2**self.step_bits
        ncols = stats.dims[1]
        fillers_per_row = max(0, ncols // max_gap - 1)
        return stats.nnz + stats.out_rows * fillers_per_row

    def _traffic(self, stats: WorkloadStats, padded: int, passes: int) -> int:
        """Per-pass traffic through the shared operand buffer.

        Each pass over ``macs_per_pe`` output columns re-streams the padded
        sparse operand (value + step index, 5 bytes). The pass's B-column
        tile either fits the buffer (loaded once per pass — the CNN case)
        or every entry gathers a cache line from DRAM (the graph case
        where the operand has too many rows — the Fig. 11 blow-up).
        """
        traffic = padded * 5 * passes + stats.output_bytes
        ncols_out = max(1, stats.rank)
        cols_per_pass = min(self.macs_per_pe, ncols_out)
        pass_tile = stats.dims[1] * cols_per_pass * 4
        if pass_tile <= self.buffer_bytes:
            traffic += pass_tile * passes
        else:
            miss_rate = 1.0 - self.buffer_bytes / pass_tile
            traffic += int(padded * passes * miss_rate) * 64
        return int(traffic)
