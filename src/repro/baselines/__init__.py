"""Baseline platform cost models (Section 6, "Baselines").

The paper compares Tensaurus against four platforms; we model each as a
calibrated analytical machine that consumes the same workload statistics
the simulator measures:

- :class:`CPUBaseline` — single Xeon E7-8867 core running SPLATT (tensor
  kernels) / Sparse BLAS (matrix kernels), with a 45 MB L3 cache model.
- :class:`GPUBaseline` — Titan Xp running ParTI (tensor kernels) /
  cuSPARSE (matrix kernels), with per-kernel efficiency factors.
- :class:`CambriconXBaseline` — the Cambricon-X sparse-CNN accelerator
  scaled to Tensaurus's MAC count and bandwidth, including its step-index
  padding blow-up at high sparsity (the mechanism behind Fig. 11/13).
- :class:`T2SBaseline` — T2S-Tensor's dense FPGA throughputs (Table 6).

Every model returns a :class:`BaselineResult` with time, energy and op
counts; calibration constants are class attributes documented in place and
summarized in EXPERIMENTS.md.
"""

from repro.baselines.base import BaselineResult, WorkloadStats, tensor_workload, matrix_workload
from repro.baselines.cpu import CPUBaseline
from repro.baselines.gpu import GPUBaseline
from repro.baselines.cambricon_x import CambriconXBaseline
from repro.baselines.t2s import T2SBaseline

__all__ = [
    "BaselineResult",
    "WorkloadStats",
    "tensor_workload",
    "matrix_workload",
    "CPUBaseline",
    "GPUBaseline",
    "CambriconXBaseline",
    "T2SBaseline",
]
