"""GPU baseline: ParTI (tensor kernels) / cuSPARSE (matrix kernels) on a
Titan Xp.

Roofline with per-kernel efficiency pairs (fraction of the 12.15 TFLOP/s
peak when compute bound, fraction of the 547.6 GB/s peak when memory
bound), plus a fixed kernel-launch overhead that penalizes the small CNN
layers the way the paper's Fig. 10 shows.

Calibration notes:
- ParTI SpMTTKRP is atomics- and gather-bound: it sustains a small
  fraction of peak bandwidth (the paper's Tensaurus/GPU geomean is 3.1x).
- ParTI SpTTMc *kernel-only* is fast (the host pre-/post-processing is
  excluded, as the paper notes): Tensaurus reaches only 0.1x of it.
- cuSPARSE SpMM approaches Tensaurus on the very sparse SuiteSparse
  matrices (0.87x) but loses on the mid-density CNN layers (1.8x).
- cuSPARSE SpMV on a 5x-bandwidth GPU beats Tensaurus (0.45x).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.baselines.base import BaselineResult, WorkloadStats
from repro.energy.model import GPU_POWER


@dataclass
class GPUBaseline:
    """Roofline model of the paper's GPU software baselines."""

    peak_gflops: float = 12150.0
    peak_bw_gbs: float = 547.6
    l2_bytes: int = 3 * 1024 * 1024
    launch_overhead_s: float = 12.0e-6
    #: kernel -> (flop efficiency, bandwidth efficiency)
    efficiency: Dict[str, Tuple[float, float]] = field(
        default_factory=lambda: {
            "mttkrp": (0.005, 0.04),  # ParTI SpMTTKRP (atomics, gathers)
            "ttmc": (0.40, 0.85),  # ParTI SpTTMc kernel-only
            "spmm": (0.016, 0.22),  # cuSPARSE csrmm (CSR is dense-hostile)
            "gemm": (0.75, 0.90),  # cuBLAS-class
            "spmv": (0.03, 0.75),  # cuSPARSE csrmv (BW-friendly)
            "gemv": (0.10, 0.80),
            "dmttkrp": (0.30, 0.85),
            "dttmc": (0.35, 0.85),
        }
    )

    def run(self, stats: WorkloadStats) -> BaselineResult:
        kernel = stats.kernel if not stats.dense else {
            "mttkrp": "dmttkrp",
            "ttmc": "dttmc",
            "spmm": "gemm",
            "spmv": "gemv",
            "gemm": "gemm",
            "gemv": "gemv",
        }.get(stats.kernel, stats.kernel)
        flop_eff, bw_eff = self.efficiency[kernel]
        ops = stats.ops
        bytes_moved = self._traffic(stats)
        compute_s = ops / (self.peak_gflops * 1.0e9 * flop_eff)
        memory_s = bytes_moved / (self.peak_bw_gbs * 1.0e9 * bw_eff)
        time_s = self.launch_overhead_s + max(compute_s, memory_s)
        energy = GPU_POWER.energy(time_s, bytes_moved)
        return BaselineResult(
            platform="gpu",
            kernel=stats.kernel,
            time_s=time_s,
            energy_j=energy,
            ops=ops,
            bytes_moved=bytes_moved,
        )

    def _traffic(self, stats: WorkloadStats) -> int:
        """DRAM bytes: sparse stream + factors (L2-modelled) + output."""
        traffic = stats.sparse_bytes + stats.output_bytes
        factors = stats.factor_bytes
        if factors <= self.l2_bytes:
            traffic += factors
        else:
            # Warp-coalesced fiber reads: misses fetch 32B sectors.
            miss_rate = 1.0 - self.l2_bytes / factors
            traffic += factors + int(stats.nnz * miss_rate) * 32
        return int(traffic)
