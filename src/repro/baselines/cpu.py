"""CPU baseline: SPLATT / Sparse BLAS on one Xeon E7-8867 core.

A single-core roofline with an L3 cache model. Peak single-precision
throughput: 2.4 GHz x 8-wide SIMD x 2 (FMA) = 38.4 GFLOP/s. Sustained
single-core DRAM bandwidth ~10 GB/s; factor matrices that fit in the 45 MB
L3 are read from memory once, otherwise random fiber accesses miss at a
rate proportional to the working-set overflow.

Per-kernel compute efficiencies are the calibration: published SPLATT and
MKL-class measurements put single-core SpMTTKRP at a few GFLOP/s and dense
GEMM near peak. SPLATT's SpTTMc benefits disproportionately from the big
L3 (operand factoring reuse), which is why the paper's speedup over CPU is
only ~6x there against ~23x for SpMTTKRP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.baselines.base import BaselineResult, WorkloadStats
from repro.energy.model import CPU_POWER


@dataclass
class CPUBaseline:
    """Roofline model of the paper's CPU software baselines."""

    peak_gflops: float = 38.4
    sustained_bw_gbs: float = 10.0
    l3_bytes: int = 45 * 1024 * 1024
    cacheline: int = 64
    #: fraction of peak FLOP/s each kernel sustains when compute bound
    efficiency: Dict[str, float] = field(
        default_factory=lambda: {
            "mttkrp": 0.14,  # SPLATT single-core SpMTTKRP
            "ttmc": 0.40,  # SPLATT SpTTMc: factored + L3-resident reuse
            "spmm": 0.02,  # reference (scalar) Sparse BLAS CSR SpMM
            "gemm": 0.85,  # MKL-class dense GEMM
            "spmv": 0.02,
            "gemv": 0.60,
            "dmttkrp": 0.55,
            "dttmc": 0.55,
        }
    )

    def run(self, stats: WorkloadStats) -> BaselineResult:
        """Estimate one kernel's runtime and energy on the CPU."""
        kernel = stats.kernel if not stats.dense else {
            "mttkrp": "dmttkrp",
            "ttmc": "dttmc",
            "spmm": "gemm",
            "spmv": "gemv",
            "gemm": "gemm",
            "gemv": "gemv",
        }.get(stats.kernel, stats.kernel)
        eff = self.efficiency[kernel]
        ops = stats.ops
        compute_s = ops / (self.peak_gflops * 1.0e9 * eff)
        bytes_moved = self._traffic(stats)
        memory_s = bytes_moved / (self.sustained_bw_gbs * 1.0e9)
        time_s = max(compute_s, memory_s)
        energy = CPU_POWER.energy(time_s, bytes_moved)
        return BaselineResult(
            platform="cpu",
            kernel=stats.kernel,
            time_s=time_s,
            energy_j=energy,
            ops=ops,
            bytes_moved=bytes_moved,
        )

    def _traffic(self, stats: WorkloadStats) -> int:
        """DRAM bytes with the L3 model.

        The sparse operand always streams. Factor/operand matrices stream
        once when they fit in (half of) the L3; each nonzero's random fiber
        access otherwise misses with probability equal to the overflow
        fraction, costing a cache line.
        """
        traffic = stats.sparse_bytes + stats.output_bytes
        factors = stats.factor_bytes
        budget = self.l3_bytes // 2
        if factors <= budget:
            traffic += factors
        else:
            miss_rate = 1.0 - budget / factors
            traffic += factors + int(stats.nnz * miss_rate) * self.cacheline
        return int(traffic)
