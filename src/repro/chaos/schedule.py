"""Typed fault schedules over virtual time.

A :class:`ChaosSchedule` is a seeded, serializable point in fault space:
a tuple of typed :class:`ChaosEvent`\\ s (shard kills at a fraction of
the trace horizon, HBM outages/stalls, PE-lane dropouts, launch aborts,
breaker storms) plus the trace shape they are applied to. It compiles
onto the existing :class:`repro.sim.faults.FaultPlan` — kills become
``forced_shard_kills``, rate events combine as independent hazards — so
the exact machinery the fleet already trusts executes the schedule, and
the same seed always replays the same run.

``to_json``/``from_json`` round-trip exactly (asserted by tests); the
regression corpus persists schedules this way and CI replays them
bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.faults import (
    HBM_OUTAGE,
    HBM_STALL,
    LANE_DROPOUT,
    LAUNCH_ABORT,
    SHARD_KILL,
    FaultPlan,
)
from repro.util.errors import ConfigError
from repro.util.rng import derive_seed, make_rng

__all__ = [
    "BREAKER_STORM",
    "EVENT_KINDS",
    "ChaosEvent",
    "ChaosSchedule",
    "ScheduleGenerator",
]

#: A burst of launch failures dense enough to open circuit breakers —
#: modeled as a high launch-abort hazard (breakers open through the
#: same record_failure path real faults take).
BREAKER_STORM = "breaker_storm"

#: Every event kind a schedule may contain, in generator draw order.
EVENT_KINDS = (
    SHARD_KILL,
    HBM_OUTAGE,
    HBM_STALL,
    LANE_DROPOUT,
    LAUNCH_ABORT,
    BREAKER_STORM,
)

#: Per-kind magnitude ranges the generator draws from (rate events).
_MAGNITUDE_RANGES: Dict[str, Tuple[float, float]] = {
    HBM_OUTAGE: (0.05, 0.5),
    HBM_STALL: (0.05, 0.5),
    LANE_DROPOUT: (0.05, 0.3),
    LAUNCH_ABORT: (0.02, 0.25),
    BREAKER_STORM: (0.3, 0.7),
}


@dataclass(frozen=True)
class ChaosEvent:
    """One typed fault event on the schedule's virtual timeline.

    ``at`` is the fraction of the trace horizon at which the event
    lands (only kills are instantaneous; rate events describe hazard
    intensity over the whole run, with ``at`` kept for ordering and
    shrink bookkeeping). ``target`` is a shard id for kills, ``-1``
    otherwise. ``magnitude`` is the hazard contribution of rate events.
    """

    kind: str
    at: float
    target: int = -1
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ConfigError(f"unknown chaos event kind {self.kind!r}")
        if not 0.0 <= self.at <= 1.0:
            raise ConfigError(f"event time must be in [0, 1], got {self.at!r}")
        if not 0.0 <= self.magnitude <= 1.0:
            raise ConfigError(
                f"event magnitude must be in [0, 1], got {self.magnitude!r}"
            )

    def to_json(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "at": self.at,
            "target": int(self.target),
            "magnitude": self.magnitude,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "ChaosEvent":
        return cls(
            kind=str(data["kind"]),
            at=float(data["at"]),
            target=int(data.get("target", -1)),
            magnitude=float(data.get("magnitude", 0.0)),
        )


def _hazard(rates: Sequence[float]) -> float:
    """Independent-hazard combination of event magnitudes."""
    alive = 1.0
    for r in rates:
        alive *= 1.0 - r
    return 1.0 - alive


@dataclass(frozen=True)
class ChaosSchedule:
    """A seeded fault schedule plus the trace shape it runs against."""

    seed: int
    events: Tuple[ChaosEvent, ...] = ()
    duration_s: float = 0.16
    base_rate: float = 110.0
    spike_factor: float = 5.0
    shards: int = 3
    replicas_per_shard: int = 2
    queue_depth: int = 32

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        if self.duration_s <= 0 or self.base_rate <= 0:
            raise ConfigError("duration_s and base_rate must be positive")
        if self.shards < 2:
            raise ConfigError("chaos schedules need >= 2 shards")

    @property
    def event_count(self) -> int:
        return len(self.events)

    def with_events(self, events: Sequence[ChaosEvent]) -> "ChaosSchedule":
        """The same schedule with a different event tuple (shrink step)."""
        return replace(self, events=tuple(events))

    # ------------------------------------------------------------------
    def fault_plan(self, base: Optional[FaultPlan] = None) -> FaultPlan:
        """Compile the events onto a :class:`FaultPlan`.

        Shard kills become ``forced_shard_kills`` (first kill per target
        wins); each rate kind's magnitudes hazard-combine. A ``base``
        plan, when given, is merged underneath via
        :meth:`FaultPlan.merge`.
        """
        kills: Dict[int, float] = {}
        rates: Dict[str, List[float]] = {}
        for ev in self.events:
            if ev.kind == SHARD_KILL:
                target = ev.target % self.shards
                if target not in kills or ev.at < kills[target]:
                    kills[target] = ev.at
            else:
                rates.setdefault(ev.kind, []).append(ev.magnitude)
        plan = FaultPlan(
            seed=self.seed,
            hbm_outage_rate=_hazard(rates.get(HBM_OUTAGE, ())),
            hbm_stall_rate=_hazard(rates.get(HBM_STALL, ())),
            pe_lane_dropout_rate=_hazard(rates.get(LANE_DROPOUT, ())),
            launch_abort_rate=_hazard(
                list(rates.get(LAUNCH_ABORT, ()))
                + list(rates.get(BREAKER_STORM, ()))
            ),
            forced_shard_kills=tuple(sorted(kills.items())),
        )
        if base is not None:
            plan = base.merge(plan)
        return plan

    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        return {
            "seed": int(self.seed),
            "events": [ev.to_json() for ev in self.events],
            "duration_s": self.duration_s,
            "base_rate": self.base_rate,
            "spike_factor": self.spike_factor,
            "shards": int(self.shards),
            "replicas_per_shard": int(self.replicas_per_shard),
            "queue_depth": int(self.queue_depth),
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "ChaosSchedule":
        known = {
            "seed", "events", "duration_s", "base_rate", "spike_factor",
            "shards", "replicas_per_shard", "queue_depth",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown ChaosSchedule fields in JSON: {sorted(unknown)}"
            )
        return cls(
            seed=int(data["seed"]),
            events=tuple(
                ChaosEvent.from_json(ev) for ev in data.get("events", [])
            ),
            duration_s=float(data.get("duration_s", 0.16)),
            base_rate=float(data.get("base_rate", 110.0)),
            spike_factor=float(data.get("spike_factor", 5.0)),
            shards=int(data.get("shards", 3)),
            replicas_per_shard=int(data.get("replicas_per_shard", 2)),
            queue_depth=int(data.get("queue_depth", 32)),
        )

    def digest(self) -> str:
        """Content fingerprint of the schedule (stable across processes)."""
        from repro.artifacts import fingerprint_value

        return fingerprint_value(
            "chaos-schedule",
            self.seed,
            tuple(
                (ev.kind, ev.at, ev.target, ev.magnitude)
                for ev in self.events
            ),
            self.duration_s, self.base_rate, self.spike_factor,
            self.shards, self.replicas_per_shard, self.queue_depth,
        )


class ScheduleGenerator:
    """Seeded random point generator over the fault-schedule space.

    ``generate(i)`` is a pure function of ``(seed, i)`` — the search
    records only its seed and budget, and any schedule it visited can be
    regenerated exactly (the determinism the corpus and CI lean on).
    Kill events never target more than ``shards - 1`` distinct shards,
    so at least one routable shard always survives.
    """

    def __init__(
        self,
        seed: int,
        shards: int = 3,
        replicas_per_shard: int = 2,
        min_events: int = 2,
        max_events: int = 10,
        duration_s: float = 0.16,
        base_rate: float = 110.0,
    ) -> None:
        if not 1 <= min_events <= max_events:
            raise ConfigError("need 1 <= min_events <= max_events")
        self.seed = int(seed)
        self.shards = int(shards)
        self.replicas_per_shard = int(replicas_per_shard)
        self.min_events = int(min_events)
        self.max_events = int(max_events)
        self.duration_s = float(duration_s)
        self.base_rate = float(base_rate)

    def generate(self, index: int) -> ChaosSchedule:
        seed = derive_seed(self.seed, "chaos-schedule", index)
        rng = make_rng(seed)
        n = int(rng.integers(self.min_events, self.max_events + 1))
        events: List[ChaosEvent] = []
        kill_targets: set = set()
        for _ in range(n):
            kind = EVENT_KINDS[int(rng.integers(0, len(EVENT_KINDS)))]
            at = float(round(rng.random(), 6))
            if kind == SHARD_KILL:
                target = int(rng.integers(0, self.shards))
                candidates = kill_targets | {target}
                if len(candidates) >= self.shards:
                    # Killing every shard leaves traffic nowhere to go;
                    # degrade the draw to an HBM outage instead.
                    kind = HBM_OUTAGE
                else:
                    kill_targets.add(target)
                    events.append(ChaosEvent(SHARD_KILL, at, target=target))
                    continue
            lo, hi = _MAGNITUDE_RANGES[kind]
            magnitude = float(round(lo + rng.random() * (hi - lo), 6))
            events.append(ChaosEvent(kind, at, magnitude=magnitude))
        events.sort(key=lambda ev: (ev.at, ev.kind, ev.target))
        return ChaosSchedule(
            seed=seed,
            events=tuple(events),
            duration_s=self.duration_s,
            base_rate=self.base_rate,
            shards=self.shards,
            replicas_per_shard=self.replicas_per_shard,
        )

    def sample(self, count: int, start: int = 0) -> List[ChaosSchedule]:
        return [self.generate(start + i) for i in range(count)]
