"""Jepsen-style chaos verification for the Tensaurus serving stack.

The fleet claims strong guarantees — exactly-once completion under
shard kills, zero lost admitted work, bit-identical seeded replay,
trace/latency reconciliation, calibrated degraded-tier error bounds.
This package verifies them across the *space* of fault schedules rather
than at hand-picked points:

- :mod:`repro.chaos.schedule` — typed fault events (shard kills, HBM
  outages/stalls, PE dropouts, launch aborts, breaker storms) composed
  over virtual time into a :class:`~repro.chaos.schedule.ChaosSchedule`
  that layers onto :class:`repro.sim.faults.FaultPlan`, with exact
  JSON round-trip;
- :mod:`repro.chaos.invariants` — the system's guarantees as composable
  checkers over one executed run's observation;
- :mod:`repro.chaos.search` — budgeted seeded randomized search: run
  the deterministic fleet under each schedule, check every invariant;
- :mod:`repro.chaos.shrink` — delta-debug a failing schedule to a
  minimal reproducer (event-subset then parameter shrinking, with the
  deterministic fleet as the oracle);
- :mod:`repro.chaos.corpus` — an :class:`repro.artifacts.ArtifactStore`
  -backed regression corpus of shrunk reproducers that CI replays on
  every commit.
"""

from repro.chaos.corpus import ChaosCorpus
from repro.chaos.invariants import (
    DEFAULT_INVARIANTS,
    ChaosObservation,
    Violation,
    check_all,
)
from repro.chaos.schedule import (
    BREAKER_STORM,
    EVENT_KINDS,
    ChaosEvent,
    ChaosSchedule,
    ScheduleGenerator,
)
from repro.chaos.search import (
    MUTATIONS,
    ChaosRunner,
    ChaosSearch,
    SearchOutcome,
)
from repro.chaos.shrink import ShrinkResult, shrink_schedule

__all__ = [
    "BREAKER_STORM",
    "EVENT_KINDS",
    "ChaosEvent",
    "ChaosSchedule",
    "ScheduleGenerator",
    "ChaosObservation",
    "Violation",
    "DEFAULT_INVARIANTS",
    "check_all",
    "ChaosRunner",
    "ChaosSearch",
    "SearchOutcome",
    "MUTATIONS",
    "ShrinkResult",
    "shrink_schedule",
    "ChaosCorpus",
]
