"""Delta-debugging failing chaos schedules to minimal reproducers.

Classic ddmin over the event tuple — try dropping chunks at increasing
granularity, keep any subset that still trips the target invariants —
followed by a parameter-shrinking pass that simplifies the surviving
events (halve magnitudes toward the small end, pull event times to 0,
renumber kill targets downward). The deterministic fleet is the oracle:
a schedule either reproduces the violation on every run or never does,
so one oracle call per candidate is conclusive. Oracle verdicts are
memoized by schedule digest; the determinism-replay and checkpoint legs
are skipped unless the invariants being chased need them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set

from repro.chaos.invariants import DEFAULT_INVARIANTS, Checker
from repro.chaos.schedule import ChaosEvent, ChaosSchedule
from repro.chaos.search import ChaosRunner

__all__ = ["ShrinkResult", "shrink_schedule"]

#: Stop parameter-shrink passes after this many full sweeps.
_MAX_PARAM_PASSES = 4


@dataclass
class ShrinkResult:
    """Outcome of one shrink: the minimal reproducer and its cost."""

    original: ChaosSchedule
    minimal: ChaosSchedule
    target: List[str]
    oracle_calls: int = 0

    @property
    def ratio(self) -> float:
        """Minimal event count over original (1.0 = no shrink)."""
        if self.original.event_count == 0:
            return 1.0
        return self.minimal.event_count / self.original.event_count

    def to_json(self) -> Dict[str, object]:
        return {
            "target": list(self.target),
            "oracle_calls": self.oracle_calls,
            "ratio": self.ratio,
            "original_events": self.original.event_count,
            "minimal_events": self.minimal.event_count,
            "minimal": self.minimal.to_json(),
        }


class _Oracle:
    """Memoized 'does this schedule still fail the same way?' predicate."""

    def __init__(
        self,
        runner: ChaosRunner,
        target: Set[str],
        invariants: Dict[str, Checker],
    ) -> None:
        self.runner = runner
        self.target = target
        self.invariants = invariants
        self.calls = 0
        self._memo: Dict[str, bool] = {}
        # Only pay for the expensive legs when they can matter.
        self.replay = "determinism" in target
        self.checkpoint = "checkpoint_resume" in target

    def fails(self, schedule: ChaosSchedule) -> bool:
        key = schedule.digest()
        if key not in self._memo:
            self.calls += 1
            violated = set(self.runner.violated(
                schedule, self.invariants,
                replay=self.replay, checkpoint=self.checkpoint,
            ))
            self._memo[key] = self.target <= violated
        return self._memo[key]


def _ddmin(
    events: List[ChaosEvent],
    base: ChaosSchedule,
    oracle: _Oracle,
) -> List[ChaosEvent]:
    """Zeller-style minimizing delta debugging over the event list."""
    granularity = 2
    while len(events) >= 2:
        size = len(events)
        chunk = max(1, size // granularity)
        chunks = [events[i:i + chunk] for i in range(0, size, chunk)]
        reduced = False
        for i in range(len(chunks)):
            complement = [
                ev for j, c in enumerate(chunks) for ev in c if j != i
            ]
            if complement and oracle.fails(base.with_events(complement)):
                events = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(events):
                break
            granularity = min(len(events), granularity * 2)
    if len(events) == 1:
        return events
    return events


def _shrink_params(
    events: List[ChaosEvent],
    base: ChaosSchedule,
    oracle: _Oracle,
) -> List[ChaosEvent]:
    """Simplify surviving events one field at a time (keep what fails)."""
    for _ in range(_MAX_PARAM_PASSES):
        changed = False
        for i, ev in enumerate(events):
            candidates: List[ChaosEvent] = []
            if ev.magnitude > 0.01:
                candidates.append(
                    replace(ev, magnitude=round(ev.magnitude / 2, 6))
                )
            if ev.at > 0.0:
                candidates.append(replace(ev, at=0.0))
            if ev.target > 0:
                candidates.append(replace(ev, target=0))
            for cand in candidates:
                trial = list(events)
                trial[i] = cand
                if oracle.fails(base.with_events(trial)):
                    events = trial
                    changed = True
                    break
        if not changed:
            break
    return events


def shrink_schedule(
    schedule: ChaosSchedule,
    runner: ChaosRunner,
    target: Optional[Sequence[str]] = None,
    invariants: Optional[Dict[str, Checker]] = None,
) -> ShrinkResult:
    """Shrink a failing schedule to a minimal reproducer.

    ``target`` names the invariant(s) the reproducer must keep
    violating; omitted, it is discovered from the schedule's own
    failure. Raises ``ValueError`` if the schedule doesn't actually
    fail — shrinking a passing schedule would minimize to nothing and
    mask the caller's bug.
    """
    inv = dict(invariants or DEFAULT_INVARIANTS)
    if target is None:
        discovered = runner.violated(schedule, inv)
        if not discovered:
            raise ValueError(
                "schedule violates no invariant; nothing to shrink"
            )
        target = discovered
    oracle = _Oracle(runner, set(target), inv)
    if not oracle.fails(schedule):
        raise ValueError(
            f"schedule does not violate {sorted(set(target))}; "
            "nothing to shrink"
        )
    events = _ddmin(list(schedule.events), schedule, oracle)
    events = _shrink_params(events, schedule, oracle)
    minimal = schedule.with_events(events)
    return ShrinkResult(
        original=schedule,
        minimal=minimal,
        target=sorted(set(target)),
        oracle_calls=oracle.calls,
    )
