"""Budgeted randomized search over the fault-schedule space.

:class:`ChaosRunner` executes one :class:`~repro.chaos.schedule.
ChaosSchedule` against the real serving fleet — twice from the same
seed for the determinism digest, with a :class:`~repro.obs.probe.
ChaosProbe` and :class:`~repro.obs.reqtrace.RequestTracer` installed on
the first run, plus a checkpoint/resume-equivalence leg on the
factorization path — and packages everything into a
:class:`~repro.chaos.invariants.ChaosObservation`.
:class:`ChaosSearch` drives the runner across a seeded generator's
schedules within a budget, checking every invariant on every run.

``mutator`` is the mutation-testing hook: a callable applied to each
run's :class:`~repro.serving.fleet.FleetResult` *symmetrically* (both
the primary run and the replay), so an injected bug trips exactly the
invariant it targets while determinism stays green — which is how tests
and the benchmark prove the harness actually catches violations and
shrinks them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import obs as obs_mod
from repro.artifacts import fingerprint_value
from repro.chaos.invariants import (
    DEFAULT_INVARIANTS,
    Checker,
    ChaosObservation,
    Violation,
    check_all,
)
from repro.chaos.schedule import ChaosSchedule, ScheduleGenerator
from repro.datasets.generators import random_sparse_tensor
from repro.factorization.accelerated import accelerated_cp_als
from repro.obs.probe import ChaosProbe
from repro.obs.reqtrace import RequestTracer
from repro.resilience import CheckpointStore, RetryPolicy
from repro.serving.fleet import FleetConfig, FleetResult, TensaurusFleet
from repro.serving.ladder import (
    TIER_ANALYTIC,
    DegradationLadder,
    calibrate_analytic_error,
)
from repro.serving.request import STATUS_OK, ServingRequest
from repro.serving.trace import WorkloadPool, synthetic_trace
from repro.sim.accelerator import Tensaurus
from repro.sim.config import TensaurusConfig
from repro.sim.faults import HBM_OUTAGE, SHARD_KILL, FaultPlan
from repro.util.errors import RetryExhaustedError
from repro.util.rng import derive_seed

__all__ = [
    "MUTATIONS",
    "ChaosRunner",
    "ChaosSearch",
    "SearchOutcome",
]

logger = obs_mod.get_logger(__name__)

#: Deadline budget for chaos traces (matches the serving benchmarks).
_TRACE_DEADLINE_S = 0.05

#: Tenants the chaos trace spreads load over (exercises the governor).
_TRACE_TENANTS = ("acme", "beta")

#: Sweeps in the checkpoint-equivalence CP-ALS leg (straight run), and
#: where the split run breaks: ``_CP_SPLIT`` sweeps checkpoint, then a
#: second call resumes from the shared store for the rest.
_CP_ITERS = 2
_CP_SPLIT = 1
_CP_RANK = 3
_CP_SHAPE = (6, 7, 5)
_CP_NNZ = 60


def mutation_drop_response(
    schedule: ChaosSchedule, result: FleetResult
) -> None:
    """Injected bug: silently lose one served response.

    Armed only when the schedule contains both a shard kill and an HBM
    outage — so the minimal reproducer is exactly two events, which is
    what the shrinker must find. Deterministic (highest request id) and
    applied to both runs, so only ``no_lost_admitted_work`` fires.
    """
    kinds = {ev.kind for ev in schedule.events}
    if SHARD_KILL not in kinds or HBM_OUTAGE not in kinds:
        return
    served = [r for r in result.responses if r.status == STATUS_OK]
    if not served:
        return
    victim = max(served, key=lambda r: r.request_id)
    result.responses.remove(victim)
    result.lost_request_ids.append(victim.request_id)


#: Registry of named fault injections for mutation testing.
MUTATIONS: Dict[str, Callable[[ChaosSchedule, FleetResult], None]] = {
    "drop_response": mutation_drop_response,
}


class ChaosRunner:
    """Executes schedules against the fleet and observes everything.

    The degradation ladder is calibrated **once**, over every (kernel,
    workload) pair in the pool (not a sample — the error-bound invariant
    needs a true bound), and injected into each fleet via the
    ``ladder=`` seam; a search over hundreds of schedules pays the
    calibration cost a single time. Ground-truth cycle counts for the
    error-bound check are memoized per (kernel, workload) the same way.
    """

    def __init__(
        self,
        sim_config: Optional[TensaurusConfig] = None,
        pool: Optional[WorkloadPool] = None,
        pool_seed: int = 77,
        mutator: Optional[Callable[[ChaosSchedule, FleetResult], None]] = None,
        checkpoint_leg: bool = True,
    ) -> None:
        self.sim_config = sim_config or TensaurusConfig()
        self.pool = (
            pool if pool is not None
            else WorkloadPool(seed=pool_seed, variants=2)
        )
        pairs = self.pool.choices()
        self.error_bound = calibrate_analytic_error(
            self.sim_config, self.pool, seed=pool_seed, probes=len(pairs)
        )
        self.ladder = DegradationLadder(self.sim_config, self.error_bound)
        self.mutator = mutator
        self.checkpoint_leg = checkpoint_leg
        self._true_cycles: Dict[Tuple[str, str], int] = {}
        self.runs = 0

    # ------------------------------------------------------------------
    def trace(self, schedule: ChaosSchedule) -> List[ServingRequest]:
        """The deterministic request trace a schedule runs against."""
        return synthetic_trace(
            self.pool,
            duration_s=schedule.duration_s,
            base_rate=schedule.base_rate,
            spike_factor=schedule.spike_factor,
            deadline_s=_TRACE_DEADLINE_S,
            seed=derive_seed(schedule.seed, "chaos-trace"),
            tenants=_TRACE_TENANTS,
        )

    def _execute(
        self,
        schedule: ChaosSchedule,
        plan: FaultPlan,
        requests: List[ServingRequest],
        observe: bool,
    ) -> Tuple[FleetResult, str, Optional[ChaosProbe], Optional[str]]:
        """One fleet run; returns (result, digest, probe, reconcile_err)."""
        cfg = FleetConfig(
            seed=schedule.seed,
            shards=schedule.shards,
            replicas_per_shard=schedule.replicas_per_shard,
            queue_depth=schedule.queue_depth,
            hedging=True,
        )
        fleet = TensaurusFleet(
            cfg, self.sim_config, fault_plan=plan, pool=self.pool,
            calibrate=False, ladder=self.ladder,
        )
        probe: Optional[ChaosProbe] = None
        tracer: Optional[RequestTracer] = None
        prev_probe = prev_tracer = None
        if observe:
            # Installed directly (not via ``obs.observe``) so the replay
            # run stays plain: observational purity is itself under test
            # via the determinism digest.
            probe = ChaosProbe()
            tracer = RequestTracer(seed=schedule.seed)
            prev_probe = obs_mod.set_probe(probe)
            prev_tracer = obs_mod.set_request_tracer(tracer)
        try:
            result = fleet.run_trace(requests)
        finally:
            if observe:
                obs_mod.set_probe(prev_probe)
                obs_mod.set_request_tracer(prev_tracer)
        if self.mutator is not None:
            self.mutator(schedule, result)
        reconcile_error: Optional[str] = None
        if observe:
            try:
                tracer.reconcile(result)
            except ValueError as exc:
                reconcile_error = str(exc)
        digest = fingerprint_value(
            "chaos-run",
            schedule.digest(),
            tuple(result.decision_log),
            tuple(
                r.log_row()
                for r in sorted(result.responses, key=lambda r: r.request_id)
            ),
            tuple(sorted(result.counters.items())),
        )
        return result, digest, probe, reconcile_error

    # ------------------------------------------------------------------
    def _true_cycles_for(self, kernel: str, workload: str) -> int:
        key = (kernel, workload)
        if key not in self._true_cycles:
            acc = Tensaurus(self.sim_config)
            report = self.pool[workload].run(
                kernel, acc, compute_output=False
            )
            self._true_cycles[key] = int(report.cycles)
        return self._true_cycles[key]

    def _analytic_errors(
        self, result: FleetResult, requests: List[ServingRequest]
    ) -> List[Tuple[int, float]]:
        """(request_id, relative cycle error) per degraded analytic answer."""
        by_rid = {req.request_id: req for req in requests}
        out: List[Tuple[int, float]] = []
        for resp in result.responses:
            if (
                resp.status != STATUS_OK or resp.tier != TIER_ANALYTIC
                or resp.report is None
            ):
                continue
            req = by_rid[resp.request_id]
            true = self._true_cycles_for(req.kernel, req.workload)
            rel = abs(int(resp.report.cycles) - true) / true
            out.append((resp.request_id, float(rel)))
        return out

    # ------------------------------------------------------------------
    def _checkpoint_equivalence(
        self, schedule: ChaosSchedule, plan: FaultPlan
    ) -> Tuple[Optional[bool], str]:
        """Straight vs. checkpoint-resumed CP-ALS under the schedule's
        accelerator-level faults: the reconstructed models must agree.

        The comparison is on the reconstruction (weights folded back
        into the factors), not the raw factor matrices: ``cp_als``
        column-normalizes by 2-norm on its first sweep and max-norm
        afterwards, so a resumed run splits the same model into
        ``(weights, factors)`` differently — a representation choice,
        not a divergence. Models agree to ~1e-15 relative when resume is
        correct and by ~1e-1 when it is not, so the 1e-9 gate below is
        unambiguous. The leg's plan keeps only *detected, retryable*
        hazards (launch aborts and HBM outages, clamped, full detection
        coverage) — an undetected bit flip legitimately changes results
        and would turn the invariant into noise. Exhausted retries are a
        liveness outcome, not a correctness violation: reported as
        skipped.
        """
        cp_seed = derive_seed(schedule.seed, "chaos-cp")
        leg_plan = FaultPlan(
            seed=cp_seed,
            launch_abort_rate=min(0.3, plan.launch_abort_rate),
            hbm_outage_rate=min(0.3, plan.hbm_outage_rate),
            detection_coverage=1.0,
        )
        tensor = random_sparse_tensor(
            _CP_SHAPE, _CP_NNZ, seed=derive_seed(cp_seed, "tensor")
        )
        policy = RetryPolicy(
            max_retries=12, backoff_base_s=0.0, jitter=0.0, seed=cp_seed
        )
        nosleep = lambda _s: None  # noqa: E731

        def fit(num_iters: int, store: Optional[CheckpointStore], epoch: int):
            acc = Tensaurus(
                self.sim_config, fault_plan=leg_plan, fault_epoch=epoch
            )
            return accelerated_cp_als(
                tensor, _CP_RANK, num_iters=num_iters, seed=cp_seed,
                accelerator=acc, checkpoint_store=store,
                retry_policy=policy, sleep=nosleep,
            )

        try:
            straight = fit(_CP_ITERS, None, 0)
            store = CheckpointStore(keep=_CP_ITERS + 1)
            fit(_CP_SPLIT, store, 1000)
            resumed = fit(_CP_ITERS, store, 2000)
        except RetryExhaustedError as exc:
            return None, f"skipped: retries exhausted ({exc})"

        def reconstruct(dec) -> np.ndarray:
            a, b, c = dec.factors
            return np.einsum(
                "r,ir,jr,kr->ijk", dec.weights, a, b, c
            )

        model_a = reconstruct(straight.decomposition)
        model_b = reconstruct(resumed.decomposition)
        denom = max(float(np.abs(model_a).max()), 1e-12)
        rel = float(np.abs(model_a - model_b).max()) / denom
        if rel > 1e-9:
            return False, f"reconstructed models diverged (rel {rel:.3e})"
        if resumed.resilience.get("resumed_iteration", 0) < _CP_SPLIT:
            return False, "resumed run did not start from the checkpoint"
        return True, (
            f"resumed from sweep {resumed.resilience['resumed_iteration']}"
            f", rel diff {rel:.1e}"
        )

    # ------------------------------------------------------------------
    def run(
        self,
        schedule: ChaosSchedule,
        replay: bool = True,
        checkpoint: bool = True,
    ) -> ChaosObservation:
        """Execute one schedule and return its full observation.

        ``replay=False`` skips the second (determinism) run and
        ``checkpoint=False`` the CP-ALS leg — the shrinker uses these
        when the invariant it is chasing doesn't need them.
        """
        plan = schedule.fault_plan()
        requests = self.trace(schedule)
        result, digest, probe, reconcile_error = self._execute(
            schedule, plan, requests, observe=True
        )
        if replay:
            _, replay_digest, _, _ = self._execute(
                schedule, plan, requests, observe=False
            )
        else:
            replay_digest = digest
        cp_equal: Optional[bool] = None
        cp_detail = "skipped: leg disabled"
        if checkpoint and self.checkpoint_leg:
            cp_equal, cp_detail = self._checkpoint_equivalence(
                schedule, plan
            )
        self.runs += 1
        return ChaosObservation(
            schedule=schedule,
            result=result,
            digest=digest,
            replay_digest=replay_digest,
            probe=probe,
            reconcile_error=reconcile_error,
            checkpoint_equal=cp_equal,
            checkpoint_detail=cp_detail,
            error_bound=self.ladder.analytic_error_bound,
            analytic_errors=self._analytic_errors(result, requests),
        )

    def violated(
        self,
        schedule: ChaosSchedule,
        invariants: Optional[Dict[str, Checker]] = None,
        replay: bool = True,
        checkpoint: bool = True,
    ) -> List[str]:
        """Names of the invariants ``schedule`` violates (shrink oracle)."""
        observation = self.run(
            schedule, replay=replay, checkpoint=checkpoint
        )
        return sorted(
            {v.invariant for v in check_all(observation, invariants)}
        )


# ----------------------------------------------------------------------
@dataclass
class SearchOutcome:
    """Everything one budgeted search produced."""

    seed: int
    budget: int
    records: List[Dict[str, object]] = field(default_factory=list)
    failures: List[Tuple[ChaosSchedule, List[Violation]]] = field(
        default_factory=list
    )
    elapsed_s: float = 0.0

    @property
    def schedules_run(self) -> int:
        return len(self.records)

    @property
    def violation_count(self) -> int:
        return sum(len(v) for _, v in self.failures)

    @property
    def schedules_per_s(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.schedules_run / self.elapsed_s

    def to_json(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "schedules_run": self.schedules_run,
            "violations": self.violation_count,
            "elapsed_s": self.elapsed_s,
            "schedules_per_s": self.schedules_per_s,
            "records": self.records,
            "failures": [
                {
                    "schedule": sched.to_json(),
                    "violations": [v.to_json() for v in violations],
                }
                for sched, violations in self.failures
            ],
        }


class ChaosSearch:
    """Budgeted seeded search: generate, execute, judge, record."""

    def __init__(
        self,
        runner: ChaosRunner,
        generator: ScheduleGenerator,
        invariants: Optional[Dict[str, Checker]] = None,
    ) -> None:
        self.runner = runner
        self.generator = generator
        self.invariants = dict(invariants or DEFAULT_INVARIANTS)

    def run(
        self,
        budget: int,
        start: int = 0,
        stop_on_failure: bool = False,
    ) -> SearchOutcome:
        t0 = time.perf_counter()
        outcome = SearchOutcome(seed=self.generator.seed, budget=budget)
        for i in range(budget):
            index = start + i
            schedule = self.generator.generate(index)
            observation = self.runner.run(schedule)
            violations = check_all(observation, self.invariants)
            outcome.records.append({
                "index": index,
                "seed": schedule.seed,
                "events": schedule.event_count,
                "schedule_digest": schedule.digest(),
                "run_digest": observation.digest,
                "checked": list(self.invariants),
                "violations": [v.to_json() for v in violations],
            })
            if violations:
                outcome.failures.append((schedule, violations))
                logger.warning(
                    "chaos schedule %d violated %s",
                    index,
                    sorted({v.invariant for v in violations}),
                )
                if stop_on_failure:
                    break
        outcome.elapsed_s = time.perf_counter() - t0
        return outcome
