"""An :class:`~repro.artifacts.ArtifactStore`-backed regression corpus.

Every shrunk reproducer (or deliberately nasty hand-built schedule)
lands here; CI replays the whole corpus on every commit and fails on
any invariant violation. Blobs are the authoritative record — each
payload embeds its own key, so the human-readable ``index.json``
manifest can always be rebuilt from the blobs via the store's
:meth:`~repro.artifacts.ArtifactStore.read_index` recovery hook even
when the index is truncated or lost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.artifacts import ArtifactStore
from repro.chaos.invariants import DEFAULT_INVARIANTS, Checker, check_all
from repro.chaos.schedule import ChaosSchedule
from repro.chaos.search import ChaosRunner

__all__ = ["ChaosCorpus"]

logger = obs.get_logger(__name__)


class ChaosCorpus:
    """Persistent keyed collection of chaos schedules."""

    NAMESPACE = "chaos-corpus"

    def __init__(self, store: ArtifactStore) -> None:
        self.store = store

    # ------------------------------------------------------------------
    @staticmethod
    def _recover(path, value) -> Optional[Tuple[str, Dict[str, object]]]:
        """Index-rebuild hook: corpus payloads embed their own key."""
        if (
            isinstance(value, dict)
            and isinstance(value.get("key"), str)
            and isinstance(value.get("schedule"), dict)
        ):
            return value["key"], ChaosCorpus._meta(value)
        return None

    @staticmethod
    def _meta(payload: Dict[str, object]) -> Dict[str, object]:
        return {
            "events": len(payload["schedule"].get("events", [])),
            "invariants": list(payload.get("invariants", [])),
            "note": payload.get("note", ""),
        }

    def _index(self) -> Dict[str, Dict[str, object]]:
        return self.store.read_index(self.NAMESPACE, recover=self._recover)

    # ------------------------------------------------------------------
    def add(
        self,
        schedule: ChaosSchedule,
        invariants: Sequence[str] = (),
        note: str = "",
    ) -> str:
        """Persist a schedule; returns its content-derived key."""
        key = f"case-{schedule.digest()}"
        payload = {
            "key": key,
            "schedule": schedule.to_json(),
            "invariants": list(invariants),
            "note": note,
        }
        self.store.put(self.NAMESPACE, (key,), payload)
        index = self._index()
        index[key] = self._meta(payload)
        self.store.write_index(self.NAMESPACE, index)
        return key

    def keys(self) -> List[str]:
        return sorted(self._index())

    def get(self, key: str) -> ChaosSchedule:
        payload = self.store.load(self.NAMESPACE, (key,))
        if payload is None:
            raise KeyError(f"no corpus entry {key!r}")
        return ChaosSchedule.from_json(payload["schedule"])

    def entries(self) -> List[Tuple[str, ChaosSchedule]]:
        return [(key, self.get(key)) for key in self.keys()]

    def __len__(self) -> int:
        return len(self._index())

    # ------------------------------------------------------------------
    def replay(
        self,
        runner: ChaosRunner,
        invariants: Optional[Dict[str, Checker]] = None,
    ) -> Dict[str, List[Dict[str, object]]]:
        """Re-run every stored schedule; key -> violations (empty = pass).

        CI calls this and fails the build if any value is non-empty.
        """
        inv = dict(invariants or DEFAULT_INVARIANTS)
        results: Dict[str, List[Dict[str, object]]] = {}
        for key, schedule in self.entries():
            observation = runner.run(schedule)
            violations = check_all(observation, inv)
            results[key] = [v.to_json() for v in violations]
            if violations:
                logger.warning(
                    "corpus case %s regressed: %s",
                    key,
                    sorted({v.invariant for v in violations}),
                )
        return results
