"""The serving stack's guarantees, as composable invariant checkers.

Each checker is a pure function over a :class:`ChaosObservation` — the
complete record of one executed schedule (fleet results from two seeded
runs, the probe's lifecycle-event stream, trace reconciliation, the
checkpoint-equivalence leg, degraded-tier error measurements) — and
returns the list of :class:`Violation`\\ s it found. The runner
(:mod:`repro.chaos.search`) builds observations; this module only
judges them, which is what makes an intentionally-broken system
(mutation testing) detectable: the checkers never trust the run that
produced the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "ChaosObservation",
    "Violation",
    "DEFAULT_INVARIANTS",
    "check_all",
]

#: Slack on the calibrated analytic error bound (pure float noise).
_BOUND_EPS = 1e-9


@dataclass(frozen=True)
class Violation:
    """One invariant breach, with enough detail to reproduce it."""

    invariant: str
    summary: str
    detail: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        return {
            "invariant": self.invariant,
            "summary": self.summary,
            "detail": dict(self.detail),
        }


@dataclass
class ChaosObservation:
    """Everything one executed schedule produced, ready for judgment.

    ``digest``/``replay_digest`` fingerprint the decision log + response
    rows of two independent runs from the same seed. ``probe`` is run
    1's lifecycle-event stream. ``checkpoint_equal`` is the verdict of
    the straight-vs-resumed CP-ALS leg under the schedule's
    accelerator-level faults (``None`` when the leg was skipped — e.g.
    retries exhausted, which is a liveness matter, not a correctness
    violation). ``analytic_errors`` holds ``(request_id, relative
    cycle error)`` for every degraded analytic response, measured
    against a ground-truth cycle simulation of the same (kernel,
    workload).
    """

    schedule: object
    result: object
    digest: str
    replay_digest: str
    probe: object
    reconcile_error: Optional[str] = None
    checkpoint_equal: Optional[bool] = None
    checkpoint_detail: str = ""
    error_bound: float = 0.0
    analytic_errors: List[Tuple[int, float]] = field(default_factory=list)


Checker = Callable[[ChaosObservation], List[Violation]]


def check_exactly_once(obs: ChaosObservation) -> List[Violation]:
    """No admitted request is ever committed twice.

    Cross-checks the fleet's own accounting (``duplicate_completions``)
    against the probe's commit stream — a bug that double-commits *and*
    forgets to count it still trips the probe-side check.
    """
    out: List[Violation] = []
    dupes = obs.result.counters.get("duplicate_completions", 0)
    if dupes:
        out.append(Violation(
            "exactly_once",
            f"{dupes} duplicate completion(s) committed",
            {"duplicate_completions": dupes},
        ))
    commits: Dict[int, int] = {}
    for ev in obs.probe.of("commit"):
        commits[ev["rid"]] = commits.get(ev["rid"], 0) + 1
    doubled = {rid: n for rid, n in commits.items() if n > 1}
    if doubled:
        out.append(Violation(
            "exactly_once",
            f"{len(doubled)} request(s) observed committing more than once",
            {"request_ids": sorted(doubled)},
        ))
    return out


def check_no_lost_admitted_work(obs: ChaosObservation) -> List[Violation]:
    """Every admitted request gets exactly one explicit answer.

    Served, shed-by-eviction, or failed-with-reason — never silently
    dropped. The counter identity (admitted = served + evicted +
    failover overflow) catches a request that fell through a failover
    crack even if the lost-id bookkeeping itself were broken.
    """
    out: List[Violation] = []
    lost = list(obs.result.lost_request_ids)
    if lost:
        out.append(Violation(
            "no_lost_admitted_work",
            f"{len(lost)} admitted request(s) lost",
            {"request_ids": lost[:32]},
        ))
    c = obs.result.counters
    accounted = (
        c.get("served", 0) + c.get("evicted", 0)
        + c.get("failover_overflow", 0)
    )
    if c.get("admitted", 0) != accounted:
        out.append(Violation(
            "no_lost_admitted_work",
            f"admitted {c.get('admitted', 0)} != served+evicted+overflow "
            f"{accounted}",
            {"counters": {k: c.get(k, 0) for k in (
                "admitted", "served", "evicted", "failover_overflow")}},
        ))
    return out


def check_breaker_safety(obs: ChaosObservation) -> List[Violation]:
    """An open breaker never receives a launch.

    The probe records each launch's breaker state *at launch time*;
    ``allow()`` legitimately moves open -> half_open before a probe
    launch, so any launch observed against a still-open breaker means
    the admission path was bypassed.
    """
    bad = [
        ev for kind in ("launch", "hedge_launch")
        for ev in obs.probe.of(kind)
        if ev.get("replica") is not None and ev.get("breaker") == "open"
    ]
    if not bad:
        return []
    return [Violation(
        "breaker_safety",
        f"{len(bad)} launch(es) landed on an open breaker",
        {"launches": bad[:16]},
    )]


def check_checkpoint_resume(obs: ChaosObservation) -> List[Violation]:
    """A resumed factorization is bit-equal to a straight-through one."""
    if obs.checkpoint_equal is None or obs.checkpoint_equal:
        return []
    return [Violation(
        "checkpoint_resume",
        "resumed CP-ALS diverged from the straight-through run",
        {"detail": obs.checkpoint_detail},
    )]


def check_determinism(obs: ChaosObservation) -> List[Violation]:
    """Same seed twice => same decision log and response rows."""
    if obs.digest == obs.replay_digest:
        return []
    return [Violation(
        "determinism",
        "replay from the recorded seed diverged",
        {"digest": obs.digest, "replay_digest": obs.replay_digest},
    )]


def check_trace_reconciliation(obs: ChaosObservation) -> List[Violation]:
    """The request-span tree reconciles with every served latency."""
    if obs.reconcile_error is None:
        return []
    return [Violation(
        "trace_reconciliation",
        "RequestTracer.reconcile rejected the run",
        {"error": obs.reconcile_error},
    )]


def check_error_bound(obs: ChaosObservation) -> List[Violation]:
    """Degraded analytic answers honor the calibrated error bound."""
    over = [
        (rid, err) for rid, err in obs.analytic_errors
        if err > obs.error_bound + _BOUND_EPS
    ]
    if not over:
        return []
    worst = max(err for _, err in over)
    return [Violation(
        "error_bound",
        f"{len(over)} analytic response(s) exceeded the calibrated "
        f"bound {obs.error_bound:.4f} (worst {worst:.4f})",
        {"over": [(rid, err) for rid, err in over[:16]],
         "bound": obs.error_bound},
    )]


#: Checker registry, in report order. Every search run checks all of
#: these on every schedule.
DEFAULT_INVARIANTS: Dict[str, Checker] = {
    "exactly_once": check_exactly_once,
    "no_lost_admitted_work": check_no_lost_admitted_work,
    "breaker_safety": check_breaker_safety,
    "checkpoint_resume": check_checkpoint_resume,
    "determinism": check_determinism,
    "trace_reconciliation": check_trace_reconciliation,
    "error_bound": check_error_bound,
}


def check_all(
    obs: ChaosObservation,
    invariants: Optional[Dict[str, Checker]] = None,
) -> List[Violation]:
    """Run every checker; the concatenated violations (empty = clean)."""
    out: List[Violation] = []
    for checker in (invariants or DEFAULT_INVARIANTS).values():
        out.extend(checker(obs))
    return out
