"""Tensaurus reproduction: a versatile accelerator for mixed sparse-dense
tensor computations (Srivastava et al., HPCA 2020), rebuilt in Python.

The package layers, bottom to top:

- :mod:`repro.tensor` — the N-dimensional sparse tensor substrate.
- :mod:`repro.formats` — storage formats, including the paper's CISS.
- :mod:`repro.kernels` — reference kernels and the SF3 compute pattern.
- :mod:`repro.factorization` — CP-ALS and Tucker-HOOI on those kernels.
- :mod:`repro.sim` — the cycle-level accelerator simulator (with the
  fault-injection layer in :mod:`repro.sim.faults`).
- :mod:`repro.resilience` — host-side retry policies and checkpoints.
- :mod:`repro.baselines` / :mod:`repro.energy` — comparison platforms.
- :mod:`repro.datasets` — synthetic stand-ins for the paper's datasets.
- :mod:`repro.analysis` — rooflines and result tables.
- :mod:`repro.tune` — auto-tuning config search over the design space.
- :mod:`repro.obs` — opt-in tracing, metrics, and structured logging.

Quick start::

    from repro import Tensaurus, datasets
    acc = Tensaurus()
    tensor = datasets.load_tensor("nell-2")
    import numpy as np
    rng = np.random.default_rng(0)
    b = rng.random((tensor.shape[1], 32))
    c = rng.random((tensor.shape[2], 32))
    report = acc.run_mttkrp(tensor, b, c, mode=0)
    print(report.summary())
"""

from repro import analysis, apps, baselines, datasets, energy, factorization
from repro import formats, io, kernels, obs, resilience, sim, tensor, tune, util
from repro.formats import CISSMatrix, CISSTensor
from repro.resilience import CheckpointStore, RetryPolicy
from repro.sim import FastModel, FaultPlan, Tensaurus, TensaurusConfig
from repro.tensor import SparseTensor

__version__ = "0.1.0"

__all__ = [
    "analysis",
    "apps",
    "baselines",
    "datasets",
    "energy",
    "factorization",
    "formats",
    "io",
    "kernels",
    "obs",
    "resilience",
    "sim",
    "tensor",
    "tune",
    "util",
    "CISSMatrix",
    "CISSTensor",
    "CheckpointStore",
    "FastModel",
    "FaultPlan",
    "RetryPolicy",
    "Tensaurus",
    "TensaurusConfig",
    "SparseTensor",
    "__version__",
]
