"""Span tracing with Chrome ``trace_event`` export.

The tracer records two tracks of paired begin/end events:

- the **host** track (``pid=1``): wall-clock spans around Python-side work
  (encoding, sweeps, factorization iterations), stamped from
  ``time.perf_counter`` in microseconds;
- the **sim** track (``pid=2``): cycle-denominated spans for accelerator
  launches. :meth:`Tracer.add_launch` lays the launch and its phase
  children (stream/compute/stall/drain/recovery) back-to-back on a cycle
  cursor, so the per-phase bars in Perfetto sum exactly to each launch's
  ``SimReport.cycles``.

Export is the standard JSON object format (``{"traceEvents": [...]}``)
loadable in ``chrome://tracing`` / Perfetto; :func:`validate_chrome_trace`
checks the structural invariants (begin/end pairing, per-track monotonic
timestamps) that CI asserts. :meth:`Tracer.summary` renders a
flamegraph-style text rollup via :func:`repro.analysis.tables.format_table`
for terminals without a trace viewer.

When tracing is off the active tracer is :data:`NULL_TRACER`, whose
``span`` returns a cached no-op context manager — instrumented code pays
one attribute check.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional

from repro.analysis.tables import format_table

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "validate_chrome_trace",
    "HOST_PID",
    "SIM_PID",
]

#: Synthetic process ids separating the wall-clock and cycle-time tracks.
HOST_PID = 1
SIM_PID = 2

#: Phase display order inside a launch span.
PHASE_ORDER = ("stream", "compute", "stall", "drain", "recovery")


class Tracer:
    """Collects paired begin/end events for Chrome-trace export.

    Parameters
    ----------
    micro:
        Opt-in firehose flag. Instrumentation sites that would emit one
        event per CISS entry / PE record check ``tracer.micro`` before
        doing so; the default keeps traces at launch/tile granularity.
    """

    enabled = True

    def __init__(self, micro: bool = False) -> None:
        self.micro = bool(micro)
        self.events: List[dict] = []
        self._t0 = time.perf_counter()
        self._sim_cursor = 0  # cycles; advances once per launch
        self._bound: Dict[str, object] = {}

    @contextmanager
    def bind(self, **context: object) -> Iterator[None]:
        """Attach ambient args to every sim-track event in the block.

        The fleet wraps each shard's ladder execution in
        ``tracer().bind(shard=sid)`` so micro-mode instants and launch
        spans emitted deep inside the simulator carry the owning shard id
        — per-shard flamegraphs then separate cleanly in the summary and
        in Perfetto, instead of interleaving on one anonymous track.
        Nested binds merge (inner wins on key collision); explicit event
        args always win over bound context.
        """
        previous = self._bound
        self._bound = {**previous, **context}
        try:
            yield
        finally:
            self._bound = previous

    def _merge_args(
        self, args: Optional[Mapping[str, object]]
    ) -> Optional[Dict[str, object]]:
        if not self._bound:
            return dict(args) if args else None
        merged = dict(self._bound)
        if args:
            merged.update(args)
        return merged

    # ------------------------------------------------------------------
    # host (wall-clock) track
    # ------------------------------------------------------------------
    def _now_us(self) -> float:
        return (time.perf_counter() - self._t0) * 1e6

    def begin(self, name: str, cat: str = "host",
              args: Optional[Mapping[str, object]] = None) -> None:
        event = {"name": name, "cat": cat, "ph": "B",
                 "ts": self._now_us(), "pid": HOST_PID, "tid": 1}
        if args:
            event["args"] = dict(args)
        self.events.append(event)

    def end(self, name: str, cat: str = "host") -> None:
        self.events.append({"name": name, "cat": cat, "ph": "E",
                            "ts": self._now_us(), "pid": HOST_PID, "tid": 1})

    @contextmanager
    def span(self, name: str, cat: str = "host",
             args: Optional[Mapping[str, object]] = None) -> Iterator[None]:
        """A wall-clock begin/end pair around a block of host work."""
        self.begin(name, cat, args)
        try:
            yield
        finally:
            self.end(name, cat)

    def instant(self, name: str, cat: str = "host",
                args: Optional[Mapping[str, object]] = None) -> None:
        event = {"name": name, "cat": cat, "ph": "i", "s": "t",
                 "ts": self._now_us(), "pid": HOST_PID, "tid": 1}
        if args:
            event["args"] = dict(args)
        self.events.append(event)

    def counter(self, name: str, values: Mapping[str, float],
                cat: str = "host") -> None:
        self.events.append({"name": name, "cat": cat, "ph": "C",
                            "ts": self._now_us(), "pid": HOST_PID, "tid": 1,
                            "args": dict(values)})

    # ------------------------------------------------------------------
    # sim (cycle) track
    # ------------------------------------------------------------------
    def add_launch(self, name: str, cycles: int,
                   phases: Optional[Mapping[str, int]] = None,
                   args: Optional[Mapping[str, object]] = None) -> None:
        """Append one accelerator launch to the cycle track.

        The launch span covers ``cycles`` cycles starting at the current
        cursor; phase children are laid back-to-back inside it in
        :data:`PHASE_ORDER` (zero-cycle phases are skipped). The cursor
        then advances past the launch, keeping the track monotonic.
        """
        start = self._sim_cursor
        launch = {"name": name, "cat": "sim.launch", "ph": "B",
                  "ts": float(start), "pid": SIM_PID, "tid": 1}
        merged = self._merge_args(args)
        if merged:
            launch["args"] = merged
        self.events.append(launch)
        if phases:
            at = start
            ordered = [p for p in PHASE_ORDER if p in phases]
            ordered += [p for p in sorted(phases) if p not in PHASE_ORDER]
            for phase in ordered:
                width = int(phases[phase])
                if width <= 0:
                    continue
                self.events.append(
                    {"name": phase, "cat": "sim.phase", "ph": "B",
                     "ts": float(at), "pid": SIM_PID, "tid": 1}
                )
                at += width
                self.events.append(
                    {"name": phase, "cat": "sim.phase", "ph": "E",
                     "ts": float(at), "pid": SIM_PID, "tid": 1}
                )
        self._sim_cursor = start + int(cycles)
        self.events.append({"name": name, "cat": "sim.launch", "ph": "E",
                            "ts": float(self._sim_cursor), "pid": SIM_PID,
                            "tid": 1})

    def sim_instant(self, name: str, at_cycle: float,
                    args: Optional[Mapping[str, object]] = None) -> None:
        """A point event on the cycle track (cursor-relative)."""
        event = {"name": name, "cat": "sim.event", "ph": "i", "s": "t",
                 "ts": float(self._sim_cursor + at_cycle), "pid": SIM_PID,
                 "tid": 1}
        merged = self._merge_args(args)
        if merged:
            event["args"] = merged
        self.events.append(event)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def chrome_trace(self) -> dict:
        return {
            "traceEvents": list(self.events),
            "displayTimeUnit": "ms",
            "otherData": {
                "tracks": {str(HOST_PID): "host (us)", str(SIM_PID): "sim (cycles)"}
            },
        }

    def export_chrome(self, path: Optional[str] = None) -> dict:
        """The Chrome-trace dict; also written to ``path`` when given."""
        trace = self.chrome_trace()
        if path is not None:
            with open(path, "w") as fh:
                json.dump(trace, fh, indent=1)
        return trace

    def summary(self) -> str:
        """Flamegraph-style text rollup: total/avg per (category, name).

        Host rows aggregate microseconds, sim rows aggregate cycles; the
        unit column says which. Sim spans carrying a ``shard`` arg (set
        by :meth:`bind` under the fleet) roll up per shard, so one fleet
        trace yields cleanly separated per-shard flamegraphs.
        """
        totals: Dict[tuple, List[float]] = {}
        stacks: Dict[tuple, List[dict]] = {}
        for event in self.events:
            track = (event["pid"], event["tid"])
            if event["ph"] == "B":
                stacks.setdefault(track, []).append(event)
            elif event["ph"] == "E":
                stack = stacks.get(track)
                if not stack:
                    continue
                begin = stack.pop()
                shard = (begin.get("args") or {}).get("shard")
                key = (event.get("cat", ""), begin["name"], shard)
                bucket = totals.setdefault(key, [0, 0.0])
                bucket[0] += 1
                bucket[1] += event["ts"] - begin["ts"]
        if not totals:
            return "(no spans recorded)"
        sharded = any(key[2] is not None for key in totals)
        rows = []
        for (cat, name, shard), (count, total) in sorted(
            totals.items(), key=lambda kv: -kv[1][1]
        ):
            unit = "cycles" if cat.startswith("sim") else "us"
            row = [name, cat, count, f"{total:,.0f}",
                   f"{total / count:,.1f}", unit]
            if sharded:
                row.insert(2, "-" if shard is None else str(shard))
            rows.append(row)
        headers = ["span", "category", "count", "total", "avg", "unit"]
        if sharded:
            headers.insert(2, "shard")
        return format_table(headers, rows)


def validate_chrome_trace(trace: Mapping[str, object]) -> int:
    """Structurally validate a Chrome-trace dict; the CI schema check.

    Asserts, per ``(pid, tid)`` track: 'E' events close the matching 'B'
    (same name, stack discipline), span timestamps are monotonically
    non-decreasing, and every span is closed by the end of the trace.
    Instant/counter events ('i'/'C') may be back-dated — viewers sort
    them — so only 'B'/'E' participate in the monotonicity check.
    Complete events ('X', used by the request tracer where hedged spans
    legitimately overlap) must carry a non-negative numeric ``dur`` and
    are exempt from stack discipline. Returns the number of events
    checked; raises ``ValueError`` on the first violation.
    """
    if not isinstance(trace, Mapping) or "traceEvents" not in trace:
        raise ValueError("trace must be a dict with a 'traceEvents' list")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    stacks: Dict[tuple, List[dict]] = {}
    last_ts: Dict[tuple, float] = {}
    for i, event in enumerate(events):
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in event:
                raise ValueError(f"event {i} missing field {field!r}: {event}")
        track = (event["pid"], event["tid"])
        ts = float(event["ts"])
        if event["ph"] in ("B", "E"):
            if ts < last_ts.get(track, float("-inf")):
                raise ValueError(
                    f"event {i} ({event['name']!r}): timestamp {ts} goes "
                    f"backwards on track {track} (last {last_ts[track]})"
                )
            last_ts[track] = ts
        if event["ph"] == "B":
            stacks.setdefault(track, []).append(event)
        elif event["ph"] == "E":
            stack = stacks.get(track)
            if not stack:
                raise ValueError(
                    f"event {i} ({event['name']!r}): 'E' with no open span "
                    f"on track {track}"
                )
            begin = stack.pop()
            if begin["name"] != event["name"]:
                raise ValueError(
                    f"event {i}: 'E' for {event['name']!r} closes span "
                    f"{begin['name']!r} (interleaved, not nested)"
                )
        elif event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"event {i} ({event['name']!r}): 'X' requires a "
                    f"non-negative numeric 'dur', got {dur!r}"
                )
        elif event["ph"] not in ("i", "C", "M"):
            raise ValueError(f"event {i}: unknown phase {event['ph']!r}")
    for track, stack in stacks.items():
        if stack:
            names = [e["name"] for e in stack]
            raise ValueError(f"unclosed spans on track {track}: {names}")
    return len(events)


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: ``span`` hands back one cached no-op context."""

    enabled = False
    micro = False

    def span(self, name: str, cat: str = "host",
             args: Optional[Mapping[str, object]] = None) -> _NullSpan:
        return _NULL_SPAN

    def bind(self, **context: object) -> _NullSpan:
        return _NULL_SPAN

    def begin(self, name: str, cat: str = "host",
              args: Optional[Mapping[str, object]] = None) -> None:
        pass

    def end(self, name: str, cat: str = "host") -> None:
        pass

    def instant(self, name: str, cat: str = "host",
                args: Optional[Mapping[str, object]] = None) -> None:
        pass

    def counter(self, name: str, values: Mapping[str, float],
                cat: str = "host") -> None:
        pass

    def add_launch(self, name: str, cycles: int,
                   phases: Optional[Mapping[str, int]] = None,
                   args: Optional[Mapping[str, object]] = None) -> None:
        pass

    def sim_instant(self, name: str, at_cycle: float,
                    args: Optional[Mapping[str, object]] = None) -> None:
        pass

    def chrome_trace(self) -> dict:
        return {"traceEvents": []}

    def export_chrome(self, path: Optional[str] = None) -> dict:
        return {"traceEvents": []}

    def summary(self) -> str:
        return "(tracing disabled)"


NULL_TRACER = NullTracer()
