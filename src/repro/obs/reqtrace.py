"""Per-request causal tracing across the serving fleet.

The :mod:`repro.obs.trace` tracer answers "where do cycles go inside one
launch"; this module answers the fleet-scale question — "what happened to
request 1742, on which shard, and why was it slow". A
:class:`RequestTracer` assigns every request a deterministic
``trace_id`` (derived from the tracer seed and the request id, never from
the host clock) and records a tree of spans in *virtual* time as the
request moves through the fleet:

::

    request #1742 (trace 5f0c...)
    └─ admit            t=0.10312         tenant=acme shard=2
       ├─ queue         t=0.10312-0.10original4  depth=3
       └─ service       t=0.10494-0.11221 tier=full shard=2 replica=0
          └─ (events: cache=hit, epoch=0)

Spans carry ``(trace_id, span_id, parent_id)`` like any distributed
tracer, but timestamps come from the fleet's deterministic event loop —
so the same seed always produces the identical span tree, and the root
span of every served request covers exactly ``arrival_s → finish_s``:
:meth:`RequestTracer.reconcile` asserts that each root duration equals
the corresponding :attr:`ServingResponse.latency_s` bit-for-bit.

Failover is first-class: a shard kill ends the victim's ``service`` span
with ``voided=True``, the re-deal shows up as a ``redeal`` event plus a
fresh ``queue`` span at the bumped epoch, and the dead shard's stale
completion (discarded by the at-most-once check) lands as a
``stale_completion`` event on the same trace — one causally-linked tree
per request, kills included.

Export is Chrome ``trace_event`` "X" (complete) events — one track per
request — loadable next to the cycle-track trace in Perfetto; the
:func:`repro.obs.trace.validate_chrome_trace` schema check accepts them.

When request tracing is off the active tracer is
:data:`NULL_REQUEST_TRACER`, whose every method is a no-op: the fleet
pays one ``enabled`` check per trace replay, preserving both the <2%
disabled-overhead gate and bit-identical replay digests.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.analysis.tables import format_table

__all__ = [
    "Span",
    "RequestTracer",
    "NullRequestTracer",
    "NULL_REQUEST_TRACER",
    "REQUEST_PID",
    "current_context",
]

#: Synthetic Chrome-trace process id for the request track (the span
#: tracer uses 1=host and 2=sim; requests get their own lane).
REQUEST_PID = 3

#: Module-level active-context stack: ``(trace_id, span_id)`` pairs
#: pushed by :meth:`RequestTracer.activate`. Lives at module level (not
#: on the tracer) so :mod:`repro.obs.logs` can read it without holding a
#: tracer reference, and so a swapped-out tracer cannot leak contexts.
_ACTIVE: List[Tuple[str, int]] = []


def current_context() -> Optional[Tuple[str, int]]:
    """The innermost active ``(trace_id, span_id)``, or None.

    JSON-lines log records stamp this onto every message emitted while a
    request span is active, so fleet logs join against request traces.
    """
    return _ACTIVE[-1] if _ACTIVE else None


@dataclass
class Span:
    """One node of a request's span tree (virtual-time)."""

    trace_id: str
    span_id: int
    parent_id: Optional[int]
    name: str
    start_s: float
    end_s: Optional[float] = None
    kind: str = "span"  # "span" | "event"
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_s(self) -> Optional[float]:
        if self.end_s is None:
            return None
        return self.end_s - self.start_s

    def row(self) -> Tuple:
        """Deterministic flat tuple (digest / comparison input)."""
        return (
            self.trace_id,
            self.span_id,
            self.parent_id,
            self.name,
            self.kind,
            round(self.start_s, 12),
            None if self.end_s is None else round(self.end_s, 12),
            tuple(sorted((k, str(v)) for k, v in self.attrs.items())),
        )


class _Trace:
    """All spans of one request, in creation order."""

    __slots__ = ("trace_id", "request_id", "spans", "_next_id")

    def __init__(self, trace_id: str, request_id: int) -> None:
        self.trace_id = trace_id
        self.request_id = request_id
        self.spans: List[Span] = []
        self._next_id = 1

    def add(self, name: str, start_s: float, parent_id: Optional[int],
            kind: str, attrs: Optional[Mapping[str, object]]) -> Span:
        span = Span(
            trace_id=self.trace_id,
            span_id=self._next_id,
            parent_id=parent_id,
            name=name,
            start_s=float(start_s),
            kind=kind,
            attrs=dict(attrs) if attrs else {},
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    @property
    def root(self) -> Optional[Span]:
        for span in self.spans:
            if span.parent_id is None and span.kind == "span":
                return span
        return None


class RequestTracer:
    """Collects per-request span trees in deterministic virtual time.

    Parameters
    ----------
    seed:
        Folded into every ``trace_id`` so distinct replays (distinct
        seeds) produce globally distinct but individually deterministic
        trace ids.
    """

    enabled = True

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._traces: Dict[int, _Trace] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def trace_id(self, request_id: int) -> str:
        """Deterministic 16-hex-digit trace id for one request."""
        digest = hashlib.blake2b(
            f"reqtrace:{self.seed}:{request_id}".encode(), digest_size=8
        )
        return digest.hexdigest()

    def _trace(self, request_id: int) -> _Trace:
        trace = self._traces.get(request_id)
        if trace is None:
            trace = _Trace(self.trace_id(request_id), int(request_id))
            self._traces[request_id] = trace
        return trace

    def begin(self, request_id: int, name: str, start_s: float,
              parent: Optional[int] = None,
              attrs: Optional[Mapping[str, object]] = None) -> int:
        """Open a span; returns its ``span_id`` for :meth:`end`.

        The first parentless span of a request is its root.
        """
        return self._trace(request_id).add(
            name, start_s, parent, "span", attrs
        ).span_id

    def end(self, request_id: int, span_id: int, end_s: float,
            attrs: Optional[Mapping[str, object]] = None) -> None:
        """Close an open span at virtual ``end_s`` (idempotent-safe:
        unknown ids are ignored so instrumentation never throws)."""
        trace = self._traces.get(request_id)
        if trace is None:
            return
        for span in trace.spans:
            if span.span_id == span_id:
                span.end_s = float(end_s)
                if attrs:
                    span.attrs.update(attrs)
                return

    def event(self, request_id: int, name: str, at_s: float,
              parent: Optional[int] = None,
              attrs: Optional[Mapping[str, object]] = None) -> int:
        """A zero-duration point event on the request's tree."""
        span = self._trace(request_id).add(
            name, at_s, parent, "event", attrs
        )
        span.end_s = span.start_s
        return span.span_id

    @contextmanager
    def activate(self, request_id: int,
                 span_id: Optional[int] = None) -> Iterator[None]:
        """Mark (trace_id, span_id) active for the enclosed host work.

        While active, :func:`current_context` resolves to this span, so
        JSON-lines log records and driver spans emitted underneath carry
        the request's trace id.
        """
        trace = self._trace(request_id)
        _ACTIVE.append((trace.trace_id, int(span_id or 0)))
        try:
            yield
        finally:
            _ACTIVE.pop()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._traces)

    @property
    def span_count(self) -> int:
        return sum(len(t.spans) for t in self._traces.values())

    def request_ids(self) -> List[int]:
        return sorted(self._traces)

    def spans(self, request_id: int) -> List[Span]:
        trace = self._traces.get(request_id)
        return list(trace.spans) if trace is not None else []

    def root(self, request_id: int) -> Optional[Span]:
        trace = self._traces.get(request_id)
        return trace.root if trace is not None else None

    def span_tree(self, request_id: int) -> Optional[dict]:
        """The request's spans as a nested dict (root at the top)."""
        trace = self._traces.get(request_id)
        if trace is None or trace.root is None:
            return None
        children: Dict[Optional[int], List[Span]] = {}
        for span in trace.spans:
            children.setdefault(span.parent_id, []).append(span)

        def build(span: Span) -> dict:
            kids = sorted(
                children.get(span.span_id, []),
                key=lambda s: (s.start_s, s.span_id),
            )
            return {
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "name": span.name,
                "kind": span.kind,
                "start_s": span.start_s,
                "end_s": span.end_s,
                "attrs": dict(span.attrs),
                "children": [build(k) for k in kids],
            }

        return build(trace.root)

    def digest(self) -> str:
        """Stable hexdigest of every recorded span (replay witness)."""
        h = hashlib.blake2b(digest_size=16)
        for rid in self.request_ids():
            for span in self._traces[rid].spans:
                h.update(repr(span.row()).encode())
        return h.hexdigest()

    # ------------------------------------------------------------------
    # reconciliation
    # ------------------------------------------------------------------
    def reconcile(self, result) -> int:
        """Assert every response's latency equals its root span exactly.

        ``result`` is a :class:`repro.serving.server.ServingResult` (or
        fleet subclass). For each response with a latency, the request's
        root span must exist and span precisely ``arrival_s → finish_s``
        — not approximately: the fleet records the same virtual-time
        floats in both places, so equality is exact. Returns the number
        of reconciled requests; raises ``ValueError`` on the first
        mismatch or missing trace.
        """
        checked = 0
        for resp in result.responses:
            if resp.latency_s is None:
                continue
            root = self.root(resp.request_id)
            if root is None:
                raise ValueError(
                    f"request {resp.request_id} has a latency but no "
                    "recorded root span"
                )
            if root.end_s is None:
                raise ValueError(
                    f"request {resp.request_id}: root span never closed"
                )
            if root.start_s != resp.arrival_s or root.end_s != resp.finish_s:
                raise ValueError(
                    f"request {resp.request_id}: root span "
                    f"[{root.start_s}, {root.end_s}] does not reconcile "
                    f"with response [{resp.arrival_s}, {resp.finish_s}]"
                )
            if root.duration_s != resp.latency_s:
                raise ValueError(
                    f"request {resp.request_id}: span duration "
                    f"{root.duration_s} != latency {resp.latency_s}"
                )
            checked += 1
        return checked

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def chrome_trace(self) -> dict:
        """Chrome ``trace_event`` dict: one "X" event per span, one
        ``tid`` per request (virtual seconds → microseconds)."""
        events: List[dict] = []
        for rid in self.request_ids():
            trace = self._traces[rid]
            for span in trace.spans:
                end = span.end_s if span.end_s is not None else span.start_s
                event = {
                    "name": span.name,
                    "cat": "request" if span.kind == "span" else "request.event",
                    "ph": "X" if span.kind == "span" else "i",
                    "ts": span.start_s * 1e6,
                    "pid": REQUEST_PID,
                    "tid": rid,
                    "args": {
                        "trace_id": span.trace_id,
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                        **span.attrs,
                    },
                }
                if span.kind == "span":
                    event["dur"] = (end - span.start_s) * 1e6
                else:
                    event["s"] = "t"
                events.append(event)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "tracks": {str(REQUEST_PID): "requests (virtual us)"}
            },
        }

    def export_chrome(self, path: Optional[str] = None) -> dict:
        trace = self.chrome_trace()
        if path is not None:
            with open(path, "w") as fh:
                json.dump(trace, fh, indent=1)
        return trace

    def summary(self, limit: int = 20) -> str:
        """Text rollup: slowest requests first, with per-stage split."""
        rows: List[List[object]] = []
        ranked = []
        for rid in self.request_ids():
            root = self._traces[rid].root
            if root is None or root.duration_s is None:
                continue
            ranked.append((root.duration_s, rid))
        ranked.sort(key=lambda t: (-t[0], t[1]))
        for duration, rid in ranked[:limit]:
            stages = {
                s.name: s.duration_s
                for s in self._traces[rid].spans
                if s.kind == "span" and s.parent_id is not None
                and s.duration_s is not None
            }
            root = self._traces[rid].root
            rows.append([
                rid,
                root.trace_id,
                f"{duration * 1e3:.3f}",
                f"{stages.get('queue', 0.0) * 1e3:.3f}",
                f"{stages.get('service', 0.0) * 1e3:.3f}",
                str(root.attrs.get("status", "-")),
            ])
        if not rows:
            return "(no request traces recorded)"
        return format_table(
            ["request", "trace_id", "latency_ms", "queue_ms", "service_ms",
             "status"],
            rows,
        )


class NullRequestTracer:
    """The disabled request tracer: every method is a no-op."""

    enabled = False

    def trace_id(self, request_id: int) -> str:
        return ""

    def begin(self, request_id: int, name: str, start_s: float,
              parent: Optional[int] = None,
              attrs: Optional[Mapping[str, object]] = None) -> int:
        return 0

    def end(self, request_id: int, span_id: int, end_s: float,
            attrs: Optional[Mapping[str, object]] = None) -> None:
        pass

    def event(self, request_id: int, name: str, at_s: float,
              parent: Optional[int] = None,
              attrs: Optional[Mapping[str, object]] = None) -> int:
        return 0

    @contextmanager
    def activate(self, request_id: int,
                 span_id: Optional[int] = None) -> Iterator[None]:
        yield

    def __len__(self) -> int:
        return 0

    span_count = 0

    def request_ids(self) -> List[int]:
        return []

    def spans(self, request_id: int) -> List[Span]:
        return []

    def root(self, request_id: int) -> None:
        return None

    def span_tree(self, request_id: int) -> None:
        return None

    def digest(self) -> str:
        return ""

    def reconcile(self, result) -> int:
        return 0

    def chrome_trace(self) -> dict:
        return {"traceEvents": []}

    def export_chrome(self, path: Optional[str] = None) -> dict:
        return {"traceEvents": []}

    def summary(self, limit: int = 20) -> str:
        return "(request tracing disabled)"


NULL_REQUEST_TRACER = NullRequestTracer()
