"""Chaos probe: a structured event tap for invariant checking.

The serving layers emit *lifecycle facts* — "request admitted", "launch
on replica r with breaker state s", "completion committed", "hedge twin
cancelled" — through this seam. Unlike the tracer (timing spans) and
the metrics registry (aggregates), the probe records the exact typed
event stream the chaos invariants (:mod:`repro.chaos.invariants`) need
to judge a run: breaker-safety wants the breaker state *at launch
time*, exactly-once wants every commit/void/cancel with its epoch.

Like every ``repro.obs`` observer it is opt-in and observational-only:
the default :data:`NULL_PROBE` no-ops every call, instrumented code
guards emission with ``pr.enabled``, and an active probe never changes
the observed run's outputs (CI asserts bit-identical decision logs with
and without it).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["ChaosProbe", "NullProbe", "NULL_PROBE", "ProbeEvent"]

#: One probe emission: ``(kind, fields)`` with deterministic field order.
ProbeEvent = Tuple[str, Tuple[Tuple[str, object], ...]]


class ChaosProbe:
    """Records typed lifecycle events emitted by instrumented code.

    Events are ``(kind, ((field, value), ...))`` tuples in emission
    order; field tuples are sorted by name so two runs that emit the
    same facts produce identical streams regardless of call-site kwarg
    order. The stream is append-only and cheap: one tuple per event.
    """

    enabled = True

    def __init__(self) -> None:
        self.events: List[ProbeEvent] = []
        self.counts: Dict[str, int] = {}

    def emit(self, kind: str, **fields: object) -> None:
        """Record one event of ``kind`` with its keyword facts."""
        self.events.append((kind, tuple(sorted(fields.items()))))
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def of(self, kind: str) -> List[Dict[str, object]]:
        """All events of ``kind``, each as a plain field dict."""
        return [dict(f) for k, f in self.events if k == kind]

    def count(self, kind: str) -> int:
        """Number of events of ``kind`` recorded so far."""
        return self.counts.get(kind, 0)

    def clear(self) -> None:
        self.events.clear()
        self.counts.clear()


class NullProbe:
    """No-op probe installed by default; every method does nothing."""

    enabled = False
    events: List[ProbeEvent] = []
    counts: Dict[str, int] = {}

    def emit(self, kind: str, **fields: object) -> None:
        pass

    def of(self, kind: str) -> List[Dict[str, object]]:
        return []

    def count(self, kind: str) -> int:
        return 0

    def clear(self) -> None:
        pass


NULL_PROBE = NullProbe()
