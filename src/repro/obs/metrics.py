"""Typed metrics: counters, gauges and histograms in a registry.

The registry is the aggregate half of the observability layer (the
:mod:`repro.obs.trace` tracer is the per-event half): instrumented code
asks the *active* registry for a metric by name and bumps it, and callers
read the whole state back as a :meth:`MetricsRegistry.snapshot` — a plain
nested dict that can be diffed against an earlier snapshot, serialized to
JSON, or rendered as a text table.

Design points:

- **Zero overhead when disabled.** The module-level default registry is a
  :class:`NullRegistry` whose metric constructors hand back one shared
  :class:`NullMetric`; every ``inc``/``set``/``observe``/``labels`` on it
  is a no-op. Hot paths additionally guard on ``registry.enabled`` before
  computing anything expensive to record.
- **Labels as children.** ``counter.labels(kernel="spmttkrp")`` returns a
  child metric keyed by the label values; the child holds the per-label
  value and mirrors increments/observations into the parent, so the
  parent is always the all-label total (the Prometheus shape, sized for a
  single process).
- **Snapshots are values, not live views.** ``snapshot()`` copies counts
  out, so :meth:`MetricsRegistry.diff` gives exact per-run deltas even
  while simulation continues.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import format_table

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetric",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "SNAPSHOT_QUANTILES",
]

#: Default histogram bucket upper bounds (powers of ten; +inf is implicit).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 10.0, 100.0, 1.0e3, 1.0e4, 1.0e5, 1.0e6, 1.0e7
)

#: Quantiles estimated in every histogram snapshot.
SNAPSHOT_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)


class _Metric:
    """Shared name/label/child machinery of the concrete metric types.

    A labeled child keeps a backref to its parent and mirrors every update
    into it, so ``parent.value`` (or the parent distribution) is always
    the total across label combinations.
    """

    kind = "metric"

    def __init__(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        parent: Optional["_Metric"] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._parent = parent
        self._children: Dict[Tuple[object, ...], "_Metric"] = {}

    def _make_child(self) -> "_Metric":
        raise NotImplementedError

    def labels(self, **labels: object) -> "_Metric":
        """The child metric for one label-value combination.

        Unknown or missing label names raise ``ValueError`` so typos fail
        loudly rather than silently forking a new series.
        """
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(labels[n] for n in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def child_items(self) -> List[Tuple[Tuple[object, ...], "_Metric"]]:
        return sorted(self._children.items(), key=lambda kv: tuple(map(str, kv[0])))

    def state(self) -> object:
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str = "", help: str = "",
                 label_names: Sequence[str] = (),
                 parent: Optional["Counter"] = None) -> None:
        super().__init__(name, help, label_names, parent)
        self.value: int = 0

    def _make_child(self) -> "Counter":
        return Counter(self.name, parent=self)

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += int(amount)
        if self._parent is not None:
            self._parent.value += int(amount)

    def state(self) -> int:
        return self.value


class Gauge(_Metric):
    """A point-in-time level (last write wins; no parent mirroring —
    summing levels across labels is rarely meaningful)."""

    kind = "gauge"

    def __init__(self, name: str = "", help: str = "",
                 label_names: Sequence[str] = (),
                 parent: Optional["Gauge"] = None) -> None:
        super().__init__(name, help, label_names, parent)
        self.value: float = 0.0

    def _make_child(self) -> "Gauge":
        return Gauge(self.name, parent=self)

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def state(self) -> float:
        return self.value


class Histogram(_Metric):
    """A distribution: count/sum/min/max plus per-bucket counts (each
    observation lands in the first bucket whose bound it does not exceed)."""

    kind = "histogram"

    def __init__(
        self,
        name: str = "",
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
        parent: Optional["Histogram"] = None,
    ) -> None:
        super().__init__(name, help, label_names, parent)
        self.buckets = tuple(sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +inf last
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def _make_child(self) -> "Histogram":
        return Histogram(self.name, buckets=self.buckets, parent=self)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                break
        else:
            self.bucket_counts[-1] += 1
        if self._parent is not None:
            self._parent.observe(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q`` quantile from the bucket counts.

        Prometheus ``histogram_quantile`` style: find the bucket holding
        the target rank and interpolate linearly inside it (the lower
        edge of the first bucket is 0, of the +inf bucket the last finite
        bound). Estimates are clamped to the observed ``[min, max]`` so
        coarse buckets never report a quantile outside the data, and the
        result is exact at the extremes (``q`` beyond the last finite
        bucket returns ``max``). ``None`` when the histogram is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0 or self.min is None or self.max is None:
            return None
        rank = q * self.count
        seen = 0
        for i, bound in enumerate(self.buckets):
            in_bucket = self.bucket_counts[i]
            if in_bucket and seen + in_bucket >= rank:
                lower = self.buckets[i - 1] if i > 0 else 0.0
                frac = (rank - seen) / in_bucket
                estimate = lower + (bound - lower) * frac
                return min(max(estimate, self.min), self.max)
            seen += in_bucket
        # Target rank lands in the +inf bucket: no finite upper edge to
        # interpolate against, so report the observed maximum.
        return self.max

    def quantiles(self) -> Dict[str, Optional[float]]:
        """The standard snapshot quantiles, keyed ``p50``/``p90``/``p99``."""
        return {
            f"p{int(q * 100)}": self.quantile(q) for q in SNAPSHOT_QUANTILES
        }

    def state(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "quantiles": self.quantiles(),
            "buckets": dict(
                zip([*map(str, self.buckets), "+inf"], self.bucket_counts)
            ),
        }


class MetricsRegistry:
    """A named collection of metrics with get-or-create semantics.

    ``counter``/``gauge``/``histogram`` return the existing metric when
    the name is already registered (re-registering under a different kind
    is an error), so instrumentation sites never coordinate creation.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str,
                       labels: Sequence[str], **kwargs) -> _Metric:
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric
        metric = cls(name, help, tuple(labels), **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        self._metrics.clear()

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, dict]:
        """The registry state as a plain nested dict (JSON-serializable)."""
        out: Dict[str, dict] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            entry: Dict[str, object] = {
                "kind": metric.kind,
                "value": metric.state(),
            }
            if metric.label_names:
                entry["label_names"] = list(metric.label_names)
                entry["children"] = {
                    "|".join(map(str, key)): child.state()
                    for key, child in metric.child_items()
                }
            out[name] = entry
        return out

    @staticmethod
    def diff(before: Dict[str, dict], after: Dict[str, dict]) -> Dict[str, dict]:
        """Per-metric deltas between two snapshots.

        Counters and histogram counts/sums subtract; gauges take the
        ``after`` value (they are levels, not flows). Metrics absent from
        ``before`` diff against zero.
        """

        def sub(a, b):
            if isinstance(a, dict):
                b = b if isinstance(b, dict) else {}
                return {k: sub(v, b.get(k)) for k, v in a.items()}
            if isinstance(a, (int, float)) and isinstance(b, (int, float)):
                return a - b
            return a

        out: Dict[str, dict] = {}
        for name, entry in after.items():
            prev = before.get(name, {})
            if entry["kind"] == "gauge":
                out[name] = entry
                continue
            delta = dict(entry)
            delta["value"] = sub(entry["value"], prev.get("value"))
            if "children" in entry:
                prev_children = prev.get("children", {})
                delta["children"] = {
                    k: sub(v, prev_children.get(k))
                    for k, v in entry["children"].items()
                }
            out[name] = delta
        return out

    # ------------------------------------------------------------------
    def render(self) -> str:
        """A text table of every metric (children as indented rows)."""
        if not self._metrics:
            return "(no metrics recorded)"
        rows: List[List[object]] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            rows.append([name, metric.kind, _fmt_state(metric)])
            for key, child in metric.child_items():
                label = ",".join(
                    f"{n}={v}" for n, v in zip(metric.label_names, key)
                )
                rows.append([f"  {name}{{{label}}}", "", _fmt_state(child)])
        return format_table(["metric", "kind", "value"], rows)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


def _fmt_state(metric: _Metric) -> str:
    if isinstance(metric, Histogram):
        quantiles = " ".join(
            f"{name}={value:g}" if value is not None else f"{name}=-"
            for name, value in metric.quantiles().items()
        )
        return (
            f"count={metric.count} sum={metric.sum:g} "
            f"min={metric.min if metric.min is not None else '-'} "
            f"max={metric.max if metric.max is not None else '-'} "
            f"{quantiles}"
        )
    state = metric.state()
    return f"{state:g}" if isinstance(state, float) else str(state)


# ----------------------------------------------------------------------
# Disabled fast path
# ----------------------------------------------------------------------
class NullMetric:
    """A metric-shaped no-op; every mutator returns instantly."""

    __slots__ = ()
    kind = "null"
    value = 0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def labels(self, **labels: object) -> "NullMetric":
        return self

    def state(self) -> int:
        return 0


NULL_METRIC = NullMetric()


class NullRegistry:
    """The disabled registry: hands out one shared :class:`NullMetric`."""

    enabled = False

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> NullMetric:
        return NULL_METRIC

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> NullMetric:
        return NULL_METRIC

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> NullMetric:
        return NULL_METRIC

    def get(self, name: str) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def reset(self) -> None:
        pass

    def snapshot(self) -> Dict[str, dict]:
        return {}

    def render(self) -> str:
        return "(metrics disabled)"

    def to_json(self, indent: int = 2) -> str:
        return "{}"


NULL_REGISTRY = NullRegistry()
