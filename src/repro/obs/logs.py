"""Structured logging for the reproduction stack.

Every ``repro`` module gets its logger from :func:`get_logger` (namespaced
under ``repro.``), replacing the ad-hoc ``warnings.warn`` calls that sweeps
could neither capture nor filter. Nothing is emitted until the application
opts in: the root ``repro`` logger carries a ``NullHandler`` by default, so
library use stays silent (standard-library convention).

:func:`configure_logging` is the single opt-in switch: it sets the level,
attaches a human-readable stream handler, and optionally a JSON-lines file
handler (one ``{"ts", "level", "logger", "msg", ...}`` object per line)
that sweep tooling can parse.
"""

from __future__ import annotations

import json
import logging
from typing import IO, Optional

__all__ = ["get_logger", "configure_logging", "JsonLinesFormatter"]

ROOT_NAME = "repro"

_root = logging.getLogger(ROOT_NAME)
if not _root.handlers:
    _root.addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """The module logger for ``name`` (namespaced under ``repro``)."""
    if name == ROOT_NAME or name.startswith(ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_NAME}.{name}")


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, msg (+ extras).

    When a request span is active (see
    :meth:`repro.obs.reqtrace.RequestTracer.activate`), the record also
    carries ``trace_id``/``span_id``, so fleet logs join against request
    traces. The lookup is a lazy import + one list peek, and only runs
    at format time — records emitted with logging disabled never pay it.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        # Imported lazily: logs.py loads before reqtrace in obs/__init__,
        # and a top-level import would be circular.
        from repro.obs.reqtrace import current_context

        context = current_context()
        if context is not None:
            payload["trace_id"], payload["span_id"] = context
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = self.formatException(record.exc_info)
        extra = getattr(record, "fields", None)
        if isinstance(extra, dict):
            payload.update(extra)
        return json.dumps(payload, default=str)


def configure_logging(
    level: str = "INFO",
    json_path: Optional[str] = None,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Opt in to log output from the ``repro`` tree.

    Parameters
    ----------
    level:
        Root level name (``"DEBUG"``, ``"INFO"``, ...).
    json_path:
        When given, also append JSON-lines records to this file.
    stream:
        Stream for the human-readable handler (default ``sys.stderr``
        via ``StreamHandler``); pass ``None`` to keep the default.

    Calling it again reconfigures: previously attached (non-Null)
    handlers are removed first, so repeated CLI invocations in one
    process don't stack duplicate handlers.
    """
    root = logging.getLogger(ROOT_NAME)
    for handler in list(root.handlers):
        if not isinstance(handler, logging.NullHandler):
            root.removeHandler(handler)
            handler.close()
    root.setLevel(getattr(logging, level.upper(), logging.INFO))

    console = logging.StreamHandler(stream)
    console.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
    )
    root.addHandler(console)

    if json_path is not None:
        jh = logging.FileHandler(json_path)
        jh.setFormatter(JsonLinesFormatter())
        root.addHandler(jh)
    return root
