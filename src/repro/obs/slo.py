"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SLOObjective` states a target over the serving event stream —
"99% of requests hit their deadline", "99% finish under 30 ms", "99.9%
do not error" — and :class:`SLOMonitor` evaluates a set of them over a
:class:`~repro.serving.server.ServingResult` (or fleet subclass) in
completion order, entirely in the trace's *virtual* time.

Alerting follows the multi-window multi-burn-rate recipe from the Google
SRE workbook: the **burn rate** is the windowed bad-event rate divided by
the error budget (``1 - objective``), and a :class:`BurnWindow` pairs a
long window (smooths noise) with a short window (confirms the problem is
still happening); the alert fires only while *both* exceed the window's
burn threshold, and clears when either drops below. A burn rate of 1
means the budget is being consumed exactly as fast as the objective
allows; 14.4 means a 30-day budget would be gone in ~2 days.

Because the fleet's event stream is seeded-deterministic, so is the
alert log: :meth:`SLOReport.digest` hashes every alert transition and
per-objective tally, and replaying the same seed reproduces it
bit-identically — the property CI asserts.

Window widths are in virtual seconds and default to fractions of the
horizon actually observed (synthetic traces are sub-second), so the
defaults work unchanged on any trace length; pass explicit windows to
pin them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import format_table

__all__ = [
    "SLOObjective",
    "BurnWindow",
    "SLOMonitor",
    "SLOReport",
    "default_objectives",
    "KIND_DEADLINE",
    "KIND_LATENCY",
    "KIND_ERROR",
]

KIND_DEADLINE = "deadline"
KIND_LATENCY = "latency"
KIND_ERROR = "error"

_KINDS = (KIND_DEADLINE, KIND_LATENCY, KIND_ERROR)


@dataclass(frozen=True)
class SLOObjective:
    """One declarative objective over the serving event stream.

    Parameters
    ----------
    name:
        Stable identifier (appears in alerts and the report).
    kind:
        ``"deadline"`` — good means served with the deadline hit;
        ``"latency"`` — good means latency ≤ ``threshold_s``;
        ``"error"`` — good means the request did not fail outright
        (rejections/sheds are intentional load management, not errors).
    objective:
        Target good fraction in (0, 1), e.g. ``0.99``.
    threshold_s:
        Latency bound; required for (and only for) the latency kind.
    """

    name: str
    kind: str
    objective: float
    threshold_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"objective {self.name!r}: kind must be one of {_KINDS}, "
                f"got {self.kind!r}"
            )
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective {self.name!r}: target must be in (0, 1), "
                f"got {self.objective}"
            )
        if (self.kind == KIND_LATENCY) != (self.threshold_s is not None):
            raise ValueError(
                f"objective {self.name!r}: threshold_s is required for "
                "the latency kind and meaningless otherwise"
            )

    @property
    def budget(self) -> float:
        return 1.0 - self.objective


@dataclass(frozen=True)
class BurnWindow:
    """A long/short window pair with its firing burn-rate threshold.

    Widths are *fractions of the observed horizon* when ``relative``
    (the default) — a ``long=0.25`` window over a 0.4 s trace spans
    0.1 s — or absolute virtual seconds otherwise.
    """

    long: float
    short: float
    burn: float
    relative: bool = True

    def __post_init__(self) -> None:
        if self.long <= 0 or self.short <= 0 or self.short > self.long:
            raise ValueError(
                f"window needs 0 < short <= long, got "
                f"short={self.short} long={self.long}"
            )
        if self.burn <= 0:
            raise ValueError(f"burn threshold must be positive: {self.burn}")

    def label(self) -> str:
        kind = "rel" if self.relative else "s"
        return f"{self.long:g}/{self.short:g}{kind}@{self.burn:g}x"


#: SRE-workbook-shaped defaults, scaled to sub-second synthetic traces:
#: a fast pair (page: high burn over short windows) and a slow pair
#: (ticket: moderate burn sustained over long windows).
DEFAULT_WINDOWS: Tuple[BurnWindow, ...] = (
    BurnWindow(long=0.10, short=0.0125, burn=14.4),
    BurnWindow(long=0.25, short=0.05, burn=6.0),
)


def default_objectives(
    deadline_target: float = 0.90,
    latency_threshold_s: float = 0.05,
    latency_target: float = 0.99,
    error_target: float = 0.999,
) -> Tuple[SLOObjective, ...]:
    """The stock objective set used by the CLI and benchmarks."""
    return (
        SLOObjective("deadline-hit", KIND_DEADLINE, deadline_target),
        SLOObjective("latency-p99", KIND_LATENCY, latency_target,
                     threshold_s=latency_threshold_s),
        SLOObjective("availability", KIND_ERROR, error_target),
    )


@dataclass
class SLOReport:
    """Evaluation outcome: per-objective tallies plus the alert log."""

    horizon_s: float
    objectives: Dict[str, Dict[str, object]]
    #: (time_s, objective, window_label, state, burn_long, burn_short)
    #: — one row per fire/clear transition, in virtual-time order.
    alerts: List[Tuple[float, str, str, str, float, float]]

    @property
    def ok(self) -> bool:
        """True when every objective met its target over the horizon."""
        return all(o["met"] for o in self.objectives.values())

    @property
    def fired(self) -> List[Tuple[float, str, str, str, float, float]]:
        return [a for a in self.alerts if a[3] == "fire"]

    def digest(self) -> str:
        """Stable hexdigest of the full report (replay witness)."""
        h = hashlib.blake2b(digest_size=16)
        h.update(repr(round(self.horizon_s, 12)).encode())
        for name in sorted(self.objectives):
            h.update(repr((name, sorted(self.objectives[name].items(),
                                        key=lambda kv: kv[0]))).encode())
        for alert in self.alerts:
            h.update(repr(alert).encode())
        return h.hexdigest()

    def as_table(self) -> str:
        rows = []
        for name in sorted(self.objectives):
            o = self.objectives[name]
            rows.append([
                name, o["kind"], f"{o['objective']:g}",
                f"{o['achieved']:.6f}", o["good"], o["bad"],
                f"{o['budget_consumed']:.3f}",
                "met" if o["met"] else "MISSED",
            ])
        table = format_table(
            ["objective", "kind", "target", "achieved", "good", "bad",
             "budget_used", "status"],
            rows,
        )
        if not self.alerts:
            return table + "\n(no burn-rate alerts)"
        alert_rows = [
            [f"{t:.6f}", name, window, state,
             f"{burn_l:.2f}", f"{burn_s:.2f}"]
            for t, name, window, state, burn_l, burn_s in self.alerts
        ]
        return table + "\n" + format_table(
            ["time_s", "objective", "window", "state", "burn_long",
             "burn_short"],
            alert_rows,
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(
            {
                "horizon_s": self.horizon_s,
                "ok": self.ok,
                "digest": self.digest(),
                "objectives": self.objectives,
                "alerts": [list(a) for a in self.alerts],
            },
            indent=indent, sort_keys=True,
        )


class SLOMonitor:
    """Evaluates objectives over a result's virtual-time event stream."""

    def __init__(
        self,
        objectives: Sequence[SLOObjective] = (),
        windows: Sequence[BurnWindow] = DEFAULT_WINDOWS,
    ) -> None:
        self.objectives = tuple(objectives) or default_objectives()
        names = [o.name for o in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names: {names}")
        self.windows = tuple(windows)
        if not self.windows:
            raise ValueError("at least one burn window is required")

    # ------------------------------------------------------------------
    @staticmethod
    def _is_good(objective: SLOObjective, resp) -> bool:
        if objective.kind == KIND_DEADLINE:
            return resp.status == "ok" and bool(resp.deadline_hit)
        if objective.kind == KIND_LATENCY:
            return (
                resp.latency_s is not None
                and resp.latency_s <= objective.threshold_s
            )
        # error kind: hard failures burn budget; rejections/sheds are
        # deliberate load management and do not.
        return resp.status != "failed"

    @staticmethod
    def _event_time(resp) -> float:
        # Rejected/shed responses never finish; they enter the stream at
        # arrival (the moment the outcome was decided).
        return resp.finish_s if resp.finish_s is not None else resp.arrival_s

    def evaluate(self, result) -> SLOReport:
        """Score every objective and replay the burn-rate alert rules.

        ``result`` is a :class:`~repro.serving.server.ServingResult` or
        fleet subclass. Events are processed in ``(time, request_id)``
        order, so evaluation is deterministic for a deterministic trace.
        """
        stream = sorted(
            result.responses,
            key=lambda r: (self._event_time(r), r.request_id),
        )
        horizon = self._event_time(stream[-1]) if stream else 0.0
        report_objs: Dict[str, Dict[str, object]] = {}
        alerts: List[Tuple[float, str, str, str, float, float]] = []

        for objective in self.objectives:
            events: List[Tuple[float, bool]] = [
                (self._event_time(r), self._is_good(objective, r))
                for r in stream
            ]
            good = sum(1 for _, g in events if g)
            bad = len(events) - good
            achieved = good / len(events) if events else 1.0
            budget_consumed = (
                (1.0 - achieved) / objective.budget if events else 0.0
            )
            report_objs[objective.name] = {
                "kind": objective.kind,
                "objective": objective.objective,
                "threshold_s": objective.threshold_s,
                "good": good,
                "bad": bad,
                "achieved": round(achieved, 12),
                "budget_consumed": round(budget_consumed, 12),
                "met": achieved >= objective.objective,
            }
            for window in self.windows:
                long_s = (
                    window.long * horizon if window.relative else window.long
                )
                short_s = (
                    window.short * horizon if window.relative
                    else window.short
                )
                if long_s <= 0.0:
                    continue
                firing = False
                for i, (t, _) in enumerate(events):
                    burn_l = self._burn(events, i, t, long_s, objective)
                    burn_s = self._burn(events, i, t, short_s, objective)
                    should_fire = (
                        burn_l >= window.burn and burn_s >= window.burn
                    )
                    if should_fire != firing:
                        firing = should_fire
                        alerts.append((
                            round(t, 12), objective.name, window.label(),
                            "fire" if firing else "clear",
                            round(burn_l, 12), round(burn_s, 12),
                        ))
                if firing:
                    alerts.append((
                        round(horizon, 12), objective.name, window.label(),
                        "end", 0.0, 0.0,
                    ))

        alerts.sort(key=lambda a: (a[0], a[1], a[2], a[3]))
        return SLOReport(
            horizon_s=round(horizon, 12),
            objectives=report_objs,
            alerts=alerts,
        )

    @staticmethod
    def _burn(events: List[Tuple[float, bool]], upto: int, now: float,
              width: float, objective: SLOObjective) -> float:
        """Burn rate over ``[now - width, now]`` ending at event ``upto``."""
        lo = now - width
        total = 0
        bad = 0
        # Walk backwards from the current event; the window is short
        # relative to the stream, so this stays near-linear overall.
        for j in range(upto, -1, -1):
            t, good = events[j]
            if t < lo:
                break
            total += 1
            if not good:
                bad += 1
        if total == 0:
            return 0.0
        return (bad / total) / objective.budget


def evaluate(result, objectives: Sequence[SLOObjective] = (),
             windows: Sequence[BurnWindow] = DEFAULT_WINDOWS) -> SLOReport:
    """One-call convenience: ``SLOMonitor(objectives, windows).evaluate``."""
    return SLOMonitor(objectives, windows).evaluate(result)
