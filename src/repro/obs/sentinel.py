"""Benchmark regression sentinel over the ``BENCH_*.json`` trajectory.

Every PR in this repo commits benchmark artifacts (``BENCH_sim.json``,
``BENCH_fleet.json``, ...) whose headline figures back its perf claims —
but until now nothing re-checked those claims automatically. The
sentinel closes the loop:

1. **Ingest** every ``BENCH_*.json`` in a directory and *normalize* the
   heterogeneous schemas into one flat ``artifact → dotted.metric.path →
   scalar`` table (lists are keyed by their ``tensor``/``kernel``/
   ``workload``/``name`` field when present, by index otherwise).
2. **Select** the headline figures via per-artifact rules
   (:data:`HEADLINES`): each rule is a path regex plus a direction —
   ``higher`` (speedups must not fall), ``lower`` (cycles/latency must
   not rise), or ``gate`` (booleans must not flip off) — and a tolerance
   band ``max(rel_tol·|baseline|, atol)`` so near-zero baselines (e.g.
   a 0.004 disabled-overhead figure) get an absolute floor instead of a
   meaningless relative one.
3. **Compare** current artifacts against a committed baseline directory
   (by default the same files — a self-check that always passes on an
   untouched tree) and render a human-readable delta table; any metric
   outside its band fails the run (exit 1 via ``repro obs sentinel``),
   which is what turns a silent perf regression into a red CI job.

Wall-clock-derived figures get wide bands (machines differ); cycle
counts and determinism gates get none (the simulator is deterministic).
"""

from __future__ import annotations

import glob
import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import format_table

__all__ = [
    "Rule",
    "HEADLINES",
    "flatten",
    "collect_artifacts",
    "collect_figures",
    "compare",
    "SentinelReport",
]

#: List-entry keys used to name list elements in flattened paths.
_NAME_KEYS = ("tensor", "kernel", "workload", "name")


@dataclass(frozen=True)
class Rule:
    """One headline selector: path regex + direction + tolerance band."""

    pattern: str
    direction: str  # "higher" | "lower" | "gate"
    rel_tol: float = 0.0
    atol: float = 0.0

    def __post_init__(self) -> None:
        if self.direction not in ("higher", "lower", "gate"):
            raise ValueError(f"bad direction {self.direction!r}")
        if self.rel_tol < 0 or self.atol < 0:
            raise ValueError("tolerances must be non-negative")

    def matches(self, path: str) -> bool:
        return re.fullmatch(self.pattern, path) is not None

    def band(self, baseline: float) -> float:
        return max(self.rel_tol * abs(baseline), self.atol)


#: Headline figures per artifact stem. Wall-clock speedups carry wide
#: relative bands; deterministic cycle counts carry none; boolean gates
#: must simply never flip from True to False.
HEADLINES: Dict[str, Tuple[Rule, ...]] = {
    "BENCH_sim": (
        Rule(r"mttkrp\.(cold|cached)_speedup", "higher", 0.30),
        Rule(r"mttkrp\.cycles", "lower", 0.0),
        Rule(r"mttkrp\.identical", "gate"),
        Rule(r"cp_als\.cache_hit_speedup", "higher", 0.30),
        Rule(r"sweep\.deterministic", "gate"),
        Rule(r"engines\.stages\.[a-z]+\.speedup", "higher", 0.40),
        Rule(r"engines\.identical", "gate"),
    ),
    "BENCH_encoders": (
        Rule(r"tensors\.[^.]+\.(ciss|csf|hicoo)\.speedup", "higher", 0.40),
        Rule(r"tensors\.[^.]+\.(ciss|csf|hicoo)\.identical", "gate"),
        Rule(r"suite\.warm_speedup", "higher", 0.40),
    ),
    "BENCH_obs": (
        # Near-zero baseline: the band is the absolute gate headroom,
        # not a fraction of 0.004.
        Rule(r"mttkrp\.disabled_overhead", "lower", 0.0, 0.016),
        Rule(r"mttkrp\.bit_identical", "gate"),
        Rule(r"mttkrp\.cycles", "lower", 0.0),
    ),
    "BENCH_serving": (
        Rule(r"guarded\.deadline_hit_rate", "higher", 0.02),
        Rule(r"guarded\.latency_p99_s", "lower", 0.50, 0.005),
        Rule(r"(deterministic_replay|full_tier_bit_identical"
             r"|chaos_breaker_opened|chaos_breaker_recovered)", "gate"),
    ),
    "BENCH_fleet": (
        Rule(r"affinity\.(deadline_hit_rate|cache_hit_rate)", "higher",
             0.02),
        Rule(r"affinity\.latency_p99_s", "lower", 0.50, 0.005),
        Rule(r"(affinity_beats_random_p99|affinity_beats_random_cache"
             r"|chaos_shard_killed|chaos_zero_lost|chaos_exactly_once"
             r"|chaos_work_redealt|deterministic_replay)", "gate"),
        Rule(r"(trace_reconciles|slo_replay_deterministic"
             r"|openmetrics_roundtrip|observed_run_identical)", "gate"),
    ),
    "BENCH_chaos": (
        Rule(r"search\.violations", "lower", 0.0),
        Rule(r"mutation\.ratio", "lower", 0.0),
        Rule(r"(search_zero_violations|all_invariants_checked"
             r"|replay_bit_identical|mutation_caught|shrink_ratio_ok"
             r"|minimal_passes_clean|corpus_replay_clean)", "gate"),
    ),
    "BENCH_tune": (
        Rule(r"kernels\.[^.]+\.speedup", "higher", 0.10),
        Rule(r"kernels\.[^.]+\.tuned_cycles", "lower", 0.0),
        Rule(r"(improved_10pct_3_of_4|tuned_matches_grid_all"
             r"|oracle_savings_5x_all|deterministic_all)", "gate"),
    ),
}


def flatten(value: object, prefix: str = "") -> Dict[str, object]:
    """Normalize one artifact into ``dotted.path → scalar`` rows.

    Only numbers and booleans survive (strings and nulls are config,
    not figures). List elements are keyed by their name field when one
    of :data:`_NAME_KEYS` is present, by position otherwise.
    """
    out: Dict[str, object] = {}
    if isinstance(value, dict):
        for key in sorted(value):
            sub = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten(value[key], sub))
    elif isinstance(value, list):
        for i, item in enumerate(value):
            key = str(i)
            if isinstance(item, dict):
                for name_key in _NAME_KEYS:
                    if isinstance(item.get(name_key), str):
                        key = item[name_key].replace(".", "_")
                        break
            sub = f"{prefix}.{key}" if prefix else key
            out.update(flatten(item, sub))
    elif isinstance(value, bool) or isinstance(value, (int, float)):
        out[prefix] = value
    return out


def collect_artifacts(directory: str) -> Dict[str, dict]:
    """Load every ``BENCH_*.json`` in ``directory``, keyed by stem."""
    out: Dict[str, dict] = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        stem = os.path.splitext(os.path.basename(path))[0]
        with open(path) as fh:
            try:
                out[stem] = json.load(fh)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    return out


def collect_figures(
    artifacts: Dict[str, dict],
    rules: Optional[Dict[str, Sequence[Rule]]] = None,
) -> Dict[str, Dict[str, Tuple[object, Rule]]]:
    """Headline figures per artifact: ``{stem: {path: (value, rule)}}``."""
    rules = rules if rules is not None else HEADLINES
    out: Dict[str, Dict[str, Tuple[object, Rule]]] = {}
    for stem, artifact in sorted(artifacts.items()):
        stem_rules = rules.get(stem)
        if not stem_rules:
            continue
        flat = flatten(artifact)
        selected: Dict[str, Tuple[object, Rule]] = {}
        for path, value in flat.items():
            for rule in stem_rules:
                if rule.matches(path):
                    selected[path] = (value, rule)
                    break
        out[stem] = selected
    return out


@dataclass
class SentinelReport:
    """Comparison outcome: one row per headline figure."""

    #: (artifact, metric, baseline, current, delta, band, status)
    rows: List[Tuple[str, str, object, object, float, float, str]] = (
        field(default_factory=list)
    )
    missing_artifacts: List[str] = field(default_factory=list)
    missing_metrics: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def regressions(self) -> List[Tuple]:
        return [r for r in self.rows if r[6] == "REGRESSED"]

    @property
    def ok(self) -> bool:
        return (
            not self.regressions
            and not self.missing_artifacts
            and not self.missing_metrics
        )

    def render(self) -> str:
        if not self.rows and not self.missing_artifacts:
            return "(no headline figures found)"
        table_rows = []
        for artifact, metric, base, cur, delta, band, status in self.rows:
            table_rows.append([
                artifact, metric,
                _fmt(base), _fmt(cur),
                f"{delta:+.3%}" if isinstance(delta, float) else str(delta),
                f"{band:.3g}" if band else "exact",
                status,
            ])
        out = format_table(
            ["artifact", "metric", "baseline", "current", "delta",
             "band", "status"],
            table_rows,
        )
        extras = []
        for stem in self.missing_artifacts:
            extras.append(f"MISSING ARTIFACT: {stem}")
        for stem, path in self.missing_metrics:
            extras.append(f"MISSING METRIC: {stem}:{path}")
        if extras:
            out += "\n" + "\n".join(extras)
        summary = (
            f"{len(self.rows)} figures checked, "
            f"{len(self.regressions)} regressed"
        )
        return out + "\n" + summary

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(
            {
                "ok": self.ok,
                "rows": [list(r) for r in self.rows],
                "missing_artifacts": self.missing_artifacts,
                "missing_metrics": [list(m) for m in self.missing_metrics],
            },
            indent=indent, sort_keys=True,
        )


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def compare(
    baseline: Dict[str, dict],
    current: Dict[str, dict],
    rules: Optional[Dict[str, Sequence[Rule]]] = None,
) -> SentinelReport:
    """Compare current artifacts against the committed baseline.

    The baseline defines what must hold: every baseline headline figure
    must exist in the current artifacts and stay inside its band. Extra
    current-side figures are informational (new benchmarks are not
    regressions).
    """
    base_figures = collect_figures(baseline, rules)
    report = SentinelReport()
    for stem in sorted(base_figures):
        if stem not in current:
            report.missing_artifacts.append(stem)
            continue
        current_flat = flatten(current[stem])
        for path, (base_value, rule) in sorted(base_figures[stem].items()):
            if path not in current_flat:
                report.missing_metrics.append((stem, path))
                continue
            cur_value = current_flat[path]
            if rule.direction == "gate":
                passed = (not bool(base_value)) or bool(cur_value)
                report.rows.append((
                    stem, path, bool(base_value), bool(cur_value), 0.0,
                    0.0, "ok" if passed else "REGRESSED",
                ))
                continue
            base_f = float(base_value)
            cur_f = float(cur_value)
            band = rule.band(base_f)
            if rule.direction == "higher":
                passed = cur_f >= base_f - band
            else:
                passed = cur_f <= base_f + band
            delta = (cur_f - base_f) / base_f if base_f else 0.0
            report.rows.append((
                stem, path, base_f, cur_f, round(delta, 12),
                round(band, 12), "ok" if passed else "REGRESSED",
            ))
    return report


def run(directory: str, baseline_dir: Optional[str] = None,
        rules: Optional[Dict[str, Sequence[Rule]]] = None) -> SentinelReport:
    """Load + compare in one call (the CLI/CI entry point).

    With no ``baseline_dir`` the committed artifacts are compared
    against themselves — a schema/selector self-check that passes on an
    untouched tree and catches malformed artifacts or dead selectors.
    """
    current = collect_artifacts(directory)
    baseline = (
        collect_artifacts(baseline_dir) if baseline_dir is not None
        else current
    )
    if not baseline:
        raise ValueError(
            f"no BENCH_*.json artifacts found in "
            f"{baseline_dir or directory!r}"
        )
    return compare(baseline, current, rules)
