"""OpenMetrics text exposition + JSON-lines snapshot sidecars.

Turns a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` into the
OpenMetrics/Prometheus text format any scraper ingests:

::

    # TYPE fleet_admitted counter
    fleet_admitted_total 85
    # TYPE fleet_latency_seconds histogram
    fleet_latency_seconds_bucket{le="1.0"} 85
    fleet_latency_seconds_bucket{le="+Inf"} 85
    fleet_latency_seconds_sum 1.2963
    fleet_latency_seconds_count 85
    # EOF

Counters gain the mandatory ``_total`` suffix, label children become
labeled samples, histogram buckets are emitted *cumulatively* with the
``le`` label (the registry stores them per-bucket), and the exposition
ends with the ``# EOF`` terminator the OpenMetrics spec requires.

:func:`parse_openmetrics` is the deliberately strict counterpart: a
line-format parser that rejects anything malformed (bad escapes, samples
before their ``# TYPE``, non-cumulative buckets, a missing terminator)
with a ``ValueError`` naming the offending line. CI round-trips every
exposition through it — :func:`roundtrip` re-aggregates the parsed
samples and compares against the original snapshot value-for-value — so
the exporter can never silently drift from the format.

:class:`SnapshotWriter` is the periodic sidecar: one JSON object per
line (``{"t": ..., "metrics": <snapshot>}``), append-only, cheap enough
to call at every autoscale tick.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, List, Optional, Tuple

__all__ = [
    "metric_name",
    "escape_label_value",
    "to_openmetrics",
    "parse_openmetrics",
    "roundtrip",
    "SnapshotWriter",
    "load_snapshots",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_INVALID_CHAR_RE = re.compile(r"[^a-zA-Z0-9_:]")
#: Sample-name suffixes each family type may emit.
_SUFFIXES = {
    "counter": ("_total",),
    "gauge": ("",),
    "histogram": ("_bucket", "_sum", "_count"),
}


def metric_name(name: str) -> str:
    """Registry name → valid OpenMetrics name (dots become underscores)."""
    sanitized = _INVALID_CHAR_RE.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')
    )


def _fmt_value(value: object) -> str:
    if value is None:
        return "NaN"
    number = float(value)
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if isinstance(value, int) or number.is_integer():
        return str(int(number))
    return repr(number)


def _labels_str(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{k}="{escape_label_value(str(v))}"' for k, v in labels.items()
    )
    return "{" + body + "}"


def _histogram_lines(name: str, state: Dict[str, object],
                     labels: Dict[str, str]) -> List[str]:
    lines: List[str] = []
    cumulative = 0
    buckets: Dict[str, int] = state["buckets"]  # type: ignore[assignment]
    for bound, count in buckets.items():
        cumulative += int(count)
        le = "+Inf" if bound == "+inf" else bound
        lines.append(
            f"{name}_bucket{_labels_str({**labels, 'le': le})} "
            f"{cumulative}"
        )
    lines.append(
        f"{name}_sum{_labels_str(labels)} {_fmt_value(state['sum'])}"
    )
    lines.append(
        f"{name}_count{_labels_str(labels)} {int(state['count'])}"
    )
    return lines


def to_openmetrics(snapshot: Dict[str, dict],
                   help_texts: Optional[Dict[str, str]] = None) -> str:
    """Render a registry snapshot as OpenMetrics text exposition.

    Histograms with label children expose only the children (each label
    combination is one series; the parent total is their sum and would
    double-count). Scalar metrics with children expose the parent as the
    unlabeled total plus one labeled sample per child — the registry
    already maintains the parent as the all-label total for counters,
    and gauges' unlabeled sample is the last unlabeled ``set``.
    """
    help_texts = help_texts or {}
    lines: List[str] = []
    for raw_name in sorted(snapshot):
        entry = snapshot[raw_name]
        kind = entry["kind"]
        if kind not in _SUFFIXES:
            raise ValueError(
                f"metric {raw_name!r}: cannot expose kind {kind!r}"
            )
        name = metric_name(raw_name)
        help_text = help_texts.get(raw_name, "")
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        label_names = entry.get("label_names", [])
        children: Dict[str, object] = entry.get("children", {})

        def child_labels(key: str) -> Dict[str, str]:
            return dict(zip(label_names, key.split("|")))

        if kind == "histogram":
            if children:
                for key in sorted(children):
                    lines.extend(_histogram_lines(
                        name, children[key], child_labels(key)
                    ))
            else:
                lines.extend(_histogram_lines(name, entry["value"], {}))
        elif kind == "counter":
            lines.append(f"{name}_total {_fmt_value(entry['value'])}")
            for key in sorted(children):
                lines.append(
                    f"{name}_total{_labels_str(child_labels(key))} "
                    f"{_fmt_value(children[key])}"
                )
        else:  # gauge
            lines.append(f"{name} {_fmt_value(entry['value'])}")
            for key in sorted(children):
                lines.append(
                    f"{name}{_labels_str(child_labels(key))} "
                    f"{_fmt_value(children[key])}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# strict parser
# ----------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)


def _parse_labels(body: str, lineno: int) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    while i < len(body):
        eq = body.find("=", i)
        if eq < 0:
            raise ValueError(f"line {lineno}: malformed label pair in "
                             f"{body!r}")
        label = body[i:eq]
        if not _LABEL_NAME_RE.match(label):
            raise ValueError(f"line {lineno}: bad label name {label!r}")
        if eq + 1 >= len(body) or body[eq + 1] != '"':
            raise ValueError(f"line {lineno}: label value must be quoted")
        j = eq + 2
        value_chars: List[str] = []
        while j < len(body):
            ch = body[j]
            if ch == "\\":
                if j + 1 >= len(body):
                    raise ValueError(
                        f"line {lineno}: dangling escape in label value"
                    )
                esc = body[j + 1]
                if esc == "n":
                    value_chars.append("\n")
                elif esc in ('"', "\\"):
                    value_chars.append(esc)
                else:
                    raise ValueError(
                        f"line {lineno}: invalid escape \\{esc}"
                    )
                j += 2
                continue
            if ch == '"':
                break
            value_chars.append(ch)
            j += 1
        else:
            raise ValueError(f"line {lineno}: unterminated label value")
        if label in labels:
            raise ValueError(f"line {lineno}: duplicate label {label!r}")
        labels[label] = "".join(value_chars)
        i = j + 1
        if i < len(body):
            if body[i] != ",":
                raise ValueError(
                    f"line {lineno}: expected ',' between labels"
                )
            i += 1
    return labels


def _parse_value(raw: str, lineno: int) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"line {lineno}: bad sample value {raw!r}")


def parse_openmetrics(text: str) -> Dict[str, dict]:
    """Strictly parse an OpenMetrics exposition.

    Returns ``{family: {"type", "help", "samples": [(suffix, labels,
    value), ...]}}`` where ``suffix`` is the sample-name remainder after
    the family name (``"_total"``, ``"_bucket"``, ``""``...). Raises
    ``ValueError`` (with the line number) on the first violation:
    unknown line shape, sample without a preceding ``# TYPE``, a suffix
    the declared type does not allow, non-cumulative or unterminated
    bucket series, duplicate series, or a missing/misplaced ``# EOF``.
    """
    families: Dict[str, dict] = {}
    current: Optional[str] = None
    seen_series: set = set()
    eof_seen = False
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    for lineno, line in enumerate(lines, start=1):
        if eof_seen:
            raise ValueError(f"line {lineno}: content after # EOF")
        if line == "# EOF":
            eof_seen = True
            continue
        if not line:
            raise ValueError(f"line {lineno}: blank line not allowed")
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[0] != "#" or parts[1] not in (
                "TYPE", "HELP"
            ):
                raise ValueError(f"line {lineno}: malformed comment "
                                 f"{line!r}")
            _, keyword, name = parts[0], parts[1], parts[2]
            if not _NAME_RE.match(name):
                raise ValueError(f"line {lineno}: bad metric name "
                                 f"{name!r}")
            if keyword == "TYPE":
                mtype = parts[3] if len(parts) > 3 else ""
                if mtype not in _SUFFIXES:
                    raise ValueError(
                        f"line {lineno}: unknown metric type {mtype!r}"
                    )
                if name in families and families[name]["type"] is not None:
                    raise ValueError(
                        f"line {lineno}: duplicate # TYPE for {name!r}"
                    )
                entry = families.setdefault(
                    name, {"type": None, "help": None, "samples": []}
                )
                if entry["samples"]:
                    raise ValueError(
                        f"line {lineno}: # TYPE after samples for "
                        f"{name!r}"
                    )
                entry["type"] = mtype
                current = name
            else:
                entry = families.setdefault(
                    name, {"type": None, "help": None, "samples": []}
                )
                entry["help"] = parts[3] if len(parts) > 3 else ""
                current = name
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample {line!r}")
        sample_name = match.group("name")
        if current is None or not sample_name.startswith(current):
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} outside its "
                "family (missing # TYPE?)"
            )
        family = families[current]
        if family["type"] is None:
            raise ValueError(
                f"line {lineno}: sample before # TYPE for {current!r}"
            )
        suffix = sample_name[len(current):]
        if suffix not in _SUFFIXES[family["type"]]:
            raise ValueError(
                f"line {lineno}: suffix {suffix!r} not allowed for "
                f"{family['type']} family {current!r}"
            )
        labels = _parse_labels(match.group("labels") or "", lineno)
        if family["type"] == "histogram" and suffix == "_bucket":
            if "le" not in labels:
                raise ValueError(
                    f"line {lineno}: _bucket sample without 'le' label"
                )
        value = _parse_value(match.group("value"), lineno)
        series = (sample_name, tuple(sorted(labels.items())))
        if series in seen_series:
            raise ValueError(
                f"line {lineno}: duplicate series {series}"
            )
        seen_series.add(series)
        family["samples"].append((suffix, labels, value))
    if not eof_seen:
        raise ValueError("missing # EOF terminator")
    _check_bucket_monotonicity(families)
    return families


def _check_bucket_monotonicity(families: Dict[str, dict]) -> None:
    """Cumulative-bucket sanity: within each label set, counts must be
    non-decreasing as ``le`` grows and end at the series count."""
    for name, family in families.items():
        if family["type"] != "histogram":
            continue
        by_series: Dict[Tuple, List[Tuple[float, float]]] = {}
        counts: Dict[Tuple, float] = {}
        for suffix, labels, value in family["samples"]:
            key = tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le"
            ))
            if suffix == "_bucket":
                le = labels["le"]
                bound = math.inf if le == "+Inf" else float(le)
                by_series.setdefault(key, []).append((bound, value))
            elif suffix == "_count":
                counts[key] = value
        for key, buckets in by_series.items():
            ordered = sorted(buckets, key=lambda bv: bv[0])
            previous = -math.inf
            for bound, value in ordered:
                if value < previous:
                    raise ValueError(
                        f"family {name!r}: bucket counts not cumulative "
                        f"for series {key}"
                    )
                previous = value
            if not math.isinf(ordered[-1][0]):
                raise ValueError(
                    f"family {name!r}: series {key} missing +Inf bucket"
                )
            if key in counts and ordered[-1][1] != counts[key]:
                raise ValueError(
                    f"family {name!r}: +Inf bucket {ordered[-1][1]} != "
                    f"_count {counts[key]} for series {key}"
                )


# ----------------------------------------------------------------------
# round-trip reconciliation
# ----------------------------------------------------------------------
def roundtrip(snapshot: Dict[str, dict],
              help_texts: Optional[Dict[str, str]] = None) -> str:
    """Export ``snapshot``, re-parse it, and verify nothing was lost.

    Compares, per metric: counter/gauge totals and every labeled child
    value exactly, histogram count/sum and cumulative bucket counts per
    label set. Returns the exposition text on success; raises
    ``ValueError`` on the first discrepancy — the CI gate.
    """
    text = to_openmetrics(snapshot, help_texts)
    families = parse_openmetrics(text)
    for raw_name, entry in snapshot.items():
        name = metric_name(raw_name)
        family = families.get(name)
        if family is None:
            raise ValueError(f"metric {raw_name!r} missing from exposition")
        if family["type"] != entry["kind"]:
            raise ValueError(
                f"metric {raw_name!r}: kind {entry['kind']!r} came back "
                f"as {family['type']!r}"
            )
        label_names = entry.get("label_names", [])
        children: Dict[str, object] = entry.get("children", {})
        if entry["kind"] == "histogram":
            states = (
                {key: children[key] for key in children}
                if children else {None: entry["value"]}
            )
            for key, state in states.items():
                labels = (
                    dict(zip(label_names, key.split("|")))
                    if key is not None else {}
                )
                want = tuple(sorted(labels.items()))
                got_count = got_sum = None
                got_buckets: List[Tuple[float, float]] = []
                for suffix, slabels, value in family["samples"]:
                    base = tuple(sorted(
                        (k, v) for k, v in slabels.items() if k != "le"
                    ))
                    if base != want:
                        continue
                    if suffix == "_count":
                        got_count = value
                    elif suffix == "_sum":
                        got_sum = value
                    elif suffix == "_bucket":
                        le = slabels["le"]
                        got_buckets.append((
                            math.inf if le == "+Inf" else float(le), value
                        ))
                if got_count != state["count"]:
                    raise ValueError(
                        f"{raw_name}{labels}: count {state['count']} came "
                        f"back as {got_count}"
                    )
                if got_sum is None or abs(got_sum - state["sum"]) > 0.0:
                    raise ValueError(
                        f"{raw_name}{labels}: sum {state['sum']} came "
                        f"back as {got_sum}"
                    )
                cumulative = 0
                expected = []
                for bound, count in state["buckets"].items():
                    cumulative += count
                    expected.append((
                        math.inf if bound == "+inf" else float(bound),
                        float(cumulative),
                    ))
                if sorted(got_buckets) != sorted(expected):
                    raise ValueError(
                        f"{raw_name}{labels}: bucket mismatch "
                        f"{sorted(got_buckets)} != {sorted(expected)}"
                    )
        else:
            scalars = {(): float(entry["value"])}
            for key, value in children.items():
                labels = tuple(sorted(
                    zip(label_names, key.split("|"))
                ))
                scalars[labels] = float(value)  # type: ignore[index]
            for suffix, slabels, value in family["samples"]:
                got_key = tuple(sorted(slabels.items()))
                if got_key not in scalars:
                    raise ValueError(
                        f"{raw_name}: unexpected series {got_key}"
                    )
                if value != scalars[got_key]:
                    raise ValueError(
                        f"{raw_name}{dict(got_key)}: {scalars[got_key]} "
                        f"came back as {value}"
                    )
                del scalars[got_key]
            if scalars:
                raise ValueError(
                    f"{raw_name}: series missing from exposition: "
                    f"{sorted(scalars)}"
                )
    return text


# ----------------------------------------------------------------------
# JSON-lines snapshot sidecar
# ----------------------------------------------------------------------
class SnapshotWriter:
    """Append-only JSON-lines sidecar of periodic registry snapshots."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.written = 0

    def write(self, snapshot: Dict[str, dict], t: float) -> None:
        """Append one ``{"t", "seq", "metrics"}`` line."""
        with open(self.path, "a") as fh:
            fh.write(json.dumps(
                {"t": round(float(t), 12), "seq": self.written,
                 "metrics": snapshot},
                sort_keys=True,
            ) + "\n")
        self.written += 1


def load_snapshots(path: str) -> List[dict]:
    """Read a :class:`SnapshotWriter` sidecar back (strict JSON lines)."""
    out: List[dict] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: bad snapshot line: {exc}"
                ) from exc
            if "t" not in entry or "metrics" not in entry:
                raise ValueError(
                    f"{path}:{lineno}: snapshot line missing 't'/'metrics'"
                )
            out.append(entry)
    return out
