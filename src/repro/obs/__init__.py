"""Observability layer: metrics registry, span tracer, structured logging.

Zero overhead when disabled (the default): the active tracer and registry
are module-level singletons that start as :data:`NULL_TRACER` /
:data:`NULL_REGISTRY`, whose every method is a no-op. Instrumented code
reads them through :func:`tracer` / :func:`metrics` each time (never
caching across calls), so activation is a single global swap:

    with obs.observe() as ob:
        acc.run_mttkrp(tensor, b, c)
    ob.tracer.export_chrome("trace.json")
    print(ob.registry.render())

Instrumentation is *observational only*: simulator outputs (``SimReport``
fields, result tables, cached artifacts) are bit-identical whether or not
an observer is active — the contract CI enforces.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, NamedTuple, Optional, Union

from repro.obs.logs import JsonLinesFormatter, configure_logging, get_logger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetric,
    NullRegistry,
    NULL_REGISTRY,
)
from repro.obs.trace import (
    HOST_PID,
    SIM_PID,
    NullTracer,
    Tracer,
    NULL_TRACER,
    validate_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetric",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "validate_chrome_trace",
    "HOST_PID",
    "SIM_PID",
    "get_logger",
    "configure_logging",
    "JsonLinesFormatter",
    "tracer",
    "metrics",
    "enabled",
    "set_tracer",
    "set_registry",
    "observe",
    "Observation",
]

_TRACER: Union[Tracer, NullTracer] = NULL_TRACER
_REGISTRY: Union[MetricsRegistry, NullRegistry] = NULL_REGISTRY


def tracer() -> Union[Tracer, NullTracer]:
    """The active tracer (the null tracer unless observation is on)."""
    return _TRACER


def metrics() -> Union[MetricsRegistry, NullRegistry]:
    """The active metrics registry (null unless observation is on)."""
    return _REGISTRY


def enabled() -> bool:
    """True when either the tracer or the registry is live."""
    return _TRACER.enabled or _REGISTRY.enabled


def set_tracer(
    new: Optional[Union[Tracer, NullTracer]],
) -> Union[Tracer, NullTracer]:
    """Install ``new`` (or the null tracer for None); returns the old one."""
    global _TRACER
    previous = _TRACER
    _TRACER = new if new is not None else NULL_TRACER
    return previous


def set_registry(
    new: Optional[Union[MetricsRegistry, NullRegistry]],
) -> Union[MetricsRegistry, NullRegistry]:
    """Install ``new`` (or the null registry for None); returns the old one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = new if new is not None else NULL_REGISTRY
    return previous


class Observation(NamedTuple):
    """The live tracer/registry pair yielded by :func:`observe`."""

    tracer: Union[Tracer, NullTracer]
    registry: Union[MetricsRegistry, NullRegistry]


@contextmanager
def observe(
    tracer: Optional[Union[Tracer, NullTracer]] = None,
    registry: Optional[Union[MetricsRegistry, NullRegistry]] = None,
    micro: bool = False,
) -> Iterator[Observation]:
    """Activate instrumentation for the duration of the block.

    Fresh ``Tracer(micro=...)`` / ``MetricsRegistry`` instances are
    created unless provided. The previous globals are restored on exit;
    the yielded :class:`Observation` keeps the collected data alive for
    export after the block.
    """
    live_tracer = tracer if tracer is not None else Tracer(micro=micro)
    live_registry = registry if registry is not None else MetricsRegistry()
    prev_tracer = set_tracer(live_tracer)
    prev_registry = set_registry(live_registry)
    try:
        yield Observation(live_tracer, live_registry)
    finally:
        set_tracer(prev_tracer)
        set_registry(prev_registry)
