"""Observability layer: metrics, span tracing, request tracing, logging.

Zero overhead when disabled (the default): the active tracer, registry,
and request tracer are module-level singletons that start as
:data:`NULL_TRACER` / :data:`NULL_REGISTRY` /
:data:`NULL_REQUEST_TRACER`, whose every method is a no-op. Instrumented
code reads them through :func:`tracer` / :func:`metrics` /
:func:`request_tracer` each time (never caching across calls), so
activation is a single global swap:

    with obs.observe(requests=True) as ob:
        fleet.run_trace(requests)
    ob.tracer.export_chrome("trace.json")
    ob.requests.export_chrome("requests.json")
    print(ob.registry.render())

Instrumentation is *observational only*: simulator and fleet outputs
(``SimReport`` fields, decision logs, result tables, cached artifacts)
are bit-identical whether or not an observer is active — the contract CI
enforces.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, NamedTuple, Optional, Union

from repro.obs.logs import JsonLinesFormatter, configure_logging, get_logger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetric,
    NullRegistry,
    NULL_REGISTRY,
)
from repro.obs.probe import (
    ChaosProbe,
    NullProbe,
    NULL_PROBE,
)
from repro.obs.reqtrace import (
    NullRequestTracer,
    RequestTracer,
    NULL_REQUEST_TRACER,
    REQUEST_PID,
    current_context,
)
from repro.obs.trace import (
    HOST_PID,
    SIM_PID,
    NullTracer,
    Tracer,
    NULL_TRACER,
    validate_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetric",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "validate_chrome_trace",
    "HOST_PID",
    "SIM_PID",
    "REQUEST_PID",
    "RequestTracer",
    "NullRequestTracer",
    "NULL_REQUEST_TRACER",
    "ChaosProbe",
    "NullProbe",
    "NULL_PROBE",
    "current_context",
    "get_logger",
    "configure_logging",
    "JsonLinesFormatter",
    "tracer",
    "metrics",
    "request_tracer",
    "probe",
    "enabled",
    "set_tracer",
    "set_registry",
    "set_request_tracer",
    "set_probe",
    "observe",
    "Observation",
]

_TRACER: Union[Tracer, NullTracer] = NULL_TRACER
_REGISTRY: Union[MetricsRegistry, NullRegistry] = NULL_REGISTRY
_REQUEST_TRACER: Union[RequestTracer, NullRequestTracer] = NULL_REQUEST_TRACER
_PROBE: Union[ChaosProbe, NullProbe] = NULL_PROBE


def tracer() -> Union[Tracer, NullTracer]:
    """The active tracer (the null tracer unless observation is on)."""
    return _TRACER


def metrics() -> Union[MetricsRegistry, NullRegistry]:
    """The active metrics registry (null unless observation is on)."""
    return _REGISTRY


def request_tracer() -> Union[RequestTracer, NullRequestTracer]:
    """The active request tracer (null unless request tracing is on)."""
    return _REQUEST_TRACER


def probe() -> Union[ChaosProbe, NullProbe]:
    """The active chaos probe (null unless one is installed)."""
    return _PROBE


def enabled() -> bool:
    """True when any observer (tracer/registry/request tracer) is live."""
    return (
        _TRACER.enabled
        or _REGISTRY.enabled
        or _REQUEST_TRACER.enabled
        or _PROBE.enabled
    )


def set_tracer(
    new: Optional[Union[Tracer, NullTracer]],
) -> Union[Tracer, NullTracer]:
    """Install ``new`` (or the null tracer for None); returns the old one."""
    global _TRACER
    previous = _TRACER
    _TRACER = new if new is not None else NULL_TRACER
    return previous


def set_registry(
    new: Optional[Union[MetricsRegistry, NullRegistry]],
) -> Union[MetricsRegistry, NullRegistry]:
    """Install ``new`` (or the null registry for None); returns the old one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = new if new is not None else NULL_REGISTRY
    return previous


def set_request_tracer(
    new: Optional[Union[RequestTracer, NullRequestTracer]],
) -> Union[RequestTracer, NullRequestTracer]:
    """Install ``new`` (or the null request tracer for None)."""
    global _REQUEST_TRACER
    previous = _REQUEST_TRACER
    _REQUEST_TRACER = new if new is not None else NULL_REQUEST_TRACER
    return previous


def set_probe(
    new: Optional[Union[ChaosProbe, NullProbe]],
) -> Union[ChaosProbe, NullProbe]:
    """Install ``new`` (or the null probe for None); returns the old one."""
    global _PROBE
    previous = _PROBE
    _PROBE = new if new is not None else NULL_PROBE
    return previous


class Observation(NamedTuple):
    """The live observer bundle yielded by :func:`observe`."""

    tracer: Union[Tracer, NullTracer]
    registry: Union[MetricsRegistry, NullRegistry]
    requests: Union[RequestTracer, NullRequestTracer] = NULL_REQUEST_TRACER
    probe: Union[ChaosProbe, NullProbe] = NULL_PROBE


@contextmanager
def observe(
    tracer: Optional[Union[Tracer, NullTracer]] = None,
    registry: Optional[Union[MetricsRegistry, NullRegistry]] = None,
    micro: bool = False,
    requests: Union[bool, RequestTracer, NullRequestTracer] = False,
    probe: Union[bool, ChaosProbe, NullProbe] = False,
) -> Iterator[Observation]:
    """Activate instrumentation for the duration of the block.

    Fresh ``Tracer(micro=...)`` / ``MetricsRegistry`` instances are
    created unless provided. ``requests=True`` additionally installs a
    fresh :class:`RequestTracer` (or pass one in to control its seed);
    ``probe=True`` installs a fresh :class:`ChaosProbe` recording the
    typed lifecycle-event stream the chaos invariants consume. The
    previous globals are restored on exit; the yielded
    :class:`Observation` keeps the collected data alive for export after
    the block.
    """
    live_tracer = tracer if tracer is not None else Tracer(micro=micro)
    live_registry = registry if registry is not None else MetricsRegistry()
    if requests is True:
        live_requests: Union[RequestTracer, NullRequestTracer] = RequestTracer()
    elif requests is False or requests is None:
        live_requests = NULL_REQUEST_TRACER
    else:
        live_requests = requests
    if probe is True:
        live_probe: Union[ChaosProbe, NullProbe] = ChaosProbe()
    elif probe is False or probe is None:
        live_probe = NULL_PROBE
    else:
        live_probe = probe
    prev_tracer = set_tracer(live_tracer)
    prev_registry = set_registry(live_registry)
    prev_requests = set_request_tracer(live_requests)
    prev_probe = set_probe(live_probe)
    try:
        yield Observation(live_tracer, live_registry, live_requests, live_probe)
    finally:
        set_tracer(prev_tracer)
        set_registry(prev_registry)
        set_request_tracer(prev_requests)
        set_probe(prev_probe)
