"""Element-wise and contraction operations on sparse tensors.

The factorization algorithms and applications need a handful of tensor
operations beyond the accelerated kernels: sparse addition/subtraction,
Hadamard products, inner products, single-mode tensor-times-matrix (TTM),
and residual norms computed without materializing dense tensors. All
operate on the canonical COO substrate.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tensor.sparse import SparseTensor, _linearize
from repro.util.errors import ShapeError
from repro.util.validation import check_mode, check_shape_match


def _check_same_shape(a: SparseTensor, b: SparseTensor) -> None:
    if a.shape != b.shape:
        raise ShapeError(f"shape mismatch: {a.shape} vs {b.shape}")


def add(a: SparseTensor, b: SparseTensor) -> SparseTensor:
    """Sparse tensor addition (duplicate coordinates sum, zeros vanish)."""
    _check_same_shape(a, b)
    coords = np.concatenate([a.coords, b.coords], axis=0)
    values = np.concatenate([a.values, b.values])
    return SparseTensor(a.shape, coords, values)


def subtract(a: SparseTensor, b: SparseTensor) -> SparseTensor:
    """Sparse tensor subtraction ``a - b``."""
    return add(a, b.scale(-1.0))


def hadamard(a: SparseTensor, b: SparseTensor) -> SparseTensor:
    """Element-wise product; the result's support is the intersection."""
    _check_same_shape(a, b)
    key_a = _linearize(a.coords, a.shape)
    key_b = _linearize(b.coords, b.shape)
    # Canonical order makes both key arrays sorted: intersect by merge.
    common, idx_a, idx_b = np.intersect1d(
        key_a, key_b, assume_unique=True, return_indices=True
    )
    if common.size == 0:
        return SparseTensor.empty(a.shape)
    return SparseTensor(
        a.shape,
        a.coords[idx_a],
        a.values[idx_a] * b.values[idx_b],
    )


def inner(a: SparseTensor, b: SparseTensor) -> float:
    """Inner product ``<a, b> = sum_ij a_ij * b_ij``."""
    _check_same_shape(a, b)
    key_a = _linearize(a.coords, a.shape)
    key_b = _linearize(b.coords, b.shape)
    _common, idx_a, idx_b = np.intersect1d(
        key_a, key_b, assume_unique=True, return_indices=True
    )
    return float(np.dot(a.values[idx_a], b.values[idx_b]))


def residual_norm(tensor: SparseTensor, model_dense: np.ndarray) -> float:
    """``||tensor - model||_F`` without densifying ``tensor``.

    Uses ``||X - M||^2 = ||X||^2 - 2<X, M> + ||M||^2`` with the cross term
    evaluated only at the sparse support.
    """
    model_dense = np.asarray(model_dense, dtype=np.float64)
    if model_dense.shape != tensor.shape:
        raise ShapeError(
            f"model shape {model_dense.shape} != tensor shape {tensor.shape}"
        )
    cross = float(
        np.dot(tensor.values, model_dense[tuple(tensor.coords.T)])
    )
    sq = tensor.norm() ** 2 - 2.0 * cross + float(np.sum(model_dense**2))
    return float(np.sqrt(max(sq, 0.0)))


def ttm(tensor: SparseTensor, matrix: np.ndarray, mode: int) -> np.ndarray:
    """Single tensor-times-matrix product along ``mode``.

    ``Y = X x_mode M^T`` with ``M`` of shape ``(shape[mode], rank)``:
    the output is dense with ``shape[mode]`` replaced by ``rank``. (TTMc is
    a chain of these with all-but-one mode contracted.)
    """
    check_mode(mode, tensor.ndim)
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ShapeError("ttm expects a 2-d matrix")
    check_shape_match(
        f"tensor mode {mode}", tensor.shape[mode], "matrix rows", matrix.shape[0]
    )
    rank = matrix.shape[1]
    out_shape = tuple(
        rank if m == mode else s for m, s in enumerate(tensor.shape)
    )
    out = np.zeros(out_shape, dtype=np.float64)
    if tensor.nnz == 0:
        return out
    rest = [m for m in range(tensor.ndim) if m != mode]
    # Scatter-add each nonzero's contribution row into the output.
    contrib = tensor.values[:, None] * matrix[tensor.coords[:, mode], :]
    index = tuple(
        tensor.coords[:, m] for m in range(tensor.ndim) if m != mode
    )
    # Build an indexing tuple with a slice at `mode`.
    moved = np.moveaxis(out, mode, -1)  # view: rest modes first, rank last
    np.add.at(moved, index, contrib)
    return out


def mode_sum(tensor: SparseTensor, mode: int) -> np.ndarray:
    """Marginal sums along one mode (collapses it)."""
    check_mode(mode, tensor.ndim)
    rest = [m for m in range(tensor.ndim) if m != mode]
    out_shape = tuple(tensor.shape[m] for m in rest)
    out = np.zeros(out_shape, dtype=np.float64)
    if tensor.nnz:
        np.add.at(out, tuple(tensor.coords[:, m] for m in rest), tensor.values)
    return out


def extract_slice(tensor: SparseTensor, mode: int, index: int) -> SparseTensor:
    """The (N-1)-d sparse slice at ``index`` along ``mode``."""
    check_mode(mode, tensor.ndim)
    if not 0 <= index < tensor.shape[mode]:
        raise ShapeError(f"slice index {index} out of range")
    mask = tensor.coords[:, mode] == index
    rest = [m for m in range(tensor.ndim) if m != mode]
    coords = tensor.coords[mask][:, rest]
    shape = tuple(tensor.shape[m] for m in rest)
    return SparseTensor(shape, coords, tensor.values[mask], canonical=True)
