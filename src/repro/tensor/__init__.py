"""Sparse tensor substrate.

:class:`SparseTensor` is the N-dimensional coordinate-format tensor every
storage format (extended CSR, CSF, CISS) and kernel in this repository is
built from. It mirrors the role FROSTT ``.tns`` files play for SPLATT: a
canonical, format-neutral carrier of the nonzero structure.
"""

from repro.tensor.sparse import SparseTensor
from repro.tensor.dense import dense_frobenius_norm, unfold_dense, fold_dense
from repro.tensor import ops

__all__ = [
    "SparseTensor",
    "dense_frobenius_norm",
    "unfold_dense",
    "fold_dense",
    "ops",
]
