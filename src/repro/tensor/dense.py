"""Dense tensor helpers: matricization (unfolding) and its inverse.

These implement the standard Kolda & Bader conventions used by the kernels
and factorization algorithms: in the mode-``n`` unfolding the remaining modes
are ordered increasingly with the earliest varying fastest, matching
:meth:`repro.tensor.SparseTensor.unfold`.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.util.validation import check_mode


def unfold_dense(array: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``n`` matricization of a dense tensor.

    Result has shape ``(shape[mode], prod(other modes))`` with the earliest
    remaining mode varying fastest along columns (Fortran-style over the
    remaining modes), matching the sparse unfolding.
    """
    array = np.asarray(array)
    check_mode(mode, array.ndim)
    rest = [m for m in range(array.ndim) if m != mode]
    moved = np.transpose(array, [mode] + rest)
    return moved.reshape(array.shape[mode], -1, order="F")


def fold_dense(matrix: np.ndarray, mode: int, shape: Sequence[int]) -> np.ndarray:
    """Inverse of :func:`unfold_dense`: rebuild the tensor from its unfolding."""
    shape = tuple(int(s) for s in shape)
    check_mode(mode, len(shape))
    rest = [m for m in range(len(shape)) if m != mode]
    interim: Tuple[int, ...] = (shape[mode],) + tuple(shape[m] for m in rest)
    tensor = np.asarray(matrix).reshape(interim, order="F")
    # Invert the [mode] + rest permutation.
    inverse = np.argsort([mode] + rest)
    return np.transpose(tensor, inverse)


def dense_frobenius_norm(array: np.ndarray) -> float:
    """Frobenius norm of an arbitrary-dimensional dense tensor."""
    return float(np.linalg.norm(np.asarray(array).ravel()))
