"""N-dimensional sparse tensor in coordinate (COO) form.

The tensor keeps an ``(nnz, ndim)`` int64 coordinate array and an ``(nnz,)``
float64 value array, canonically sorted in lexicographic coordinate order
with duplicates summed. All storage formats in :mod:`repro.formats` encode
from and decode back to this representation, which makes round-trip testing
uniform.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

from repro.util.errors import ShapeError
from repro.util.validation import check_finite, check_mode


class SparseTensor:
    """An immutable N-dimensional sparse tensor in canonical COO form.

    Parameters
    ----------
    shape:
        Tensor dimensions, one entry per mode.
    coords:
        Integer array of shape ``(nnz, ndim)``; row ``r`` holds the mode
        indices of nonzero ``r``.
    values:
        Float array of shape ``(nnz,)``.
    canonical:
        If True the caller guarantees coords are already lexicographically
        sorted, in-range and duplicate-free, and validation is skipped. Used
        internally by constructors that produce canonical data.
    """

    __slots__ = ("_shape", "_coords", "_values")

    def __init__(
        self,
        shape: Sequence[int],
        coords: np.ndarray,
        values: np.ndarray,
        *,
        canonical: bool = False,
    ) -> None:
        shape = tuple(int(s) for s in shape)
        if any(s <= 0 for s in shape):
            raise ShapeError(f"all dimensions must be positive, got {shape}")
        coords = np.asarray(coords, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if coords.ndim != 2 or coords.shape[1] != len(shape):
            raise ShapeError(
                f"coords must have shape (nnz, {len(shape)}), got {coords.shape}"
            )
        if values.ndim != 1 or values.shape[0] != coords.shape[0]:
            raise ShapeError(
                f"values must have shape ({coords.shape[0]},), got {values.shape}"
            )
        if not canonical:
            coords, values = _canonicalize(shape, coords, values)
        self._shape = shape
        self._coords = coords
        self._values = values
        self._coords.setflags(write=False)
        self._values.setflags(write=False)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_entries(
        cls,
        shape: Sequence[int],
        entries: Iterable[Tuple[Sequence[int], float]],
    ) -> "SparseTensor":
        """Build a tensor from an iterable of ``(index_tuple, value)`` pairs."""
        entry_list = list(entries)
        ndim = len(tuple(shape))
        if not entry_list:
            return cls.empty(shape)
        coords = np.array([list(idx) for idx, _ in entry_list], dtype=np.int64)
        if coords.shape[1] != ndim:
            raise ShapeError(
                f"entries have {coords.shape[1]} indices but shape has {ndim} modes"
            )
        values = np.array([v for _, v in entry_list], dtype=np.float64)
        return cls(shape, coords, values)

    @classmethod
    def from_dense(cls, array: np.ndarray) -> "SparseTensor":
        """Build a sparse tensor holding the nonzeros of a dense array."""
        array = np.asarray(array, dtype=np.float64)
        check_finite("dense array values", array)
        coords = np.argwhere(array != 0.0).astype(np.int64)
        values = array[array != 0.0].astype(np.float64)
        return cls(array.shape, coords, values, canonical=True)

    @classmethod
    def empty(cls, shape: Sequence[int]) -> "SparseTensor":
        """Return an all-zero tensor of the given shape."""
        ndim = len(tuple(shape))
        return cls(
            shape,
            np.empty((0, ndim), dtype=np.int64),
            np.empty((0,), dtype=np.float64),
            canonical=True,
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self._shape

    @property
    def ndim(self) -> int:
        return len(self._shape)

    @property
    def nnz(self) -> int:
        return int(self._values.shape[0])

    @property
    def coords(self) -> np.ndarray:
        """Read-only ``(nnz, ndim)`` coordinate array in canonical order."""
        return self._coords

    @property
    def values(self) -> np.ndarray:
        """Read-only ``(nnz,)`` value array aligned with :attr:`coords`."""
        return self._values

    @property
    def density(self) -> float:
        """Fraction of entries that are nonzero."""
        total = 1
        for s in self._shape:
            total *= s
        return self.nnz / total

    def norm(self) -> float:
        """Frobenius norm of the tensor."""
        return float(np.linalg.norm(self._values))

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def mode_indices(self, mode: int) -> np.ndarray:
        """The coordinate column for one mode, aligned with :attr:`values`."""
        check_mode(mode, self.ndim)
        return self._coords[:, mode]

    def slice_nnz_counts(self, mode: int) -> np.ndarray:
        """Number of nonzeros in each slice along ``mode`` (length = shape[mode]).

        A *slice* here follows the paper's usage: for a 3-d tensor and mode 0,
        slice ``i`` is ``A(i, :, :)``. The CISS scheduler balances these counts
        across PEs.
        """
        check_mode(mode, self.ndim)
        return np.bincount(self._coords[:, mode], minlength=self._shape[mode])

    def nonempty_slices(self, mode: int) -> np.ndarray:
        """Sorted indices of slices along ``mode`` that contain a nonzero."""
        counts = self.slice_nnz_counts(mode)
        return np.flatnonzero(counts)

    def iter_entries(self) -> Iterator[Tuple[Tuple[int, ...], float]]:
        """Iterate ``(index_tuple, value)`` pairs in canonical order."""
        for row, value in zip(self._coords, self._values):
            yield tuple(int(x) for x in row), float(value)

    def __getitem__(self, index: Sequence[int]) -> float:
        """Point lookup; O(log nnz) via binary search on the canonical order."""
        index = tuple(int(i) for i in index)
        if len(index) != self.ndim:
            raise ShapeError(f"index {index} has wrong arity for shape {self._shape}")
        for mode, (i, bound) in enumerate(zip(index, self._shape)):
            if not 0 <= i < bound:
                raise ShapeError(f"index {index} out of bounds for shape {self._shape}")
        key = _linearize(self._coords, self._shape)
        target = 0
        for i, s in zip(index, self._shape):
            target = target * s + i
        pos = int(np.searchsorted(key, target))
        if pos < key.shape[0] and key[pos] == target:
            return float(self._values[pos])
        return 0.0

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialize the tensor as a dense numpy array."""
        out = np.zeros(self._shape, dtype=np.float64)
        if self.nnz:
            out[tuple(self._coords.T)] = self._values
        return out

    def permute_modes(self, order: Sequence[int]) -> "SparseTensor":
        """Return the tensor with modes reordered (generalized transpose).

        The canonical invariant makes this cheap: the permuted coordinates
        are unique and in-range by construction, so a stable lexsort is all
        that is needed — no duplicate-summing or zero-dropping pass. An
        identity permutation returns ``self`` (the tensor is immutable).
        """
        order = tuple(int(m) for m in order)
        if sorted(order) != list(range(self.ndim)):
            raise ShapeError(f"order {order} is not a permutation of modes")
        if order == tuple(range(self.ndim)):
            return self
        new_shape = tuple(self._shape[m] for m in order)
        new_coords = self._coords[:, list(order)]
        # np.lexsort keys run last-to-first; a stable sort on unique keys
        # reorders exactly like the canonical linearized-key argsort.
        perm = np.lexsort(tuple(new_coords[:, m] for m in range(self.ndim - 1, -1, -1)))
        return SparseTensor(
            new_shape, new_coords[perm], self._values[perm], canonical=True
        )

    def unfold(self, mode: int) -> Tuple[np.ndarray, np.ndarray, Tuple[int, int]]:
        """Mode-``n`` matricization as sparse triplets.

        Returns ``(rows, cols, shape2d)`` where ``rows`` is the mode index,
        ``cols`` the linearized index over the remaining modes (in the usual
        Kolda ordering: remaining modes in increasing order, earliest mode
        varying fastest), and ``shape2d`` the matrix shape. Values align with
        :attr:`values`.
        """
        check_mode(mode, self.ndim)
        rows = self._coords[:, mode].copy()
        rest = [m for m in range(self.ndim) if m != mode]
        cols = np.zeros(self.nnz, dtype=np.int64)
        stride = 1
        for m in rest:  # earliest remaining mode varies fastest
            cols += self._coords[:, m] * stride
            stride *= self._shape[m]
        return rows, cols, (self._shape[mode], int(stride))

    def scale(self, alpha: float) -> "SparseTensor":
        """Return ``alpha * self`` (zero alpha yields the empty tensor)."""
        if alpha == 0.0:
            return SparseTensor.empty(self._shape)
        return SparseTensor(
            self._shape, self._coords, self._values * float(alpha), canonical=True
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseTensor):
            return NotImplemented
        return (
            self._shape == other._shape
            and np.array_equal(self._coords, other._coords)
            and np.array_equal(self._values, other._values)
        )

    def __hash__(self) -> int:  # immutable value object
        return hash((self._shape, self._coords.tobytes(), self._values.tobytes()))

    def __repr__(self) -> str:
        return (
            f"SparseTensor(shape={self._shape}, nnz={self.nnz}, "
            f"density={self.density:.3g})"
        )


def _linearize(coords: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Row-major linear index of each coordinate row."""
    key = np.zeros(coords.shape[0], dtype=np.int64)
    for mode, size in enumerate(shape):
        key = key * size + coords[:, mode]
    return key


def _canonicalize(
    shape: Tuple[int, ...], coords: np.ndarray, values: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate bounds, sort lexicographically, sum duplicates, drop zeros."""
    check_finite("values", values)
    for mode, size in enumerate(shape):
        col = coords[:, mode]
        if col.size and (col.min() < 0 or col.max() >= size):
            raise ShapeError(
                f"mode-{mode} indices out of range [0, {size}) in coords"
            )
    if coords.shape[0] == 0:
        return coords, values
    key = _linearize(coords, shape)
    order = np.argsort(key, kind="stable")
    key = key[order]
    coords = coords[order]
    values = values[order]
    # Sum duplicates: segment by unique linear key.
    unique_key, first = np.unique(key, return_index=True)
    if unique_key.shape[0] != key.shape[0]:
        summed = np.add.reduceat(values, first)
        coords = coords[first]
        values = summed
    # Drop explicit zeros so density reflects true structure.
    keep = values != 0.0
    return coords[keep], values[keep]
