"""Host-side robustness primitives: retry policies and factor checkpoints.

The simulator's fault layer (:mod:`repro.sim.faults`) makes kernels fail
the way real hardware does — launches abort, chips die, lanes drop out.
This module holds what the *host* does about it:

- :class:`RetryPolicy` / :func:`retry_call` — bounded retries with
  deterministic exponential backoff (optionally jittered from a seed, so
  retry schedules replay exactly);
- :class:`CheckpointStore` — bounded in-memory per-iteration factor
  checkpoints for the ALS/HOOI loops, so a mid-run fault resumes from the
  last completed sweep instead of restarting.

Used by :class:`repro.sim.driver.TensaurusDevice` (watchdog + RESET-retry),
:func:`repro.factorization.accelerated.accelerated_cp_als` (checkpoint and
resume-after-fault) and :func:`repro.sim.sweep.sweep_configs` (per-point
retries and partial results).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Type

import numpy as np

from repro.util.errors import ConfigError, FaultError, RetryExhaustedError
from repro.util.rng import DEFAULT_SEED, derive_seed, make_rng

__all__ = [
    "CheckpointStore",
    "FactorCheckpoint",
    "RetryPolicy",
    "retry_call",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with deterministic exponential backoff.

    ``max_retries`` counts *re*-attempts: a policy with ``max_retries=3``
    permits four executions in total. ``jitter`` scales each delay by a
    seeded uniform factor in ``[1 - jitter, 1 + jitter]`` so backoff
    schedules stay reproducible run-to-run.
    """

    max_retries: int = 3
    backoff_base_s: float = 0.01
    backoff_factor: float = 2.0
    max_backoff_s: float = 1.0
    jitter: float = 0.0
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.backoff_base_s < 0 or self.max_backoff_s < 0:
            raise ConfigError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError("jitter must be in [0, 1)")

    def delay(self, attempt: int) -> float:
        """Backoff before re-attempt ``attempt`` (0-based)."""
        base = min(
            self.backoff_base_s * self.backoff_factor ** attempt,
            self.max_backoff_s,
        )
        if self.jitter > 0:
            rng = make_rng(derive_seed(self.seed, "retry-jitter", attempt))
            base *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return float(base)

    def delays(self) -> List[float]:
        """The full backoff schedule, one entry per permitted retry."""
        return [self.delay(a) for a in range(self.max_retries)]


def retry_call(
    fn: Callable[[int], object],
    policy: RetryPolicy,
    retry_on: Tuple[Type[BaseException], ...] = (FaultError,),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
):
    """Call ``fn(attempt)`` until it succeeds or the policy is exhausted.

    ``fn`` receives the 0-based attempt index so callers can re-seed fault
    epochs per attempt. Exceptions outside ``retry_on`` propagate
    unchanged; exhausting the policy raises :class:`RetryExhaustedError`
    chaining the last failure.
    """
    last: Optional[BaseException] = None
    for attempt in range(policy.max_retries + 1):
        try:
            return fn(attempt)
        except retry_on as exc:  # noqa: PERF203 - retry loop by design
            last = exc
            if attempt >= policy.max_retries:
                break
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(policy.delay(attempt))
    raise RetryExhaustedError(
        f"gave up after {policy.max_retries + 1} attempts: {last}",
        attempts=policy.max_retries + 1,
        last_error=last,
    ) from last


# ----------------------------------------------------------------------
# Factor checkpoints
# ----------------------------------------------------------------------
@dataclass
class FactorCheckpoint:
    """One completed iteration's factors (plus weights/core where used)."""

    iteration: int
    factors: List[np.ndarray]
    weights: Optional[np.ndarray] = None
    core: Optional[np.ndarray] = None
    fit: float = 0.0


class CheckpointStore:
    """Bounded in-memory checkpoint ring for iterative factorizations.

    Keeps the newest ``keep`` checkpoints (deep copies — the ALS loop
    mutates its factor list in place) plus the full per-iteration fit
    history, which survives eviction so a resumed run can stitch a
    complete ``fit_trace``.
    """

    def __init__(self, keep: int = 2) -> None:
        if keep < 1:
            raise ConfigError("keep must be >= 1")
        self.keep = int(keep)
        self._ckpts: "OrderedDict[int, FactorCheckpoint]" = OrderedDict()
        self.fit_history: Dict[int, float] = {}
        self.saves = 0

    def __len__(self) -> int:
        return len(self._ckpts)

    def save(
        self,
        iteration: int,
        factors: List[np.ndarray],
        weights: Optional[np.ndarray] = None,
        core: Optional[np.ndarray] = None,
        fit: float = 0.0,
    ) -> FactorCheckpoint:
        ckpt = FactorCheckpoint(
            iteration=int(iteration),
            factors=[np.array(f, dtype=np.float64, copy=True) for f in factors],
            weights=None if weights is None else np.array(weights, copy=True),
            core=None if core is None else np.array(core, copy=True),
            fit=float(fit),
        )
        self._ckpts[ckpt.iteration] = ckpt
        self._ckpts.move_to_end(ckpt.iteration)
        self.fit_history[ckpt.iteration] = ckpt.fit
        self.saves += 1
        while len(self._ckpts) > self.keep:
            self._ckpts.popitem(last=False)
        return ckpt

    def latest(self) -> Optional[FactorCheckpoint]:
        if not self._ckpts:
            return None
        return next(reversed(self._ckpts.values()))

    def iterations(self) -> List[int]:
        return list(self._ckpts)

    def fit_trace(self) -> List[float]:
        """Fits of every iteration ever checkpointed, in iteration order."""
        return [self.fit_history[i] for i in sorted(self.fit_history)]
