"""Host-side robustness primitives: retry policies and factor checkpoints.

The simulator's fault layer (:mod:`repro.sim.faults`) makes kernels fail
the way real hardware does — launches abort, chips die, lanes drop out.
This module holds what the *host* does about it:

- :class:`RetryPolicy` / :func:`retry_call` — bounded retries with
  deterministic exponential backoff (optionally jittered from a seed, so
  retry schedules replay exactly);
- :class:`CheckpointStore` — bounded in-memory per-iteration factor
  checkpoints for the ALS/HOOI loops, so a mid-run fault resumes from the
  last completed sweep instead of restarting.

Used by :class:`repro.sim.driver.TensaurusDevice` (watchdog + RESET-retry),
:func:`repro.factorization.accelerated.accelerated_cp_als` (checkpoint and
resume-after-fault) and :func:`repro.sim.sweep.sweep_configs` (per-point
retries and partial results).
"""

from __future__ import annotations

import dataclasses
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

import numpy as np

from repro import obs
from repro.util.errors import (
    ConfigError,
    DeadlineExceededError,
    FaultError,
    RetryExhaustedError,
)
from repro.util.rng import DEFAULT_SEED, derive_seed, make_rng

logger = obs.get_logger(__name__)

__all__ = [
    "CheckpointStore",
    "FactorCheckpoint",
    "RetryPolicy",
    "retry_call",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with deterministic exponential backoff.

    ``max_retries`` counts *re*-attempts: a policy with ``max_retries=3``
    permits four executions in total. ``jitter`` randomizes delays from a
    seeded stream so backoff schedules stay reproducible run-to-run:

    - ``jitter_mode="scaled"`` scales each exponential delay by a uniform
      factor in ``[1 - jitter, 1 + jitter]``;
    - ``jitter_mode="decorrelated"`` uses the decorrelated-jitter scheme
      (each delay drawn uniformly between the base delay and three times
      the previous delay, capped), which avoids retry synchronization
      across concurrent clients while staying seed-deterministic.

    ``max_elapsed_s`` bounds the *total* time a retry loop may consume
    (attempt time plus backoff): :func:`retry_call` gives up early rather
    than start a sleep that would overshoot it — the hook request
    deadlines use so retries never outlive the request.
    """

    max_retries: int = 3
    backoff_base_s: float = 0.01
    backoff_factor: float = 2.0
    max_backoff_s: float = 1.0
    jitter: float = 0.0
    jitter_mode: str = "scaled"
    max_elapsed_s: Optional[float] = None
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.backoff_base_s < 0 or self.max_backoff_s < 0:
            raise ConfigError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError("jitter must be in [0, 1)")
        if self.jitter_mode not in ("scaled", "decorrelated"):
            raise ConfigError(
                f"jitter_mode must be 'scaled' or 'decorrelated', "
                f"got {self.jitter_mode!r}"
            )
        if self.max_elapsed_s is not None and self.max_elapsed_s < 0:
            raise ConfigError("max_elapsed_s must be >= 0 (or None)")

    def delay(self, attempt: int) -> float:
        """Backoff before re-attempt ``attempt`` (0-based)."""
        if self.jitter_mode == "decorrelated":
            # Replay the chain up to `attempt`: each delay depends on the
            # previous one, and each draw has its own derived seed so the
            # schedule is stable however it is queried.
            prev = self.backoff_base_s
            for a in range(attempt + 1):
                rng = make_rng(derive_seed(self.seed, "retry-decorr", a))
                hi = max(self.backoff_base_s, 3.0 * prev)
                prev = min(
                    self.max_backoff_s,
                    self.backoff_base_s
                    + rng.random() * (hi - self.backoff_base_s),
                )
            return float(prev)
        base = min(
            self.backoff_base_s * self.backoff_factor ** attempt,
            self.max_backoff_s,
        )
        if self.jitter > 0:
            rng = make_rng(derive_seed(self.seed, "retry-jitter", attempt))
            base *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return float(base)

    def delays(self) -> List[float]:
        """The full backoff schedule, one entry per permitted retry."""
        return [self.delay(a) for a in range(self.max_retries)]

    def for_deadline(self, remaining_s: float) -> "RetryPolicy":
        """This policy clamped to a remaining time budget (the tighter of
        the existing ``max_elapsed_s`` and ``remaining_s``).

        A deadline that has already elapsed raises
        :class:`~repro.util.errors.DeadlineExceededError` immediately:
        the old clamp-to-zero behavior still burned one doomed attempt
        (``retry_call`` always executes the first try before consulting
        the budget), wasting a launch on a request whose answer nobody
        is waiting for.
        """
        remaining = float(remaining_s)
        if remaining <= 0.0:
            raise DeadlineExceededError(
                f"deadline elapsed {-remaining:.3f}s ago; refusing to "
                "start a retry loop for it",
                deadline_s=remaining,
            )
        budget = remaining
        if self.max_elapsed_s is not None:
            budget = min(budget, self.max_elapsed_s)
        return dataclasses.replace(self, max_elapsed_s=budget)


def retry_call(
    fn: Callable[[int], object],
    policy: RetryPolicy,
    retry_on: Tuple[Type[BaseException], ...] = (FaultError,),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    clock: Callable[[], float] = time.monotonic,
):
    """Call ``fn(attempt)`` until it succeeds or the policy is exhausted.

    ``fn`` receives the 0-based attempt index so callers can re-seed fault
    epochs per attempt. Exceptions outside ``retry_on`` propagate
    unchanged; exhausting the policy raises :class:`RetryExhaustedError`
    chaining the last failure.

    With ``policy.max_elapsed_s`` set, the loop additionally gives up —
    *before* sleeping — once the elapsed time plus the next backoff would
    overshoot the budget, so a retried launch never outlives the request
    deadline it is serving. ``clock`` is injectable for deterministic
    tests.
    """
    last: Optional[BaseException] = None
    attempts = 0
    start = clock()
    budget = policy.max_elapsed_s
    for attempt in range(policy.max_retries + 1):
        attempts = attempt + 1
        try:
            return fn(attempt)
        except retry_on as exc:  # noqa: PERF203 - retry loop by design
            last = exc
            if attempt >= policy.max_retries:
                break
            delay = policy.delay(attempt)
            if budget is not None and (clock() - start) + delay > budget:
                raise RetryExhaustedError(
                    f"gave up after {attempts} attempt(s): time budget "
                    f"{budget:.3f}s would be overshot by the next "
                    f"{delay:.3f}s backoff: {last}",
                    attempts=attempts,
                    last_error=last,
                ) from last
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(delay)
    raise RetryExhaustedError(
        f"gave up after {attempts} attempts: {last}",
        attempts=attempts,
        last_error=last,
    ) from last


# ----------------------------------------------------------------------
# Factor checkpoints
# ----------------------------------------------------------------------
@dataclass
class FactorCheckpoint:
    """One completed iteration's factors (plus weights/core where used)."""

    iteration: int
    factors: List[np.ndarray]
    weights: Optional[np.ndarray] = None
    core: Optional[np.ndarray] = None
    fit: float = 0.0


class CheckpointStore:
    """Bounded in-memory checkpoint ring for iterative factorizations.

    Keeps the newest ``keep`` checkpoints (deep copies — the ALS loop
    mutates its factor list in place) plus the full per-iteration fit
    history, which survives eviction so a resumed run can stitch a
    complete ``fit_trace``.

    Optional on-disk persistence: pass an
    :class:`repro.artifacts.ArtifactStore` (plus a ``run_key`` naming the
    run) and every save is also written through to disk — atomic renames,
    each blob carrying a content fingerprint that :meth:`load_persisted`
    re-verifies, so a torn or bit-rotted checkpoint is *skipped with a
    logged warning* (falling back to the next-newest valid one) instead of
    resuming from garbage or crashing.
    """

    _NAMESPACE = "checkpoints"

    def __init__(
        self,
        keep: int = 2,
        store: Optional[Any] = None,
        run_key: str = "default",
    ) -> None:
        if keep < 1:
            raise ConfigError("keep must be >= 1")
        self.keep = int(keep)
        self.store = store
        self.run_key = str(run_key)
        self._ckpts: "OrderedDict[int, FactorCheckpoint]" = OrderedDict()
        self.fit_history: Dict[int, float] = {}
        self.saves = 0
        self.persist_failures = 0

    def __len__(self) -> int:
        return len(self._ckpts)

    def save(
        self,
        iteration: int,
        factors: List[np.ndarray],
        weights: Optional[np.ndarray] = None,
        core: Optional[np.ndarray] = None,
        fit: float = 0.0,
    ) -> FactorCheckpoint:
        ckpt = FactorCheckpoint(
            iteration=int(iteration),
            factors=[np.array(f, dtype=np.float64, copy=True) for f in factors],
            weights=None if weights is None else np.array(weights, copy=True),
            core=None if core is None else np.array(core, copy=True),
            fit=float(fit),
        )
        self._ckpts[ckpt.iteration] = ckpt
        self._ckpts.move_to_end(ckpt.iteration)
        self.fit_history[ckpt.iteration] = ckpt.fit
        self.saves += 1
        while len(self._ckpts) > self.keep:
            self._ckpts.popitem(last=False)
        if self.store is not None:
            self._persist(ckpt)
        return ckpt

    def latest(self) -> Optional[FactorCheckpoint]:
        if not self._ckpts:
            return None
        return next(reversed(self._ckpts.values()))

    def iterations(self) -> List[int]:
        return list(self._ckpts)

    def fit_trace(self) -> List[float]:
        """Fits of every iteration ever checkpointed, in iteration order."""
        return [self.fit_history[i] for i in sorted(self.fit_history)]

    # ------------------------------------------------------------------
    # Optional on-disk persistence (via repro.artifacts.ArtifactStore)
    # ------------------------------------------------------------------
    def _ckpt_digest(self, ckpt: FactorCheckpoint) -> str:
        from repro.artifacts import fingerprint_value

        return fingerprint_value(
            ckpt.iteration, ckpt.factors, ckpt.weights, ckpt.core, ckpt.fit
        )

    def _persist(self, ckpt: FactorCheckpoint) -> None:
        payload = {"digest": self._ckpt_digest(ckpt), "checkpoint": ckpt}
        written = self.store.put(
            self._NAMESPACE, (self.run_key, ckpt.iteration), payload
        )
        if written is None:
            self.persist_failures += 1
            logger.warning(
                "checkpoint %d for run %r was not persisted",
                ckpt.iteration, self.run_key,
            )
            return
        index = sorted(
            set(self.persisted_iterations()) | {ckpt.iteration}
        )
        self.store.put(self._NAMESPACE, (self.run_key, "index"), index)

    def persisted_iterations(self) -> List[int]:
        """Iterations with an on-disk checkpoint (empty without a store)."""
        if self.store is None:
            return []
        index = self.store.load(self._NAMESPACE, (self.run_key, "index"), [])
        if not isinstance(index, list):
            logger.warning(
                "corrupt checkpoint index for run %r; ignoring", self.run_key
            )
            return []
        return sorted(int(i) for i in index)

    def load_persisted(
        self, iteration: Optional[int] = None
    ) -> Optional[FactorCheckpoint]:
        """Newest valid on-disk checkpoint (or the one at ``iteration``).

        Every candidate's content fingerprint is re-verified before it is
        returned; a corrupt or tampered blob is skipped with a warning and
        the search continues with the next-newest iteration.
        """
        if self.store is None:
            return None
        candidates = (
            [int(iteration)]
            if iteration is not None
            else list(reversed(self.persisted_iterations()))
        )
        for it in candidates:
            payload = self.store.load(self._NAMESPACE, (self.run_key, it))
            if not isinstance(payload, dict) or "checkpoint" not in payload:
                logger.warning(
                    "checkpoint %d for run %r is unreadable; skipping",
                    it, self.run_key,
                )
                continue
            ckpt = payload["checkpoint"]
            try:
                ok = payload.get("digest") == self._ckpt_digest(ckpt)
            except Exception:
                ok = False
            if not ok or ckpt.iteration != it:
                logger.warning(
                    "checkpoint %d for run %r failed fingerprint "
                    "verification; skipping", it, self.run_key,
                )
                continue
            return ckpt
        return None

    def prune(self, keep_latest: Optional[int] = None) -> int:
        """Drop all but the newest ``keep_latest`` checkpoints.

        Trims both the in-memory ring and (when a store is attached) the
        persisted blobs plus their index, so long-running fleet or
        factorization loops do not grow on-disk state without bound. Fit
        history is deliberately kept — it is tiny and ``fit_trace()``
        needs the full record. Returns the number of distinct iterations
        removed. ``keep_latest=None`` prunes to ``self.keep``.
        """
        k = self.keep if keep_latest is None else int(keep_latest)
        if k < 1:
            raise ConfigError("keep_latest must be >= 1")
        dropped = set()
        while len(self._ckpts) > k:
            it, _ = self._ckpts.popitem(last=False)
            dropped.add(it)
        if self.store is not None:
            persisted = self.persisted_iterations()
            keep_set = persisted[-k:]
            stale = [i for i in persisted if i not in keep_set]
            for it in stale:
                path = self.store.path_for(
                    self._NAMESPACE, (self.run_key, it)
                )
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
                dropped.add(it)
            if stale:
                self.store.put(
                    self._NAMESPACE, (self.run_key, "index"), keep_set
                )
        return len(dropped)

    def restore_persisted(self) -> Optional[FactorCheckpoint]:
        """Load the newest valid on-disk checkpoint into the in-memory ring
        (fit history included) and return it; ``None`` when nothing valid
        survives on disk."""
        ckpt = self.load_persisted()
        if ckpt is None:
            return None
        self._ckpts[ckpt.iteration] = ckpt
        self._ckpts.move_to_end(ckpt.iteration)
        self.fit_history[ckpt.iteration] = ckpt.fit
        while len(self._ckpts) > self.keep:
            self._ckpts.popitem(last=False)
        return ckpt
