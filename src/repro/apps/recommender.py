"""CP-decomposition recommender (the paper's Section 1 motivation).

Factorizes a (user x item x context) ratings tensor with CP-ALS — every
MTTKRP on the simulated accelerator — and serves predictions and top-K
recommendations from the factor embeddings. "Tensor factorizations provide
a faster, more interpretable, yet competitive method for producing
embeddings for recommender systems."
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.factorization.accelerated import AcceleratedRun, accelerated_cp_als
from repro.sim.accelerator import Tensaurus
from repro.tensor import SparseTensor
from repro.util.errors import KernelError, ShapeError


class CPRecommender:
    """Rank-F CP embedding model over a 3-d ratings tensor."""

    def __init__(
        self,
        rank: int = 16,
        num_iters: int = 8,
        seed: int = 0,
        accelerator: Optional[Tensaurus] = None,
    ) -> None:
        if rank <= 0:
            raise KernelError("rank must be positive")
        self.rank = rank
        self.num_iters = num_iters
        self.seed = seed
        self.accelerator = accelerator or Tensaurus()
        self._run: Optional[AcceleratedRun] = None
        self._rated: Optional[SparseTensor] = None

    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return self._run is not None

    @property
    def fit_quality(self) -> float:
        self._require_fitted()
        return self._run.decomposition.fit

    @property
    def accelerator_seconds(self) -> float:
        """Total simulated accelerator time spent fitting."""
        self._require_fitted()
        return self._run.accelerator_seconds

    def _require_fitted(self) -> None:
        if self._run is None:
            raise KernelError("fit() the model first")

    # ------------------------------------------------------------------
    def fit(self, ratings: SparseTensor) -> "CPRecommender":
        """Factorize the ratings tensor (users x items x contexts)."""
        if ratings.ndim != 3:
            raise ShapeError("ratings must be a 3-d tensor")
        self._rated = ratings
        self._run = accelerated_cp_als(
            ratings,
            rank=self.rank,
            num_iters=self.num_iters,
            seed=self.seed,
            accelerator=self.accelerator,
        )
        return self

    def predict(self, user: int, item: int, context: int) -> float:
        """Predicted rating for one (user, item, context) triple."""
        self._require_fitted()
        cp = self._run.decomposition
        u, v, w = cp.factors
        return float(np.sum(cp.weights * u[user] * v[item] * w[context]))

    def score_items(self, user: int, context: Optional[int] = None) -> np.ndarray:
        """Scores for every item; context None aggregates over contexts."""
        self._require_fitted()
        cp = self._run.decomposition
        u, v, w = cp.factors
        ctx = w.sum(axis=0) if context is None else w[context]
        return (cp.weights * u[user] * ctx) @ v.T

    def recommend(
        self,
        user: int,
        k: int = 10,
        context: Optional[int] = None,
        exclude_rated: bool = True,
    ) -> List[Tuple[int, float]]:
        """Top-``k`` (item, score) pairs for a user."""
        self._require_fitted()
        scores = self.score_items(user, context)
        if exclude_rated and self._rated is not None:
            coords = self._rated.coords
            rated_items = np.unique(coords[coords[:, 0] == user][:, 1])
            scores = scores.copy()
            scores[rated_items] = -np.inf
        top = np.argsort(scores)[::-1][:k]
        return [(int(i), float(scores[i])) for i in top if np.isfinite(scores[i])]

    def user_embedding(self, user: int) -> np.ndarray:
        """The user's latent-space coordinates."""
        self._require_fitted()
        return self._run.decomposition.factors[0][user].copy()

    def kernel_reports(self):
        """The per-MTTKRP simulator reports collected during fit()."""
        self._require_fitted()
        return list(self._run.reports)
