"""GraphSAGE-style graph learning layers on the accelerator.

The paper evaluates SpMM on GraphSAGE matrices (Table 5): graph neural
networks aggregate neighbor features with ``A_hat @ H`` — a sparse-dense
matrix product — followed by a dense transform. This module provides the
normalized-adjacency construction and a layer whose aggregation runs on
the simulated Tensaurus.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.formats.coo import COOMatrix
from repro.sim.accelerator import Tensaurus
from repro.sim.report import SimReport
from repro.util.errors import ShapeError
from repro.util.rng import make_rng


def normalize_adjacency(
    graph: COOMatrix, add_self_loops: bool = True
) -> COOMatrix:
    """Symmetric GCN normalization: ``D^-1/2 (A + I) D^-1/2``."""
    if graph.shape[0] != graph.shape[1]:
        raise ShapeError("adjacency must be square")
    n = graph.shape[0]
    rows = graph.rows
    cols = graph.cols
    vals = np.abs(graph.vals)  # edge weights must be non-negative
    if add_self_loops:
        rows = np.concatenate([rows, np.arange(n)])
        cols = np.concatenate([cols, np.arange(n)])
        vals = np.concatenate([vals, np.ones(n)])
    # Separate out-/in-degree scaling so directed graphs normalize too
    # (they coincide for symmetric adjacency, giving the usual GCN form).
    out_deg = np.bincount(rows, weights=vals, minlength=n)
    in_deg = np.bincount(cols, weights=vals, minlength=n)

    def inv_sqrt(deg: np.ndarray) -> np.ndarray:
        out = np.zeros(n)
        positive = deg > 0
        out[positive] = 1.0 / np.sqrt(deg[positive])
        return out

    normalized = inv_sqrt(out_deg)[rows] * vals * inv_sqrt(in_deg)[cols]
    return COOMatrix((n, n), rows, cols, normalized)


class GraphSAGELayer:
    """One aggregation + transform layer: ``relu(A_hat @ H @ W)``.

    The sparse aggregation executes on the simulated accelerator; the dense
    ``W`` product stays on the host (as GNN frameworks do for the small
    dense GEMM).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        seed: int = 0,
        activation: str = "relu",
        accelerator: Optional[Tensaurus] = None,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ShapeError("feature widths must be positive")
        if activation not in ("relu", "none"):
            raise ShapeError(f"unknown activation {activation!r}")
        rng = make_rng(seed)
        scale = np.sqrt(2.0 / in_features)
        self.weight = rng.standard_normal((in_features, out_features)) * scale
        self.activation = activation
        self.accelerator = accelerator or Tensaurus()
        self.last_report: Optional[SimReport] = None

    def forward(self, adjacency: COOMatrix, features: np.ndarray) -> np.ndarray:
        """One layer pass; keeps the aggregation's SimReport."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ShapeError("features must be (nodes, in_features)")
        if features.shape[0] != adjacency.shape[1]:
            raise ShapeError("adjacency and features disagree on node count")
        if features.shape[1] != self.weight.shape[0]:
            raise ShapeError("features and weight disagree on width")
        report = self.accelerator.run_spmm(adjacency, features)
        self.last_report = report
        out = report.output @ self.weight
        if self.activation == "relu":
            out = np.maximum(out, 0.0)
        return out

    __call__ = forward


class GraphSAGEModel:
    """A stack of GraphSAGE layers sharing one accelerator."""

    def __init__(
        self,
        widths: List[int],
        seed: int = 0,
        accelerator: Optional[Tensaurus] = None,
    ) -> None:
        if len(widths) < 2:
            raise ShapeError("need at least input and output widths")
        acc = accelerator or Tensaurus()
        self.layers = [
            GraphSAGELayer(
                widths[i], widths[i + 1], seed=seed + i,
                activation="relu" if i < len(widths) - 2 else "none",
                accelerator=acc,
            )
            for i in range(len(widths) - 1)
        ]

    def forward(self, adjacency: COOMatrix, features: np.ndarray) -> np.ndarray:
        h = features
        for layer in self.layers:
            h = layer(adjacency, h)
        return h

    __call__ = forward

    @property
    def accelerator_seconds(self) -> float:
        return sum(
            layer.last_report.time_s
            for layer in self.layers
            if layer.last_report is not None
        )
