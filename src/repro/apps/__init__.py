"""Application-level workloads built on the accelerated kernels.

The paper motivates Tensaurus with three application families
(Section 1/2): recommender-system embeddings via tensor factorization,
graph learning via SpMM, and pruned-CNN inference via SpMM/SpMV. This
package implements each as a small, tested library component whose linear
algebra runs through the simulated accelerator, so downstream users get
working end-to-end pipelines rather than just kernels.
"""

from repro.apps.recommender import CPRecommender
from repro.apps.graphsage import GraphSAGELayer, GraphSAGEModel, normalize_adjacency
from repro.apps.cnn import (
    SparseLinear,
    SparseConvLayer,
    SparseMLP,
    prune_by_magnitude,
)

__all__ = [
    "CPRecommender",
    "GraphSAGELayer",
    "GraphSAGEModel",
    "normalize_adjacency",
    "SparseLinear",
    "SparseConvLayer",
    "SparseMLP",
    "prune_by_magnitude",
]
