"""Pruned-CNN inference layers on the accelerator (the Fig. 10 workload).

Magnitude-pruned networks (Han et al., the paper's Table 4 source) leave
sparse weight matrices; convolution becomes SpMM against im2col'd
activations and fully-connected layers become SpMV. These classes wrap the
simulated accelerator behind a layer API, including the pruning step
itself, so a full sparse-inference pipeline is testable end to end.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.formats.coo import COOMatrix
from repro.sim.accelerator import Tensaurus
from repro.sim.report import SimReport
from repro.util.errors import ShapeError


def prune_by_magnitude(weights: np.ndarray, density: float) -> COOMatrix:
    """Keep the largest-magnitude fraction ``density`` of the weights."""
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2:
        raise ShapeError("weights must be 2-d")
    if not 0.0 < density <= 1.0:
        raise ShapeError("density must be in (0, 1]")
    keep = max(1, int(round(weights.size * density)))
    threshold = np.partition(np.abs(weights).ravel(), -keep)[-keep]
    mask = np.abs(weights) >= threshold
    return COOMatrix.from_dense(weights * mask)


class SparseLinear:
    """A pruned fully-connected layer: SpMV per input vector."""

    def __init__(
        self,
        weights: np.ndarray,
        density: float,
        accelerator: Optional[Tensaurus] = None,
    ) -> None:
        self.weights = prune_by_magnitude(weights, density)
        self.accelerator = accelerator or Tensaurus()
        self.last_report: Optional[SimReport] = None

    @property
    def density(self) -> float:
        return self.weights.density

    def forward(self, activations: np.ndarray) -> np.ndarray:
        activations = np.asarray(activations, dtype=np.float64)
        if activations.ndim != 1:
            raise ShapeError("SparseLinear takes a vector of activations")
        if activations.shape[0] != self.weights.shape[1]:
            raise ShapeError("activation width mismatch")
        report = self.accelerator.run_spmv(self.weights, activations)
        self.last_report = report
        return report.output

    __call__ = forward


class SparseConvLayer:
    """A pruned convolution layer in im2col form: SpMM per batch.

    ``weights`` is the (out_channels, in_channels*kh*kw) kernel matrix; the
    caller supplies im2col'd activations (in_channels*kh*kw, pixels).
    """

    def __init__(
        self,
        weights: np.ndarray,
        density: float,
        accelerator: Optional[Tensaurus] = None,
    ) -> None:
        self.weights = prune_by_magnitude(weights, density)
        self.accelerator = accelerator or Tensaurus()
        self.last_report: Optional[SimReport] = None

    @property
    def density(self) -> float:
        return self.weights.density

    def forward(self, columns: np.ndarray) -> np.ndarray:
        columns = np.asarray(columns, dtype=np.float64)
        if columns.ndim != 2:
            raise ShapeError("SparseConvLayer takes an im2col matrix")
        if columns.shape[0] != self.weights.shape[1]:
            raise ShapeError("im2col height mismatch")
        report = self.accelerator.run_spmm(self.weights, columns)
        self.last_report = report
        return np.maximum(report.output, 0.0)

    __call__ = forward


class SparseMLP:
    """A stack of pruned fully-connected layers with ReLU between them."""

    def __init__(
        self,
        weight_list: List[np.ndarray],
        density: float,
        accelerator: Optional[Tensaurus] = None,
    ) -> None:
        if not weight_list:
            raise ShapeError("need at least one layer")
        acc = accelerator or Tensaurus()
        self.layers = [SparseLinear(w, density, acc) for w in weight_list]
        for prev, nxt in zip(self.layers, self.layers[1:]):
            if nxt.weights.shape[1] != prev.weights.shape[0]:
                raise ShapeError("layer widths do not chain")

    def forward(self, activations: np.ndarray) -> np.ndarray:
        h = np.asarray(activations, dtype=np.float64)
        for i, layer in enumerate(self.layers):
            h = layer(h)
            if i < len(self.layers) - 1:
                h = np.maximum(h, 0.0)
        return h

    __call__ = forward

    @property
    def accelerator_seconds(self) -> float:
        return sum(
            layer.last_report.time_s
            for layer in self.layers
            if layer.last_report is not None
        )

    @property
    def total_ops(self) -> int:
        return sum(
            layer.last_report.ops
            for layer in self.layers
            if layer.last_report is not None
        )
