"""Batched CISS tile pipeline: segmented lane analysis and encoding reuse.

The per-tile simulation path materializes one ``SparseTensor``/``COOMatrix``
slice per nonempty tile, CISS-encodes it and runs
:func:`repro.sim.lanes.analyze_lanes` on the resulting record planes — a
Python loop whose cost dwarfs the arithmetic it models. This module computes
the *same* per-tile :class:`~repro.sim.lanes.LaneStats` quantities for every
tile at once from the tile-sorted coordinate stream:

- :class:`TensorTilePartition` / :class:`MatrixTilePartition` compute tile
  ids eagerly (cheap, needed by the MSU-mode traffic estimates) and the
  tile-sorted order, tile boundaries and group structure lazily (needed only
  by the run that actually executes).
- :func:`analyze_tile_stream` replays the CISS scheduler's least-loaded
  greedy deal once over all groups and derives per-tile per-lane record
  counts, stream depths, fiber/slice structure, op counts and SPM
  bank-conflict stalls with ``np.bincount`` / ``np.add.reduceat`` segment
  reductions. The result is bit-identical to encoding each tile with
  :class:`repro.formats.CISSTensor` and analyzing it separately (asserted by
  the test suite against both the vectorized analyzer and the exact
  :mod:`repro.sim.pe` interpreter).
- :class:`EncodingCache` is an LRU memo keyed by ``(operand fingerprint,
  mode, tiling geometry, lanes, cost table)`` so repeated invocations —
  the three MTTKRPs per CP-ALS iteration, the two ``_resolve_msu_mode``
  candidate plans, design-space sweeps and benchmark reruns — reuse tile
  partitions and lane statistics instead of re-running lexsorts and the
  greedy deal.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro import obs
from repro.formats.ciss import least_loaded_deal
from repro.sim.costs import KernelCosts
from repro.sim.lanes import lane_cycle_model, op_count_model
from repro.sim.tiling import tile_count

__all__ = [
    "BatchTileStats",
    "EncodingCache",
    "MatrixTilePartition",
    "TensorTilePartition",
    "analyze_tile_stream",
    "fingerprint_arrays",
]


# ----------------------------------------------------------------------
# Operand fingerprints
# ----------------------------------------------------------------------
def fingerprint_arrays(*arrays: np.ndarray) -> bytes:
    """Content digest of one or more arrays (shape- and dtype-aware).

    Used as the operand component of :class:`EncodingCache` keys: two
    operands with equal fingerprints tile and encode identically.
    """
    h = hashlib.blake2b(digest_size=16)
    for a in arrays:
        a = np.ascontiguousarray(a)
        h.update(str(a.dtype).encode())
        h.update(np.array(a.shape, dtype=np.int64).tobytes())
        h.update(a.tobytes())
    return h.digest()


# ----------------------------------------------------------------------
# Tile partitions
# ----------------------------------------------------------------------
class TensorTilePartition:
    """Tile decomposition of a (permuted) sparse 3-d coordinate stream.

    Tile ids are computed eagerly — the MSU-mode traffic estimates only
    need unique-tile counts — while the tile-sorted order, boundaries and
    slice-group structure are computed lazily, once, when the run needs
    them. The sort and grouping match the legacy per-tile path exactly.
    """

    def __init__(
        self,
        coords: np.ndarray,
        dims: Tuple[int, int, int],
        i_tile: int,
        j_tile: int,
        k_tile: int,
    ) -> None:
        self.coords = coords
        self.dims = tuple(int(d) for d in dims)
        self.i_tile = int(i_tile)
        self.j_tile = int(j_tile)
        self.k_tile = int(k_tile)
        self.nj = tile_count(self.dims[1], self.j_tile)
        self.nk = tile_count(self.dims[2], self.k_tile)
        ib = coords[:, 0] // self.i_tile
        jb = coords[:, 1] // self.j_tile
        kb = coords[:, 2] // self.k_tile
        self.tid = (ib * self.nj + jb) * self.nk + kb

    @property
    def nnz(self) -> int:
        return int(self.coords.shape[0])

    @cached_property
    def num_tiles(self) -> int:
        """Number of nonempty tiles (cheap: no sort of the full stream)."""
        return int(np.unique(self.tid).shape[0])

    @cached_property
    def slice_visits(self) -> int:
        """Nonempty (tile, output-slice) pairs — direct-mode RMW visits."""
        return int(
            np.unique(self.tid * (self.dims[0] + 1) + self.coords[:, 0]).shape[0]
        )

    @cached_property
    def _sorted(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        coords, tid = self.coords, self.tid
        order = np.lexsort((coords[:, 2], coords[:, 1], coords[:, 0], tid))
        coords_s = coords[order]
        uniq, first = np.unique(tid[order], return_index=True)
        bounds = np.append(first, coords.shape[0])
        return order, coords_s, uniq, bounds

    @property
    def order(self) -> np.ndarray:
        """Tile-major record permutation (ties in canonical coord order)."""
        return self._sorted[0]

    @property
    def coords_s(self) -> np.ndarray:
        return self._sorted[1]

    @property
    def uniq(self) -> np.ndarray:
        """Nonempty tile ids in increasing order."""
        return self._sorted[2]

    @property
    def bounds(self) -> np.ndarray:
        """Record ranges: tile ``g`` spans ``bounds[g]:bounds[g+1]``."""
        return self._sorted[3]

    def stream_columns(self) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """(slice, a, k) columns of the tile-sorted record stream."""
        cs = self.coords_s
        return cs[:, 0], cs[:, 1], cs[:, 2]


class MatrixTilePartition:
    """Tile decomposition of a sparse matrix triplet stream (rows as slices)."""

    def __init__(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        dims: Tuple[int, int],
        i_tile: int,
        j_tile: int,
    ) -> None:
        self.rows = rows
        self.cols = cols
        self.dims = (int(dims[0]), int(dims[1]))
        self.i_tile = int(i_tile)
        self.j_tile = int(j_tile)
        self.nj = tile_count(self.dims[1], self.j_tile)
        self.tid = (rows // self.i_tile) * self.nj + (cols // self.j_tile)

    @property
    def nnz(self) -> int:
        return int(self.rows.shape[0])

    @cached_property
    def num_tiles(self) -> int:
        return int(np.unique(self.tid).shape[0])

    @cached_property
    def slice_visits(self) -> int:
        return int(np.unique(self.tid * (self.dims[0] + 1) + self.rows).shape[0])

    @cached_property
    def _sorted(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        order = np.lexsort((self.cols, self.rows, self.tid))
        rows_s = self.rows[order]
        cols_s = self.cols[order]
        uniq, first = np.unique(self.tid[order], return_index=True)
        bounds = np.append(first, self.rows.shape[0])
        return order, rows_s, cols_s, uniq, bounds

    @property
    def order(self) -> np.ndarray:
        return self._sorted[0]

    @property
    def rows_s(self) -> np.ndarray:
        return self._sorted[1]

    @property
    def cols_s(self) -> np.ndarray:
        return self._sorted[2]

    @property
    def uniq(self) -> np.ndarray:
        return self._sorted[3]

    @property
    def bounds(self) -> np.ndarray:
        return self._sorted[4]

    def stream_columns(self) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """(row, a, k) columns of the tile-sorted record stream (no k)."""
        return self.rows_s, self.cols_s, None


# ----------------------------------------------------------------------
# Segmented lane analysis
# ----------------------------------------------------------------------
@dataclass
class BatchTileStats:
    """Per-tile :class:`~repro.sim.lanes.LaneStats` quantities, as arrays.

    ``lane_cycles`` is ``(num_tiles, num_lanes)``; every other field is a
    length-``num_tiles`` int64 vector. ``compute_cycles`` already folds the
    conflict stalls in (slowest lane + serialization), exactly like
    ``LaneStats.compute_cycles``.
    """

    lane_cycles: np.ndarray
    compute_cycles: np.ndarray
    conflict_stalls: np.ndarray
    num_nnz: np.ndarray
    num_headers: np.ndarray
    num_fibers: np.ndarray
    num_entries: np.ndarray
    ops: np.ndarray

    @property
    def num_tiles(self) -> int:
        return int(self.num_entries.shape[0])


def _empty_stats(num_lanes: int) -> BatchTileStats:
    z = np.zeros(0, dtype=np.int64)
    return BatchTileStats(
        lane_cycles=np.zeros((0, max(num_lanes, 1)), dtype=np.int64),
        compute_cycles=z,
        conflict_stalls=z.copy(),
        num_nnz=z.copy(),
        num_headers=z.copy(),
        num_fibers=z.copy(),
        num_entries=z.copy(),
        ops=z.copy(),
    )


def _greedy_lane_deal(
    g_sizes: np.ndarray, tg_start: np.ndarray, num_lanes: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Replay the CISS least-loaded greedy scheduler over all tiles.

    Groups arrive tile-major in increasing slice order — the order
    ``CISSTensor.from_sparse`` deals them — and lane loads reset at each
    tile boundary (``tg_start`` marks each tile's first group). Returns
    each group's lane and its start offset (the header slot) within that
    lane's stream. Ties break to the lowest lane index, matching
    ``repro.formats.ciss._schedule_groups``.

    The deal is sequential *within* a tile but independent *across* tiles,
    so the wide-fan-out case — many tiles, few groups each — steps over
    group ranks and assigns rank ``p`` for every tile in one vectorized
    argmin. Skewed partitions (a few tiles owning most groups) fall back
    to a tight scalar loop; both produce identical assignments.
    """
    num_groups = int(g_sizes.shape[0])
    num_tiles = int(tg_start.shape[0])
    g_lane = np.empty(num_groups, dtype=np.int64)
    g_off = np.empty(num_groups, dtype=np.int64)
    if num_groups == 0:
        return g_lane, g_off
    counts = np.diff(np.append(tg_start, num_groups))
    max_rank = int(counts.max())
    cost = 1 + g_sizes
    if max_rank * 16 <= num_groups:
        # Rank-stepped vectorized deal: at step p every tile that still
        # has a p-th group assigns it to its current least-loaded lane.
        loads = np.zeros((num_tiles, num_lanes), dtype=np.int64)
        active = np.arange(num_tiles)
        starts = tg_start.copy()
        for p in range(max_rank):
            alive = counts[active] > p
            if not alive.all():
                active = active[alive]
                starts = starts[alive]
            gidx = starts + p
            sub = loads[active]
            lanes = np.argmin(sub, axis=1)
            offs = sub[np.arange(active.shape[0]), lanes]
            g_lane[gidx] = lanes
            g_off[gidx] = offs
            loads[active, lanes] = offs + cost[gidx]
        return g_lane, g_off
    # Skewed partition: run the shared exact heap deal per tile segment
    # (loads reset at each tile boundary).
    ends = np.append(tg_start[1:], num_groups)
    for lo, hi in zip(tg_start.tolist(), ends.tolist()):
        if lo == hi:
            continue
        g_lane[lo:hi], g_off[lo:hi] = least_loaded_deal(cost[lo:hi], num_lanes)
    return g_lane, g_off


def analyze_tile_stream(
    slice_col: np.ndarray,
    a_col: np.ndarray,
    k_col: Optional[np.ndarray],
    bounds: np.ndarray,
    costs: KernelCosts,
    num_lanes: int,
    spm_banks: int,
) -> BatchTileStats:
    """Segmented lane analysis of a tile-sorted record stream.

    ``slice_col`` / ``a_col`` / ``k_col`` are the slice (or row), mode-1
    (or column) and mode-2 index columns of the records in tile-major,
    canonical order; tile ``g`` spans ``bounds[g]:bounds[g+1]``. The
    returned per-tile statistics equal, field for field, what
    ``analyze_lanes`` reports on each tile's own CISS encoding.
    """
    n = int(slice_col.shape[0])
    num_tiles = int(bounds.shape[0]) - 1
    if n == 0 or num_tiles <= 0:
        return _empty_stats(num_lanes)

    tile_sizes = np.diff(bounds)
    rec_tile = np.repeat(np.arange(num_tiles, dtype=np.int64), tile_sizes)

    # Slice/row groups: maximal runs of records sharing (tile, slice).
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    np.logical_or(
        rec_tile[1:] != rec_tile[:-1],
        slice_col[1:] != slice_col[:-1],
        out=new_group[1:],
    )
    g_start = np.flatnonzero(new_group)
    g_sizes = np.diff(np.append(g_start, n))
    g_tile = rec_tile[g_start]
    rec_group = np.cumsum(new_group) - 1

    tg_start = np.flatnonzero(np.r_[True, g_tile[1:] != g_tile[:-1]])
    g_lane, g_off = _greedy_lane_deal(g_sizes, tg_start, num_lanes)

    # Stream depth per tile: the deepest lane (header + nonzero slots).
    g_end = g_off + 1 + g_sizes
    depth = np.maximum.reduceat(g_end, tg_start)

    # Per-(tile, lane) record counts via segment bincounts.
    key_g = g_tile * num_lanes + g_lane
    size_tl = num_tiles * num_lanes
    headers_tl = np.bincount(key_g, minlength=size_tl)
    nnz_tl = np.bincount(key_g, weights=g_sizes, minlength=size_tl).astype(np.int64)

    if costs.uses_fibers:
        # A fiber ends at the last record of its group or at a mode-1
        # index change (the stream is sorted by (slice, a, k) per tile).
        fiber_end = np.empty(n, dtype=bool)
        fiber_end[-1] = True
        np.logical_or(
            rec_group[1:] != rec_group[:-1],
            a_col[1:] != a_col[:-1],
            out=fiber_end[:-1],
        )
        fibers_tl = np.bincount(
            key_g[rec_group[fiber_end]], minlength=size_tl
        )
    else:
        fibers_tl = np.zeros(size_tl, dtype=np.int64)

    # Each (nonempty) group drains exactly once: slice ends == headers.
    lane_cycles = lane_cycle_model(
        costs, nnz_tl, headers_tl, fibers_tl, headers_tl
    ).astype(np.int64).reshape(num_tiles, num_lanes)

    # SPM bank conflicts: simultaneous nonzero records in one stream entry
    # whose bank indices collide serialize through the crossbar.
    conflicts = np.zeros(num_tiles, dtype=np.int64)
    if not costs.dense and spm_banks >= 1 and num_lanes > 1:
        bank_src = k_col if costs.bank_key == "k" and k_col is not None else a_col
        bank = bank_src % spm_banks
        rec_pos = g_off[rec_group] + 1 + (np.arange(n, dtype=np.int64) - g_start[rec_group])
        ent_off = np.concatenate(([0], np.cumsum(depth)))
        total_entries = int(ent_off[-1])
        gpos = ent_off[rec_tile] + rec_pos
        occupancy = np.bincount(
            gpos * spm_banks + bank, minlength=total_entries * spm_banks
        ).reshape(total_entries, spm_banks)
        worst = occupancy.max(axis=1)
        stalls = np.clip(worst - 1, 0, None)
        conflicts = np.add.reduceat(stalls, ent_off[:-1]).astype(np.int64)

    nnz_t = nnz_tl.reshape(num_tiles, num_lanes).sum(axis=1)
    headers_t = headers_tl.reshape(num_tiles, num_lanes).sum(axis=1)
    fibers_t = fibers_tl.reshape(num_tiles, num_lanes).sum(axis=1)
    ops = op_count_model(costs, nnz_t, fibers_t)
    return BatchTileStats(
        lane_cycles=lane_cycles,
        compute_cycles=lane_cycles.max(axis=1) + conflicts,
        conflict_stalls=conflicts,
        num_nnz=nnz_t,
        num_headers=headers_t,
        num_fibers=fibers_t if costs.uses_fibers else np.zeros_like(fibers_t),
        num_entries=depth.astype(np.int64),
        ops=ops.astype(np.int64),
    )


# ----------------------------------------------------------------------
# Encoding cache
# ----------------------------------------------------------------------
class EncodingCache:
    """LRU memo for tile partitions and batched lane statistics.

    Keys are hashable tuples whose leading element namespaces the entry
    kind (``"tensor-partition"``, ``"matrix-partition"``, ``"tile-stats"``,
    ``"perm-coords"``); the operand component is a content fingerprint from
    :func:`fingerprint_arrays`, so a structurally different operand can
    never alias a stale entry. ``max_entries == 0`` disables caching.
    """

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        self.max_entries = int(max_entries)
        self._data: "OrderedDict[tuple, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    def get(self, key: tuple, builder: Callable[[], object]) -> object:
        """Return the cached value for ``key``, building it on a miss."""
        if not self.enabled:
            self.misses += 1
            self._observe("miss")
            return builder()
        if key in self._data:
            self.hits += 1
            self._observe("hit")
            self._data.move_to_end(key)
            return self._data[key]
        self.misses += 1
        self._observe("miss")
        value = builder()
        self._data[key] = value
        while len(self._data) > self.max_entries:
            self._data.popitem(last=False)
        return value

    @staticmethod
    def _observe(event: str) -> None:
        """Mirror a hit/miss into the active metrics registry (a few
        lookups per launch, so per-event cost is irrelevant)."""
        reg = obs.metrics()
        if reg.enabled:
            reg.counter(
                "cache.encoding", "encoding-cache lookups", ("event",)
            ).labels(event=event).inc()

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def reset_stats(self) -> None:
        """Zero the hit/miss counters without evicting resident entries,
        so per-run cache deltas don't inherit unrelated history."""
        self.hits = 0
        self.misses = 0

    def info(self) -> Dict[str, int]:
        """Counters for telemetry: hits, misses and resident entries."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._data),
            "max_entries": self.max_entries,
        }
