"""Simulator engine seam: fast (vectorized), legacy (interpreter), jit.

Mirrors the encoder seam in :mod:`repro.formats.ciss`: the simulator hot
loops — the per-record PE lane walk (:mod:`repro.sim.pe`), the
cycle-stepped event engine (:mod:`repro.sim.event`) and the HBM burst
service loop (:mod:`repro.sim.memory`) — each carry an ``engine=``
parameter that defaults to the process-wide engine selected here.

Engines
-------
``"legacy"``
    The original pure-Python loops. Ground truth; always available.
``"fast"``
    Batched numpy paths over the same record streams. Bit-identical to
    legacy by construction (ordered segmented accumulation, identical
    float expression trees) — enforced by ``tests/test_sim_fastpath.py``.
``"jit"``
    Numba-compiled timing kernels behind the same call signatures. Lazy
    import: when numba is not installed the first use warns once and the
    call silently degrades to ``"fast"`` (still bit-identical), so
    ``REPRO_SIM_ENGINE=jit`` is safe on machines without the ``[jit]``
    extra.

The default comes from the ``REPRO_SIM_ENGINE`` environment variable
(validated at import) and can be changed per-process with
:func:`set_sim_engine` or per-call with ``engine="..."``.
"""

from __future__ import annotations

import os
from typing import Optional

from repro import obs

_SIM_ENGINES = ("fast", "legacy", "jit")
_default_engine = os.environ.get("REPRO_SIM_ENGINE", "fast")
if _default_engine not in _SIM_ENGINES:
    raise ValueError(
        f"REPRO_SIM_ENGINE must be one of {_SIM_ENGINES}, not {_default_engine!r}"
    )

logger = obs.get_logger(__name__)


def default_sim_engine() -> str:
    """The engine used when a simulator entry point gets ``engine=None``."""
    return _default_engine


def set_sim_engine(engine: str) -> str:
    """Select the process-wide default simulator engine; returns the previous one."""
    global _default_engine
    if engine not in _SIM_ENGINES:
        raise ValueError(f"engine must be one of {_SIM_ENGINES}, not {engine!r}")
    previous = _default_engine
    _default_engine = engine
    return previous


def resolve_sim_engine(engine: Optional[str]) -> str:
    """Validate/default an ``engine=`` argument (shared by all sim hot loops).

    ``"jit"`` resolves to itself only when numba imports; otherwise it
    degrades to ``"fast"`` after a once-per-process warning.
    """
    if engine is None:
        engine = _default_engine
    if engine not in _SIM_ENGINES:
        raise ValueError(f"engine must be one of {_SIM_ENGINES}, not {engine!r}")
    if engine == "jit" and not jit_available():
        _warn_jit_missing()
        return "fast"
    return engine


# ----------------------------------------------------------------------
# Lazy numba accessor. Import cost is paid once, on first jit use, and a
# missing module is remembered so the fallback is free afterwards.
_numba = None
_numba_checked = False
_jit_warned = False


def jit_available() -> bool:
    """True when numba imports (the ``[jit]`` extra is installed)."""
    global _numba, _numba_checked
    if not _numba_checked:
        _numba_checked = True
        try:
            import numba  # noqa: F401  (deliberate lazy optional import)

            _numba = numba
        except Exception:  # pragma: no cover - environment dependent
            _numba = None
    return _numba is not None


def get_numba():
    """The numba module, or None when the extra is not installed."""
    jit_available()
    return _numba


def _warn_jit_missing() -> None:
    global _jit_warned
    if not _jit_warned:
        _jit_warned = True
        logger.warning(
            "engine='jit' requested but numba is not installed; falling "
            "back to engine='fast' (install the [jit] extra to enable it)"
        )
