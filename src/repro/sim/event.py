"""Event-driven microarchitecture simulator (the gem5-fidelity engine).

The vectorized engine (:mod:`repro.sim.lanes`) computes timing from record
counts; this module instead *advances clock cycles* through communicating
components, the way the paper's gem5 model does:

- a **TLU** that issues one CISS entry per cycle (bandwidth permitting)
  into per-lane record queues, stalling on back-pressure;
- per-lane **PE row** state machines that fetch fiber rows from the SPM,
  spend a MAC cycle per record, fold fibers into the OSR and drain slices;
- a banked **SPM arbiter** granting at most one request per bank per cycle
  (bank conflicts serialize *structurally*, not statistically);
- an **MSU** accepting one drain per cycle.

Because stalls emerge from component interaction rather than closed-form
counts, this engine is the fidelity reference: the test suite checks that
(a) its functional output equals the reference kernels, (b) in conflict-free
configurations its cycle count matches the analytical lane model exactly,
and (c) with conflicts it stays within a tight band of the vectorized
engine. It is intended for tiles up to ~100K nonzeros (it steps every
cycle in Python); the production engines handle the benchmark scale.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.formats.ciss import KIND_HEADER, KIND_NNZ, KIND_PAD
from repro.sim.config import TensaurusConfig
from repro.sim.costs import KernelCosts
from repro.sim.engine import resolve_sim_engine
from repro.sim.faults import HBM_STALL, MAX_EVENTS_PER_RUN, FaultEvent, FaultPlan
from repro.sim.pe import lane_pass_arrays
from repro.util.errors import SimulationError

#: PE row states.
_IDLE = "idle"
_WAIT_FETCH = "wait_fetch"  # waiting for an SPM bank grant (fiber0 row)
_MAC = "mac"  # executing the VVMUL/VVADD of a record
_WAIT_FOLD_FETCH = "wait_fold_fetch"  # waiting for the fiber1 row grant
_FOLD = "fold"  # folding TSR into OSR
_HEADER = "header"  # decoding a slice header
_DRAIN = "drain"  # shifting the OSR out to the MSU


@dataclass
class _Record:
    kind: int
    a: int
    k: int
    val: float


@dataclass
class _RowState:
    """One PE row's architectural state."""

    queue: Deque[_Record] = field(default_factory=deque)
    exhausted: bool = False  # TLU has no more records for this lane
    state: str = _IDLE
    busy: int = 0  # cycles remaining in the current state
    current: Optional[_Record] = None
    cur_slice: int = -1
    cur_j: int = -1
    tsr: Optional[np.ndarray] = None
    osr: Optional[np.ndarray] = None
    pending_fold_then: Optional[str] = None  # state to enter after a fold
    cycles_busy: int = 0
    stall_cycles: int = 0

    def done(self) -> bool:
        return (
            self.exhausted
            and not self.queue
            and self.state == _IDLE
            and self.tsr is None
            and self.osr is None
        )


@dataclass
class EventSimResult:
    """Outcome of one event-driven tile execution."""

    cycles: int
    ops: int
    output: np.ndarray
    bank_conflict_stalls: int
    msu_stalls: int
    tlu_stall_cycles: int
    lane_busy_cycles: np.ndarray
    #: cycles the TLU sat idle on injected HBM channel stalls (fault layer).
    injected_stall_cycles: int = 0
    fault_events: List[FaultEvent] = field(default_factory=list)


# ----------------------------------------------------------------------
# Specialized timing loops for the fast engine. The per-cycle state
# machine is the legacy one verbatim; the specialization only unrolls the
# lane loop into local variables (no per-cycle list subscripts) and drops
# the fault/micro-trace branches when a run cannot take them. Compiled
# once per (lanes, fibers, stalls, micro) shape and cached for the
# process. Integer state codes: 0=IDLE 1=WF 2=MAC 3=WFF 4=FOLD 5=HEADER
# 6=DRAIN (WF/WFF = waiting on an SPM fetch/fold-fetch grant).
_TIMING_LOOP_CACHE: Dict[Tuple[int, bool, bool, bool], object] = {}


def _gen_timing_source(
    lanes: int, fibers: bool, stalls: bool, micro: bool
) -> str:
    lines: List[str] = []

    def w(level: int, text: str) -> None:
        lines.append("    " * level + text)

    R = range(lanes)

    def retire(level: int, i: int) -> None:
        # Architectural effects when lane i's multi-cycle state ends.
        if fibers:
            w(level, f"if st_{i} == 2:")
            w(level + 1, f"tsr_{i} = True")
            w(level, f"elif st_{i} == 4:")
            w(level + 1, f"osr_{i} = True")
            w(level + 1, f"tsr_{i} = False")
        else:
            w(level, f"if st_{i} == 2:")
            w(level + 1, f"osr_{i} = True")
        w(level, f"st_{i} = 0")

    full_chain = " or ".join(f"tail_{i} - head_{i} >= depth" for i in R)
    if fibers:
        done_chain = " and ".join(
            f"tail_{i} == head_{i} and st_{i} == 0"
            f" and not tsr_{i} and not osr_{i}"
            for i in R
        )
        inert = "(exhausted and (tsr_{i} or osr_{i}))"
    else:
        done_chain = " and ".join(
            f"tail_{i} == head_{i} and st_{i} == 0 and not osr_{i}"
            for i in R
        )
        inert = "(exhausted and osr_{i})"
    cbs = "".join(f"cb_{i}, " for i in R)

    w(0, "def _loop(pc_rows, lks, lss, lbs, stall_flags, entries, depth,")
    w(0, "          banks, nnz_c, fold_c, drain_c, header_c, stall_each,")
    w(0, "          max_cycles, kh, stall_events, micro_issues, max_events):")
    for i in R:
        w(1, f"lk_{i} = lks[{i}]")
        if fibers:
            w(1, f"ls_{i} = lss[{i}]")
        w(1, f"lb_{i} = lbs[{i}]")
        w(1, f"st_{i} = 0")
        w(1, f"busy_{i} = 0")
        if fibers:
            w(1, f"curj_{i} = -1")
            w(1, f"tsr_{i} = False")
        w(1, f"curb_{i} = 0")
        w(1, f"osr_{i} = False")
        w(1, f"head_{i} = 0")
        w(1, f"tail_{i} = 0")
        w(1, f"cb_{i} = 0")
    w(1, "claim = [-1] * banks")
    w(1, "exhausted = False")
    w(1, "next_entry = 0")
    if stalls:
        w(1, "stall_remaining = 0")
        w(1, "n_events = 0")
    w(1, "injected = 0")
    w(1, "bank_stalls = 0")
    w(1, "msu_stalls = 0")
    w(1, "tlu_stalls = 0")
    w(1, "cycle = 0")
    fail = (
        "return (0, cycle, bank_stalls, msu_stalls, tlu_stalls,"
        f" injected, ({cbs}))"
    )
    w(1, "while 1:")
    # --- Cycle skip gate: lane scan first (short-circuits on the first
    # dispatchable lane), then the TLU-blocked refinement.
    w(2, "delta = max_cycles + 1 - cycle")
    w(2, "while 1:")
    for i in R:
        w(3, f"if busy_{i} > 0:")
        w(4, f"if busy_{i} < delta:")
        w(5, f"delta = busy_{i}")
        w(3, f"elif st_{i} != 0 or tail_{i} != head_{i} or "
             + inert.format(i=i) + ":")
        w(4, "delta = 0")
        w(4, "break")
    w(3, "break")
    w(2, "if delta > 1:")
    w(3, "if next_entry < entries:")
    if stalls:
        w(4, "if stall_flags[next_entry]:")
        w(5, "delta = 0")
        w(4, "elif stall_remaining > 0:")
        w(5, "if stall_remaining < delta:")
        w(6, "delta = stall_remaining")
        w(4, f"elif not ({full_chain}):")
        w(5, "delta = 0")
    else:
        w(4, f"if not ({full_chain}):")
        w(5, "delta = 0")
    w(3, "elif not exhausted:")
    w(4, "delta = 0")
    w(2, "if delta > 1:")
    if stalls:
        w(3, "if stall_remaining > 0:")
        w(4, "stall_remaining -= delta")
        w(4, "injected += delta")
        w(3, "elif next_entry < entries:")
        w(4, "tlu_stalls += delta")
    else:
        w(3, "if next_entry < entries:")
        w(4, "tlu_stalls += delta")
    for i in R:
        w(3, f"if busy_{i} > 0:")
        w(4, f"cb_{i} += delta")
        w(4, f"if busy_{i} == delta:")
        retire(5, i)
        w(5, f"busy_{i} = 0")
        w(4, "else:")
        w(5, f"busy_{i} -= delta")
    w(3, "cycle += delta")
    w(3, f"if next_entry >= entries and exhausted and ({done_chain}):")
    w(4, "break")
    w(3, "if cycle > max_cycles:")
    w(4, fail)
    w(3, "continue")
    # --- TLU: push the next entry if every lane queue has space.
    w(2, "if next_entry < entries:")
    if stalls:
        w(3, "if stall_flags[next_entry]:")
        w(4, "stall_flags[next_entry] = False")
        w(4, "stall_remaining += stall_each")
        w(4, "if n_events < max_events:")
        w(5, "stall_events.append(next_entry)")
        w(5, "n_events += 1")
        w(3, "if stall_remaining > 0:")
        w(4, "stall_remaining -= 1")
        w(4, "injected += 1")
        w(3, f"elif {full_chain}:")
        w(4, "tlu_stalls += 1")
    else:
        w(3, f"if {full_chain}:")
        w(4, "tlu_stalls += 1")
    w(3, "else:")
    w(4, "row = pc_rows[next_entry]")
    for i in R:
        w(4, f"tail_{i} = row[{i}]")
    if micro:
        w(4, "micro_issues.append((cycle, next_entry))")
    w(4, "next_entry += 1")
    w(2, "else:")
    w(3, "exhausted = True")
    # --- Merged dispatch + arbitration + advance, one visit per lane.
    w(2, "msu_used = False")
    for i in R:
        w(2, f"b_ = busy_{i}")
        w(2, "if b_ > 0:")
        w(3, f"busy_{i} = b_ - 1")
        w(3, f"cb_{i} += 1")
        w(3, "if b_ == 1:")
        retire(4, i)
        w(2, "else:")
        w(3, f"st_ = st_{i}")
        w(3, "if st_ == 0:")
        w(4, f"h_ = head_{i}")
        w(4, f"if tail_{i} == h_:")
        w(5, "if not exhausted:")
        w(6, "st_ = -1")
        if fibers:
            w(5, f"elif tsr_{i}:")
            w(6, f"st_{i} = st_ = 3")
            w(5, f"elif osr_{i}:")
        else:
            w(5, f"elif osr_{i}:")
        w(6, f"st_{i} = st_ = 6")
        w(5, "else:")
        w(6, "st_ = -1")
        w(4, f"elif lk_{i}[h_] == kh:")
        if fibers:
            w(5, f"if tsr_{i}:")
            w(6, f"st_{i} = st_ = 3")
            w(5, f"elif osr_{i}:")
        else:
            w(5, f"if osr_{i}:")
        w(6, f"st_{i} = st_ = 6")
        w(5, "else:")
        w(6, f"head_{i} = h_ + 1")
        if fibers:
            w(6, f"curj_{i} = -1")
        w(6, f"cb_{i} += 1")
        w(6, "if header_c == 1:")
        w(7, f"st_{i} = 0")
        w(6, "else:")
        w(7, f"st_{i} = 5")
        w(7, f"busy_{i} = header_c - 1")
        w(6, "st_ = -1")
        w(4, "else:")
        if fibers:
            w(5, f"j_ = ls_{i}[h_]")
            w(5, f"if j_ != curj_{i} and tsr_{i}:")
            w(6, f"st_{i} = st_ = 3")
            w(5, "else:")
            w(6, f"curj_{i} = j_")
            w(6, f"head_{i} = h_ + 1")
            w(6, f"curb_{i} = lb_{i}[h_]")
            w(6, f"st_{i} = st_ = 1")
        else:
            w(5, f"head_{i} = h_ + 1")
            w(5, f"curb_{i} = lb_{i}[h_]")
            w(5, f"st_{i} = st_ = 1")
        w(3, "if st_ == 1:")
        w(4, f"bk_ = curb_{i}")
        w(4, "if claim[bk_] == cycle:")
        w(5, "bank_stalls += 1")
        w(4, "else:")
        w(5, "claim[bk_] = cycle")
        w(5, f"cb_{i} += 1")
        w(5, "if nnz_c == 1:")
        w(6, f"tsr_{i} = True" if fibers else f"osr_{i} = True")
        w(6, f"st_{i} = 0")
        w(5, "else:")
        w(6, f"st_{i} = 2")
        w(6, f"busy_{i} = nnz_c - 1")
        if fibers:
            w(3, "elif st_ == 3:")
            w(4, f"bk_ = curj_{i} % banks")
            w(4, "if claim[bk_] == cycle:")
            w(5, "bank_stalls += 1")
            w(4, "else:")
            w(5, "claim[bk_] = cycle")
            w(5, f"cb_{i} += 1")
            w(5, "if fold_c > 1:")
            w(6, f"st_{i} = 4")
            w(6, f"busy_{i} = fold_c - 1")
            w(5, "else:")
            w(6, f"osr_{i} = True")
            w(6, f"tsr_{i} = False")
            w(6, f"st_{i} = 0")
        w(3, "elif st_ == 6:")
        w(4, "if msu_used:")
        w(5, "msu_stalls += 1")
        w(4, "else:")
        w(5, "msu_used = True")
        w(5, f"osr_{i} = False")
        w(5, f"cb_{i} += 1")
        w(5, "if drain_c == 1:")
        w(6, f"st_{i} = 0")
        w(5, "else:")
        w(6, f"busy_{i} = drain_c - 1")
    w(2, "cycle += 1")
    w(2, f"if next_entry >= entries and exhausted and ({done_chain}):")
    w(3, "break")
    w(2, "if cycle > max_cycles:")
    w(3, fail)
    w(1, "return (1, cycle, bank_stalls, msu_stalls, tlu_stalls,"
         f" injected, ({cbs}))")
    return "\n".join(lines) + "\n"


def _timing_loop(lanes: int, fibers: bool, stalls: bool, micro: bool):
    """The compiled timing loop for this run shape (memoized)."""
    key = (lanes, fibers, stalls, micro)
    fn = _TIMING_LOOP_CACHE.get(key)
    if fn is None:
        src = _gen_timing_source(lanes, fibers, stalls, micro)
        ns: Dict[str, object] = {}
        exec(compile(src, f"<event-timing-{lanes}l>", "exec"), ns)
        fn = ns["_loop"]
        _TIMING_LOOP_CACHE[key] = fn
    return fn


class EventDrivenTensaurus:
    """Cycle-stepped model of the PE array executing one CISS tile.

    Parameters mirror the vectorized engine: a cost table, the dense
    operand sources, and the OSR depth for TTMc. An optional ``fault_plan``
    injects deterministic HBM channel stalls *structurally*: a stalled
    entry holds the TLU for ``hbm_stall_cycles`` before it issues, and the
    back-pressure ripples through the lane queues the same way a real
    wedged channel would. Functional output is never perturbed.
    """

    def __init__(
        self,
        config: TensaurusConfig,
        costs: KernelCosts,
        fiber0: np.ndarray,
        fiber1: Optional[np.ndarray] = None,
        f1_tile: int = 0,
        queue_depth: int = 4,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.config = config
        self.costs = costs
        self.fiber0 = np.asarray(fiber0, dtype=np.float64)
        self.fiber1 = None if fiber1 is None else np.asarray(fiber1, dtype=np.float64)
        self.f1_tile = f1_tile
        self.queue_depth = queue_depth
        self.fault_plan = fault_plan
        if costs.uses_fibers and self.fiber1 is None:
            raise SimulationError(f"{costs.kernel} needs a fiber1 source")

    # ------------------------------------------------------------------
    def run(
        self, ciss, out_shape: Tuple[int, ...], engine: Optional[str] = None
    ) -> EventSimResult:
        """Execute a CISS tile (any object exposing kinds/a_idx/k_idx/vals
        planes) to completion.

        ``engine`` selects the implementation (defaults to
        :func:`repro.sim.engine.default_sim_engine`). The fast/jit path
        runs the same cycle-accurate state machine over plain integers
        (records never become Python objects, record arithmetic never
        enters the clock loop) and computes the functional output with
        the vectorized PE pass; cycles, stalls, fault accounting and
        outputs are bit-identical to legacy. It requires each output
        slice to belong to a single lane (the CISS deal guarantees this);
        hand-built streams that violate it fall back to legacy.
        """
        resolved = resolve_sim_engine(engine)
        if resolved != "legacy":
            fast = self._run_fast(ciss, out_shape, resolved)
            if fast is not None:
                return fast
        kinds = np.asarray(ciss.kinds)
        a_idx = np.asarray(ciss.a_idx)
        k_idx = np.asarray(ciss.k_idx)
        vals = np.asarray(ciss.vals)
        entries, lanes = kinds.shape if kinds.ndim == 2 else (0, 0)
        tracer = obs.tracer()
        micro_issues: Optional[List[Tuple[int, int]]] = (
            [] if tracer.micro else None
        )
        rows = [_RowState() for _ in range(lanes)]
        out = np.zeros(out_shape, dtype=np.float64)
        ops = 0
        next_entry = 0
        bank_stalls = 0
        msu_stalls = 0
        tlu_stalls = 0
        cycle = 0
        max_cycles = 1000 + self._cycle_budget(kinds)

        # Deterministic per-entry HBM stall draws (fault layer).
        plan = self.fault_plan
        stall_flags = None
        stall_cycles_each = 0
        if plan is not None and plan.hbm_stall_rate > 0 and entries > 0:
            stall_flags = (
                plan.uniforms(entries, "event-hbm", entries)
                < plan.hbm_stall_rate
            )
            stall_cycles_each = plan.hbm_stall_cycles
            max_cycles += int(stall_flags.sum()) * stall_cycles_each
        stall_remaining = 0
        injected_stall_cycles = 0
        fault_events: List[FaultEvent] = []

        while True:
            if entries == 0:
                break
            # --- TLU: push the next entry if every lane queue has space.
            if next_entry < entries:
                if stall_flags is not None and stall_flags[next_entry]:
                    stall_flags[next_entry] = False
                    stall_remaining += stall_cycles_each
                    if len(fault_events) < MAX_EVENTS_PER_RUN:
                        fault_events.append(
                            FaultEvent(HBM_STALL, ("entry", int(next_entry)))
                        )
                if stall_remaining > 0:
                    stall_remaining -= 1
                    injected_stall_cycles += 1
                elif all(len(r.queue) < self.queue_depth for r in rows):
                    for lane in range(lanes):
                        kind = int(kinds[next_entry, lane])
                        if kind == KIND_PAD:
                            continue
                        rows[lane].queue.append(
                            _Record(
                                kind,
                                int(a_idx[next_entry, lane]),
                                int(k_idx[next_entry, lane]),
                                float(vals[next_entry, lane]),
                            )
                        )
                    if micro_issues is not None:
                        micro_issues.append((cycle, next_entry))
                    next_entry += 1
                else:
                    tlu_stalls += 1
            else:
                for r in rows:
                    r.exhausted = True

            # --- Dispatch phase (zero time): idle rows raise their next
            # request or start their next multi-cycle state.
            for r in rows:
                if r.busy == 0 and r.state == _IDLE:
                    self._dispatch(r)

            # --- SPM arbitration: one grant per bank per cycle.
            requests: Dict[int, List[int]] = {}
            for lane, r in enumerate(rows):
                if r.state in (_WAIT_FETCH, _WAIT_FOLD_FETCH) and r.busy == 0:
                    bank = self._bank_of(r)
                    requests.setdefault(bank, []).append(lane)
            grants = set()
            for bank, lanes_waiting in requests.items():
                winner = min(lanes_waiting)  # fixed-priority arbiter
                grants.add(winner)
                bank_stalls += len(lanes_waiting) - 1

            # --- Advance phase: one clock edge for every row; single MSU
            # drain port per cycle.
            msu_port_used = False
            for lane, r in enumerate(rows):
                if r.busy > 0:
                    r.busy -= 1
                    r.cycles_busy += 1
                    if r.busy == 0:
                        self._retire(r)
                    continue
                if r.state == _WAIT_FETCH:
                    if lane in grants:
                        r.cycles_busy += 1
                        ops += self.costs.ops_per_nnz
                        r.state = _MAC
                        r.busy = self.costs.nnz_cycles - 1
                        if r.busy == 0:
                            self._retire(r)
                    else:
                        r.stall_cycles += 1
                    continue
                if r.state == _WAIT_FOLD_FETCH:
                    if lane in grants:
                        r.cycles_busy += 1
                        ops += self.costs.ops_per_fold
                        r.state = _FOLD
                        r.busy = max(self.costs.fold_cycles - 1, 0)
                        if r.busy == 0:
                            self._retire(r)
                    else:
                        r.stall_cycles += 1
                    continue
                if r.state == _DRAIN:
                    if msu_port_used:
                        r.stall_cycles += 1
                        msu_stalls += 1
                    else:
                        msu_port_used = True
                        self._finish_drain(r, out)
                    continue

            cycle += 1
            if all(r.done() for r in rows) and next_entry >= entries:
                break
            if cycle > max_cycles:
                raise SimulationError(
                    f"event simulation did not converge in {max_cycles} cycles"
                )
        busy = np.array([r.cycles_busy for r in rows], dtype=np.int64)
        result = EventSimResult(
            cycles=cycle,
            ops=ops,
            output=out,
            bank_conflict_stalls=bank_stalls,
            msu_stalls=msu_stalls,
            tlu_stall_cycles=tlu_stalls,
            lane_busy_cycles=busy,
            injected_stall_cycles=injected_stall_cycles,
            fault_events=fault_events,
        )
        self._emit_obs(result, entries, micro_issues, tracer)
        return result

    def _emit_obs(
        self,
        result: EventSimResult,
        entries: int,
        micro_issues: Optional[List[Tuple[int, int]]],
        tracer,
    ) -> None:
        """Mirror one tile execution into the active tracer/registry.

        Runs after the cycle loop so the loop itself is untouched; with a
        micro-mode tracer every CISS-entry issue becomes a sim-track
        instant at its issue cycle."""
        reg = obs.metrics()
        if reg.enabled:
            reg.counter("event.tiles", "event-engine tile executions").inc()
            reg.counter("event.cycles", "event-engine cycles").inc(result.cycles)
            stalls = reg.counter(
                "event.stall_cycles", "event-engine stalls by cause", ("cause",)
            )
            for cause, count in (
                ("bank_conflict", result.bank_conflict_stalls),
                ("msu", result.msu_stalls),
                ("tlu", result.tlu_stall_cycles),
                ("injected_hbm", result.injected_stall_cycles),
            ):
                if count:
                    stalls.labels(cause=cause).inc(count)
        if tracer.enabled:
            if micro_issues:
                # Before add_launch, so issue cycles land inside the
                # not-yet-advanced launch span.
                for at_cycle, entry in micro_issues:
                    tracer.sim_instant(
                        "ciss.entry", at_cycle, args={"entry": entry}
                    )
            tracer.add_launch(
                f"event.{self.costs.kernel}", result.cycles,
                args={"entries": entries, "ops": result.ops},
            )

    # ------------------------------------------------------------------
    def _run_fast(
        self, ciss, out_shape: Tuple[int, ...], resolved: str
    ) -> Optional[EventSimResult]:
        """Integer-only replay of the cycle loop; None means fall back."""
        kinds = np.asarray(ciss.kinds)
        a_idx = np.asarray(ciss.a_idx)
        k_idx = np.asarray(ciss.k_idx)
        vals = np.asarray(ciss.vals)
        entries, lanes = kinds.shape if kinds.ndim == 2 else (0, 0)
        costs = self.costs
        tracer = obs.tracer()
        out = np.zeros(out_shape, dtype=np.float64)
        if entries == 0:
            result = EventSimResult(
                cycles=0, ops=0, output=out, bank_conflict_stalls=0,
                msu_stalls=0, tlu_stall_cycles=0,
                lane_busy_cycles=np.zeros(lanes, dtype=np.int64),
            )
            self._emit_obs(result, entries, [] if tracer.micro else None, tracer)
            return result

        # Lanes drain concurrently, so the functional scatter is only
        # order-free when no two lanes own the same output slice (the
        # CISS deal guarantees it; hand-built planes may not).
        hdr_r, hdr_l = np.nonzero(kinds == KIND_HEADER)
        if hdr_r.size:
            hdr_s = a_idx[hdr_r, hdr_l]
            order = np.lexsort((hdr_l, hdr_s))
            s_sorted = hdr_s[order]
            l_sorted = hdr_l[order]
            if np.any(
                (s_sorted[1:] == s_sorted[:-1]) & (l_sorted[1:] != l_sorted[:-1])
            ):
                return None

        # Functional output + per-lane op counting (vectorized; event
        # decode treats any non-header record as a nonzero).
        ops = 0
        lane_cols = []
        for lane in range(lanes):
            if hasattr(ciss, "lane_arrays"):
                lk, la, lkk, lv = ciss.lane_arrays(lane)
            else:
                lk = kinds[:, lane]
                la = a_idx[:, lane]
                lkk = k_idx[:, lane]
                lv = vals[:, lane]
            lane_cols.append((lk, la))
            ops += lane_pass_arrays(
                costs, self.fiber0, self.fiber1, self.f1_tile,
                lk, la, lkk, lv, out, strict_kinds=False,
            ).ops

        max_cycles = 1000 + self._cycle_budget(kinds)
        plan = self.fault_plan
        stall_arr = None
        stall_cycles_each = 0
        if plan is not None and plan.hbm_stall_rate > 0:
            stall_arr = (
                plan.uniforms(entries, "event-hbm", entries)
                < plan.hbm_stall_rate
            )
            stall_cycles_each = plan.hbm_stall_cycles
            max_cycles += int(stall_arr.sum()) * stall_cycles_each
        fault_events: List[FaultEvent] = []
        micro_issues: Optional[List[Tuple[int, int]]] = (
            [] if tracer.micro else None
        )

        # Per-lane compacted record columns, plus the per-entry
        # pushed-count prefix sums the TLU advances through.
        live = kinds != KIND_PAD
        pc = np.cumsum(live, axis=0)
        banks = self.config.spm_banks
        uses_fibers = costs.uses_fibers
        col_k: List[np.ndarray] = []
        col_s: List[np.ndarray] = []
        col_b: List[np.ndarray] = []
        for lane in range(lanes):
            lk, la = lane_cols[lane]
            mask = live[:, lane]
            ck = lk[mask]
            ca = la[mask]
            key = k_idx[:, lane][mask] if costs.bank_key == "k" else ca
            col_k.append(ck.astype(np.int64))
            col_s.append(ca.astype(np.int64))
            col_b.append(key.astype(np.int64) % banks)

        if resolved == "jit" and micro_issues is None:
            from repro.sim.jit import event_timing

            offsets = np.zeros(lanes + 1, dtype=np.int64)
            np.cumsum([c.size for c in col_k], out=offsets[1:])
            flags = (
                stall_arr.astype(np.uint8)
                if stall_arr is not None
                else np.zeros(entries, dtype=np.uint8)
            )
            (
                status, cycle, bank_stalls, msu_stalls, tlu_stalls,
                injected, cycles_busy_arr, stalled, n_stalled,
            ) = event_timing(
                np.concatenate(col_k), np.concatenate(col_s),
                np.concatenate(col_b), offsets,
                np.ascontiguousarray(pc, dtype=np.int64), flags,
                np.int64(stall_cycles_each), np.int64(self.queue_depth),
                np.int64(banks), np.int64(1 if uses_fibers else 0),
                np.int64(KIND_HEADER),
                np.int64(costs.nnz_cycles), np.int64(costs.fold_cycles),
                np.int64(costs.drain_cycles), np.int64(costs.header_cycles),
                np.int64(max_cycles),
            )
            if status == 0:
                raise SimulationError(
                    f"event simulation did not converge in {max_cycles} cycles"
                )
            for e in stalled[: min(int(n_stalled), MAX_EVENTS_PER_RUN)]:
                fault_events.append(FaultEvent(HBM_STALL, ("entry", int(e))))
            result = EventSimResult(
                cycles=int(cycle),
                ops=ops,
                output=out,
                bank_conflict_stalls=int(bank_stalls),
                msu_stalls=int(msu_stalls),
                tlu_stall_cycles=int(tlu_stalls),
                lane_busy_cycles=np.asarray(cycles_busy_arr, dtype=np.int64),
                injected_stall_cycles=int(injected),
                fault_events=fault_events,
            )
            self._emit_obs(result, entries, micro_issues, tracer)
            return result

        if lanes == 0:
            return None
        stall_flags = None if stall_arr is None else stall_arr.tolist()
        loop = _timing_loop(
            lanes,
            bool(uses_fibers),
            stall_flags is not None,
            micro_issues is not None,
        )
        stall_entries: List[int] = []
        ok, cycle, bank_stalls, msu_stalls, tlu_stalls, injected, cbs = loop(
            pc.tolist(),
            [c.tolist() for c in col_k],
            [c.tolist() for c in col_s],
            [c.tolist() for c in col_b],
            stall_flags,
            entries,
            self.queue_depth,
            banks,
            costs.nnz_cycles,
            costs.fold_cycles,
            costs.drain_cycles,
            costs.header_cycles,
            stall_cycles_each,
            max_cycles,
            KIND_HEADER,
            stall_entries,
            micro_issues,
            MAX_EVENTS_PER_RUN,
        )
        if not ok:
            raise SimulationError(
                f"event simulation did not converge in {max_cycles} cycles"
            )
        for e in stall_entries:
            fault_events.append(FaultEvent(HBM_STALL, ("entry", int(e))))
        cycles_busy = list(cbs)

        result = EventSimResult(
            cycles=cycle,
            ops=ops,
            output=out,
            bank_conflict_stalls=bank_stalls,
            msu_stalls=msu_stalls,
            tlu_stall_cycles=tlu_stalls,
            lane_busy_cycles=np.array(cycles_busy, dtype=np.int64),
            injected_stall_cycles=injected,
            fault_events=fault_events,
        )
        self._emit_obs(result, entries, micro_issues, tracer)
        return result

    # ------------------------------------------------------------------
    def _cycle_budget(self, kinds: np.ndarray) -> int:
        """Generous convergence bound: every record fully serialized."""
        per_record = (
            self.costs.nnz_cycles
            + self.costs.fold_cycles
            + self.costs.drain_cycles
            + self.costs.header_cycles
            + 4
        )
        return int(kinds.size) * per_record + 64

    def _bank_of(self, r: _RowState) -> int:
        banks = self.config.spm_banks
        if r.state == _WAIT_FOLD_FETCH:
            return int(r.cur_j) % banks
        key = r.current.k if self.costs.bank_key == "k" else r.current.a
        return int(key) % banks

    # ------------------------------------------------------------------
    def _dispatch(self, r: _RowState) -> None:
        """Zero-time transition out of IDLE: raise a request or start a
        multi-cycle state for this cycle's advance phase."""
        costs = self.costs
        if not r.queue:
            if r.exhausted:
                if costs.uses_fibers and r.tsr is not None:
                    r.pending_fold_then = _IDLE
                    r.state = _WAIT_FOLD_FETCH
                elif r.osr is not None:
                    r.state = _DRAIN
            return
        rec = r.queue[0]
        if rec.kind == KIND_HEADER:
            # Close the open fiber and slice before decoding the header.
            if costs.uses_fibers and r.tsr is not None:
                r.pending_fold_then = _IDLE
                r.state = _WAIT_FOLD_FETCH
                return
            if r.osr is not None:
                r.state = _DRAIN
                return
            r.queue.popleft()
            r.cur_slice = rec.a
            r.cur_j = -1
            r.state = _HEADER
            r.busy = costs.header_cycles
            return
        if r.cur_slice < 0:
            raise SimulationError("nonzero record before any header")
        if costs.uses_fibers and rec.a != r.cur_j and r.tsr is not None:
            r.pending_fold_then = _IDLE
            r.state = _WAIT_FOLD_FETCH
            return
        r.queue.popleft()
        r.current = rec
        if costs.uses_fibers:
            r.cur_j = rec.a
        r.state = _WAIT_FETCH

    def _retire(self, r: _RowState) -> None:
        """Architectural effects when a multi-cycle state completes."""
        costs = self.costs
        if r.state == _MAC:
            rec = r.current
            if costs.uses_fibers:
                scaled = rec.val * self.fiber0[rec.k]
                r.tsr = scaled if r.tsr is None else r.tsr + scaled
            else:
                contrib = rec.val * self.fiber0[rec.a]
                r.osr = contrib if r.osr is None else r.osr + contrib
            r.current = None
            r.state = _IDLE
            return
        if r.state == _FOLD:
            if costs.kernel in ("spttmc", "dttmc"):
                contrib = np.outer(self.fiber1[r.cur_j][: self.f1_tile], r.tsr)
            else:
                contrib = self.fiber1[r.cur_j] * r.tsr
            r.osr = contrib if r.osr is None else r.osr + contrib
            r.tsr = None
            r.state = r.pending_fold_then or _IDLE
            r.pending_fold_then = None
            return
        if r.state in (_HEADER, _DRAIN):
            r.state = _IDLE
            return
        raise SimulationError(f"cannot retire state {r.state}")

    def _finish_drain(self, r: _RowState, out) -> None:
        """Drain the OSR through the MSU port; extra shift cycles keep the
        row busy afterwards."""
        out[r.cur_slice] = out[r.cur_slice] + r.osr
        r.osr = None
        r.cycles_busy += 1
        r.busy = self.costs.drain_cycles - 1
        if r.busy == 0:
            r.state = _IDLE
