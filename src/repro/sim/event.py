"""Event-driven microarchitecture simulator (the gem5-fidelity engine).

The vectorized engine (:mod:`repro.sim.lanes`) computes timing from record
counts; this module instead *advances clock cycles* through communicating
components, the way the paper's gem5 model does:

- a **TLU** that issues one CISS entry per cycle (bandwidth permitting)
  into per-lane record queues, stalling on back-pressure;
- per-lane **PE row** state machines that fetch fiber rows from the SPM,
  spend a MAC cycle per record, fold fibers into the OSR and drain slices;
- a banked **SPM arbiter** granting at most one request per bank per cycle
  (bank conflicts serialize *structurally*, not statistically);
- an **MSU** accepting one drain per cycle.

Because stalls emerge from component interaction rather than closed-form
counts, this engine is the fidelity reference: the test suite checks that
(a) its functional output equals the reference kernels, (b) in conflict-free
configurations its cycle count matches the analytical lane model exactly,
and (c) with conflicts it stays within a tight band of the vectorized
engine. It is intended for tiles up to ~100K nonzeros (it steps every
cycle in Python); the production engines handle the benchmark scale.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.formats.ciss import KIND_HEADER, KIND_NNZ, KIND_PAD
from repro.sim.config import TensaurusConfig
from repro.sim.costs import KernelCosts
from repro.sim.faults import HBM_STALL, MAX_EVENTS_PER_RUN, FaultEvent, FaultPlan
from repro.util.errors import SimulationError

#: PE row states.
_IDLE = "idle"
_WAIT_FETCH = "wait_fetch"  # waiting for an SPM bank grant (fiber0 row)
_MAC = "mac"  # executing the VVMUL/VVADD of a record
_WAIT_FOLD_FETCH = "wait_fold_fetch"  # waiting for the fiber1 row grant
_FOLD = "fold"  # folding TSR into OSR
_HEADER = "header"  # decoding a slice header
_DRAIN = "drain"  # shifting the OSR out to the MSU


@dataclass
class _Record:
    kind: int
    a: int
    k: int
    val: float


@dataclass
class _RowState:
    """One PE row's architectural state."""

    queue: Deque[_Record] = field(default_factory=deque)
    exhausted: bool = False  # TLU has no more records for this lane
    state: str = _IDLE
    busy: int = 0  # cycles remaining in the current state
    current: Optional[_Record] = None
    cur_slice: int = -1
    cur_j: int = -1
    tsr: Optional[np.ndarray] = None
    osr: Optional[np.ndarray] = None
    pending_fold_then: Optional[str] = None  # state to enter after a fold
    cycles_busy: int = 0
    stall_cycles: int = 0

    def done(self) -> bool:
        return (
            self.exhausted
            and not self.queue
            and self.state == _IDLE
            and self.tsr is None
            and self.osr is None
        )


@dataclass
class EventSimResult:
    """Outcome of one event-driven tile execution."""

    cycles: int
    ops: int
    output: np.ndarray
    bank_conflict_stalls: int
    msu_stalls: int
    tlu_stall_cycles: int
    lane_busy_cycles: np.ndarray
    #: cycles the TLU sat idle on injected HBM channel stalls (fault layer).
    injected_stall_cycles: int = 0
    fault_events: List[FaultEvent] = field(default_factory=list)


class EventDrivenTensaurus:
    """Cycle-stepped model of the PE array executing one CISS tile.

    Parameters mirror the vectorized engine: a cost table, the dense
    operand sources, and the OSR depth for TTMc. An optional ``fault_plan``
    injects deterministic HBM channel stalls *structurally*: a stalled
    entry holds the TLU for ``hbm_stall_cycles`` before it issues, and the
    back-pressure ripples through the lane queues the same way a real
    wedged channel would. Functional output is never perturbed.
    """

    def __init__(
        self,
        config: TensaurusConfig,
        costs: KernelCosts,
        fiber0: np.ndarray,
        fiber1: Optional[np.ndarray] = None,
        f1_tile: int = 0,
        queue_depth: int = 4,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.config = config
        self.costs = costs
        self.fiber0 = np.asarray(fiber0, dtype=np.float64)
        self.fiber1 = None if fiber1 is None else np.asarray(fiber1, dtype=np.float64)
        self.f1_tile = f1_tile
        self.queue_depth = queue_depth
        self.fault_plan = fault_plan
        if costs.uses_fibers and self.fiber1 is None:
            raise SimulationError(f"{costs.kernel} needs a fiber1 source")

    # ------------------------------------------------------------------
    def run(self, ciss, out_shape: Tuple[int, ...]) -> EventSimResult:
        """Execute a CISS tile (any object exposing kinds/a_idx/k_idx/vals
        planes) to completion."""
        kinds = np.asarray(ciss.kinds)
        a_idx = np.asarray(ciss.a_idx)
        k_idx = np.asarray(ciss.k_idx)
        vals = np.asarray(ciss.vals)
        entries, lanes = kinds.shape if kinds.ndim == 2 else (0, 0)
        tracer = obs.tracer()
        micro_issues: Optional[List[Tuple[int, int]]] = (
            [] if tracer.micro else None
        )
        rows = [_RowState() for _ in range(lanes)]
        out = np.zeros(out_shape, dtype=np.float64)
        ops = 0
        next_entry = 0
        bank_stalls = 0
        msu_stalls = 0
        tlu_stalls = 0
        cycle = 0
        max_cycles = 1000 + self._cycle_budget(kinds)

        # Deterministic per-entry HBM stall draws (fault layer).
        plan = self.fault_plan
        stall_flags = None
        stall_cycles_each = 0
        if plan is not None and plan.hbm_stall_rate > 0 and entries > 0:
            stall_flags = (
                plan.uniforms(entries, "event-hbm", entries)
                < plan.hbm_stall_rate
            )
            stall_cycles_each = plan.hbm_stall_cycles
            max_cycles += int(stall_flags.sum()) * stall_cycles_each
        stall_remaining = 0
        injected_stall_cycles = 0
        fault_events: List[FaultEvent] = []

        while True:
            if entries == 0:
                break
            # --- TLU: push the next entry if every lane queue has space.
            if next_entry < entries:
                if stall_flags is not None and stall_flags[next_entry]:
                    stall_flags[next_entry] = False
                    stall_remaining += stall_cycles_each
                    if len(fault_events) < MAX_EVENTS_PER_RUN:
                        fault_events.append(
                            FaultEvent(HBM_STALL, ("entry", int(next_entry)))
                        )
                if stall_remaining > 0:
                    stall_remaining -= 1
                    injected_stall_cycles += 1
                elif all(len(r.queue) < self.queue_depth for r in rows):
                    for lane in range(lanes):
                        kind = int(kinds[next_entry, lane])
                        if kind == KIND_PAD:
                            continue
                        rows[lane].queue.append(
                            _Record(
                                kind,
                                int(a_idx[next_entry, lane]),
                                int(k_idx[next_entry, lane]),
                                float(vals[next_entry, lane]),
                            )
                        )
                    if micro_issues is not None:
                        micro_issues.append((cycle, next_entry))
                    next_entry += 1
                else:
                    tlu_stalls += 1
            else:
                for r in rows:
                    r.exhausted = True

            # --- Dispatch phase (zero time): idle rows raise their next
            # request or start their next multi-cycle state.
            for r in rows:
                if r.busy == 0 and r.state == _IDLE:
                    self._dispatch(r)

            # --- SPM arbitration: one grant per bank per cycle.
            requests: Dict[int, List[int]] = {}
            for lane, r in enumerate(rows):
                if r.state in (_WAIT_FETCH, _WAIT_FOLD_FETCH) and r.busy == 0:
                    bank = self._bank_of(r)
                    requests.setdefault(bank, []).append(lane)
            grants = set()
            for bank, lanes_waiting in requests.items():
                winner = min(lanes_waiting)  # fixed-priority arbiter
                grants.add(winner)
                bank_stalls += len(lanes_waiting) - 1

            # --- Advance phase: one clock edge for every row; single MSU
            # drain port per cycle.
            msu_port_used = False
            for lane, r in enumerate(rows):
                if r.busy > 0:
                    r.busy -= 1
                    r.cycles_busy += 1
                    if r.busy == 0:
                        self._retire(r)
                    continue
                if r.state == _WAIT_FETCH:
                    if lane in grants:
                        r.cycles_busy += 1
                        ops += self.costs.ops_per_nnz
                        r.state = _MAC
                        r.busy = self.costs.nnz_cycles - 1
                        if r.busy == 0:
                            self._retire(r)
                    else:
                        r.stall_cycles += 1
                    continue
                if r.state == _WAIT_FOLD_FETCH:
                    if lane in grants:
                        r.cycles_busy += 1
                        ops += self.costs.ops_per_fold
                        r.state = _FOLD
                        r.busy = max(self.costs.fold_cycles - 1, 0)
                        if r.busy == 0:
                            self._retire(r)
                    else:
                        r.stall_cycles += 1
                    continue
                if r.state == _DRAIN:
                    if msu_port_used:
                        r.stall_cycles += 1
                        msu_stalls += 1
                    else:
                        msu_port_used = True
                        self._finish_drain(r, out)
                    continue

            cycle += 1
            if all(r.done() for r in rows) and next_entry >= entries:
                break
            if cycle > max_cycles:
                raise SimulationError(
                    f"event simulation did not converge in {max_cycles} cycles"
                )
        busy = np.array([r.cycles_busy for r in rows], dtype=np.int64)
        result = EventSimResult(
            cycles=cycle,
            ops=ops,
            output=out,
            bank_conflict_stalls=bank_stalls,
            msu_stalls=msu_stalls,
            tlu_stall_cycles=tlu_stalls,
            lane_busy_cycles=busy,
            injected_stall_cycles=injected_stall_cycles,
            fault_events=fault_events,
        )
        self._emit_obs(result, entries, micro_issues, tracer)
        return result

    def _emit_obs(
        self,
        result: EventSimResult,
        entries: int,
        micro_issues: Optional[List[Tuple[int, int]]],
        tracer,
    ) -> None:
        """Mirror one tile execution into the active tracer/registry.

        Runs after the cycle loop so the loop itself is untouched; with a
        micro-mode tracer every CISS-entry issue becomes a sim-track
        instant at its issue cycle."""
        reg = obs.metrics()
        if reg.enabled:
            reg.counter("event.tiles", "event-engine tile executions").inc()
            reg.counter("event.cycles", "event-engine cycles").inc(result.cycles)
            stalls = reg.counter(
                "event.stall_cycles", "event-engine stalls by cause", ("cause",)
            )
            for cause, count in (
                ("bank_conflict", result.bank_conflict_stalls),
                ("msu", result.msu_stalls),
                ("tlu", result.tlu_stall_cycles),
                ("injected_hbm", result.injected_stall_cycles),
            ):
                if count:
                    stalls.labels(cause=cause).inc(count)
        if tracer.enabled:
            if micro_issues:
                # Before add_launch, so issue cycles land inside the
                # not-yet-advanced launch span.
                for at_cycle, entry in micro_issues:
                    tracer.sim_instant(
                        "ciss.entry", at_cycle, args={"entry": entry}
                    )
            tracer.add_launch(
                f"event.{self.costs.kernel}", result.cycles,
                args={"entries": entries, "ops": result.ops},
            )

    # ------------------------------------------------------------------
    def _cycle_budget(self, kinds: np.ndarray) -> int:
        """Generous convergence bound: every record fully serialized."""
        per_record = (
            self.costs.nnz_cycles
            + self.costs.fold_cycles
            + self.costs.drain_cycles
            + self.costs.header_cycles
            + 4
        )
        return int(kinds.size) * per_record + 64

    def _bank_of(self, r: _RowState) -> int:
        banks = self.config.spm_banks
        if r.state == _WAIT_FOLD_FETCH:
            return int(r.cur_j) % banks
        key = r.current.k if self.costs.bank_key == "k" else r.current.a
        return int(key) % banks

    # ------------------------------------------------------------------
    def _dispatch(self, r: _RowState) -> None:
        """Zero-time transition out of IDLE: raise a request or start a
        multi-cycle state for this cycle's advance phase."""
        costs = self.costs
        if not r.queue:
            if r.exhausted:
                if costs.uses_fibers and r.tsr is not None:
                    r.pending_fold_then = _IDLE
                    r.state = _WAIT_FOLD_FETCH
                elif r.osr is not None:
                    r.state = _DRAIN
            return
        rec = r.queue[0]
        if rec.kind == KIND_HEADER:
            # Close the open fiber and slice before decoding the header.
            if costs.uses_fibers and r.tsr is not None:
                r.pending_fold_then = _IDLE
                r.state = _WAIT_FOLD_FETCH
                return
            if r.osr is not None:
                r.state = _DRAIN
                return
            r.queue.popleft()
            r.cur_slice = rec.a
            r.cur_j = -1
            r.state = _HEADER
            r.busy = costs.header_cycles
            return
        if r.cur_slice < 0:
            raise SimulationError("nonzero record before any header")
        if costs.uses_fibers and rec.a != r.cur_j and r.tsr is not None:
            r.pending_fold_then = _IDLE
            r.state = _WAIT_FOLD_FETCH
            return
        r.queue.popleft()
        r.current = rec
        if costs.uses_fibers:
            r.cur_j = rec.a
        r.state = _WAIT_FETCH

    def _retire(self, r: _RowState) -> None:
        """Architectural effects when a multi-cycle state completes."""
        costs = self.costs
        if r.state == _MAC:
            rec = r.current
            if costs.uses_fibers:
                scaled = rec.val * self.fiber0[rec.k]
                r.tsr = scaled if r.tsr is None else r.tsr + scaled
            else:
                contrib = rec.val * self.fiber0[rec.a]
                r.osr = contrib if r.osr is None else r.osr + contrib
            r.current = None
            r.state = _IDLE
            return
        if r.state == _FOLD:
            if costs.kernel in ("spttmc", "dttmc"):
                contrib = np.outer(self.fiber1[r.cur_j][: self.f1_tile], r.tsr)
            else:
                contrib = self.fiber1[r.cur_j] * r.tsr
            r.osr = contrib if r.osr is None else r.osr + contrib
            r.tsr = None
            r.state = r.pending_fold_then or _IDLE
            r.pending_fold_then = None
            return
        if r.state in (_HEADER, _DRAIN):
            r.state = _IDLE
            return
        raise SimulationError(f"cannot retire state {r.state}")

    def _finish_drain(self, r: _RowState, out) -> None:
        """Drain the OSR through the MSU port; extra shift cycles keep the
        row busy afterwards."""
        out[r.cur_slice] = out[r.cur_slice] + r.osr
        r.osr = None
        r.cycles_busy += 1
        r.busy = self.costs.drain_cycles - 1
        if r.busy == 0:
            r.state = _IDLE
