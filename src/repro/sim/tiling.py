"""Tiling and reuse planning (Sections 5.2.3 and 5.2.5).

The SPMs bound how many dense-operand rows live on chip (so the j/k index
spaces are tiled), the PE array bounds how many output-fiber elements one
pass produces (so wide ranks take multiple passes), and the MSU bounds how
many output rows accumulate on chip. The MSU supports two reduction modes:

- **buffered** — output rows accumulate in the MSU double buffer; the sparse
  operand is tiled along the output mode too, and the dense operand tiles
  are re-streamed once per output tile (more matrix traffic, no output
  read-modify-write traffic).
- **direct** — partial output rows accumulate in main memory (read+write per
  slice visit); the whole output mode is one tile so dense operand tiles
  stream exactly once (the paper's recommendation for very sparse tensors).

``choose_msu_mode`` picks whichever moves fewer bytes, which is the policy
the paper sketches; the ablation benchmark compares the two directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.sim.config import TensaurusConfig
from repro.util.errors import ConfigError, KernelError


@dataclass(frozen=True)
class TilingPlan:
    """Tile geometry for one kernel execution."""

    kernel: str
    msu_mode: str  # "buffered" or "direct"
    fiber_elems: int  # output fiber elements produced per pass
    f1_tile: int  # TTMc: fiber1 elements held in the OSR per pass (else 0)
    passes: int  # total rank passes (f1_passes * f2_passes)
    i_tile: int  # output-mode rows per tile (whole extent in direct mode)
    j_tile: int  # fiber1 / SpMM-column rows resident per SPM tile
    k_tile: Optional[int]  # fiber0 rows resident per SPM tile (tensors only)
    cols_active: int  # PE columns with work (ceil(fiber_elems / vlen))

    def __post_init__(self) -> None:
        if self.msu_mode not in ("buffered", "direct"):
            raise ConfigError(f"unknown MSU mode {self.msu_mode!r}")


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def plan_mttkrp(
    config: TensaurusConfig,
    dims: tuple,
    rank: int,
    msu_mode: str = "buffered",
) -> TilingPlan:
    """Tile plan for (Sp/D)MTTKRP: each SPM holds tiles of both B and C."""
    i_dim, j_dim, k_dim = dims
    fiber = min(rank, config.fiber_tile)
    passes = _ceil_div(rank, config.fiber_tile)
    spm_rows = config.spm_rows(operands_per_spm=2)
    i_tile = i_dim if msu_mode == "direct" else min(i_dim, config.msu_rows(fiber))
    return TilingPlan(
        kernel="mttkrp",
        msu_mode=msu_mode,
        fiber_elems=fiber,
        f1_tile=0,
        passes=passes,
        i_tile=max(1, i_tile),
        j_tile=min(j_dim, spm_rows),
        k_tile=min(k_dim, spm_rows),
        cols_active=_ceil_div(fiber, config.vlen),
    )


def plan_ttmc(
    config: TensaurusConfig,
    dims: tuple,
    rank1: int,
    rank2: int,
    msu_mode: str = "buffered",
) -> TilingPlan:
    """Tile plan for (Sp/D)TTMc.

    F2 tiles across the PE columns like the MTTKRP rank; F1 tiles by the
    OSR depth (OLEN == VLEN, Section 5.2.4), so wide F1 takes extra passes.
    The first-column SPM holds the B tile alongside C (hence double size).
    """
    i_dim, j_dim, k_dim = dims
    f2_tile = min(rank2, config.fiber_tile)
    f1_tile = min(rank1, config.vlen)
    passes = _ceil_div(rank2, config.fiber_tile) * _ceil_div(rank1, config.vlen)
    spm_rows = config.spm_rows(operands_per_spm=2)
    out_elems = f1_tile * f2_tile
    i_tile = i_dim if msu_mode == "direct" else min(i_dim, config.msu_rows(out_elems))
    return TilingPlan(
        kernel="ttmc",
        msu_mode=msu_mode,
        fiber_elems=f2_tile,
        f1_tile=f1_tile,
        passes=passes,
        i_tile=max(1, i_tile),
        j_tile=min(j_dim, spm_rows),
        k_tile=min(k_dim, spm_rows),
        cols_active=_ceil_div(f2_tile, config.vlen),
    )


def plan_spmm(
    config: TensaurusConfig,
    dims: tuple,
    ncols: int,
    msu_mode: str = "buffered",
) -> TilingPlan:
    """Tile plan for SpMM/GEMM: each SPM holds a tile of B only."""
    i_dim, j_dim = dims
    fiber = min(ncols, config.fiber_tile)
    passes = _ceil_div(ncols, config.fiber_tile)
    spm_rows = config.spm_rows(operands_per_spm=1)
    i_tile = i_dim if msu_mode == "direct" else min(i_dim, config.msu_rows(fiber))
    return TilingPlan(
        kernel="spmm",
        msu_mode=msu_mode,
        fiber_elems=fiber,
        f1_tile=0,
        passes=passes,
        i_tile=max(1, i_tile),
        j_tile=min(j_dim, spm_rows),
        k_tile=None,
        cols_active=_ceil_div(fiber, config.vlen),
    )


def plan_spmv(
    config: TensaurusConfig,
    dims: tuple,
    msu_mode: str = "buffered",
) -> TilingPlan:
    """Tile plan for SpMV/GEMV: vector tile in the first-column SPM only."""
    i_dim, j_dim = dims
    vec_rows = max(
        1, (config.spm_first_col_kb * 1024) // (2 * config.data_width)
    )
    i_tile = i_dim if msu_mode == "direct" else min(
        i_dim, (config.msu_kb * 1024) // config.data_width
    )
    return TilingPlan(
        kernel="spmv",
        msu_mode=msu_mode,
        fiber_elems=1,
        f1_tile=0,
        passes=1,
        i_tile=max(1, i_tile),
        j_tile=min(j_dim, vec_rows),
        k_tile=None,
        cols_active=1,
    )


def make_plan(
    kernel: str,
    config: TensaurusConfig,
    dims: tuple,
    msu_mode: str = "buffered",
    rank: int = 0,
    rank2: int = 0,
) -> TilingPlan:
    """Dispatch to the per-kernel planner."""
    kernel = kernel.lower()
    if kernel in ("spmttkrp", "dmttkrp", "mttkrp"):
        return plan_mttkrp(config, dims, rank, msu_mode)
    if kernel in ("spttmc", "dttmc", "ttmc"):
        return plan_ttmc(config, dims, rank, rank2, msu_mode)
    if kernel in ("spmm", "gemm"):
        return plan_spmm(config, dims, rank, msu_mode)
    if kernel in ("spmv", "gemv"):
        return plan_spmv(config, dims, msu_mode)
    raise KernelError(f"unknown kernel {kernel!r}")


def tile_count(extent: int, tile: int) -> int:
    """Number of tiles covering an index space."""
    if tile <= 0:
        raise ConfigError("tile size must be positive")
    return max(1, math.ceil(extent / tile))
