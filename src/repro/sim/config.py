"""Hardware configuration for the Tensaurus simulator (Section 6 numbers).

The default :class:`TensaurusConfig` mirrors the evaluated design point: an
8x8 PE array with VLEN=4 (512 scalar multipliers+adders), 2 GHz clock,
16 KB-per-side double-buffered SPMs (32 KB in the first column), a
2x128 KB MSU output buffer, and 8-channel HBM at 128 GB/s. The peak
attainable throughput follows the paper's arithmetic: every other PE cycle
is a scratchpad access, so ``512 * 2 GHz * 0.5 = 512 GOP/s``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Optional

from repro.sim.faults import FaultPlan
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class MemoryConfig:
    """A DRAM interface: peak bandwidth plus request-level behaviour.

    ``latency_ns`` and ``max_outstanding`` drive the Little's-law limit on
    achieved bandwidth for narrow request streams; ``burst_bytes`` is the
    minimum fetch granularity (narrow requests waste the remainder of the
    burst — the extended-CSR pathology of Fig. 3e).
    """

    name: str
    peak_gbs: float
    latency_ns: float
    max_outstanding: int
    burst_bytes: int
    clock_ghz: float

    def __post_init__(self) -> None:
        for attr in ("peak_gbs", "latency_ns", "clock_ghz"):
            if getattr(self, attr) <= 0:
                raise ConfigError(f"{attr} must be positive")
        if self.max_outstanding <= 0 or self.burst_bytes <= 0:
            raise ConfigError("max_outstanding and burst_bytes must be positive")

    @property
    def bytes_per_cycle(self) -> float:
        """Peak bytes per memory clock cycle."""
        return self.peak_gbs / self.clock_ghz

    @property
    def latency_cycles(self) -> int:
        """Access latency in memory clock cycles."""
        return max(1, round(self.latency_ns * self.clock_ghz))


#: The accelerator's HBM: 8 x 128-bit channels at 1 GHz = 128 GB/s (gem5
#: model of Section 6). Generous MSHRs: the TLU/MLU pipeline deep requests.
HBM_PRESET = MemoryConfig(
    name="hbm",
    peak_gbs=128.0,
    latency_ns=60.0,
    max_outstanding=48,
    burst_bytes=64,
    clock_ghz=1.0,
)

#: The single-channel DDR4 used for the Fig. 3e format comparison:
#: 16 GB/s peak, 8 outstanding requests.
DDR4_PRESET = MemoryConfig(
    name="ddr4",
    peak_gbs=16.0,
    latency_ns=45.0,
    max_outstanding=8,
    burst_bytes=64,
    clock_ghz=1.2,
)


@dataclass(frozen=True)
class TensaurusConfig:
    """Full accelerator design point."""

    rows: int = 8  # r: PE rows == CISS lanes
    cols: int = 8  # c: PE columns (each owns one SPM)
    vlen: int = 4  # SIMD width of each PE's VVMUL/VVADD
    clock_ghz: float = 2.0
    data_width: int = 4  # bytes per value (fp32)
    index_width: int = 2  # bytes per CISS index field
    spm_kb: int = 16  # per-side SPM capacity, non-first columns
    spm_first_col_kb: int = 32  # first column holds two operand tiles
    spm_banks: int = 8
    msu_kb: int = 128  # per-side MSU output buffer
    msu_banks: int = 8
    memory: MemoryConfig = field(default_factory=lambda: HBM_PRESET)
    #: cycles a PE spends per lane record: one SPM access + one SIMD MAC
    #: ("each PE spends every other clock cycle to access the scratchpads").
    cycles_per_record: int = 2
    #: use the batched tile pipeline (segmented lane analysis over the whole
    #: operand). False falls back to the per-tile CISS-encode-and-analyze
    #: reference engine — bit-identical timing, for debugging.
    batch_tiles: bool = True
    #: LRU capacity of the per-accelerator encoding cache (tile partitions,
    #: permuted coordinates, batched lane statistics). 0 disables caching.
    encoding_cache_entries: int = 64
    #: optional fault-injection plan (see :mod:`repro.sim.faults`). ``None``
    #: or an all-zero-rate plan leaves every report bit-identical to the
    #: fault-free simulator. Being a config field, it sweeps through
    #: :func:`repro.sim.sweep.sweep_configs` grids like any other knob.
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        for attr in ("rows", "cols", "vlen", "spm_kb", "spm_first_col_kb",
                     "msu_kb", "spm_banks", "msu_banks", "data_width",
                     "index_width", "cycles_per_record"):
            if getattr(self, attr) <= 0:
                raise ConfigError(f"{attr} must be positive")
        if self.clock_ghz <= 0:
            raise ConfigError("clock_ghz must be positive")
        if self.encoding_cache_entries < 0:
            raise ConfigError("encoding_cache_entries must be >= 0")

    # ------------------------------------------------------------------
    # Derived quantities used throughout the simulator and the rooflines
    # ------------------------------------------------------------------
    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    @property
    def mac_units(self) -> int:
        """Scalar multiplier count: rows * cols * vlen."""
        return self.num_pes * self.vlen

    @property
    def peak_gops(self) -> float:
        """Peak throughput: 2 ops per MAC, half the cycles on SPM access."""
        return self.mac_units * 2 * self.clock_ghz * (1.0 / self.cycles_per_record)

    @property
    def peak_bw_gbs(self) -> float:
        return self.memory.peak_gbs

    @property
    def hbm_bytes_per_cycle(self) -> float:
        """Memory bytes available per *accelerator* cycle."""
        return self.memory.peak_gbs / self.clock_ghz

    @property
    def fiber_tile(self) -> int:
        """Output-fiber elements produced per pass: cols * vlen (the rank
        tile; rank dimensions wider than this need extra passes)."""
        return self.cols * self.vlen

    def spm_rows(self, operands_per_spm: int = 1) -> int:
        """Dense-matrix rows one SPM side can hold for its vlen-wide chunk.

        ``operands_per_spm`` is 2 for MTTKRP (each SPM holds tiles of both
        B and C, Section 5.2.3) and 1 for SpMM/TTMc non-first columns.
        """
        side_bytes = self.spm_kb * 1024
        row_bytes = self.vlen * self.data_width
        return max(1, side_bytes // (row_bytes * operands_per_spm))

    def msu_rows(self, fiber_elems: int) -> int:
        """Output rows one MSU buffer side holds at ``fiber_elems`` per row."""
        side_bytes = self.msu_kb * 1024
        return max(1, side_bytes // (fiber_elems * self.data_width))

    def ciss_entry_bytes(self, index_fields: int = 2,
                         lanes: Optional[int] = None) -> int:
        """Bytes per CISS entry: (dw + index_fields*iw) * lanes.

        ``lanes`` defaults to the full PE-row count; the fault layer passes
        the surviving lane count when PE-lane dropouts narrow the stream.
        """
        width = lanes if lanes is not None else self.rows
        return (self.data_width + index_fields * self.index_width) * width

    def with_memory(self, memory: MemoryConfig) -> "TensaurusConfig":
        return replace(self, memory=memory)

    def scaled(self, **kwargs) -> "TensaurusConfig":
        """A modified copy (for the scaling ablations and the auto-tuner).

        Unknown field names raise :class:`ConfigError` naming the bad key
        and the valid fields, instead of the opaque ``TypeError`` that
        ``dataclasses.replace`` emits (the same pre-check
        :func:`repro.sim.sweep.sweep_configs` applies to its grid).
        """
        valid = tuple(f.name for f in fields(self))
        for name in kwargs:
            if name not in valid:
                raise ConfigError(
                    f"unknown config field {name!r}; valid fields: "
                    + ", ".join(valid)
                )
        return replace(self, **kwargs)
