"""Zero-copy operand handoff for process fan-out (`sweep_configs`).

A sweep runner usually closes over the workload operands — multi-megabyte
dense factor matrices and sparse tensor arrays. Shipping that closure to a
process pool re-serializes every operand byte, and doing it per design
point multiplies the cost by the grid size. :class:`SharedOperands` breaks
that: the parent copies each array once into a POSIX shared-memory
segment, and the object itself pickles as a few hundred bytes of metadata
(segment name + per-array layout). Workers attach lazily on first access
and read the parent's pages directly — no per-point copies, no per-point
pickling.

Typical use::

    with SharedOperands.create({"vals": vals, "factor": f0}) as ops:
        def runner(acc):
            return acc.run_spmttkrp(ops["vals"], ops["factor"], ...)
        sweep_configs(base, grid, runner, workers=8)

The creator owns the segment: ``close()`` detaches, ``unlink()`` frees it
(the context manager does both). Attached copies in workers detach on
garbage collection; they never unlink.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Dict, Iterator, List, Mapping, Tuple

import numpy as np

from repro.util.errors import ConfigError

# (key, shape, dtype-str, byte offset) for one array in the segment.
_ArrayMeta = Tuple[str, Tuple[int, ...], str, int]


def _align(offset: int, alignment: int = 64) -> int:
    return (offset + alignment - 1) // alignment * alignment


class SharedOperands(Mapping[str, np.ndarray]):
    """Read-only mapping of named numpy arrays in one shared segment."""

    def __init__(
        self,
        segment_name: str,
        meta: List[_ArrayMeta],
        _shm: "shared_memory.SharedMemory | None" = None,
        _owner: bool = False,
    ) -> None:
        self._segment_name = segment_name
        self._meta = list(meta)
        self._shm = _shm
        self._owner = _owner
        self._arrays: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, arrays: Mapping[str, np.ndarray]) -> "SharedOperands":
        """Copy ``arrays`` into a fresh shared-memory segment."""
        if not arrays:
            raise ConfigError("SharedOperands.create needs at least one array")
        meta: List[_ArrayMeta] = []
        offset = 0
        prepared: List[Tuple[str, np.ndarray, int]] = []
        for key, arr in arrays.items():
            a = np.ascontiguousarray(arr)
            if a.dtype.hasobject:
                raise ConfigError(
                    f"operand {key!r} has object dtype; only plain numeric "
                    "arrays can live in shared memory"
                )
            offset = _align(offset)
            prepared.append((key, a, offset))
            meta.append((key, a.shape, a.dtype.str, offset))
            offset += a.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for key, a, off in prepared:
            dst = np.ndarray(a.shape, dtype=a.dtype, buffer=shm.buf[off:])
            dst[...] = a
        return cls(shm.name, meta, _shm=shm, _owner=True)

    # -- mapping protocol ----------------------------------------------
    def _attach(self) -> "shared_memory.SharedMemory":
        if self._shm is None:
            self._shm = shared_memory.SharedMemory(name=self._segment_name)
        return self._shm

    def __getitem__(self, key: str) -> np.ndarray:
        arr = self._arrays.get(key)
        if arr is not None:
            return arr
        for name, shape, dtype, offset in self._meta:
            if name == key:
                shm = self._attach()
                arr = np.ndarray(shape, dtype=np.dtype(dtype),
                                 buffer=shm.buf[offset:])
                arr.flags.writeable = False
                self._arrays[key] = arr
                return arr
        raise KeyError(key)

    def __iter__(self) -> Iterator[str]:
        return iter(name for name, _, _, _ in self._meta)

    def __len__(self) -> int:
        return len(self._meta)

    # -- lifecycle -----------------------------------------------------
    @property
    def segment_name(self) -> str:
        return self._segment_name

    def close(self) -> None:
        """Detach from the segment (views become invalid)."""
        if self._shm is not None:
            self._arrays.clear()
            self._shm.close()
            self._shm = None

    def unlink(self) -> None:
        """Free the segment (creator only; call after all workers exit)."""
        owner = self._owner
        self._owner = False
        if owner:
            shm = self._shm or shared_memory.SharedMemory(
                name=self._segment_name
            )
            self._arrays.clear()
            shm.close()
            self._shm = None
            shm.unlink()

    def __enter__(self) -> "SharedOperands":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        self.unlink()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # -- pickling ------------------------------------------------------
    def __reduce__(self):
        # Metadata only — a worker re-attaches by segment name, so the
        # operand bytes never ride the pickle stream.
        return (SharedOperands, (self._segment_name, self._meta))

    def __repr__(self) -> str:
        total = sum(
            int(np.prod(shape)) * np.dtype(dt).itemsize
            for _, shape, dt, _ in self._meta
        )
        return (
            f"SharedOperands({self._segment_name!r}, "
            f"{len(self._meta)} arrays, {total} bytes)"
        )
