"""Co-processor driver: the configuration-instruction interface.

Section 6: "Tensaurus is attached to a CPU as a co-processor, where the
CPU executes instructions to configure Tensaurus to run a specific tensor
kernel. The configuration instructions configure Tensaurus for: (1) mode
of operation like SpMTTKRP, SpMM, etc. and (2) size of tensors and
matrices."

This module models that boundary: a small register-level instruction set
(:class:`Instruction` / :class:`Opcode`), a :class:`TensaurusDevice` that
validates and executes instruction programs against the simulator, and
assembler helpers that emit the canonical program for each kernel. The
device checks what real driver code would have to get right — operands
bound before launch, declared sizes matching the bound operands, a
configured mode — and surfaces violations as :class:`ProgramError`.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.resilience import RetryPolicy, retry_call
from repro.sim.accelerator import Tensaurus
from repro.sim.config import TensaurusConfig
from repro.sim.costs import ALL_KERNELS
from repro.sim.faults import LAUNCH_ABORT, WATCHDOG, FaultEvent, FaultPlan
from repro.sim.report import SimReport
from repro.tensor import SparseTensor
from repro.util.errors import (
    CancelledError,
    DeadlineExceededError,
    FaultError,
    ReproError,
    SimulationError,
)

logger = obs.get_logger(__name__)


class ProgramError(ReproError, ValueError):
    """An instruction program is malformed or inconsistent."""


class Opcode(enum.Enum):
    """The configuration instruction set."""

    SET_MODE = "set_mode"  # operand: kernel name (Table 1)
    SET_DIMS = "set_dims"  # operand: tensor/matrix dimensions
    SET_RANKS = "set_ranks"  # operand: (F,) or (F1, F2) or (N,)
    SET_TARGET_MODE = "set_target_mode"  # operand: MTTKRP/TTMc mode index
    SET_MSU_MODE = "set_msu_mode"  # operand: buffered | direct | auto
    BIND_OPERAND = "bind_operand"  # operand: (slot, data)
    LAUNCH = "launch"  # no operand
    RESET = "reset"  # no operand


@dataclass(frozen=True)
class Instruction:
    """One configuration instruction."""

    opcode: Opcode
    operand: object = None

    def __repr__(self) -> str:
        return f"Instruction({self.opcode.value}, {self.operand!r})"


#: Operand slots the MLU/TLU read from.
SLOT_SPARSE = "sparse"  # the first (possibly sparse) operand
SLOT_DENSE_B = "dense_b"  # fiber1 source / SpMM right operand
SLOT_DENSE_C = "dense_c"  # fiber0 source (tensor kernels)
SLOT_VECTOR = "vector"  # SpMV/GEMV right operand

OperandData = Union[SparseTensor, CSRMatrix, COOMatrix, np.ndarray]


@dataclass
class DeviceState:
    """The device's architectural registers (what SET_* writes)."""

    kernel: Optional[str] = None
    dims: Optional[Tuple[int, ...]] = None
    ranks: Optional[Tuple[int, ...]] = None
    target_mode: int = 0
    msu_mode: str = "auto"
    operands: Dict[str, OperandData] = field(default_factory=dict)


class TensaurusDevice:
    """The accelerator behind its driver-visible instruction interface.

    Robustness knobs (all optional, all off by default):

    - ``fault_plan`` arms the simulator's fault-injection layer;
    - ``watchdog_timeout_s`` bounds a launch's host wall-clock; a breach
      is surfaced as a :class:`FaultError` (and retried like one);
    - ``retry_policy`` turns launch faults into RESET-and-retry with
      backoff: the device resets the accelerator (cache cleared, fault
      epoch advanced so the retry re-draws its faults), sleeps the
      policy's delay, and relaunches — raising
      :class:`~repro.util.errors.RetryExhaustedError` when the policy
      runs out. With no policy, faults propagate unchanged (the
      pre-resilience behaviour);
    - ``deadline_s`` bounds a launch end-to-end (all attempts plus
      backoff): a breach raises
      :class:`~repro.util.errors.DeadlineExceededError` — which is *not*
      retried — and the retry policy's time budget is clamped to the
      remaining headroom so backoff never overshoots the deadline;
    - ``cancel_check`` is polled before every attempt; returning True
      aborts the launch with :class:`~repro.util.errors.CancelledError`
      (the hook the serving layer's hedged-launch cancellation uses).

    ``clock`` and ``sleep`` are injectable for deterministic tests.
    """

    def __init__(
        self,
        config: Optional[TensaurusConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        watchdog_timeout_s: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        deadline_s: Optional[float] = None,
        cancel_check: Optional[Callable[[], bool]] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._accelerator = Tensaurus(config, fault_plan=fault_plan)
        self._state = DeviceState()
        self._launch_count = 0
        self._watchdog_timeout_s = watchdog_timeout_s
        self._retry_policy = retry_policy
        self._deadline_s = deadline_s
        self._cancel_check = cancel_check
        self._clock = clock
        self._sleep = sleep
        self.stats: Dict[str, int] = {
            "launches": 0,
            "faults": 0,
            "retries": 0,
            "watchdog_trips": 0,
            "resets": 0,
            "deadline_misses": 0,
            "cancellations": 0,
        }
        self.fault_log: List[FaultEvent] = []

    @property
    def deadline_s(self) -> Optional[float]:
        return self._deadline_s

    def set_deadline(self, deadline_s: Optional[float]) -> None:
        """Set/clear the per-launch wall-clock budget for future launches."""
        self._deadline_s = deadline_s

    # ------------------------------------------------------------------
    @property
    def state(self) -> DeviceState:
        return self._state

    @property
    def accelerator(self) -> Tensaurus:
        return self._accelerator

    @property
    def launches(self) -> int:
        return self._launch_count

    def reset(self) -> None:
        """RESET semantics: clear the device registers and put the
        accelerator back in a clean state (cache dropped, fault epoch
        advanced so post-reset launches draw fresh fault streams)."""
        self._state = DeviceState()
        self._reset_accelerator()

    def _reset_accelerator(self) -> None:
        self._bump("resets")
        logger.info("accelerator reset (cache cleared, fault epoch advanced)")
        self._accelerator.clear_cache()
        self._accelerator.advance_fault_epoch()

    def _bump(self, key: str) -> None:
        """Count a driver event in ``stats`` and mirror it into the
        active metrics registry (as ``driver.<key>``)."""
        self.stats[key] += 1
        reg = obs.metrics()
        if reg.enabled:
            reg.counter(f"driver.{key}", f"driver {key}").inc()

    # ------------------------------------------------------------------
    def execute(self, program: List[Instruction]) -> List[SimReport]:
        """Run a program; every LAUNCH appends a report."""
        reports: List[SimReport] = []
        for position, inst in enumerate(program):
            try:
                result = self._step(inst)
            except ProgramError as exc:
                raise ProgramError(f"at instruction {position}: {exc}") from exc
            if result is not None:
                reports.append(result)
        return reports

    def _step(self, inst: Instruction) -> Optional[SimReport]:
        op = inst.opcode
        if op is Opcode.RESET:
            self.reset()
            return None
        if op is Opcode.SET_MODE:
            kernel = str(inst.operand).lower()
            if kernel not in ALL_KERNELS:
                raise ProgramError(f"unknown kernel {inst.operand!r}")
            self._state.kernel = kernel
            return None
        if op is Opcode.SET_DIMS:
            dims = tuple(int(d) for d in inst.operand)
            if any(d <= 0 for d in dims):
                raise ProgramError(f"dimensions must be positive, got {dims}")
            self._state.dims = dims
            return None
        if op is Opcode.SET_RANKS:
            ranks = tuple(int(r) for r in inst.operand)
            if any(r <= 0 for r in ranks):
                raise ProgramError(f"ranks must be positive, got {ranks}")
            self._state.ranks = ranks
            return None
        if op is Opcode.SET_TARGET_MODE:
            mode = int(inst.operand)
            if not 0 <= mode < 3:
                raise ProgramError(f"target mode {mode} out of range")
            self._state.target_mode = mode
            return None
        if op is Opcode.SET_MSU_MODE:
            mode = str(inst.operand)
            if mode not in ("buffered", "direct", "auto"):
                raise ProgramError(f"unknown MSU mode {inst.operand!r}")
            self._state.msu_mode = mode
            return None
        if op is Opcode.BIND_OPERAND:
            slot, data = inst.operand
            if slot not in (SLOT_SPARSE, SLOT_DENSE_B, SLOT_DENSE_C, SLOT_VECTOR):
                raise ProgramError(f"unknown operand slot {slot!r}")
            _check_operand_data(slot, data)
            self._state.operands[slot] = data
            return None
        if op is Opcode.LAUNCH:
            return self._launch()
        raise ProgramError(f"unknown opcode {op!r}")

    # ------------------------------------------------------------------
    def _launch(self) -> SimReport:
        st = self._state
        if st.kernel is None:
            raise ProgramError("LAUNCH before SET_MODE")
        if st.dims is None:
            raise ProgramError("LAUNCH before SET_DIMS")
        sparse = st.operands.get(SLOT_SPARSE)
        if sparse is None:
            raise ProgramError("no operand bound to the sparse/tensor slot")
        self._check_dims(sparse, st.dims)
        self._launch_count += 1
        self._bump("launches")
        kernel = st.kernel
        if kernel in ("spmttkrp", "dmttkrp", "spttmc", "dttmc"):
            b = st.operands.get(SLOT_DENSE_B)
            c = st.operands.get(SLOT_DENSE_C)
            if b is None or c is None:
                raise ProgramError(f"{kernel} needs dense operands B and C")
            if st.ranks is None:
                raise ProgramError(f"{kernel} needs SET_RANKS")
            self._check_ranks(kernel, st.ranks, b, c)
            runner = (
                self._accelerator.run_mttkrp
                if kernel.endswith("mttkrp")
                else self._accelerator.run_ttmc
            )

            def run() -> SimReport:
                return runner(
                    sparse, b, c, mode=st.target_mode, msu_mode=st.msu_mode
                )

        elif kernel in ("spmm", "gemm"):
            b = st.operands.get(SLOT_DENSE_B)
            if b is None:
                raise ProgramError(f"{kernel} needs a dense operand B")

            def run() -> SimReport:
                return self._accelerator.run_spmm(
                    sparse, b, msu_mode=st.msu_mode
                )

        else:  # spmv / gemv
            x = st.operands.get(SLOT_VECTOR)
            if x is None:
                raise ProgramError(f"{kernel} needs a vector operand")

            def run() -> SimReport:
                return self._accelerator.run_spmv(
                    sparse, x, msu_mode=st.msu_mode
                )

        return self._guarded_run(run)

    def _guarded_run(self, run: Callable[[], SimReport]) -> SimReport:
        """Execute one launch under the watchdog; with a retry policy,
        RESET-and-retry on faults instead of propagating them. Every
        attempt first passes the cancellation and deadline gates — a
        cancelled or past-deadline launch aborts instead of retrying."""

        launch_start = self._clock()

        def check_abort() -> None:
            if self._cancel_check is not None and self._cancel_check():
                self._bump("cancellations")
                logger.info("launch %d cancelled by host", self._launch_count)
                raise CancelledError(
                    f"launch {self._launch_count} cancelled by host"
                )
            deadline = self._deadline_s
            if deadline is not None:
                elapsed = self._clock() - launch_start
                if elapsed > deadline:
                    self._bump("deadline_misses")
                    logger.warning(
                        "launch %d missed its %.3fs deadline (%.3fs elapsed)",
                        self._launch_count, deadline, elapsed,
                    )
                    raise DeadlineExceededError(
                        f"launch {self._launch_count} exceeded its "
                        f"{deadline:.3f}s deadline ({elapsed:.3f}s elapsed)",
                        deadline_s=deadline,
                    )

        def attempt(attempt_idx: int) -> SimReport:
            check_abort()
            start = self._clock()
            span_args = {
                "launch": self._launch_count, "attempt": attempt_idx,
            }
            # When a fleet request is being served, stamp its trace id
            # on the launch span so host flamegraphs join against the
            # request tree.
            context = obs.current_context()
            if context is not None:
                span_args["trace_id"], span_args["span_id"] = context
            try:
                with obs.tracer().span("driver.launch", args=span_args):
                    report = run()
            except (FaultError, SimulationError) as exc:
                self._bump("faults")
                logger.warning(
                    "launch %d attempt %d faulted: %s",
                    self._launch_count, attempt_idx, exc,
                )
                self.fault_log.append(
                    FaultEvent(
                        LAUNCH_ABORT,
                        ("launch", self._launch_count),
                        info=str(exc),
                    )
                )
                raise
            elapsed = self._clock() - start
            timeout = self._watchdog_timeout_s
            if timeout is not None and elapsed > timeout:
                self._bump("watchdog_trips")
                logger.warning(
                    "watchdog tripped on launch %d: %.3fs > %.3fs",
                    self._launch_count, elapsed, timeout,
                )
                self.fault_log.append(
                    FaultEvent(
                        WATCHDOG,
                        ("launch", self._launch_count),
                        info=f"{elapsed:.3f}s > {timeout:.3f}s",
                    )
                )
                raise FaultError(
                    f"watchdog: launch took {elapsed:.3f}s "
                    f"(timeout {timeout:.3f}s)"
                )
            return report

        if self._retry_policy is None:
            return attempt(0)

        def on_retry(attempt_idx: int, exc: BaseException) -> None:
            self._bump("retries")
            logger.info(
                "retrying launch %d after fault (attempt %d): %s",
                self._launch_count, attempt_idx, exc,
            )
            self._reset_accelerator()

        policy = self._retry_policy
        if self._deadline_s is not None:
            # Retries may never outlive the launch deadline: clamp the
            # policy's elapsed-time budget to the remaining headroom.
            policy = policy.for_deadline(
                self._deadline_s - (self._clock() - launch_start)
            )
        return retry_call(
            attempt,
            policy,
            retry_on=(FaultError, SimulationError),
            sleep=self._sleep,
            on_retry=on_retry,
            clock=self._clock,
        )

    @staticmethod
    def _check_dims(operand: OperandData, dims: Tuple[int, ...]) -> None:
        actual = tuple(operand.shape)
        if actual != dims:
            raise ProgramError(
                f"declared dims {dims} do not match bound operand {actual}"
            )
        _check_coords_in_range(operand, dims)

    @staticmethod
    def _check_ranks(
        kernel: str, ranks: Tuple[int, ...], b: np.ndarray, c: np.ndarray
    ) -> None:
        if kernel.endswith("mttkrp"):
            if len(ranks) != 1:
                raise ProgramError("MTTKRP takes a single rank F")
            if b.shape[1] != ranks[0] or c.shape[1] != ranks[0]:
                raise ProgramError(
                    f"rank {ranks[0]} does not match factor widths "
                    f"{b.shape[1]}/{c.shape[1]}"
                )
        else:
            if len(ranks) != 2:
                raise ProgramError("TTMc takes ranks (F1, F2)")
            if b.shape[1] != ranks[0] or c.shape[1] != ranks[1]:
                raise ProgramError(
                    f"ranks {ranks} do not match factor widths "
                    f"({b.shape[1]}, {c.shape[1]})"
                )


# ----------------------------------------------------------------------
# Operand hardening: catch NaN/Inf payloads and out-of-range coordinates
# at the driver boundary, before they turn into garbage cycle counts or
# numpy errors deep in the PE loop.
# ----------------------------------------------------------------------
def _operand_value_array(data: object) -> Optional[np.ndarray]:
    """The numeric payload of an operand, whatever its container type."""
    if isinstance(data, SparseTensor):
        return data.values
    if isinstance(data, COOMatrix):
        return data.vals
    if isinstance(data, CSRMatrix):
        return data.data
    if isinstance(data, np.ndarray):
        return data
    return None


def _check_operand_data(slot: str, data: object) -> None:
    """Reject operands whose values are NaN/Inf with a ProgramError."""
    values = _operand_value_array(data)
    if values is None:
        return
    values = np.asarray(values)
    if values.size and not np.isfinite(values).all():
        bad = int(values.size - np.isfinite(values).sum())
        raise ProgramError(
            f"operand for slot {slot!r} contains {bad} non-finite "
            f"(NaN/Inf) value(s)"
        )


def _check_coords_in_range(operand: object, dims: Tuple[int, ...]) -> None:
    """Reject sparse operands whose coordinates escape the declared dims
    (possible via ``canonical=True`` construction or corrupted inputs)."""
    if isinstance(operand, SparseTensor):
        coords = operand.coords
        if coords.size and (
            coords.min() < 0
            or (coords.max(axis=0) >= np.asarray(dims, dtype=np.int64)).any()
        ):
            raise ProgramError(
                f"sparse operand coordinates out of range for dims {dims}"
            )
    elif isinstance(operand, COOMatrix):
        rows, cols = operand.rows, operand.cols
        if rows.size and (
            rows.min() < 0 or cols.min() < 0
            or rows.max() >= dims[0] or cols.max() >= dims[1]
        ):
            raise ProgramError(
                f"matrix operand indices out of range for dims {dims}"
            )


def _assemble_check(kernel: str, **arrays: object) -> None:
    """Assembler-side hardening shared by the four assemble_* helpers."""
    for name, data in arrays.items():
        try:
            _check_operand_data(name, data)
        except ProgramError as exc:
            raise ProgramError(f"{kernel}: {exc}") from None
    sparse = arrays.get("tensor", arrays.get("a"))
    shape = getattr(sparse, "shape", None)
    if shape is not None:
        try:
            _check_coords_in_range(sparse, tuple(shape))
        except ProgramError as exc:
            raise ProgramError(f"{kernel}: {exc}") from None


# ----------------------------------------------------------------------
# Assembler helpers: the canonical program for each kernel.
# ----------------------------------------------------------------------
def assemble_mttkrp(
    tensor: Union[SparseTensor, np.ndarray],
    mat_b: np.ndarray,
    mat_c: np.ndarray,
    mode: int = 0,
    msu_mode: str = "auto",
) -> List[Instruction]:
    """The driver program for one (Sp/D)MTTKRP launch."""
    kernel = "spmttkrp" if isinstance(tensor, SparseTensor) else "dmttkrp"
    _assemble_check(kernel, tensor=tensor, mat_b=np.asarray(mat_b),
                    mat_c=np.asarray(mat_c))
    return [
        Instruction(Opcode.SET_MODE, kernel),
        Instruction(Opcode.SET_DIMS, tuple(tensor.shape)),
        Instruction(Opcode.SET_RANKS, (np.asarray(mat_b).shape[1],)),
        Instruction(Opcode.SET_TARGET_MODE, mode),
        Instruction(Opcode.SET_MSU_MODE, msu_mode),
        Instruction(Opcode.BIND_OPERAND, (SLOT_SPARSE, tensor)),
        Instruction(Opcode.BIND_OPERAND, (SLOT_DENSE_B, np.asarray(mat_b))),
        Instruction(Opcode.BIND_OPERAND, (SLOT_DENSE_C, np.asarray(mat_c))),
        Instruction(Opcode.LAUNCH),
    ]


def assemble_ttmc(
    tensor: Union[SparseTensor, np.ndarray],
    mat_b: np.ndarray,
    mat_c: np.ndarray,
    mode: int = 0,
    msu_mode: str = "auto",
) -> List[Instruction]:
    """The driver program for one (Sp/D)TTMc launch."""
    kernel = "spttmc" if isinstance(tensor, SparseTensor) else "dttmc"
    _assemble_check(kernel, tensor=tensor, mat_b=np.asarray(mat_b),
                    mat_c=np.asarray(mat_c))
    return [
        Instruction(Opcode.SET_MODE, kernel),
        Instruction(Opcode.SET_DIMS, tuple(tensor.shape)),
        Instruction(
            Opcode.SET_RANKS,
            (np.asarray(mat_b).shape[1], np.asarray(mat_c).shape[1]),
        ),
        Instruction(Opcode.SET_TARGET_MODE, mode),
        Instruction(Opcode.SET_MSU_MODE, msu_mode),
        Instruction(Opcode.BIND_OPERAND, (SLOT_SPARSE, tensor)),
        Instruction(Opcode.BIND_OPERAND, (SLOT_DENSE_B, np.asarray(mat_b))),
        Instruction(Opcode.BIND_OPERAND, (SLOT_DENSE_C, np.asarray(mat_c))),
        Instruction(Opcode.LAUNCH),
    ]


def assemble_spmm(
    a: Union[CSRMatrix, COOMatrix, np.ndarray],
    mat_b: np.ndarray,
    msu_mode: str = "auto",
) -> List[Instruction]:
    """The driver program for one SpMM/GEMM launch."""
    kernel = "gemm" if isinstance(a, np.ndarray) else "spmm"
    _assemble_check(kernel, a=a, mat_b=np.asarray(mat_b))
    return [
        Instruction(Opcode.SET_MODE, kernel),
        Instruction(Opcode.SET_DIMS, tuple(a.shape)),
        Instruction(Opcode.SET_MSU_MODE, msu_mode),
        Instruction(Opcode.BIND_OPERAND, (SLOT_SPARSE, a)),
        Instruction(Opcode.BIND_OPERAND, (SLOT_DENSE_B, np.asarray(mat_b))),
        Instruction(Opcode.LAUNCH),
    ]


def assemble_spmv(
    a: Union[CSRMatrix, COOMatrix, np.ndarray],
    vec: np.ndarray,
    msu_mode: str = "auto",
) -> List[Instruction]:
    """The driver program for one SpMV/GEMV launch."""
    kernel = "gemv" if isinstance(a, np.ndarray) else "spmv"
    _assemble_check(kernel, a=a, vec=np.asarray(vec))
    return [
        Instruction(Opcode.SET_MODE, kernel),
        Instruction(Opcode.SET_DIMS, tuple(a.shape)),
        Instruction(Opcode.SET_MSU_MODE, msu_mode),
        Instruction(Opcode.BIND_OPERAND, (SLOT_SPARSE, a)),
        Instruction(Opcode.BIND_OPERAND, (SLOT_VECTOR, np.asarray(vec))),
        Instruction(Opcode.LAUNCH),
    ]
