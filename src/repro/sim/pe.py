"""Exact per-record PE lane interpreter (Section 5.2.4, Fig. 5b).

:class:`PELane` walks one lane's CISS record stream exactly as one PE row
does: the TSR accumulates ``sum_D0 scalar * fiber0``, the fiber fold applies
``fiber1 op TSR`` into the OSR, and slice/row boundaries drain the OSR to
the MSU. It produces both the *functional* result (accumulated into a dense
output array) and the exact cycle count under the same
:class:`~repro.sim.costs.KernelCosts` table the vectorized engine uses.

This is the ground truth the vectorized engine is validated against, and
the component that demonstrates the CISS stream alone carries everything a
PE needs (no centralized decode — the limitation of CISR that CISS lifts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro import obs
from repro.formats.ciss import KIND_HEADER, KIND_NNZ, KIND_PAD, LaneRecord
from repro.sim.costs import KernelCosts
from repro.util.errors import SimulationError


@dataclass
class LaneRunResult:
    """Timing and activity of one lane's execution."""

    cycles: int
    ops: int
    nnz_records: int
    headers: int
    fibers: int
    drains: int


class PELane:
    """One PE row executing a CISS lane stream.

    Parameters
    ----------
    costs:
        Cost table from :func:`repro.sim.costs.kernel_costs`.
    fiber0:
        The SPM-resident fiber0 source (rows of C for MTTKRP/TTMc, rows of
        B for SpMM, the dense vector for SpMV).
    fiber1:
        The SPM-resident fiber1 source (rows of B) for MTTKRP/TTMc; None
        otherwise.
    f1_tile:
        TTMc only: how many fiber1 elements the OSR can hold (OLEN).
    """

    def __init__(
        self,
        costs: KernelCosts,
        fiber0: np.ndarray,
        fiber1: Optional[np.ndarray] = None,
        f1_tile: int = 0,
    ) -> None:
        self.costs = costs
        self.fiber0 = np.asarray(fiber0, dtype=np.float64)
        self.fiber1 = None if fiber1 is None else np.asarray(fiber1, dtype=np.float64)
        self.f1_tile = f1_tile
        if costs.uses_fibers and self.fiber1 is None:
            raise SimulationError(f"{costs.kernel} needs a fiber1 source")

    def run(
        self,
        records: Sequence[LaneRecord],
        out: np.ndarray,
        trace: Optional[list] = None,
    ) -> LaneRunResult:
        """Execute the lane stream, accumulating results into ``out``.

        ``out`` is indexed by slice/row id along axis 0 and must already
        have the output-tile shape (F for MTTKRP/SpMM, (F1, F2) for TTMc,
        scalar per row for SpMV). When ``trace`` is a list, one
        ``(cycle, event, detail)`` tuple is appended per micro-event
        (``header`` / ``mac`` / ``fold`` / ``drain``), giving a
        cycle-by-cycle view of the PE for debugging and the trace tests.
        An active micro-mode tracer (``Tracer(micro=True)``) collects the
        same events onto its sim track without the caller passing a list.
        """
        costs = self.costs
        tracer = obs.tracer()
        if trace is None and tracer.micro:
            trace = []
        cycles = 0
        ops = 0
        nnz_records = headers = fibers = drains = 0
        cur_slice = -1
        cur_j = -1
        tsr = None
        osr = None

        def emit(event: str, detail: int) -> None:
            if trace is not None:
                trace.append((cycles, event, detail))

        def fold() -> None:
            nonlocal osr, tsr, fibers, cycles, ops
            if tsr is None:
                return
            fibers += 1
            cycles += costs.fold_cycles
            ops += costs.ops_per_fold
            emit("fold", cur_j)
            if costs.kernel in ("spttmc", "dttmc"):
                contrib = np.outer(self.fiber1[cur_j][: self.f1_tile], tsr)
            else:
                contrib = self.fiber1[cur_j] * tsr
            osr = contrib if osr is None else osr + contrib
            tsr = None

        def drain() -> None:
            nonlocal osr, drains, cycles
            if osr is None:
                return
            drains += 1
            cycles += costs.drain_cycles
            emit("drain", cur_slice)
            out[cur_slice] = out[cur_slice] + osr
            osr = None

        for rec in records:
            if rec.kind == KIND_PAD:
                continue
            if rec.kind == KIND_HEADER:
                if costs.uses_fibers:
                    fold()
                drain()
                cur_slice = rec.a
                cur_j = -1
                cycles += costs.header_cycles
                headers += 1
                emit("header", cur_slice)
                continue
            if rec.kind != KIND_NNZ:
                raise SimulationError(f"unknown record kind {rec.kind}")
            if cur_slice < 0:
                raise SimulationError("nonzero record before any header")
            if costs.uses_fibers and rec.a != cur_j:
                fold()  # close the previous fiber before this record
                cur_j = rec.a
            nnz_records += 1
            cycles += costs.nnz_cycles
            ops += costs.ops_per_nnz
            emit("mac", rec.a)
            if costs.uses_fibers:
                scaled = rec.val * self.fiber0[rec.k]
                tsr = scaled if tsr is None else tsr + scaled
            else:
                # SpMM/SpMV: scalar * fiber0 accumulates straight into OSR.
                contrib = rec.val * self.fiber0[rec.a]
                osr = contrib if osr is None else osr + contrib
        if costs.uses_fibers:
            fold()
        drain()
        result = LaneRunResult(
            cycles=cycles,
            ops=ops,
            nnz_records=nnz_records,
            headers=headers,
            fibers=fibers,
            drains=drains,
        )
        self._emit_obs(result, trace if tracer.micro else None, tracer)
        return result

    def _emit_obs(self, result: LaneRunResult, micro_events, tracer) -> None:
        """Mirror one lane run into the active registry/tracer (post-run,
        so the record loop itself carries no instrumentation)."""
        reg = obs.metrics()
        if reg.enabled:
            reg.counter("pe.lane.runs", "PE lane stream executions").inc()
            reg.counter("pe.lane.cycles", "PE lane cycles").inc(result.cycles)
            reg.counter("pe.lane.ops", "PE lane MAC operations").inc(result.ops)
            events = reg.counter(
                "pe.lane.records", "PE lane activity by event", ("event",)
            )
            for event, count in (
                ("nnz", result.nnz_records),
                ("header", result.headers),
                ("fiber", result.fibers),
                ("drain", result.drains),
            ):
                if count:
                    events.labels(event=event).inc(count)
        if tracer.enabled and micro_events:
            for cycle, event, detail in micro_events:
                tracer.sim_instant(
                    f"pe.{event}", cycle, args={"detail": int(detail)}
                )
