"""Exact per-record PE lane interpreter (Section 5.2.4, Fig. 5b).

:class:`PELane` walks one lane's CISS record stream exactly as one PE row
does: the TSR accumulates ``sum_D0 scalar * fiber0``, the fiber fold applies
``fiber1 op TSR`` into the OSR, and slice/row boundaries drain the OSR to
the MSU. It produces both the *functional* result (accumulated into a dense
output array) and the exact cycle count under the same
:class:`~repro.sim.costs.KernelCosts` table the vectorized engine uses.

This is the ground truth the vectorized engine is validated against, and
the component that demonstrates the CISS stream alone carries everything a
PE needs (no centralized decode — the limitation of CISR that CISS lifts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.formats.ciss import KIND_HEADER, KIND_NNZ, KIND_PAD, LaneRecord
from repro.sim.costs import KernelCosts
from repro.sim.engine import resolve_sim_engine
from repro.util.errors import SimulationError


def _segmented_sequential_sum(
    contrib: np.ndarray, starts: np.ndarray, ends: np.ndarray
) -> np.ndarray:
    """Left-to-right sum of ``contrib[starts[s]:ends[s]]`` per segment.

    Bit-identical to the interpreter's accumulation chain: the first
    element is *assigned* (not added to zero, which would flip -0.0) and
    the rest are added one rank at a time — sequential within a segment,
    vectorized across segments. ``np.add.reduceat`` is NOT a substitute:
    its pairwise summation reorders long chains and breaks bit-identity.
    """
    lengths = ends - starts
    n = lengths.shape[0]
    if n == 0:
        return contrib[starts].copy()
    maxlen = int(lengths.max())
    if maxlen <= 1:
        return contrib[starts].copy()
    # Sort segments longest-first so each rank step touches a contiguous
    # prefix (slice writes instead of boolean scatters); the per-segment
    # addition chain is unchanged, so so is every rounding step.
    order = np.argsort(-lengths, kind="stable")
    s_ord = starts[order]
    neg_l = -lengths[order]
    out_ord = contrib[s_ord]
    # prefix size at rank p: how many segments still have an element
    ms = np.searchsorted(neg_l, -np.arange(1, maxlen), side="left")
    idx_buf = np.empty(n, dtype=s_ord.dtype)
    gat_buf = np.empty_like(out_ord)
    for p in range(1, maxlen):
        m = ms[p - 1]
        idx = np.add(s_ord[:m], p, out=idx_buf[:m])
        gathered = np.take(contrib, idx, axis=0, out=gat_buf[:m])
        np.add(out_ord[:m], gathered, out=out_ord[:m])
    out = np.empty_like(out_ord)
    out[order] = out_ord
    return out


def _first_run_boundaries(*keys: np.ndarray) -> np.ndarray:
    """Boolean mask marking the first element of each run of equal keys."""
    n = keys[0].shape[0]
    new = np.zeros(n, dtype=bool)
    if n:
        new[0] = True
        for key in keys:
            new[1:] |= key[1:] != key[:-1]
    return new


def lane_pass_arrays(
    costs: KernelCosts,
    fiber0: np.ndarray,
    fiber1: Optional[np.ndarray],
    f1_tile: int,
    kinds: np.ndarray,
    a_idx: np.ndarray,
    k_idx: np.ndarray,
    vals: np.ndarray,
    out: np.ndarray,
    strict_kinds: bool = True,
) -> "LaneRunResult":
    """Array-level replay of one lane's record stream.

    Produces the same functional accumulation into ``out`` and the same
    :class:`LaneRunResult` as the :class:`PELane` interpreter, replacing
    the per-record loop with segmented reductions. Every floating-point
    expression mirrors the interpreter's (same operand order, ordered
    `np.add.at` scatter), so results are bit-identical.

    ``strict_kinds=False`` reproduces the event engine's decode instead,
    which treats any non-header, non-pad record as a nonzero.
    """
    kinds = np.asarray(kinds)
    live = kinds != KIND_PAD
    ck = kinds[live]
    ca = np.asarray(a_idx)[live]
    is_hdr = ck == KIND_HEADER
    hdr_cum = np.cumsum(is_hdr)
    if strict_kinds:
        is_nnz = ck == KIND_NNZ
        bad = ~(is_hdr | is_nnz) | (is_nnz & (hdr_cum == 0))
        if bad.any():
            i = int(np.argmax(bad))
            if ck[i] != KIND_NNZ:
                raise SimulationError(f"unknown record kind {int(ck[i])}")
            raise SimulationError("nonzero record before any header")
    else:
        is_nnz = ~is_hdr
        if is_nnz.any() and hdr_cum[np.argmax(is_nnz)] == 0:
            raise SimulationError("nonzero record before any header")
    headers = int(hdr_cum[-1]) if hdr_cum.size else 0
    hdr_slices = ca[is_hdr]
    nnz_pos = np.nonzero(is_nnz)[0]
    n = int(nnz_pos.size)
    fibers = drains = 0
    if n:
        nnz_seg = hdr_cum[nnz_pos]  # 1-based segment (header) index
        na = ca[nnz_pos]
        nv = np.asarray(vals)[live][nnz_pos]
        if costs.uses_fibers:
            nk = np.asarray(k_idx)[live][nnz_pos]
            # One fiber run per maximal (segment, j) stretch; the TSR
            # accumulates scaled rows sequentially within each run.
            new_run = _first_run_boundaries(nnz_seg, na)
            run_starts = np.nonzero(new_run)[0]
            run_ends = np.append(run_starts[1:], n)
            scaled = nv[:, None] * fiber0[nk]
            tsr = _segmented_sequential_sum(scaled, run_starts, run_ends)
            run_j = na[run_starts]
            run_seg = nnz_seg[run_starts]
            if costs.kernel in ("spttmc", "dttmc"):
                contrib = fiber1[run_j][:, :f1_tile, None] * tsr[:, None, :]
            else:
                contrib = fiber1[run_j] * tsr
            new_seg = _first_run_boundaries(run_seg)
            seg_starts = np.nonzero(new_seg)[0]
            seg_ends = np.append(seg_starts[1:], run_starts.size)
            osr = _segmented_sequential_sum(contrib, seg_starts, seg_ends)
            drain_slices = hdr_slices[run_seg[seg_starts] - 1]
            fibers = int(run_starts.size)
        else:
            # SpMM/SpMV: scalar * fiber0 accumulates straight into OSR.
            fb = fiber0[na]
            contrib = nv[:, None] * fb if fb.ndim > 1 else nv * fb
            new_seg = _first_run_boundaries(nnz_seg)
            seg_starts = np.nonzero(new_seg)[0]
            seg_ends = np.append(seg_starts[1:], n)
            osr = _segmented_sequential_sum(contrib, seg_starts, seg_ends)
            drain_slices = hdr_slices[nnz_seg[seg_starts] - 1]
        drains = int(seg_starts.size)
        np.add.at(out, drain_slices, osr)  # ordered, duplicate-safe scatter
    cycles = (
        costs.header_cycles * headers
        + costs.nnz_cycles * n
        + costs.fold_cycles * fibers
        + costs.drain_cycles * drains
    )
    return LaneRunResult(
        cycles=cycles,
        ops=costs.ops_per_nnz * n + costs.ops_per_fold * fibers,
        nnz_records=n,
        headers=headers,
        fibers=fibers,
        drains=drains,
    )


@dataclass
class LaneRunResult:
    """Timing and activity of one lane's execution."""

    cycles: int
    ops: int
    nnz_records: int
    headers: int
    fibers: int
    drains: int


class PELane:
    """One PE row executing a CISS lane stream.

    Parameters
    ----------
    costs:
        Cost table from :func:`repro.sim.costs.kernel_costs`.
    fiber0:
        The SPM-resident fiber0 source (rows of C for MTTKRP/TTMc, rows of
        B for SpMM, the dense vector for SpMV).
    fiber1:
        The SPM-resident fiber1 source (rows of B) for MTTKRP/TTMc; None
        otherwise.
    f1_tile:
        TTMc only: how many fiber1 elements the OSR can hold (OLEN).
    """

    def __init__(
        self,
        costs: KernelCosts,
        fiber0: np.ndarray,
        fiber1: Optional[np.ndarray] = None,
        f1_tile: int = 0,
    ) -> None:
        self.costs = costs
        self.fiber0 = np.asarray(fiber0, dtype=np.float64)
        self.fiber1 = None if fiber1 is None else np.asarray(fiber1, dtype=np.float64)
        self.f1_tile = f1_tile
        if costs.uses_fibers and self.fiber1 is None:
            raise SimulationError(f"{costs.kernel} needs a fiber1 source")

    def run(
        self,
        records: Sequence[LaneRecord],
        out: np.ndarray,
        trace: Optional[list] = None,
        engine: Optional[str] = None,
    ) -> LaneRunResult:
        """Execute the lane stream, accumulating results into ``out``.

        ``out`` is indexed by slice/row id along axis 0 and must already
        have the output-tile shape (F for MTTKRP/SpMM, (F1, F2) for TTMc,
        scalar per row for SpMV). When ``trace`` is a list, one
        ``(cycle, event, detail)`` tuple is appended per micro-event
        (``header`` / ``mac`` / ``fold`` / ``drain``), giving a
        cycle-by-cycle view of the PE for debugging and the trace tests.
        An active micro-mode tracer (``Tracer(micro=True)``) collects the
        same events onto its sim track without the caller passing a list.

        ``engine`` selects the implementation (defaults to
        :func:`repro.sim.engine.default_sim_engine`): ``"fast"``/``"jit"``
        run the batched array path (bit-identical results), ``"legacy"``
        the original per-record interpreter. Micro-event tracing needs
        per-record stepping, so an active ``trace`` (or micro tracer)
        always runs the interpreter.
        """
        costs = self.costs
        tracer = obs.tracer()
        if trace is None and tracer.micro:
            trace = []
        if trace is None and resolve_sim_engine(engine) != "legacy":
            kinds = np.fromiter(
                (rec.kind for rec in records), np.uint8, count=len(records)
            )
            a_idx = np.fromiter(
                (rec.a for rec in records), np.int64, count=len(records)
            )
            k_idx = np.fromiter(
                (rec.k for rec in records), np.int64, count=len(records)
            )
            vals = np.fromiter(
                (rec.val for rec in records), np.float64, count=len(records)
            )
            return self.run_arrays(kinds, a_idx, k_idx, vals, out)

        cycles = 0
        ops = 0
        nnz_records = headers = fibers = drains = 0
        cur_slice = -1
        cur_j = -1
        tsr = None
        osr = None

        def emit(event: str, detail: int) -> None:
            if trace is not None:
                trace.append((cycles, event, detail))

        def fold() -> None:
            nonlocal osr, tsr, fibers, cycles, ops
            if tsr is None:
                return
            fibers += 1
            cycles += costs.fold_cycles
            ops += costs.ops_per_fold
            emit("fold", cur_j)
            if costs.kernel in ("spttmc", "dttmc"):
                contrib = np.outer(self.fiber1[cur_j][: self.f1_tile], tsr)
            else:
                contrib = self.fiber1[cur_j] * tsr
            osr = contrib if osr is None else osr + contrib
            tsr = None

        def drain() -> None:
            nonlocal osr, drains, cycles
            if osr is None:
                return
            drains += 1
            cycles += costs.drain_cycles
            emit("drain", cur_slice)
            out[cur_slice] = out[cur_slice] + osr
            osr = None

        for rec in records:
            if rec.kind == KIND_PAD:
                continue
            if rec.kind == KIND_HEADER:
                if costs.uses_fibers:
                    fold()
                drain()
                cur_slice = rec.a
                cur_j = -1
                cycles += costs.header_cycles
                headers += 1
                emit("header", cur_slice)
                continue
            if rec.kind != KIND_NNZ:
                raise SimulationError(f"unknown record kind {rec.kind}")
            if cur_slice < 0:
                raise SimulationError("nonzero record before any header")
            if costs.uses_fibers and rec.a != cur_j:
                fold()  # close the previous fiber before this record
                cur_j = rec.a
            nnz_records += 1
            cycles += costs.nnz_cycles
            ops += costs.ops_per_nnz
            emit("mac", rec.a)
            if costs.uses_fibers:
                scaled = rec.val * self.fiber0[rec.k]
                tsr = scaled if tsr is None else tsr + scaled
            else:
                # SpMM/SpMV: scalar * fiber0 accumulates straight into OSR.
                contrib = rec.val * self.fiber0[rec.a]
                osr = contrib if osr is None else osr + contrib
        if costs.uses_fibers:
            fold()
        drain()
        result = LaneRunResult(
            cycles=cycles,
            ops=ops,
            nnz_records=nnz_records,
            headers=headers,
            fibers=fibers,
            drains=drains,
        )
        self._emit_obs(result, trace if tracer.micro else None, tracer)
        return result

    def run_arrays(
        self,
        kinds: np.ndarray,
        a_idx: np.ndarray,
        k_idx: np.ndarray,
        vals: np.ndarray,
        out: np.ndarray,
    ) -> LaneRunResult:
        """Array-native fast path over one lane's record columns.

        Takes the four column vectors of
        :meth:`repro.formats.ciss._CISSBase.lane_arrays` directly, so the
        hot path never materializes :class:`LaneRecord` objects. Emits the
        same observability counters as :meth:`run`.
        """
        result = lane_pass_arrays(
            self.costs, self.fiber0, self.fiber1, self.f1_tile,
            kinds, a_idx, k_idx, vals, out,
        )
        self._emit_obs(result, None, obs.tracer())
        return result

    def run_stream(
        self,
        ciss,
        lane: int,
        out: np.ndarray,
        trace: Optional[list] = None,
        engine: Optional[str] = None,
    ) -> LaneRunResult:
        """Execute one lane of an encoded CISS stream.

        Convenience entry that feeds the fast path from the stream's
        memoized :meth:`~repro.formats.ciss._CISSBase.lane_arrays` (zero
        conversion cost) and the legacy interpreter from
        :meth:`~repro.formats.ciss._CISSBase.lane_records`.
        """
        if trace is None and not obs.tracer().micro:
            if resolve_sim_engine(engine) != "legacy":
                return self.run_arrays(*ciss.lane_arrays(lane), out)
        return self.run(
            ciss.lane_records(lane), out, trace=trace, engine="legacy"
        )

    def _emit_obs(self, result: LaneRunResult, micro_events, tracer) -> None:
        """Mirror one lane run into the active registry/tracer (post-run,
        so the record loop itself carries no instrumentation)."""
        reg = obs.metrics()
        if reg.enabled:
            reg.counter("pe.lane.runs", "PE lane stream executions").inc()
            reg.counter("pe.lane.cycles", "PE lane cycles").inc(result.cycles)
            reg.counter("pe.lane.ops", "PE lane MAC operations").inc(result.ops)
            events = reg.counter(
                "pe.lane.records", "PE lane activity by event", ("event",)
            )
            for event, count in (
                ("nnz", result.nnz_records),
                ("header", result.headers),
                ("fiber", result.fibers),
                ("drain", result.drains),
            ):
                if count:
                    events.labels(event=event).inc(count)
        if tracer.enabled and micro_events:
            for cycle, event, detail in micro_events:
                tracer.sim_instant(
                    f"pe.{event}", cycle, args={"detail": int(detail)}
                )
