"""Multi-chip scaling model: partitioned tensor kernels across accelerators.

A natural extension beyond the paper's single-chip evaluation: the output
mode of MTTKRP/TTMc partitions cleanly (different output slices never
interact), so C chips can each run the kernel over a subset of slices.
This module partitions slices with the same least-loaded heuristic CISS
uses for lanes, simulates every chip independently, and reports makespan
and scaling efficiency — quantifying how load skew and the per-chip tiling
overheads erode ideal linear scaling.

The dense operand matrices are replicated to every chip (each holds its
own SPM-tiled copy stream), matching how slice-parallel SPLATT distributes
MTTKRP; no inter-chip communication is needed until the factor update,
which is the host's job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.sim.accelerator import Tensaurus
from repro.sim.config import TensaurusConfig
from repro.sim.report import SimReport
from repro.tensor import SparseTensor
from repro.util.errors import ConfigError, KernelError


@dataclass
class ChipAssignment:
    """The slices one chip owns and its simulated execution."""

    chip: int
    slices: np.ndarray  # global slice indices along the target mode
    nnz: int
    report: Optional[SimReport] = None


@dataclass
class MultiChipResult:
    """Outcome of a partitioned kernel execution."""

    assignments: List[ChipAssignment]
    mode: int

    @property
    def num_chips(self) -> int:
        return len(self.assignments)

    @property
    def makespan_s(self) -> float:
        """Parallel completion time: the slowest chip."""
        return max(
            (a.report.time_s for a in self.assignments if a.report), default=0.0
        )

    @property
    def total_chip_seconds(self) -> float:
        return sum(a.report.time_s for a in self.assignments if a.report)

    @property
    def scaling_efficiency(self) -> float:
        """(sum of chip work) / (chips * makespan): 1.0 is perfect balance."""
        span = self.makespan_s
        if span <= 0:
            return 1.0
        return self.total_chip_seconds / (self.num_chips * span)

    @property
    def total_ops(self) -> int:
        return sum(a.report.ops for a in self.assignments if a.report)

    def combined_output(self, out_shape) -> np.ndarray:
        """Assemble the global output from the per-chip partial outputs."""
        out = np.zeros(out_shape, dtype=np.float64)
        for a in self.assignments:
            if a.report is None or a.report.output is None:
                raise KernelError("run with compute_output=True to combine")
            out[a.slices] = a.report.output[a.slices]
        return out


def partition_slices(
    tensor: SparseTensor, mode: int, num_chips: int
) -> List[np.ndarray]:
    """Deal nonempty slices to chips, least-loaded-first (by nonzeros)."""
    if num_chips <= 0:
        raise ConfigError("num_chips must be positive")
    counts = tensor.slice_nnz_counts(mode)
    nonempty = np.flatnonzero(counts)
    # Heaviest first gives the classic LPT bound on imbalance.
    order = nonempty[np.argsort(counts[nonempty])[::-1]]
    loads = np.zeros(num_chips, dtype=np.int64)
    owner = {}
    for s in order:
        chip = int(np.argmin(loads))
        loads[chip] += counts[s]
        owner[int(s)] = chip
    return [
        np.array(sorted(s for s, c in owner.items() if c == chip), dtype=np.int64)
        for chip in range(num_chips)
    ]


class MultiChipTensaurus:
    """A farm of identical Tensaurus chips running one partitioned kernel."""

    def __init__(
        self, num_chips: int, config: Optional[TensaurusConfig] = None
    ) -> None:
        if num_chips <= 0:
            raise ConfigError("num_chips must be positive")
        self.num_chips = num_chips
        self.config = config or TensaurusConfig()

    def run_mttkrp(
        self,
        tensor: SparseTensor,
        mat_b: np.ndarray,
        mat_c: np.ndarray,
        mode: int = 0,
        msu_mode: str = "auto",
        compute_output: bool = False,
    ) -> MultiChipResult:
        """Partitioned SpMTTKRP: each chip runs its slice subset."""
        if tensor.ndim != 3:
            raise KernelError("multi-chip tensor kernels are 3-d")
        partitions = partition_slices(tensor, mode, self.num_chips)
        assignments: List[ChipAssignment] = []
        for chip, slices in enumerate(partitions):
            sub = _restrict_to_slices(tensor, mode, slices)
            assignment = ChipAssignment(chip, slices, sub.nnz)
            if sub.nnz:
                acc = Tensaurus(self.config)
                assignment.report = acc.run_mttkrp(
                    sub, mat_b, mat_c, mode=mode, msu_mode=msu_mode,
                    compute_output=compute_output,
                )
            assignments.append(assignment)
        return MultiChipResult(assignments=assignments, mode=mode)


def _restrict_to_slices(
    tensor: SparseTensor, mode: int, slices: np.ndarray
) -> SparseTensor:
    """The sub-tensor holding only the given slices (global indexing kept,
    so per-chip outputs line up with the global output)."""
    if slices.size == 0:
        return SparseTensor.empty(tensor.shape)
    mask = np.isin(tensor.coords[:, mode], slices)
    return SparseTensor(
        tensor.shape, tensor.coords[mask], tensor.values[mask], canonical=True
    )
