"""Multi-chip scaling model: partitioned tensor kernels across accelerators.

A natural extension beyond the paper's single-chip evaluation: the output
mode of MTTKRP/TTMc partitions cleanly (different output slices never
interact), so C chips can each run the kernel over a subset of slices.
This module partitions slices with the same least-loaded heuristic CISS
uses for lanes, simulates every chip independently, and reports makespan
and scaling efficiency — quantifying how load skew and the per-chip tiling
overheads erode ideal linear scaling.

The dense operand matrices are replicated to every chip (each holds its
own SPM-tiled copy stream), matching how slice-parallel SPLATT distributes
MTTKRP; no inter-chip communication is needed until the factor update,
which is the host's job.

Fault tolerance: an armed :class:`~repro.sim.faults.FaultPlan` can fail
whole chips (``chip_failure_rate`` / ``forced_chip_failures``), or a chip
may abort at launch. The farm then re-deals the dead chips' slices over
the survivors with the same least-loaded heuristic — seeded with each
survivor's primary load, so recovery work lands on the lightest chips —
and runs a recovery round. The makespan is primary round + recovery round
(the failure is only observed when the round completes), which is exactly
the degradation a slice-parallel system with detection-at-barrier pays.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

import numpy as np

from repro.sim.accelerator import Tensaurus
from repro.sim.config import TensaurusConfig
from repro.sim.faults import CHIP_FAILURE, FaultEvent, FaultPlan
from repro.sim.report import SimReport
from repro.tensor import SparseTensor
from repro.util.errors import ConfigError, FaultError, KernelError


@dataclass
class ChipAssignment:
    """The slices one chip owns and its simulated execution."""

    chip: int
    slices: np.ndarray  # global slice indices along the target mode
    nnz: int
    report: Optional[SimReport] = None
    failed: bool = False


@dataclass
class MultiChipResult:
    """Outcome of a partitioned kernel execution.

    ``assignments`` is the primary round; when chips failed,
    ``failed_chips`` names them, ``fault_events`` records the failures and
    ``recovery`` holds the surviving chips' re-deal round covering the dead
    chips' slices.

    With hedging enabled, ``hedge`` is the straggler chip's slice set
    replayed on the least-loaded twin chip (queued behind the twin's own
    work); ``hedge_won`` records whether the twin's copy finished first —
    in which case the straggler's in-flight run is cancelled at the
    twin's completion time (first-wins) — and a hedged straggler that
    *fails* is covered by its twin instead of joining the recovery
    re-deal.
    """

    assignments: List[ChipAssignment]
    mode: int
    failed_chips: List[int] = field(default_factory=list)
    recovery: List[ChipAssignment] = field(default_factory=list)
    fault_events: List[FaultEvent] = field(default_factory=list)
    hedge: Optional[ChipAssignment] = None
    hedge_straggler_chip: Optional[int] = None
    hedge_won: bool = False

    @property
    def num_chips(self) -> int:
        return len(self.assignments)

    @property
    def hedge_completion_s(self) -> float:
        """When the twin's hedged copy finishes: its own primary work plus
        the replayed straggler slices (inf with no hedge)."""
        if self.hedge is None or self.hedge.report is None:
            return float("inf")
        twin_own = next(
            (
                a.report.time_s
                for a in self.assignments
                if a.chip == self.hedge.chip and a.report
            ),
            0.0,
        )
        return twin_own + self.hedge.report.time_s

    @property
    def hedge_saved_s(self) -> float:
        """Wall-clock the winning hedge shaved off the straggler's own
        completion (0 when the hedge lost or was never launched)."""
        if self.hedge is None or not self.hedge_won:
            return 0.0
        straggler = next(
            (
                a
                for a in self.assignments
                if a.chip == self.hedge_straggler_chip
            ),
            None,
        )
        if straggler is None or straggler.failed or straggler.report is None:
            return 0.0
        return max(0.0, straggler.report.time_s - self.hedge_completion_s)

    @property
    def _straggler_completion_s(self) -> float:
        """The hedged straggler's own finish time (inf when it failed)."""
        straggler = next(
            (
                a
                for a in self.assignments
                if a.chip == self.hedge_straggler_chip
            ),
            None,
        )
        if straggler is None or straggler.failed or straggler.report is None:
            return float("inf")
        return straggler.report.time_s

    @property
    def hedge_wasted_s(self) -> float:
        """Twin chip-seconds burnt on a hedge that lost the race (the
        partial copy executed before first-wins cancelled it)."""
        if self.hedge is None or self.hedge.report is None or self.hedge_won:
            return 0.0
        twin_own = self.hedge_completion_s - self.hedge.report.time_s
        ran_for = max(0.0, self._straggler_completion_s - twin_own)
        return min(self.hedge.report.time_s, ran_for)

    def _chip_completion_s(self, a: ChipAssignment) -> float:
        """One primary-round chip's completion under hedge accounting
        (the race resolves first-wins: the loser is cancelled the moment
        the winner's copy of the slices completes)."""
        t = a.report.time_s if a.report is not None else 0.0
        if self.hedge is not None and a.chip == self.hedge.chip:
            # The twin runs its hedged copy back-to-back after its own
            # work, but is cancelled early if the straggler finishes first.
            t = min(
                self.hedge_completion_s,
                max(t, self._straggler_completion_s),
            )
        if (
            self.hedge_won
            and a.chip == self.hedge_straggler_chip
            and not a.failed
            and a.report is not None
        ):
            t = min(t, self.hedge_completion_s)
        return t

    @property
    def primary_span_s(self) -> float:
        """Completion time of the primary round (slowest surviving chip,
        hedge race resolved first-wins)."""
        return max(
            (self._chip_completion_s(a) for a in self.assignments),
            default=0.0,
        )

    @property
    def recovery_span_s(self) -> float:
        """Completion time of the recovery round (0 with no failures)."""
        return max(
            (a.report.time_s for a in self.recovery if a.report), default=0.0
        )

    @property
    def makespan_s(self) -> float:
        """Parallel completion time: primary round, then (after the failure
        is observed at the barrier) the recovery round."""
        return self.primary_span_s + self.recovery_span_s

    @property
    def recovery_overhead_s(self) -> float:
        """Extra wall-clock the failures cost over a fault-free round."""
        return self.recovery_span_s

    @property
    def total_chip_seconds(self) -> float:
        extra = [self.hedge] if self.hedge is not None else []
        return sum(
            a.report.time_s
            for a in self.assignments + self.recovery + extra
            if a.report
        )

    @property
    def scaling_efficiency(self) -> float:
        """(sum of chip work) / (chips * makespan): 1.0 is perfect balance."""
        span = self.makespan_s
        if span <= 0:
            return 1.0
        return self.total_chip_seconds / (self.num_chips * span)

    @property
    def total_ops(self) -> int:
        extra = [self.hedge] if self.hedge is not None else []
        return sum(
            a.report.ops
            for a in self.assignments + self.recovery + extra
            if a.report
        )

    def combined_output(self, out_shape) -> np.ndarray:
        """Assemble the global output from the per-chip partial outputs
        (failed chips' slices come from the recovery round, or from the
        twin's hedged copy when the straggler was hedged)."""
        out = np.zeros(out_shape, dtype=np.float64)
        extra = (
            [self.hedge]
            if self.hedge is not None
            and self.hedge_straggler_chip in self.failed_chips
            else []
        )
        for a in self.assignments + self.recovery + extra:
            if a.failed or a.slices.size == 0:
                continue
            if a.report is None or a.report.output is None:
                raise KernelError("run with compute_output=True to combine")
            out[a.slices] = a.report.output[a.slices]
        return out


def partition_slices(
    tensor: SparseTensor, mode: int, num_chips: int
) -> List[np.ndarray]:
    """Deal nonempty slices to chips, least-loaded-first (by nonzeros)."""
    if num_chips <= 0:
        raise ConfigError("num_chips must be positive")
    counts = tensor.slice_nnz_counts(mode)
    nonempty = np.flatnonzero(counts)
    # Heaviest first gives the classic LPT bound on imbalance.
    order = nonempty[np.argsort(counts[nonempty])[::-1]]
    loads = np.zeros(num_chips, dtype=np.int64)
    owner = {}
    for s in order:
        chip = int(np.argmin(loads))
        loads[chip] += counts[s]
        owner[int(s)] = chip
    return [
        np.array(sorted(s for s, c in owner.items() if c == chip), dtype=np.int64)
        for chip in range(num_chips)
    ]


def least_loaded_redeal(
    ordered_items: List,
    weights,
    survivors: List[int],
    survivor_loads: dict,
) -> dict:
    """Deal orphaned work items over survivors, least-loaded-first.

    The generic core of the chip-failure recovery re-deal, shared with
    the serving fleet's cross-shard failover
    (:mod:`repro.serving.fleet`): walk ``ordered_items`` (callers pass
    them heaviest-first for the LPT bound) and hand each to the survivor
    with the smallest running load, seeding loads with
    ``survivor_loads`` so recovery work lands on the members that have
    the least left to do. ``weights`` is any ``weights[item]`` mapping
    (dict or array). Ties break on the lowest survivor id, which keeps
    the deal deterministic. Returns ``{survivor: [items in deal
    order]}``.
    """
    loads = {c: int(survivor_loads.get(c, 0)) for c in survivors}
    assigned: dict = {c: [] for c in survivors}
    for item in ordered_items:
        chip = min(survivors, key=lambda c: (loads[c], c))
        loads[chip] += int(weights[item])
        assigned[chip].append(item)
    return assigned


def _redistribute_slices(
    tensor: SparseTensor,
    mode: int,
    orphan_slices: np.ndarray,
    survivors: List[int],
    survivor_loads: dict,
) -> dict:
    """Deal the failed chips' slices over the survivors, least-loaded-first
    seeded with each survivor's primary-round load (so recovery work lands
    on the chips that finished earliest)."""
    counts = tensor.slice_nnz_counts(mode)
    order = orphan_slices[np.argsort(counts[orphan_slices])[::-1]]
    assigned = least_loaded_redeal(
        [int(s) for s in order], counts, survivors, survivor_loads
    )
    return {
        c: np.array(sorted(slices), dtype=np.int64)
        for c, slices in assigned.items()
    }


class MultiChipTensaurus:
    """A farm of identical Tensaurus chips running one partitioned kernel.

    ``fault_plan`` (or ``config.fault_plan``) arms fault injection: whole
    chips fail per :meth:`FaultPlan.chip_failures` (plus any chip whose
    launch aborts), and the farm recovers by re-dealing their slices over
    the survivors. Every chip fails → :class:`FaultError`.
    """

    def __init__(
        self,
        num_chips: int,
        config: Optional[TensaurusConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if num_chips <= 0:
            raise ConfigError("num_chips must be positive")
        self.num_chips = num_chips
        self.config = config or TensaurusConfig()
        self.fault_plan = (
            fault_plan if fault_plan is not None else self.config.fault_plan
        )
        self._runs = 0

    def run_mttkrp(
        self,
        tensor: SparseTensor,
        mat_b: np.ndarray,
        mat_c: np.ndarray,
        mode: int = 0,
        msu_mode: str = "auto",
        compute_output: bool = False,
        hedge: bool = False,
    ) -> MultiChipResult:
        """Partitioned SpMTTKRP: each chip runs its slice subset.

        ``hedge=True`` additionally replays the heaviest chip's slices on
        the least-loaded surviving chip (queued behind its own work) —
        the classic straggler hedge. The race resolves first-wins in the
        result's makespan accounting, and a hedged straggler that fails
        outright is covered by its twin instead of the recovery re-deal.
        The default (off) path is untouched and bit-identical.
        """
        if tensor.ndim != 3:
            raise KernelError("multi-chip tensor kernels are 3-d")
        run_idx = self._runs
        self._runs += 1
        plan = self.fault_plan
        armed = plan is not None and plan.enabled
        failed = set(plan.chip_failures(self.num_chips, run_idx)) if armed else set()

        partitions = partition_slices(tensor, mode, self.num_chips)
        assignments: List[ChipAssignment] = []
        events: List[FaultEvent] = []
        for chip, slices in enumerate(partitions):
            sub = _restrict_to_slices(tensor, mode, slices)
            assignment = ChipAssignment(chip, slices, sub.nnz)
            if chip in failed:
                assignment.failed = True
            elif sub.nnz:
                acc = Tensaurus(
                    self.config,
                    fault_plan=plan,
                    fault_epoch=chip,
                )
                try:
                    assignment.report = acc.run_mttkrp(
                        sub, mat_b, mat_c, mode=mode, msu_mode=msu_mode,
                        compute_output=compute_output,
                    )
                except FaultError:
                    # The chip died at launch: same recovery path as a drawn
                    # chip failure.
                    assignment.failed = True
                    failed.add(chip)
            assignments.append(assignment)
        for chip in sorted(failed):
            events.append(FaultEvent(CHIP_FAILURE, ("chip", int(chip))))

        # --- Straggler hedge: replay the heaviest chip's slices on the
        # least-loaded surviving twin, queued behind the twin's own work.
        hedge_assignment: Optional[ChipAssignment] = None
        hedge_straggler: Optional[int] = None
        hedge_won = False
        if hedge and self.num_chips >= 2:
            loaded = [a for a in assignments if a.nnz > 0]
            if len(loaded) >= 2:
                straggler = max(loaded, key=lambda a: (a.nnz, -a.chip))
                twins = [
                    a
                    for a in assignments
                    if a.chip != straggler.chip and not a.failed
                ]
                if twins:
                    twin = min(twins, key=lambda a: (a.nnz, a.chip))
                    sub = _restrict_to_slices(tensor, mode, straggler.slices)
                    hedge_plan = None
                    if armed:
                        # The hedge exists to absorb failures, not re-draw
                        # them: abort/chip-failure knobs are stripped.
                        hedge_plan = replace(
                            plan,
                            launch_abort_rate=0.0,
                            chip_failure_rate=0.0,
                            forced_chip_failures=(),
                        )
                    acc = Tensaurus(
                        self.config,
                        fault_plan=hedge_plan,
                        fault_epoch=2 * self.num_chips + twin.chip,
                    )
                    hedge_assignment = ChipAssignment(
                        twin.chip, straggler.slices, sub.nnz
                    )
                    hedge_assignment.report = acc.run_mttkrp(
                        sub, mat_b, mat_c, mode=mode, msu_mode=msu_mode,
                        compute_output=compute_output,
                    )
                    hedge_straggler = straggler.chip
                    twin_own = twin.report.time_s if twin.report else 0.0
                    hedge_done = twin_own + hedge_assignment.report.time_s
                    straggler_done = (
                        straggler.report.time_s
                        if (not straggler.failed and straggler.report)
                        else float("inf")
                    )
                    hedge_won = hedge_done < straggler_done

        recovery: List[ChipAssignment] = []
        if failed:
            survivors = [c for c in range(self.num_chips) if c not in failed]
            if not survivors:
                raise FaultError(
                    f"all {self.num_chips} chips failed in run {run_idx}"
                )
            # A hedged straggler's slices are already covered by its twin:
            # they do not join the recovery re-deal.
            covered = (
                {hedge_straggler}
                if hedge_assignment is not None and hedge_straggler in failed
                else set()
            )
            orphans = np.concatenate(
                [partitions[c] for c in sorted(failed) if c not in covered]
                + [np.empty(0, dtype=np.int64)]
            ).astype(np.int64)
            if orphans.size:
                loads = {
                    a.chip: a.nnz for a in assignments if not a.failed
                }
                re_deal = _redistribute_slices(
                    tensor, mode, orphans, survivors, loads
                )
                # Recovery runs re-draw tile faults on a fresh epoch but do
                # not re-fail: abort/chip-failure knobs are stripped.
                recovery_plan = None
                if armed:
                    recovery_plan = replace(
                        plan,
                        launch_abort_rate=0.0,
                        chip_failure_rate=0.0,
                        forced_chip_failures=(),
                    )
                for chip in survivors:
                    slices = re_deal.get(chip, np.empty(0, dtype=np.int64))
                    if slices.size == 0:
                        continue
                    sub = _restrict_to_slices(tensor, mode, slices)
                    assignment = ChipAssignment(chip, slices, sub.nnz)
                    if sub.nnz:
                        acc = Tensaurus(
                            self.config,
                            fault_plan=recovery_plan,
                            fault_epoch=self.num_chips + chip,
                        )
                        assignment.report = acc.run_mttkrp(
                            sub, mat_b, mat_c, mode=mode, msu_mode=msu_mode,
                            compute_output=compute_output,
                        )
                    recovery.append(assignment)
        return MultiChipResult(
            assignments=assignments,
            mode=mode,
            failed_chips=sorted(int(c) for c in failed),
            recovery=recovery,
            fault_events=events,
            hedge=hedge_assignment,
            hedge_straggler_chip=hedge_straggler,
            hedge_won=hedge_won,
        )


def _restrict_to_slices(
    tensor: SparseTensor, mode: int, slices: np.ndarray
) -> SparseTensor:
    """The sub-tensor holding only the given slices (global indexing kept,
    so per-chip outputs line up with the global output)."""
    if slices.size == 0:
        return SparseTensor.empty(tensor.shape)
    mask = np.isin(tensor.coords[:, mode], slices)
    return SparseTensor(
        tensor.shape, tensor.coords[mask], tensor.values[mask], canonical=True
    )
