"""Numba kernels behind ``engine="jit"`` (lazy compile, optional dep).

Each kernel is written as a plain-Python function over numpy arrays and
scalars — exactly the subset numba's ``njit`` compiles — and compiled on
first use when numba is installed (the ``[jit]`` extra). Without numba,
:func:`repro.sim.engine.resolve_sim_engine` already degrades ``"jit"`` to
``"fast"``, so these kernels only run compiled in production; the
uncompiled functions remain directly callable, which is how the agreement
suite pins their logic on machines without numba.

The kernels mirror the fast-path recurrences bit for bit: same operand
order, same ``max`` tie behavior, same int truncation.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.sim.engine import get_numba

_compiled: Dict[str, Callable] = {}


def _jitted(name: str, pyfunc: Callable) -> Callable:
    """The njit-compiled version of ``pyfunc`` (memoized), or ``pyfunc``
    itself when numba is not installed."""
    numba = get_numba()
    if numba is None:
        return pyfunc
    fn = _compiled.get(name)
    if fn is None:
        fn = numba.njit(cache=False)(pyfunc)
        _compiled[name] = fn
    return fn


# ----------------------------------------------------------------------
def _hbm_recurrence_py(gseq, slots, latency, per_burst):
    """Service recurrence over the coalesced burst sequence.

    ``gseq[j]`` is the issue-group index of burst ``j`` (nondecreasing).
    Returns ``(now, last_comp, bus_free)`` after the final burst: the
    elastic clock with one tick per group entered, the completion time of
    the last burst, and the next bus-free time.
    """
    n = gseq.shape[0]
    comp = np.zeros(n, dtype=np.int64)
    now = 0
    prev_g = -1
    bus_free = 0.0
    for j in range(n):
        g = gseq[j]
        now += g - prev_g
        prev_g = g
        if j >= slots and comp[j - slots] > now:
            now = comp[j - slots]
        if now >= bus_free:
            start = float(now)
        else:
            start = bus_free
        comp[j] = int(start + latency + per_burst)
        bus_free = start + per_burst
    return now, comp[n - 1], bus_free


def hbm_recurrence(gseq: np.ndarray, slots: int, latency: int, per_burst: float):
    fn = _jitted("hbm", _hbm_recurrence_py)
    now, last_comp, bus_free = fn(
        gseq, np.int64(slots), np.int64(latency), float(per_burst)
    )
    return int(now), int(last_comp), float(bus_free)


# ----------------------------------------------------------------------
# Event-engine timing kernel. State codes match sim.event._run_fast.
_IDLE, _WF, _MAC, _WFF, _FOLD, _HEADER, _DRAIN = 0, 1, 2, 3, 4, 5, 6


def _event_timing_py(
    lkinds,        # int64[records_total] per-lane compacted kinds, concatenated
    lslices,       # int64[records_total] per-lane a/j column, concatenated
    lbanks,        # int64[records_total] per-record SPM bank, concatenated
    offsets,       # int64[lanes + 1] lane l records = [offsets[l], offsets[l+1])
    pc,            # int64[entries, lanes] pushed-count prefix sums
    stall_flags,   # uint8[entries] (all zero when no fault plan)
    stall_cycles_each,
    queue_depth,
    banks,
    uses_fibers,   # 0/1
    kind_header,
    nnz_cycles, fold_cycles, drain_cycles, header_cycles,
    max_cycles,
):
    """Pure-integer replay of the event engine's clock loop.

    Returns ``(status, cycle, bank_stalls, msu_stalls, tlu_stalls,
    injected, cycles_busy, stalled_entries, n_stalled)`` where status 1
    means converged and 0 means the cycle budget was exhausted (the
    caller raises). ``stalled_entries[:n_stalled]`` lists the entries
    whose HBM-stall draw fired, in issue order.
    """
    entries = pc.shape[0]
    lanes = pc.shape[1]
    state = np.zeros(lanes, dtype=np.int64)
    busy = np.zeros(lanes, dtype=np.int64)
    cur_j = np.full(lanes, -1, dtype=np.int64)
    cur_bank = np.zeros(lanes, dtype=np.int64)
    has_tsr = np.zeros(lanes, dtype=np.int64)
    has_osr = np.zeros(lanes, dtype=np.int64)
    head = np.zeros(lanes, dtype=np.int64)
    tails = np.zeros(lanes, dtype=np.int64)
    cycles_busy = np.zeros(lanes, dtype=np.int64)
    winners = np.full(banks, -1, dtype=np.int64)
    granted = np.zeros(lanes, dtype=np.int64)
    stalled_entries = np.zeros(entries, dtype=np.int64)
    n_stalled = 0
    exhausted = False
    next_entry = 0
    stall_remaining = 0
    injected = 0
    bank_stalls = 0
    msu_stalls = 0
    tlu_stalls = 0
    cycle = 0

    while True:
        # --- Cycle skip (see sim.event._run_fast).
        if next_entry < entries:
            tlu_blocked = stall_flags[next_entry] == 0
            if tlu_blocked:
                if stall_remaining <= 0:
                    full = False
                    for l in range(lanes):
                        if tails[l] - head[l] >= queue_depth:
                            full = True
                            break
                    tlu_blocked = full
        else:
            tlu_blocked = exhausted
        delta = 0
        if tlu_blocked:
            delta = max_cycles + 1 - cycle
            if stall_remaining > 0 and stall_remaining < delta:
                delta = stall_remaining
            for l in range(lanes):
                b = busy[l]
                if b > 0:
                    if b < delta:
                        delta = b
                else:
                    inert = (
                        state[l] == _IDLE
                        and tails[l] == head[l]
                        and not (
                            exhausted and (has_tsr[l] == 1 or has_osr[l] == 1)
                        )
                    )
                    if not inert:
                        delta = 0
                        break
        if delta > 1:
            if stall_remaining > 0:
                stall_remaining -= delta
                injected += delta
            elif next_entry < entries:
                tlu_stalls += delta
            for l in range(lanes):
                b = busy[l]
                if b > 0:
                    busy[l] = b - delta
                    cycles_busy[l] += delta
                    if b == delta:
                        st = state[l]
                        if st == _MAC:
                            if uses_fibers == 1:
                                has_tsr[l] = 1
                            else:
                                has_osr[l] = 1
                        elif st == _FOLD:
                            has_osr[l] = 1
                            has_tsr[l] = 0
                        state[l] = _IDLE
            cycle += delta
            if next_entry >= entries and exhausted:
                done = True
                for l in range(lanes):
                    if not (
                        tails[l] == head[l]
                        and state[l] == _IDLE
                        and has_tsr[l] == 0
                        and has_osr[l] == 0
                    ):
                        done = False
                        break
                if done:
                    break
            if cycle > max_cycles:
                return (
                    0, cycle, bank_stalls, msu_stalls, tlu_stalls,
                    injected, cycles_busy, stalled_entries, n_stalled,
                )
            continue

        # --- TLU.
        if next_entry < entries:
            if stall_flags[next_entry] == 1:
                stall_flags[next_entry] = 0
                stall_remaining += stall_cycles_each
                stalled_entries[n_stalled] = next_entry
                n_stalled += 1
            if stall_remaining > 0:
                stall_remaining -= 1
                injected += 1
            else:
                full = False
                for l in range(lanes):
                    if tails[l] - head[l] >= queue_depth:
                        full = True
                        break
                if full:
                    tlu_stalls += 1
                else:
                    for l in range(lanes):
                        tails[l] = pc[next_entry, l]
                    next_entry += 1
        else:
            exhausted = True

        # --- Dispatch.
        for l in range(lanes):
            if busy[l] != 0 or state[l] != _IDLE:
                continue
            h = head[l]
            if tails[l] == h:
                if exhausted:
                    if uses_fibers == 1 and has_tsr[l] == 1:
                        state[l] = _WFF
                    elif has_osr[l] == 1:
                        state[l] = _DRAIN
                continue
            base = offsets[l]
            if lkinds[base + h] == kind_header:
                if uses_fibers == 1 and has_tsr[l] == 1:
                    state[l] = _WFF
                    continue
                if has_osr[l] == 1:
                    state[l] = _DRAIN
                    continue
                head[l] = h + 1
                cur_j[l] = -1
                state[l] = _HEADER
                busy[l] = header_cycles
                continue
            if uses_fibers == 1:
                j = lslices[base + h]
                if j != cur_j[l] and has_tsr[l] == 1:
                    state[l] = _WFF
                    continue
                cur_j[l] = j
            head[l] = h + 1
            cur_bank[l] = lbanks[base + h]
            state[l] = _WF

        # --- SPM arbitration.
        for b in range(banks):
            winners[b] = -1
        for l in range(lanes):
            granted[l] = 0
            if busy[l] == 0 and (state[l] == _WF or state[l] == _WFF):
                if state[l] == _WFF:
                    b = cur_j[l] % banks
                else:
                    b = cur_bank[l]
                if winners[b] >= 0:
                    bank_stalls += 1
                else:
                    winners[b] = l
                    granted[l] = 1

        # --- Advance.
        msu_used = False
        for l in range(lanes):
            b = busy[l]
            if b > 0:
                busy[l] = b - 1
                cycles_busy[l] += 1
                if b == 1:
                    st = state[l]
                    if st == _MAC:
                        if uses_fibers == 1:
                            has_tsr[l] = 1
                        else:
                            has_osr[l] = 1
                    elif st == _FOLD:
                        has_osr[l] = 1
                        has_tsr[l] = 0
                    state[l] = _IDLE
                continue
            st = state[l]
            if st == _WF:
                if granted[l] == 1:
                    cycles_busy[l] += 1
                    state[l] = _MAC
                    busy[l] = nnz_cycles - 1
                    if busy[l] == 0:
                        if uses_fibers == 1:
                            has_tsr[l] = 1
                        else:
                            has_osr[l] = 1
                        state[l] = _IDLE
                continue
            if st == _WFF:
                if granted[l] == 1:
                    cycles_busy[l] += 1
                    state[l] = _FOLD
                    if fold_cycles > 1:
                        busy[l] = fold_cycles - 1
                    else:
                        busy[l] = 0
                    if busy[l] == 0:
                        has_osr[l] = 1
                        has_tsr[l] = 0
                        state[l] = _IDLE
                continue
            if st == _DRAIN:
                if msu_used:
                    msu_stalls += 1
                else:
                    msu_used = True
                    has_osr[l] = 0
                    cycles_busy[l] += 1
                    busy[l] = drain_cycles - 1
                    if busy[l] == 0:
                        state[l] = _IDLE

        cycle += 1
        if next_entry >= entries and exhausted:
            done = True
            for l in range(lanes):
                if not (
                    tails[l] == head[l]
                    and state[l] == _IDLE
                    and has_tsr[l] == 0
                    and has_osr[l] == 0
                ):
                    done = False
                    break
            if done:
                break
        if cycle > max_cycles:
            return (
                0, cycle, bank_stalls, msu_stalls, tlu_stalls,
                injected, cycles_busy, stalled_entries, n_stalled,
            )

    return (
        1, cycle, bank_stalls, msu_stalls, tlu_stalls,
        injected, cycles_busy, stalled_entries, n_stalled,
    )


def event_timing(*args):
    return _jitted("event", _event_timing_py)(*args)
