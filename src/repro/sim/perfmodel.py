"""Closed-form performance model of the accelerator.

:class:`FastModel` predicts cycles and traffic from aggregate structure
statistics (nonzeros, nonempty fibers/slices, occupied tiles) without
CISS-encoding every tile, using the same cost constants as the cycle
simulator. It exists for two reasons:

1. Wide parameter sweeps (e.g. the Fig. 13 density sweep at many points)
   where re-encoding every tile would dominate runtime.
2. A cross-check: ``tests/test_perfmodel_agreement.py`` asserts the fast
   model tracks the cycle simulator within a tolerance band across kernels
   and densities, which guards both models against drift.

The deliberate approximations (documented inline): per-entry bank-conflict
stalls use the expected maximum of a multinomial instead of the actual
index distribution; lane imbalance and tail padding are ignored (the CISS
scheduler keeps them small); and compute/memory overlap is applied at the
workload level rather than per tile.
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np

from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.sim.config import TensaurusConfig
from repro.sim.costs import kernel_costs
from repro.sim.report import SimReport
from repro.sim.tiling import make_plan, tile_count
from repro.tensor import SparseTensor
from repro.util.errors import KernelError


def _expected_max_occupancy(balls: int, bins: int) -> float:
    """Monte-Carlo-free estimate of E[max bin load] for random banking.

    Uses the standard balls-in-bins asymptotic for the balanced case
    (``balls == bins``: about ``ln n / ln ln n``) blended with the mean
    load; exactness is unnecessary — the cycle simulator measures the true
    value and the agreement test bounds the error.
    """
    if balls <= 1 or bins <= 1:
        return float(balls)
    mean = balls / bins
    if mean >= 4:
        return mean + math.sqrt(2 * mean * math.log(bins))
    # Light-load regime: max is a small constant above the mean.
    return mean + 1.3


class FastModel:
    """Analytical timing model sharing the cycle simulator's constants."""

    def __init__(self, config: Optional[TensaurusConfig] = None) -> None:
        self.config = config or TensaurusConfig()

    # ------------------------------------------------------------------
    def mttkrp(
        self,
        tensor: SparseTensor,
        rank: int,
        mode: int = 0,
        msu_mode: str = "direct",
    ) -> SimReport:
        return self._tensor_kernel("spmttkrp", tensor, rank, 0, mode, msu_mode)

    def ttmc(
        self,
        tensor: SparseTensor,
        rank1: int,
        rank2: int,
        mode: int = 0,
        msu_mode: str = "direct",
    ) -> SimReport:
        return self._tensor_kernel("spttmc", tensor, rank1, rank2, mode, msu_mode)

    def spmm(
        self,
        a: Union[CSRMatrix, COOMatrix],
        ncols: int,
        msu_mode: str = "direct",
    ) -> SimReport:
        return self._matrix_kernel("spmm", a, ncols, msu_mode)

    def spmv(
        self, a: Union[CSRMatrix, COOMatrix], msu_mode: str = "direct"
    ) -> SimReport:
        return self._matrix_kernel("spmv", a, 1, msu_mode)

    def run(
        self,
        kernel: str,
        operand,
        rank: int = 0,
        rank2: int = 0,
        mode: int = 0,
        msu_mode: str = "direct",
    ) -> SimReport:
        """Dispatch by kernel name (the interface the auto-tuner's cheap
        tier uses). Accepts the same aliases as the tiling planner."""
        k = kernel.lower()
        if k in ("mttkrp", "spmttkrp", "dmttkrp"):
            return self.mttkrp(operand, rank, mode, msu_mode)
        if k in ("ttmc", "spttmc", "dttmc"):
            return self.ttmc(operand, rank, rank2 or rank, mode, msu_mode)
        if k in ("spmm", "gemm"):
            return self.spmm(operand, rank, msu_mode)
        if k in ("spmv", "gemv"):
            return self.spmv(operand, msu_mode)
        raise KernelError(f"unknown kernel {kernel!r}")

    # ------------------------------------------------------------------
    def _tensor_kernel(
        self,
        kernel: str,
        tensor: SparseTensor,
        rank: int,
        rank2: int,
        mode: int,
        msu_mode: str,
    ) -> SimReport:
        if tensor.ndim != 3:
            raise KernelError("tensor kernels are 3-d")
        if msu_mode == "auto":
            return self._auto_mode(
                self._tensor_kernel, kernel, tensor, rank, rank2, mode
            )
        cfg = self.config
        rest = [m for m in range(3) if m != mode]
        perm = tensor if mode == 0 else tensor.permute_modes([mode] + rest)
        dims = perm.shape
        coords = perm.coords
        base = "mttkrp" if kernel == "spmttkrp" else "ttmc"
        plan = make_plan(base, cfg, dims, msu_mode, rank, rank2)
        costs = kernel_costs(kernel, cfg, plan.fiber_elems, plan.f1_tile)
        nnz = perm.nnz
        # Structure statistics (exact, vectorized).
        nj = tile_count(dims[1], plan.j_tile)
        nk = tile_count(dims[2], plan.k_tile)
        tid = (
            (coords[:, 0] // plan.i_tile) * nj + coords[:, 1] // plan.j_tile
        ) * nk + coords[:, 2] // plan.k_tile
        n_groups = int(np.unique(tid).shape[0])
        fiber_key = tid * (dims[0] * dims[1] + 1) + (
            coords[:, 0] * dims[1] + coords[:, 1]
        )
        n_fibers = int(np.unique(fiber_key).shape[0])
        slice_key = tid * (dims[0] + 1) + coords[:, 0]
        n_slice_visits = int(np.unique(slice_key).shape[0])
        n_slices = int(np.unique(coords[:, 0]).shape[0])
        out_elems = (
            plan.f1_tile * plan.fiber_elems if base == "ttmc" else plan.fiber_elems
        )
        return self._assemble(
            kernel, plan, costs, nnz,
            headers=n_slice_visits,
            fibers=n_fibers,
            groups=n_groups,
            out_rows=n_slices,
            out_visits=n_slice_visits,
            out_elems=out_elems,
            matrix_rows_per_group=(
                plan.j_tile * plan.f1_tile + plan.k_tile * plan.fiber_elems
                if base == "ttmc"
                else (plan.j_tile + plan.k_tile) * plan.fiber_elems
            ),
            index_fields=2,
        )

    def _auto_mode(self, kernel_fn, kernel, operand, *args) -> SimReport:
        """Mirror the cycle simulator's ``msu_mode="auto"`` policy: pick
        whichever reduction mode moves fewer bytes (buffered on ties)."""
        buffered = kernel_fn(kernel, operand, *args, "buffered")
        direct = kernel_fn(kernel, operand, *args, "direct")
        return buffered if buffered.total_bytes <= direct.total_bytes else direct

    def _matrix_kernel(
        self,
        kernel: str,
        a: Union[CSRMatrix, COOMatrix],
        ncols: int,
        msu_mode: str,
    ) -> SimReport:
        if msu_mode == "auto":
            return self._auto_mode(self._matrix_kernel, kernel, a, ncols)
        cfg = self.config
        coo = a.to_coo() if isinstance(a, CSRMatrix) else a
        dims = coo.shape
        plan = make_plan(kernel, cfg, dims, msu_mode, ncols)
        costs = kernel_costs(kernel, cfg, plan.fiber_elems)
        nj = tile_count(dims[1], plan.j_tile)
        tid = (coo.rows // plan.i_tile) * nj + coo.cols // plan.j_tile
        n_groups = int(np.unique(tid).shape[0])
        visit_key = tid * (dims[0] + 1) + coo.rows
        n_visits = int(np.unique(visit_key).shape[0])
        n_rows = int(np.unique(coo.rows).shape[0])
        return self._assemble(
            kernel, plan, costs, coo.nnz,
            headers=n_visits,
            fibers=0,
            groups=n_groups,
            out_rows=n_rows,
            out_visits=n_visits,
            out_elems=plan.fiber_elems,
            matrix_rows_per_group=plan.j_tile * plan.fiber_elems,
            index_fields=1,
        )

    def _assemble(
        self,
        kernel: str,
        plan,
        costs,
        nnz: int,
        headers: int,
        fibers: int,
        groups: int,
        out_rows: int,
        out_visits: int,
        out_elems: int,
        matrix_rows_per_group: int,
        index_fields: int,
    ) -> SimReport:
        cfg = self.config
        dw = cfg.data_width
        lanes = cfg.rows
        # Compute cycles: per-lane shares plus expected bank-conflict stalls.
        lane_cycles = (
            costs.nnz_cycles * nnz
            + costs.header_cycles * headers
            + (costs.fold_cycles * fibers if costs.uses_fibers else 0)
            + costs.drain_cycles * headers
        ) / lanes
        entries = (nnz + headers) / lanes
        if not costs.dense and cfg.spm_banks >= 1 and lanes > 1:
            stall_per_entry = max(
                0.0, _expected_max_occupancy(lanes, cfg.spm_banks) - 1.0
            )
            lane_cycles += stall_per_entry * entries
        compute = lane_cycles + groups * (cfg.rows + cfg.cols + 16)
        # Traffic.
        entry_bytes = cfg.ciss_entry_bytes(index_fields)
        tensor_bytes = entries * entry_bytes
        matrix_bytes = groups * matrix_rows_per_group * dw
        if plan.msu_mode == "direct":
            output_bytes = out_visits * out_elems * dw * 2
        else:
            output_bytes = out_rows * out_elems * dw
        mem = (tensor_bytes + matrix_bytes + output_bytes) / cfg.hbm_bytes_per_cycle
        cycles = int(max(compute, mem) * plan.passes)
        ops = costs.ops_per_nnz * nnz
        if costs.uses_fibers:
            ops += costs.ops_per_fold * fibers
        ops *= plan.passes
        return SimReport(
            kernel=kernel,
            cycles=max(cycles, 1),
            ops=int(ops),
            tensor_bytes=int(tensor_bytes * plan.passes),
            matrix_bytes=int(matrix_bytes * plan.passes),
            output_bytes=int(output_bytes * plan.passes),
            clock_ghz=cfg.clock_ghz,
            output=None,
            detail={"msu_mode": plan.msu_mode, "passes": plan.passes,
                    "model": "fast",
                    # Per-pass cost components, exposed for the auto-tuner's
                    # learned cost model (featurization) and for debugging
                    # which side of the max() a prediction sat on.
                    "compute_cycles": float(compute),
                    "memory_cycles": float(mem),
                    "groups": int(groups),
                    "entries": float(entries)},
        )
