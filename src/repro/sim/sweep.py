"""Design-space exploration: sweep configuration knobs over one workload.

The paper evaluates one design point (8x8, VLEN=4, 8 banks); this helper
re-simulates a workload across a grid of config variations so the scaling
ablations (and downstream users sizing their own deployment) get a uniform
interface: give it a base config, a dict of parameter lists, and a runner,
and it returns one record per design point.

Robustness: a point whose simulation faults (an armed
:class:`~repro.sim.faults.FaultPlan`, or any
:class:`~repro.util.errors.SimulationError`) can be retried
(``max_retries``, each attempt on a fresh fault epoch) and bounded in wall
clock (``timeout_s``). With ``allow_partial=True`` exhausted points are
recorded as :class:`SweepFailure` entries on the returned
:class:`SweepResult` instead of aborting the whole grid.
"""

from __future__ import annotations

import itertools
import json
import pickle
import time
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.analysis.tables import format_table
from repro.sim.accelerator import Tensaurus
from repro.sim.config import TensaurusConfig
from repro.sim.report import SimReport
from repro.util.errors import (
    ConfigError,
    FaultError,
    RetryExhaustedError,
    SimulationError,
)

logger = obs.get_logger(__name__)


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration."""

    params: Dict[str, object]
    config: TensaurusConfig
    report: SimReport

    @property
    def gops(self) -> float:
        return self.report.gops

    @property
    def gops_per_watt_proxy(self) -> float:
        """Throughput per MAC — a technology-free efficiency proxy."""
        return self.report.gops / max(self.config.mac_units, 1)


@dataclass(frozen=True)
class SweepFailure:
    """One design point the sweep could not evaluate."""

    params: Dict[str, object]
    config: TensaurusConfig
    reason: str
    attempts: int


class SweepResult(List[DesignPoint]):
    """The sweep's design points (a list, in grid order) plus bookkeeping:
    ``failures`` holds the points that exhausted their retries or timed
    out (``allow_partial=True``), ``fallback_reason`` records why a
    parallel sweep fell back to serial evaluation (unpicklable runner)."""

    def __init__(self, points: Sequence[DesignPoint] = ()) -> None:
        super().__init__(points)
        self.failures: List[SweepFailure] = []
        self.fallback_reason: Optional[str] = None

    def best(self, key="cycles") -> DesignPoint:
        """The design point minimizing ``key``.

        ``key`` is either a :class:`~repro.sim.report.SimReport` attribute
        name (``"cycles"``, ``"time_s"``, ``"total_bytes"``, ...) or a
        callable on a :class:`DesignPoint` returning a comparable. Ties
        break toward grid order (``min`` is stable), so the choice is
        deterministic regardless of worker scheduling.
        """
        if not self:
            raise ConfigError("no design points to pick a best from")
        if callable(key):
            metric = key
        else:
            if not hasattr(self[0].report, key):
                raise ConfigError(f"unknown report metric {key!r}")
            metric = lambda p: getattr(p.report, key)  # noqa: E731
        return min(self, key=metric)

    def to_json(self, indent: Optional[int] = None) -> str:
        """The sweep as a JSON document (params, headline report numbers,
        failures, fallback reason) — the serialization the tuner's
        trajectory records and ad-hoc analysis notebooks consume.
        Non-JSON param values (memory presets, fault plans) fall back to
        their ``repr``."""
        payload = {
            "points": [
                {
                    "params": p.params,
                    "cycles": p.report.cycles,
                    "ops": p.report.ops,
                    "total_bytes": p.report.total_bytes,
                    "gops": p.gops,
                    "time_s": p.report.time_s,
                    "kernel": p.report.kernel,
                }
                for p in self
            ],
            "failures": [
                {
                    "params": f.params,
                    "reason": f.reason,
                    "attempts": f.attempts,
                }
                for f in self.failures
            ],
            "fallback_reason": self.fallback_reason,
        }
        return json.dumps(payload, indent=indent, default=repr)


def _evaluate_point(
    item: Tuple[TensaurusConfig, Callable[[Tensaurus], SimReport], int]
) -> Tuple[str, object, int]:
    """Worker body: run one design point (module-level, so it pickles).

    Returns ``("ok", report, attempts)`` or ``("fail", reason, attempts)``.
    Each retry runs on a fresh fault epoch, so an armed fault plan does not
    deterministically re-fail the point.
    """
    config, runner, max_retries = item
    last: Optional[BaseException] = None
    for attempt in range(max_retries + 1):
        try:
            report = runner(Tensaurus(config, fault_epoch=attempt))
            return ("ok", report, attempt + 1)
        except (FaultError, SimulationError) as exc:
            last = exc
    return ("fail", repr(last), max_retries + 1)


# The runner rides to each worker exactly once, through the pool
# initializer; per-point submissions then carry only (config, max_retries).
# Before this, every submit re-pickled the runner — and with it any operand
# tensors it closed over — once per design point.
_pool_runner: Optional[Callable[[Tensaurus], SimReport]] = None


def _init_pool_worker(runner_blob: bytes) -> None:
    """Pool initializer: unpickle the sweep runner once per worker."""
    global _pool_runner
    _pool_runner = pickle.loads(runner_blob)


def _evaluate_point_pooled(
    config: TensaurusConfig, max_retries: int
) -> Tuple[str, object, int]:
    """Worker body for pooled sweeps: uses the initializer-installed runner."""
    assert _pool_runner is not None, "pool worker initializer did not run"
    return _evaluate_point((config, _pool_runner, max_retries))


# Runners already warned about (unpicklable → serial fallback), so a
# many-point or repeated sweep logs the warning once per runner. Runners
# that cannot be weak-referenced warn every time.
_warned_unpicklable: "weakref.WeakSet" = weakref.WeakSet()


def _warn_unpicklable(runner: Callable, exc: Exception) -> None:
    try:
        if runner in _warned_unpicklable:
            return
        _warned_unpicklable.add(runner)
    except TypeError:
        pass
    logger.warning(
        "sweep_configs runner is not picklable; falling back to "
        "serial evaluation (%r)", exc,
    )


def sweep_configs(
    base: TensaurusConfig,
    grid: Dict[str, Sequence],
    runner: Callable[[Tensaurus], SimReport],
    workers: Optional[int] = None,
    timeout_s: Optional[float] = None,
    max_retries: int = 0,
    allow_partial: bool = False,
) -> SweepResult:
    """Evaluate ``runner`` at every point of the parameter grid.

    ``grid`` maps :class:`TensaurusConfig` field names to value lists; the
    sweep takes their Cartesian product. ``runner`` receives a fresh
    :class:`Tensaurus` per point and returns its :class:`SimReport`.

    ``workers`` > 1 fans the points out over a process pool. Results come
    back in grid order regardless of completion order, so parallel and
    serial sweeps return identical lists (fault injection included: every
    point draws from streams keyed by its own config and attempt, never by
    scheduling). The runner is serialized once and handed to each worker
    through the pool initializer, so per-point submissions carry only the
    design-point config — a runner closing over large operands costs its
    pickle size per worker, not per point; wrap the operands in
    :class:`repro.sim.shm.SharedOperands` to drop even that to metadata
    bytes. The runner (and everything it closes over) must pickle;
    if it does not, the sweep logs a warning on the ``repro.sim.sweep``
    logger with the pickling error (once per runner), records it as
    ``fallback_reason``, and falls back to serial evaluation. (Worker processes do not share the
    parent's observation state, so per-launch tracing covers serial sweeps
    only; the sweep-level span and point counters are always recorded in
    the submitting process.)

    ``max_retries`` re-attempts a faulting point (fresh fault epoch each
    time); ``timeout_s`` bounds one point's evaluation — enforced
    preemptively in parallel mode, detected after the fact in serial mode
    (the point still runs to completion but is reported as timed out).
    A point that stays failed raises (``allow_partial=False``) or is
    recorded on ``SweepResult.failures`` (``allow_partial=True``).
    """
    if not grid:
        raise ConfigError("empty parameter grid")
    for name in grid:
        if not hasattr(base, name):
            raise ConfigError(f"unknown config field {name!r}")
    names = sorted(grid)
    combos: List[Tuple[Dict[str, object], TensaurusConfig]] = []
    for combo in itertools.product(*(grid[n] for n in names)):
        params = dict(zip(names, combo))
        combos.append((params, base.scaled(**params)))
    return _evaluate_combos(
        combos, runner, workers=workers, timeout_s=timeout_s,
        max_retries=max_retries, allow_partial=allow_partial,
    )


def sweep_points(
    base: TensaurusConfig,
    points: Sequence[Dict[str, object]],
    runner: Callable[[Tensaurus], SimReport],
    workers: Optional[int] = None,
    timeout_s: Optional[float] = None,
    max_retries: int = 0,
    allow_partial: bool = False,
) -> SweepResult:
    """Evaluate ``runner`` at an explicit list of design points.

    The non-Cartesian sibling of :func:`sweep_configs` for callers — the
    auto-tuner above all — whose candidate set is *not* a full grid: each
    entry of ``points`` is a dict of :class:`TensaurusConfig` field
    overrides applied to ``base`` (an empty dict evaluates ``base``
    itself). Results come back in ``points`` order with the same
    parallelism, retry, timeout and partial-failure semantics as
    :func:`sweep_configs`.
    """
    if not points:
        raise ConfigError("empty design-point list")
    combos = [(dict(params), base.scaled(**params)) for params in points]
    return _evaluate_combos(
        combos, runner, workers=workers, timeout_s=timeout_s,
        max_retries=max_retries, allow_partial=allow_partial,
    )


def _evaluate_combos(
    combos: List[Tuple[Dict[str, object], TensaurusConfig]],
    runner: Callable[[Tensaurus], SimReport],
    workers: Optional[int],
    timeout_s: Optional[float],
    max_retries: int,
    allow_partial: bool,
) -> SweepResult:
    """Shared evaluation core of :func:`sweep_configs`/:func:`sweep_points`."""
    if max_retries < 0:
        raise ConfigError("max_retries must be >= 0")
    if timeout_s is not None and timeout_s <= 0:
        raise ConfigError("timeout_s must be positive")
    result = SweepResult()
    outcomes: Optional[List[Tuple[str, object, int]]] = None
    point_counter = obs.metrics().counter(
        "sweep.points", "sweep design points by outcome", ("status",)
    )
    with obs.tracer().span(
        "sweep_configs",
        args={"points": len(combos), "workers": int(workers or 1)},
    ):
        if workers is not None and workers > 1 and len(combos) > 1:
            try:
                runner_blob = pickle.dumps(runner)
            except Exception as exc:
                result.fallback_reason = repr(exc)
                _warn_unpicklable(runner, exc)
            else:
                max_workers = min(workers, len(combos))
                pool = ProcessPoolExecutor(
                    max_workers=max_workers,
                    initializer=_init_pool_worker,
                    initargs=(runner_blob,),
                )
                try:
                    futures = [
                        pool.submit(
                            _evaluate_point_pooled, config, max_retries
                        )
                        for _, config in combos
                    ]
                    outcomes = []
                    for future in futures:
                        try:
                            outcomes.append(future.result(timeout=timeout_s))
                        except FutureTimeoutError:
                            future.cancel()
                            outcomes.append(
                                ("fail", f"timeout after {timeout_s}s", 1)
                            )
                finally:
                    pool.shutdown(wait=False, cancel_futures=True)
        if outcomes is None:
            outcomes = []
            for params, config in combos:
                start = time.monotonic()
                with obs.tracer().span("sweep.point", args=params):
                    outcome = _evaluate_point((config, runner, max_retries))
                elapsed = time.monotonic() - start
                if (
                    timeout_s is not None
                    and elapsed > timeout_s
                    and outcome[0] == "ok"
                ):
                    outcome = (
                        "fail",
                        f"timeout after {timeout_s}s ({elapsed:.3f}s)",
                        outcome[2],
                    )
                outcomes.append(outcome)

        for (params, config), (status, payload, attempts) in zip(
            combos, outcomes
        ):
            if status == "ok":
                point_counter.labels(status="ok").inc()
                result.append(
                    DesignPoint(params=params, config=config, report=payload)
                )
            elif allow_partial:
                point_counter.labels(status="failed").inc()
                logger.warning(
                    "design point %s failed after %d attempt(s): %s",
                    params, attempts, payload,
                )
                result.failures.append(
                    SweepFailure(
                        params=params,
                        config=config,
                        reason=str(payload),
                        attempts=attempts,
                    )
                )
            else:
                point_counter.labels(status="failed").inc()
                raise RetryExhaustedError(
                    f"design point {params} failed after {attempts} "
                    f"attempt(s): {payload}",
                    attempts=attempts,
                )
    return result


def pareto_front(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Points not dominated on (throughput up, MAC count down).

    A point dominates another when it is at least as fast with no more
    MACs, and strictly better on one axis — the basic cost/performance
    frontier for sizing the PE array.
    """
    front = []
    for p in points:
        dominated = any(
            (q.gops >= p.gops and q.config.mac_units <= p.config.mac_units)
            and (q.gops > p.gops or q.config.mac_units < p.config.mac_units)
            for q in points
        )
        if not dominated:
            front.append(p)
    return sorted(front, key=lambda p: p.config.mac_units)


def render_sweep(points: Sequence[DesignPoint]) -> str:
    """A table of the sweep results."""
    if not points:
        return "(no design points)"
    names = sorted(points[0].params)
    rows = [
        [*(p.params[n] for n in names), p.config.mac_units,
         p.report.cycles, p.gops, p.gops_per_watt_proxy]
        for p in points
    ]
    return format_table(
        names + ["MACs", "cycles", "GOP/s", "GOP/s/MAC"], rows
    )
