"""Design-space exploration: sweep configuration knobs over one workload.

The paper evaluates one design point (8x8, VLEN=4, 8 banks); this helper
re-simulates a workload across a grid of config variations so the scaling
ablations (and downstream users sizing their own deployment) get a uniform
interface: give it a base config, a dict of parameter lists, and a runner,
and it returns one record per design point.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.analysis.tables import format_table
from repro.sim.accelerator import Tensaurus
from repro.sim.config import TensaurusConfig
from repro.sim.report import SimReport
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration."""

    params: Dict[str, object]
    config: TensaurusConfig
    report: SimReport

    @property
    def gops(self) -> float:
        return self.report.gops

    @property
    def gops_per_watt_proxy(self) -> float:
        """Throughput per MAC — a technology-free efficiency proxy."""
        return self.report.gops / max(self.config.mac_units, 1)


def sweep_configs(
    base: TensaurusConfig,
    grid: Dict[str, Sequence],
    runner: Callable[[Tensaurus], SimReport],
) -> List[DesignPoint]:
    """Evaluate ``runner`` at every point of the parameter grid.

    ``grid`` maps :class:`TensaurusConfig` field names to value lists; the
    sweep takes their Cartesian product. ``runner`` receives a fresh
    :class:`Tensaurus` per point and returns its :class:`SimReport`.
    """
    if not grid:
        raise ConfigError("empty parameter grid")
    for name in grid:
        if not hasattr(base, name):
            raise ConfigError(f"unknown config field {name!r}")
    names = sorted(grid)
    points: List[DesignPoint] = []
    for combo in itertools.product(*(grid[n] for n in names)):
        params = dict(zip(names, combo))
        config = base.scaled(**params)
        report = runner(Tensaurus(config))
        points.append(DesignPoint(params=params, config=config, report=report))
    return points


def pareto_front(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Points not dominated on (throughput up, MAC count down).

    A point dominates another when it is at least as fast with no more
    MACs, and strictly better on one axis — the basic cost/performance
    frontier for sizing the PE array.
    """
    front = []
    for p in points:
        dominated = any(
            (q.gops >= p.gops and q.config.mac_units <= p.config.mac_units)
            and (q.gops > p.gops or q.config.mac_units < p.config.mac_units)
            for q in points
        )
        if not dominated:
            front.append(p)
    return sorted(front, key=lambda p: p.config.mac_units)


def render_sweep(points: Sequence[DesignPoint]) -> str:
    """A table of the sweep results."""
    if not points:
        return "(no design points)"
    names = sorted(points[0].params)
    rows = [
        [*(p.params[n] for n in names), p.config.mac_units,
         p.report.cycles, p.gops, p.gops_per_watt_proxy]
        for p in points
    ]
    return format_table(
        names + ["MACs", "cycles", "GOP/s", "GOP/s/MAC"], rows
    )
