"""Design-space exploration: sweep configuration knobs over one workload.

The paper evaluates one design point (8x8, VLEN=4, 8 banks); this helper
re-simulates a workload across a grid of config variations so the scaling
ablations (and downstream users sizing their own deployment) get a uniform
interface: give it a base config, a dict of parameter lists, and a runner,
and it returns one record per design point.
"""

from __future__ import annotations

import itertools
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import format_table
from repro.sim.accelerator import Tensaurus
from repro.sim.config import TensaurusConfig
from repro.sim.report import SimReport
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration."""

    params: Dict[str, object]
    config: TensaurusConfig
    report: SimReport

    @property
    def gops(self) -> float:
        return self.report.gops

    @property
    def gops_per_watt_proxy(self) -> float:
        """Throughput per MAC — a technology-free efficiency proxy."""
        return self.report.gops / max(self.config.mac_units, 1)


def _evaluate_point(
    item: Tuple[TensaurusConfig, Callable[[Tensaurus], SimReport]]
) -> SimReport:
    """Worker body: run one design point (module-level, so it pickles)."""
    config, runner = item
    return runner(Tensaurus(config))


def sweep_configs(
    base: TensaurusConfig,
    grid: Dict[str, Sequence],
    runner: Callable[[Tensaurus], SimReport],
    workers: Optional[int] = None,
) -> List[DesignPoint]:
    """Evaluate ``runner`` at every point of the parameter grid.

    ``grid`` maps :class:`TensaurusConfig` field names to value lists; the
    sweep takes their Cartesian product. ``runner`` receives a fresh
    :class:`Tensaurus` per point and returns its :class:`SimReport`.

    ``workers`` > 1 fans the points out over a process pool. Results come
    back in grid order regardless of completion order, so parallel and
    serial sweeps return identical lists. The runner (and everything it
    closes over) must pickle; if it does not, the sweep warns and falls
    back to serial evaluation rather than failing mid-grid.
    """
    if not grid:
        raise ConfigError("empty parameter grid")
    for name in grid:
        if not hasattr(base, name):
            raise ConfigError(f"unknown config field {name!r}")
    names = sorted(grid)
    combos: List[Tuple[Dict[str, object], TensaurusConfig]] = []
    for combo in itertools.product(*(grid[n] for n in names)):
        params = dict(zip(names, combo))
        combos.append((params, base.scaled(**params)))

    reports: Optional[List[SimReport]] = None
    if workers is not None and workers > 1 and len(combos) > 1:
        try:
            pickle.dumps(runner)
        except Exception:
            warnings.warn(
                "sweep_configs runner is not picklable; falling back to "
                "serial evaluation",
                RuntimeWarning,
                stacklevel=2,
            )
        else:
            max_workers = min(workers, len(combos))
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                # Executor.map preserves submission order: deterministic.
                reports = list(
                    pool.map(
                        _evaluate_point,
                        [(config, runner) for _, config in combos],
                    )
                )
    if reports is None:
        reports = [
            _evaluate_point((config, runner)) for _, config in combos
        ]
    return [
        DesignPoint(params=params, config=config, report=report)
        for (params, config), report in zip(combos, reports)
    ]


def pareto_front(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Points not dominated on (throughput up, MAC count down).

    A point dominates another when it is at least as fast with no more
    MACs, and strictly better on one axis — the basic cost/performance
    frontier for sizing the PE array.
    """
    front = []
    for p in points:
        dominated = any(
            (q.gops >= p.gops and q.config.mac_units <= p.config.mac_units)
            and (q.gops > p.gops or q.config.mac_units < p.config.mac_units)
            for q in points
        )
        if not dominated:
            front.append(p)
    return sorted(front, key=lambda p: p.config.mac_units)


def render_sweep(points: Sequence[DesignPoint]) -> str:
    """A table of the sweep results."""
    if not points:
        return "(no design points)"
    names = sorted(points[0].params)
    rows = [
        [*(p.params[n] for n in names), p.config.mac_units,
         p.report.cycles, p.gops, p.gops_per_watt_proxy]
        for p in points
    ]
    return format_table(
        names + ["MACs", "cycles", "GOP/s", "GOP/s/MAC"], rows
    )
