"""Per-record timing and operation costs of the PE dataflow (Section 5.2.4).

Both simulator engines (the exact per-record lane interpreter and the
vectorized array engine) draw their constants from :class:`KernelCosts`, so
they are cycle-identical by construction. The costs encode the paper's PE
behaviour:

- Every lane record costs ``cycles_per_record`` (one SPM access cycle plus
  one SIMD VVMUL/VVADD cycle — "each PE spends every other clock cycle to
  access the scratchpads").
- At the end of a fiber, MTTKRP fetches the B row and folds TSR into OSR
  (one fetch + one MAC cycle); TTMc instead *streams* the B row one element
  per cycle, each scaling TSR into a distinct OSR register (the Kronecker
  product), so its fold cost grows with the F1 tile.
- At the end of a slice/row, the OSR drains to the MSU; the drain is
  pipelined through the shift registers so it costs one bookkeeping cycle
  for Hadamard-style kernels and ``f1_tile`` shifts for TTMc.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.config import TensaurusConfig
from repro.util.errors import KernelError

#: Kernels the accelerator supports (Table 1).
SPARSE_KERNELS = ("spmttkrp", "spttmc", "spmm", "spmv")
DENSE_KERNELS = ("dmttkrp", "dttmc", "gemm", "gemv")
ALL_KERNELS = SPARSE_KERNELS + DENSE_KERNELS


@dataclass(frozen=True)
class KernelCosts:
    """Cycle and op costs for one kernel at one tile configuration.

    Cycle costs are per PE-row lane; op counts are summed across the whole
    PE row (all ``cols`` PEs x ``vlen`` SIMD lanes working on the record).
    """

    kernel: str
    nnz_cycles: int  # cycles per nonzero record
    header_cycles: int  # cycles per slice/row header record
    fold_cycles: int  # extra cycles at each fiber end (0 if no fiber1)
    drain_cycles: int  # extra cycles at each slice/row end
    ops_per_nnz: int  # scalar ops per nonzero record (PE row total)
    ops_per_fold: int  # scalar ops per fiber end
    uses_fibers: bool  # True for MTTKRP/TTMc (TSR + fiber1 machinery)
    bank_key: str  # which index field addresses the SPM banks: "k" or "a"
    dense: bool  # dense kernels broadcast (no bank conflicts)


def kernel_costs(
    kernel: str,
    config: TensaurusConfig,
    fiber_elems: int,
    f1_tile: int = 0,
) -> KernelCosts:
    """Build the cost table for ``kernel`` at the given tile widths.

    ``fiber_elems`` is the number of output-fiber elements produced per
    record across the PE row (the F tile for MTTKRP/SpMM, the F2 tile for
    TTMc, 1 for SpMV/GEMV). ``f1_tile`` is the TTMc-only F1 tile held in
    the OSR (bounded by OLEN == VLEN).
    """
    kernel = kernel.lower()
    if kernel not in ALL_KERNELS:
        raise KernelError(f"unknown kernel {kernel!r}")
    base = config.cycles_per_record
    dense = kernel in DENSE_KERNELS
    if kernel in ("spmttkrp", "dmttkrp"):
        return KernelCosts(
            kernel=kernel,
            nnz_cycles=base,
            header_cycles=1,
            fold_cycles=base,  # fetch B row + VVMUL/VVADD with OSR
            drain_cycles=1,
            ops_per_nnz=2 * fiber_elems,
            ops_per_fold=2 * fiber_elems,
            uses_fibers=True,
            bank_key="k",
            dense=dense,
        )
    if kernel in ("spttmc", "dttmc"):
        if f1_tile <= 0:
            raise KernelError("TTMc needs a positive f1_tile")
        return KernelCosts(
            kernel=kernel,
            nnz_cycles=base,
            header_cycles=1,
            # Fetch the B row, then stream its f1_tile elements one per
            # cycle, each a VVMUL into one OSR register.
            fold_cycles=1 + f1_tile,
            drain_cycles=f1_tile,
            ops_per_nnz=2 * fiber_elems,
            ops_per_fold=2 * f1_tile * fiber_elems,
            uses_fibers=True,
            bank_key="k",
            dense=dense,
        )
    if kernel in ("spmm", "gemm"):
        return KernelCosts(
            kernel=kernel,
            nnz_cycles=base,
            header_cycles=1,
            fold_cycles=0,
            drain_cycles=1,
            ops_per_nnz=2 * fiber_elems,
            ops_per_fold=0,
            uses_fibers=False,
            bank_key="a",
            dense=dense,
        )
    # spmv / gemv: one scalar MAC per record, first PE column only.
    return KernelCosts(
        kernel=kernel,
        nnz_cycles=base,
        header_cycles=1,
        fold_cycles=0,
        drain_cycles=1,
        ops_per_nnz=2,
        ops_per_fold=0,
        uses_fibers=False,
        bank_key="a",
        dense=dense,
    )
