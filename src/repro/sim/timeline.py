"""Execution timelines: aggregate many kernel launches into one summary.

An application (CP-ALS sweep, CNN inference pass, GNN forward) is a
sequence of kernel launches; :class:`Timeline` accumulates their
:class:`~repro.sim.report.SimReport` records and answers the questions a
performance engineer asks of the whole run: total time/ops/bytes, energy,
per-kernel breakdowns, the bottleneck launch, and average utilization —
plus a rendered table for reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.tables import format_table
from repro.energy.model import accelerator_energy
from repro.sim.faults import FaultEvent
from repro.sim.report import SimReport
from repro.util.errors import ConfigError


@dataclass
class TimelineEntry:
    """One launch on the timeline."""

    label: str
    report: SimReport
    start_s: float

    @property
    def end_s(self) -> float:
        return self.start_s + self.report.time_s


@dataclass
class Timeline:
    """An ordered record of kernel launches on one accelerator."""

    peak_gops: float = 512.0
    entries: List[TimelineEntry] = field(default_factory=list)
    #: every fault surfaced by the launches plus host-level events recorded
    #: via :meth:`record_fault` (watchdog trips, resets, chip failures).
    fault_events: List[FaultEvent] = field(default_factory=list)

    def add(self, label: str, report: SimReport) -> TimelineEntry:
        """Append a launch (runs back-to-back after the previous one)."""
        start = self.entries[-1].end_s if self.entries else 0.0
        entry = TimelineEntry(label=label, report=report, start_s=start)
        self.entries.append(entry)
        self.fault_events.extend(report.fault_events)
        return entry

    def record_fault(self, event: FaultEvent) -> None:
        """Attach a host-level fault (outside any one launch's report)."""
        self.fault_events.append(event)

    # ------------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        return self.entries[-1].end_s if self.entries else 0.0

    @property
    def total_ops(self) -> int:
        return sum(e.report.ops for e in self.entries)

    @property
    def total_bytes(self) -> int:
        return sum(e.report.total_bytes for e in self.entries)

    @property
    def total_energy_j(self) -> float:
        return sum(
            accelerator_energy(e.report, self.peak_gops) for e in self.entries
        )

    @property
    def average_gops(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return self.total_ops / self.total_seconds / 1.0e9

    @property
    def average_utilization(self) -> float:
        """Time-weighted fraction of peak compute sustained."""
        if self.peak_gops <= 0:
            raise ConfigError("peak_gops must be positive")
        return self.average_gops / self.peak_gops

    @property
    def total_recovery_cycles(self) -> int:
        """Cycles all launches together spent on fault recovery."""
        return sum(e.report.recovery_cycles for e in self.entries)

    @property
    def total_recovery_seconds(self) -> float:
        return sum(
            e.report.recovery_cycles / (e.report.clock_ghz * 1.0e9)
            for e in self.entries
        )

    def fault_summary(self) -> Dict[str, int]:
        """Aggregated ``SimReport.faults`` counters across every launch."""
        out: Dict[str, int] = {}
        for e in self.entries:
            for key, value in e.report.faults.items():
                if key in ("active_lanes",):  # structural, not additive
                    out[key] = int(value)
                else:
                    out[key] = out.get(key, 0) + int(value)
        return out

    def bottleneck(self) -> Optional[TimelineEntry]:
        """The single longest launch."""
        if not self.entries:
            return None
        return max(self.entries, key=lambda e: e.report.time_s)

    def by_kernel(self) -> Dict[str, float]:
        """Seconds spent per kernel type."""
        out: Dict[str, float] = {}
        for e in self.entries:
            out[e.report.kernel] = out.get(e.report.kernel, 0.0) + e.report.time_s
        return out

    def render(self) -> str:
        """A per-launch table followed by the aggregate line."""
        rows = [
            [
                e.label,
                e.report.kernel,
                f"{e.start_s * 1e6:.1f}",
                f"{e.report.time_s * 1e6:.1f}",
                f"{e.report.gops:.0f}",
                f"{e.report.achieved_bw_gbs:.0f}",
            ]
            for e in self.entries
        ]
        table = format_table(
            ["launch", "kernel", "start us", "time us", "GOP/s", "GB/s"], rows
        )
        summary = (
            f"total: {self.total_seconds * 1e3:.3f} ms, "
            f"{self.total_ops / 1e9:.2f} GOP, "
            f"{self.total_bytes / 1e6:.1f} MB, "
            f"{self.total_energy_j * 1e3:.3f} mJ, "
            f"avg {self.average_gops:.0f} GOP/s "
            f"({self.average_utilization:.0%} of peak)"
        )
        if self.fault_events or self.total_recovery_cycles:
            summary += (
                f"\nfaults: {len(self.fault_events)} events, "
                f"{self.total_recovery_cycles} recovery cycles "
                f"({self.total_recovery_seconds * 1e6:.1f} us)"
            )
        return table + "\n" + summary
