"""Cycle-level simulator of the Tensaurus accelerator (Section 5).

The simulator reproduces the architecture of Fig. 5: a tensor load unit
streaming CISS entries, a matrix load unit filling banked double-buffered
scratchpads, an ``r x c`` PE array executing the SF3 dataflow with TSR/OSR
shift registers, and a matrix store unit accumulating output tiles — all
against an HBM bandwidth model, with the tiling and reuse policies of
Sections 5.2.3-5.2.5.

Two execution engines share one timing model:

- :class:`repro.sim.pe.PELane` — a per-record Python interpreter of one PE
  row's lane stream; exact and functional, used by tests.
- :class:`repro.sim.accelerator.Tensaurus` — the vectorized engine used by
  the benchmarks; cycle counts match the lane interpreter exactly (asserted
  in the test suite) and outputs are checked against the reference kernels.
"""

from repro.sim.config import TensaurusConfig, HBM_PRESET, DDR4_PRESET, MemoryConfig
from repro.sim.engine import (
    default_sim_engine,
    jit_available,
    resolve_sim_engine,
    set_sim_engine,
)
from repro.sim.shm import SharedOperands
from repro.sim.batch import (
    BatchTileStats,
    EncodingCache,
    MatrixTilePartition,
    TensorTilePartition,
    analyze_tile_stream,
    fingerprint_arrays,
)
from repro.sim.report import SimReport
from repro.sim.memory import StreamMemory
from repro.sim.accelerator import Tensaurus
from repro.sim.faults import FaultEvent, FaultPlan, FaultState, RunFaultContext
from repro.sim.perfmodel import FastModel
from repro.sim.event import EventDrivenTensaurus, EventSimResult
from repro.sim.timeline import Timeline, TimelineEntry
from repro.sim.multichip import MultiChipTensaurus, MultiChipResult, partition_slices
from repro.sim.sweep import (
    DesignPoint,
    SweepFailure,
    SweepResult,
    pareto_front,
    render_sweep,
    sweep_configs,
    sweep_points,
)
from repro.sim.driver import (
    Instruction,
    Opcode,
    ProgramError,
    TensaurusDevice,
    assemble_mttkrp,
    assemble_spmm,
    assemble_spmv,
    assemble_ttmc,
)

__all__ = [
    "TensaurusConfig",
    "MemoryConfig",
    "default_sim_engine",
    "jit_available",
    "resolve_sim_engine",
    "set_sim_engine",
    "SharedOperands",
    "BatchTileStats",
    "EncodingCache",
    "MatrixTilePartition",
    "TensorTilePartition",
    "analyze_tile_stream",
    "fingerprint_arrays",
    "HBM_PRESET",
    "DDR4_PRESET",
    "SimReport",
    "StreamMemory",
    "Tensaurus",
    "FaultEvent",
    "FaultPlan",
    "FaultState",
    "RunFaultContext",
    "FastModel",
    "EventDrivenTensaurus",
    "EventSimResult",
    "Timeline",
    "TimelineEntry",
    "MultiChipTensaurus",
    "MultiChipResult",
    "partition_slices",
    "DesignPoint",
    "SweepFailure",
    "SweepResult",
    "pareto_front",
    "render_sweep",
    "sweep_configs",
    "sweep_points",
    "Instruction",
    "Opcode",
    "ProgramError",
    "TensaurusDevice",
    "assemble_mttkrp",
    "assemble_spmm",
    "assemble_spmv",
    "assemble_ttmc",
]
