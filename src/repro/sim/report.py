"""Simulation result record shared by the cycle simulator and fast model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.sim.faults import FaultEvent


@dataclass
class SimReport:
    """Outcome of one kernel execution on the simulated accelerator.

    The per-stream byte counts let the rooflines and the energy model work
    from the same numbers the timing used. ``faults`` itemizes the
    fault-injection layer's accounting (injected faults, detection cost,
    replay/recovery cycles) and is empty on fault-free runs;
    ``fault_events`` carries the typed per-fault records (capped per run).
    """

    kernel: str
    cycles: int
    ops: int
    tensor_bytes: int
    matrix_bytes: int
    output_bytes: int
    clock_ghz: float
    output: Optional[np.ndarray] = None
    detail: Dict[str, float] = field(default_factory=dict)
    faults: Dict[str, int] = field(default_factory=dict)
    fault_events: List[FaultEvent] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return self.tensor_bytes + self.matrix_bytes + self.output_bytes

    @property
    def time_s(self) -> float:
        return self.cycles / (self.clock_ghz * 1.0e9)

    @property
    def gops(self) -> float:
        """Achieved throughput in GOP/s (1 op = 1 multiply or 1 add)."""
        if self.cycles == 0:
            return 0.0
        return self.ops / self.time_s / 1.0e9

    @property
    def achieved_bw_gbs(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.total_bytes / self.time_s / 1.0e9

    @property
    def op_intensity(self) -> float:
        """Operations per byte of off-chip traffic (roofline x-axis)."""
        if self.total_bytes == 0:
            return float("inf")
        return self.ops / self.total_bytes

    @property
    def recovery_cycles(self) -> int:
        """Cycles this run spent on fault detection and recovery: the
        difference to the fault-free schedule of the same workload."""
        return int(self.faults.get("fault_overhead_cycles", 0))

    @property
    def fault_free_cycles(self) -> int:
        """The schedule with the fault layer's overhead removed."""
        return self.cycles - self.recovery_cycles

    def summary(self) -> str:
        text = (
            f"{self.kernel}: {self.cycles} cycles, {self.gops:.1f} GOP/s, "
            f"{self.achieved_bw_gbs:.1f} GB/s, OI={self.op_intensity:.2f}"
        )
        if self.faults:
            text += f", {self.recovery_cycles} recovery cycles"
        return text
