"""DRAM stream model used for the Fig. 3e format-bandwidth experiment.

:class:`StreamMemory` services a trace of per-cycle request groups against a
single memory channel with three effects that together produce the paper's
curve:

1. **Burst granularity** — a request fetches whole bursts; a 12-byte
   extended-CSR record still occupies a 64-byte burst on the data bus, so
   scattered narrow requests waste most of the raw bandwidth.
2. **Coalescing** — requests in the same cycle that touch the same burst
   (CISS: all lanes' data is one contiguous entry) merge into one fetch.
3. **Limited outstanding requests** — with ``max_outstanding`` MSHRs and
   ``latency_cycles`` access time, achieved bandwidth is capped at
   ``outstanding * request_bytes / latency`` (Little's law), which is what
   keeps narrow-entry streams (few PEs) below peak.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.sim.config import MemoryConfig
from repro.sim.engine import resolve_sim_engine
from repro.util.errors import ConfigError

Request = Tuple[int, int]  # (address, size in bytes)


class StreamMemory:
    """Cycle-driven single-channel DRAM service model."""

    def __init__(self, config: MemoryConfig) -> None:
        self.config = config
        # Built once per instance: service_trace used to rebuild this
        # tuple on every call.
        self._occupancy_buckets = tuple(
            float(b) for b in range(0, config.max_outstanding + 1)
        )

    def _occupancy_histogram(self, reg):
        return (
            reg.histogram(
                "hbm.queue_occupancy",
                "in-flight HBM requests sampled per serviced burst",
                buckets=self._occupancy_buckets,
            )
            if reg.enabled
            else None
        )

    def service_trace(
        self,
        trace: Sequence[Iterable[Request]],
        engine: Optional[str] = None,
    ) -> "TraceResult":
        """Run a per-cycle request trace to completion.

        ``trace[t]`` holds the requests all consumers issue at producer
        cycle ``t`` (the trace's cycle granularity is the memory clock).
        Consumers stall when the channel back-pressures, so the trace is
        elastic: cycle ``t``'s requests enter the queue no earlier than
        cycle ``t`` and no earlier than when queue slots free up.

        ``engine`` selects the implementation (defaults to
        :func:`repro.sim.engine.default_sim_engine`): the fast/jit path
        replaces the per-cycle heap loop with vectorized burst coalescing
        plus a scalar service recurrence, and is bit-identical to legacy
        (the in-flight heap is provably FIFO, so one recurrence over the
        burst sequence reproduces every ``max``/truncation exactly).
        """
        resolved = resolve_sim_engine(engine)
        if resolved != "legacy":
            return self._service_trace_fast(trace, resolved)
        cfg = self.config
        burst = cfg.burst_bytes
        bus_bpc = cfg.bytes_per_cycle
        latency = cfg.latency_cycles
        reg = obs.metrics()
        occupancy = self._occupancy_histogram(reg)
        in_flight: List[int] = []  # completion times (min-heap)
        bus_free = 0.0  # next cycle the data bus is free
        now = 0
        useful_bytes = 0
        fetched_bytes = 0
        with obs.tracer().span("hbm.service_trace", args={"cycles": len(trace)}):
            for group in trace:
                now += 1
                # Coalesce this cycle's requests into distinct bursts.
                bursts = set()
                for addr, size in group:
                    if size <= 0:
                        raise ConfigError("request size must be positive")
                    useful_bytes += size
                    first = addr // burst
                    last = (addr + size - 1) // burst
                    bursts.update(range(first, last + 1))
                for _burst_id in sorted(bursts):
                    # Wait for an MSHR slot.
                    while len(in_flight) >= cfg.max_outstanding:
                        now = max(now, heapq.heappop(in_flight))
                    if occupancy is not None:
                        occupancy.observe(len(in_flight))
                    # Occupy the data bus for the burst transfer.
                    start = max(now, bus_free)
                    bus_free = start + burst / bus_bpc
                    heapq.heappush(
                        in_flight, int(start + latency + burst / bus_bpc)
                    )
                    fetched_bytes += burst
            # Drain.
            while in_flight:
                now = max(now, heapq.heappop(in_flight))
            now = max(now, int(bus_free) + 1)
        if reg.enabled:
            reg.counter("hbm.useful_bytes", "consumer-visible bytes").inc(
                useful_bytes
            )
            reg.counter("hbm.fetched_bytes", "bus bytes incl. burst waste").inc(
                fetched_bytes
            )
        return TraceResult(
            cycles=now,
            useful_bytes=useful_bytes,
            fetched_bytes=fetched_bytes,
            clock_ghz=cfg.clock_ghz,
        )

    def _service_trace_fast(
        self, trace: Sequence[Iterable[Request]], resolved: str
    ) -> "TraceResult":
        """Vectorized burst accounting, bit-identical to the legacy loop.

        Completion times in the legacy heap are nondecreasing (issue
        starts are monotone), so the heap is FIFO: burst ``j`` waits on
        completion ``j - max_outstanding`` exactly. That turns the whole
        loop into (a) one vectorized coalescing pass over all requests
        and (b) a scalar recurrence over the resulting burst sequence,
        with the same ``max``/int-truncation expressions as legacy.
        """
        cfg = self.config
        burst = cfg.burst_bytes
        bus_bpc = cfg.bytes_per_cycle
        latency = cfg.latency_cycles
        slots = cfg.max_outstanding
        reg = obs.metrics()
        occupancy = self._occupancy_histogram(reg)
        groups = len(trace)
        flat: List[Request] = []
        lens: List[int] = []
        extend = flat.extend
        append = lens.append
        n0 = 0
        for group in trace:
            extend(group)
            n1 = len(flat)
            append(n1 - n0)
            n0 = n1
        useful_bytes = 0
        fetched_bytes = 0
        n_bursts = 0
        bus_free = 0.0
        last_comp = 0
        with obs.tracer().span("hbm.service_trace", args={"cycles": groups}):
            if flat:
                req_a = np.asarray(flat, dtype=np.int64)
                addr_a = req_a[:, 0]
                size_a = req_a[:, 1]
                gid_a = np.repeat(
                    np.arange(groups, dtype=np.int64),
                    np.asarray(lens, dtype=np.int64),
                )
                if np.any(size_a <= 0):
                    raise ConfigError("request size must be positive")
                useful_bytes = int(size_a.sum())
                # Expand each request into the burst range it touches,
                # then coalesce per issue group: sort by (group, burst)
                # and keep one fetch per distinct pair — the same
                # sequence the legacy sorted-set walk produces.
                first = addr_a // burst
                counts = (addr_a + size_a - 1) // burst - first + 1
                total = int(counts.sum())
                reps = np.repeat(np.arange(counts.size), counts)
                span_start = np.concatenate(([0], np.cumsum(counts)[:-1]))
                burst_ids = first[reps] + (np.arange(total) - span_start[reps])
                grp = gid_a[reps]
                order = np.lexsort((burst_ids, grp))
                bs = burst_ids[order]
                gs = grp[order]
                keep = np.empty(total, dtype=bool)
                keep[0] = True
                keep[1:] = (gs[1:] != gs[:-1]) | (bs[1:] != bs[:-1])
                gseq = gs[keep]
                n_bursts = int(gseq.size)
                fetched_bytes = n_bursts * burst
                per_burst = burst / bus_bpc
                if resolved == "jit":
                    from repro.sim.jit import hbm_recurrence

                    now, last_comp, bus_free = hbm_recurrence(
                        np.asarray(gseq, dtype=np.int64),
                        slots, latency, per_burst,
                    )
                else:
                    # now carries the legacy chain exactly: one tick per
                    # group entered (ticks compound on top of popped
                    # completion times), then the FIFO pop at capacity.
                    comp: List[int] = [0] * n_bursts
                    now = 0
                    prev_g = -1
                    for j, g in enumerate(gseq.tolist()):
                        now += g - prev_g
                        prev_g = g
                        if j >= slots and comp[j - slots] > now:
                            now = comp[j - slots]
                        start = now if now >= bus_free else bus_free
                        comp[j] = int(start + latency + per_burst)
                        bus_free = start + per_burst
                    last_comp = comp[-1]
                now += groups - 1 - int(gseq[-1])  # trailing burst-free groups
                if occupancy is not None:
                    cap = slots - 1
                    for j in range(n_bursts):
                        occupancy.observe(j if j < cap else cap)
            else:
                now = groups
            cycles = max(now, int(last_comp), int(bus_free) + 1)
        if reg.enabled:
            reg.counter("hbm.useful_bytes", "consumer-visible bytes").inc(
                useful_bytes
            )
            reg.counter("hbm.fetched_bytes", "bus bytes incl. burst waste").inc(
                fetched_bytes
            )
        return TraceResult(
            cycles=cycles,
            useful_bytes=useful_bytes,
            fetched_bytes=fetched_bytes,
            clock_ghz=cfg.clock_ghz,
        )


class TraceResult:
    """Outcome of :meth:`StreamMemory.service_trace`."""

    def __init__(
        self, cycles: int, useful_bytes: int, fetched_bytes: int, clock_ghz: float
    ) -> None:
        self.cycles = cycles
        self.useful_bytes = useful_bytes
        self.fetched_bytes = fetched_bytes
        self.clock_ghz = clock_ghz

    @property
    def time_s(self) -> float:
        return self.cycles / (self.clock_ghz * 1.0e9)

    @property
    def achieved_gbs(self) -> float:
        """Useful (consumer-visible) bandwidth — the Fig. 3e y-axis."""
        if self.cycles == 0:
            return 0.0
        return self.useful_bytes / self.time_s / 1.0e9

    @property
    def raw_gbs(self) -> float:
        """Bus-occupancy bandwidth including burst waste."""
        if self.cycles == 0:
            return 0.0
        return self.fetched_bytes / self.time_s / 1.0e9

    @property
    def efficiency(self) -> float:
        """Useful / fetched bytes."""
        if self.fetched_bytes == 0:
            return 0.0
        return self.useful_bytes / self.fetched_bytes

    def __repr__(self) -> str:
        return (
            f"TraceResult(cycles={self.cycles}, useful={self.useful_bytes}B, "
            f"achieved={self.achieved_gbs:.2f} GB/s)"
        )
