"""DRAM stream model used for the Fig. 3e format-bandwidth experiment.

:class:`StreamMemory` services a trace of per-cycle request groups against a
single memory channel with three effects that together produce the paper's
curve:

1. **Burst granularity** — a request fetches whole bursts; a 12-byte
   extended-CSR record still occupies a 64-byte burst on the data bus, so
   scattered narrow requests waste most of the raw bandwidth.
2. **Coalescing** — requests in the same cycle that touch the same burst
   (CISS: all lanes' data is one contiguous entry) merge into one fetch.
3. **Limited outstanding requests** — with ``max_outstanding`` MSHRs and
   ``latency_cycles`` access time, achieved bandwidth is capped at
   ``outstanding * request_bytes / latency`` (Little's law), which is what
   keeps narrow-entry streams (few PEs) below peak.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Sequence, Tuple

from repro import obs
from repro.sim.config import MemoryConfig
from repro.util.errors import ConfigError

Request = Tuple[int, int]  # (address, size in bytes)


class StreamMemory:
    """Cycle-driven single-channel DRAM service model."""

    def __init__(self, config: MemoryConfig) -> None:
        self.config = config

    def service_trace(self, trace: Sequence[Iterable[Request]]) -> "TraceResult":
        """Run a per-cycle request trace to completion.

        ``trace[t]`` holds the requests all consumers issue at producer
        cycle ``t`` (the trace's cycle granularity is the memory clock).
        Consumers stall when the channel back-pressures, so the trace is
        elastic: cycle ``t``'s requests enter the queue no earlier than
        cycle ``t`` and no earlier than when queue slots free up.
        """
        cfg = self.config
        burst = cfg.burst_bytes
        bus_bpc = cfg.bytes_per_cycle
        latency = cfg.latency_cycles
        reg = obs.metrics()
        occupancy = (
            reg.histogram(
                "hbm.queue_occupancy",
                "in-flight HBM requests sampled per serviced burst",
                buckets=tuple(float(b) for b in range(0, cfg.max_outstanding + 1)),
            )
            if reg.enabled
            else None
        )
        in_flight: List[int] = []  # completion times (min-heap)
        bus_free = 0.0  # next cycle the data bus is free
        now = 0
        useful_bytes = 0
        fetched_bytes = 0
        with obs.tracer().span("hbm.service_trace", args={"cycles": len(trace)}):
            for group in trace:
                now += 1
                # Coalesce this cycle's requests into distinct bursts.
                bursts = set()
                for addr, size in group:
                    if size <= 0:
                        raise ConfigError("request size must be positive")
                    useful_bytes += size
                    first = addr // burst
                    last = (addr + size - 1) // burst
                    bursts.update(range(first, last + 1))
                for _burst_id in sorted(bursts):
                    # Wait for an MSHR slot.
                    while len(in_flight) >= cfg.max_outstanding:
                        now = max(now, heapq.heappop(in_flight))
                    if occupancy is not None:
                        occupancy.observe(len(in_flight))
                    # Occupy the data bus for the burst transfer.
                    start = max(now, bus_free)
                    bus_free = start + burst / bus_bpc
                    heapq.heappush(
                        in_flight, int(start + latency + burst / bus_bpc)
                    )
                    fetched_bytes += burst
            # Drain.
            while in_flight:
                now = max(now, heapq.heappop(in_flight))
            now = max(now, int(bus_free) + 1)
        if reg.enabled:
            reg.counter("hbm.useful_bytes", "consumer-visible bytes").inc(
                useful_bytes
            )
            reg.counter("hbm.fetched_bytes", "bus bytes incl. burst waste").inc(
                fetched_bytes
            )
        return TraceResult(
            cycles=now,
            useful_bytes=useful_bytes,
            fetched_bytes=fetched_bytes,
            clock_ghz=cfg.clock_ghz,
        )


class TraceResult:
    """Outcome of :meth:`StreamMemory.service_trace`."""

    def __init__(
        self, cycles: int, useful_bytes: int, fetched_bytes: int, clock_ghz: float
    ) -> None:
        self.cycles = cycles
        self.useful_bytes = useful_bytes
        self.fetched_bytes = fetched_bytes
        self.clock_ghz = clock_ghz

    @property
    def time_s(self) -> float:
        return self.cycles / (self.clock_ghz * 1.0e9)

    @property
    def achieved_gbs(self) -> float:
        """Useful (consumer-visible) bandwidth — the Fig. 3e y-axis."""
        if self.cycles == 0:
            return 0.0
        return self.useful_bytes / self.time_s / 1.0e9

    @property
    def raw_gbs(self) -> float:
        """Bus-occupancy bandwidth including burst waste."""
        if self.cycles == 0:
            return 0.0
        return self.fetched_bytes / self.time_s / 1.0e9

    @property
    def efficiency(self) -> float:
        """Useful / fetched bytes."""
        if self.fetched_bytes == 0:
            return 0.0
        return self.useful_bytes / self.fetched_bytes

    def __repr__(self) -> str:
        return (
            f"TraceResult(cycles={self.cycles}, useful={self.useful_bytes}B, "
            f"achieved={self.achieved_gbs:.2f} GB/s)"
        )
