"""Deterministic fault injection for the Tensaurus simulator stack.

A :class:`FaultPlan` is a seeded description of the hardware faults one
wants the simulated accelerator to suffer: SPM bit-flips per tile, HBM
channel stalls and outages, PE-lane dropouts, host-visible launch aborts
and (for :mod:`repro.sim.multichip`) whole-chip failures. Every draw comes
from :func:`repro.util.rng.derive_seed` streams keyed by ``(kernel, run
index, retry epoch, fault class)``, so the same plan replayed against the
same workload yields the *same* fault timeline — across runs, across the
batched and per-tile engines, and across ``sweep_configs`` worker counts.

Detection and recovery are costed, not hand-waved:

- when ``spm_bitflip_rate > 0`` every SPM tile pays ``checksum_cycles`` of
  detection overhead (the ECC/checksum verify), and a corrupted tile whose
  flip is detected (``detection_coverage``) is **replayed**: its compute
  and memory time is charged again, its tensor/matrix streams are
  re-fetched, plus a fixed re-dispatch penalty;
- an HBM stall adds ``hbm_stall_cycles`` to the tile's memory phase; an
  outage takes one of ``hbm_channels`` channels away for that tile;
- a PE-lane dropout removes the lane before the CISS deal, so the existing
  least-loaded scheduler redistributes its groups over the surviving lanes
  — graceful degradation at reduced lane count, with the CISS entry width
  shrinking to match;
- undetected flips are counted as ``silent_corruptions`` (the functional
  output of the simulator comes from the reference kernels and is not
  perturbed — this layer models the *timing and accounting* of recovery).

When every rate is 0.0 and no forced faults are listed the plan is
disabled and the simulator takes its exact pre-fault arithmetic path, so
reports are bit-identical to a run with no plan at all (asserted by the
test suite).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.util.errors import ConfigError, FaultError
from repro.util.rng import DEFAULT_SEED, derive_seed, make_rng

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultState",
    "RunFaultContext",
    "TileFaultOutcome",
]

#: Fault event kinds.
SPM_BITFLIP = "spm_bitflip"
HBM_STALL = "hbm_stall"
HBM_OUTAGE = "hbm_outage"
LANE_DROPOUT = "lane_dropout"
LAUNCH_ABORT = "launch_abort"
CHIP_FAILURE = "chip_failure"
WATCHDOG = "watchdog"
SHARD_KILL = "shard_kill"

#: Per-run cap on individually recorded events (counters stay exact).
MAX_EVENTS_PER_RUN = 128


@dataclass(frozen=True)
class FaultEvent:
    """One injected or detected fault, as surfaced on reports/timelines."""

    kind: str  # one of the module-level kind constants
    location: Tuple[object, ...]  # e.g. ("tile", 12), ("lane", 3), ("chip", 0)
    detected: bool = True
    info: str = ""

    def __repr__(self) -> str:  # compact: these appear in rendered tables
        loc = ":".join(str(x) for x in self.location)
        flag = "" if self.detected else " silent"
        return f"FaultEvent({self.kind}@{loc}{flag})"


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, declarative fault-injection configuration.

    All rates are probabilities in ``[0, 1]``; the unit of each draw is
    given per field. ``forced_lane_drops`` / ``forced_chip_failures`` name
    specific lanes/chips that fail deterministically regardless of rate —
    convenient for tests and the degraded-throughput benchmark.
    """

    seed: int = DEFAULT_SEED
    #: probability an SPM tile suffers a bit-flip (per tile per pass).
    spm_bitflip_rate: float = 0.0
    #: fraction of flips the checksum/ECC detects (detected flips replay).
    detection_coverage: float = 1.0
    #: detection cost charged to every tile while bit-flips are modeled.
    checksum_cycles: int = 4
    #: fixed re-dispatch cost on a tile replay, on top of the re-execution.
    replay_penalty_cycles: int = 32
    #: probability a tile's memory phase hits a wedged HBM channel.
    hbm_stall_rate: float = 0.0
    hbm_stall_cycles: int = 200
    #: probability a tile sees a whole-channel outage (bandwidth degrades).
    hbm_outage_rate: float = 0.0
    hbm_channels: int = 8
    #: probability each PE lane drops out for the duration of one run.
    pe_lane_dropout_rate: float = 0.0
    forced_lane_drops: Tuple[int, ...] = ()
    #: probability a kernel launch aborts with a host-visible FaultError.
    launch_abort_rate: float = 0.0
    #: probability a chip fails for the duration of one multichip run.
    chip_failure_rate: float = 0.0
    forced_chip_failures: Tuple[int, ...] = ()
    #: probability each serving-fleet shard is killed during one trace
    #: (fleet-level: consumed by repro.serving.fleet, never by the
    #: accelerator itself, so arming it leaves single-chip runs
    #: bit-identical).
    shard_kill_rate: float = 0.0
    #: forced ``(shard, time_fraction)`` kills: shard ids paired with the
    #: fraction of the trace horizon at which each dies.
    forced_shard_kills: Tuple[Tuple[int, float], ...] = ()

    def __post_init__(self) -> None:
        for attr in (
            "spm_bitflip_rate", "detection_coverage", "hbm_stall_rate",
            "hbm_outage_rate", "pe_lane_dropout_rate", "launch_abort_rate",
            "chip_failure_rate", "shard_kill_rate",
        ):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{attr} must be in [0, 1], got {value!r}")
        for attr in ("checksum_cycles", "replay_penalty_cycles",
                     "hbm_stall_cycles"):
            if getattr(self, attr) < 0:
                raise ConfigError(f"{attr} must be >= 0")
        if self.hbm_channels < 2:
            raise ConfigError("hbm_channels must be >= 2 (outage leaves one)")
        object.__setattr__(
            self, "forced_lane_drops", tuple(int(x) for x in self.forced_lane_drops)
        )
        object.__setattr__(
            self, "forced_chip_failures",
            tuple(int(x) for x in self.forced_chip_failures),
        )
        kills = tuple(
            (int(s), float(f)) for s, f in self.forced_shard_kills
        )
        for s, f in kills:
            if s < 0:
                raise ConfigError("forced shard ids must be >= 0")
            if not 0.0 <= f <= 1.0:
                raise ConfigError(
                    f"shard kill time fraction must be in [0, 1], got {f!r}"
                )
        object.__setattr__(self, "forced_shard_kills", kills)

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """False iff the plan can never inject *accelerator-level* faults.

        Fleet-level shard kills are deliberately excluded (see
        :attr:`shard_kills_armed`): a shard-kill-only plan leaves every
        simulator launch bit-identical to running with no plan at all.
        """
        return bool(
            self.spm_bitflip_rate > 0
            or self.hbm_stall_rate > 0
            or self.hbm_outage_rate > 0
            or self.pe_lane_dropout_rate > 0
            or self.launch_abort_rate > 0
            or self.chip_failure_rate > 0
            or self.forced_lane_drops
            or self.forced_chip_failures
        )

    @property
    def models_spm_faults(self) -> bool:
        """True when SPM protection (checksum + replay) is being costed."""
        return self.spm_bitflip_rate > 0

    # ------------------------------------------------------------------
    # Serialization + composition (the chaos schedule layer builds
    # compound plans out of typed events and persists them as JSON).
    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        """A JSON-safe dict that round-trips exactly via :meth:`from_json`.

        Floats are emitted as-is (``json`` preserves IEEE doubles via
        ``repr``), tuples become lists; ``from_json(to_json(p)) == p``
        for every valid plan — the property the regression corpus leans
        on for bit-identical replay.
        """
        return {
            "seed": int(self.seed),
            "spm_bitflip_rate": self.spm_bitflip_rate,
            "detection_coverage": self.detection_coverage,
            "checksum_cycles": int(self.checksum_cycles),
            "replay_penalty_cycles": int(self.replay_penalty_cycles),
            "hbm_stall_rate": self.hbm_stall_rate,
            "hbm_stall_cycles": int(self.hbm_stall_cycles),
            "hbm_outage_rate": self.hbm_outage_rate,
            "hbm_channels": int(self.hbm_channels),
            "pe_lane_dropout_rate": self.pe_lane_dropout_rate,
            "forced_lane_drops": list(self.forced_lane_drops),
            "launch_abort_rate": self.launch_abort_rate,
            "chip_failure_rate": self.chip_failure_rate,
            "forced_chip_failures": list(self.forced_chip_failures),
            "shard_kill_rate": self.shard_kill_rate,
            "forced_shard_kills": [list(k) for k in self.forced_shard_kills],
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_json` output (exact inverse)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown FaultPlan fields in JSON: {sorted(unknown)}"
            )
        kwargs = dict(data)
        if "forced_shard_kills" in kwargs:
            kwargs["forced_shard_kills"] = tuple(
                (int(s), float(f)) for s, f in kwargs["forced_shard_kills"]
            )
        return cls(**kwargs)

    def merge(self, other: "FaultPlan") -> "FaultPlan":
        """Compose two plans into one (seed taken from ``self``).

        Rates combine as independent hazards — ``1 - (1-a)(1-b)`` — so
        layering a schedule's events onto a base plan never *lowers* a
        fault probability; forced lists union; cycle/channel knobs take
        the max (the costlier model wins) and ``detection_coverage`` the
        min (the weaker checker wins).
        """
        def hazard(a: float, b: float) -> float:
            return 1.0 - (1.0 - a) * (1.0 - b)

        return FaultPlan(
            seed=self.seed,
            spm_bitflip_rate=hazard(self.spm_bitflip_rate, other.spm_bitflip_rate),
            detection_coverage=min(self.detection_coverage, other.detection_coverage),
            checksum_cycles=max(self.checksum_cycles, other.checksum_cycles),
            replay_penalty_cycles=max(
                self.replay_penalty_cycles, other.replay_penalty_cycles
            ),
            hbm_stall_rate=hazard(self.hbm_stall_rate, other.hbm_stall_rate),
            hbm_stall_cycles=max(self.hbm_stall_cycles, other.hbm_stall_cycles),
            hbm_outage_rate=hazard(self.hbm_outage_rate, other.hbm_outage_rate),
            hbm_channels=max(self.hbm_channels, other.hbm_channels),
            pe_lane_dropout_rate=hazard(
                self.pe_lane_dropout_rate, other.pe_lane_dropout_rate
            ),
            forced_lane_drops=tuple(
                sorted(set(self.forced_lane_drops) | set(other.forced_lane_drops))
            ),
            launch_abort_rate=hazard(self.launch_abort_rate, other.launch_abort_rate),
            chip_failure_rate=hazard(self.chip_failure_rate, other.chip_failure_rate),
            forced_chip_failures=tuple(
                sorted(set(self.forced_chip_failures) | set(other.forced_chip_failures))
            ),
            shard_kill_rate=hazard(self.shard_kill_rate, other.shard_kill_rate),
            forced_shard_kills=tuple(
                sorted(set(self.forced_shard_kills) | set(other.forced_shard_kills))
            ),
        )

    def uniforms(self, n: int, *labels: object) -> np.ndarray:
        """``n`` deterministic uniforms on the stream named by ``labels``."""
        rng = make_rng(derive_seed(self.seed, "fault", *labels))
        return rng.random(n)

    def chip_failures(self, num_chips: int, run_index: int) -> List[int]:
        """Chips that fail for one multichip run (sorted, deterministic)."""
        failed = set(c for c in self.forced_chip_failures if c < num_chips)
        if self.chip_failure_rate > 0:
            u = self.uniforms(num_chips, "chip", run_index)
            failed.update(np.flatnonzero(u < self.chip_failure_rate).tolist())
        return sorted(int(c) for c in failed)

    # ------------------------------------------------------------------
    # Fleet-level faults (consumed by repro.serving.fleet). These knobs
    # deliberately do NOT participate in :attr:`enabled` — a plan that
    # only kills shards must not arm the accelerator-level fault
    # machinery, which would perturb per-launch accounting.
    # ------------------------------------------------------------------
    @property
    def shard_kills_armed(self) -> bool:
        """True when the plan can kill serving-fleet shards."""
        return self.shard_kill_rate > 0 or bool(self.forced_shard_kills)

    def shard_kills(
        self, num_shards: int, horizon_s: float, run_index: int = 0
    ) -> List[Tuple[int, float]]:
        """``(shard, kill_time_s)`` pairs for one fleet trace.

        Forced kills fire at their configured fraction of ``horizon_s``;
        rate-drawn kills pick a seeded uniform kill time over the
        horizon. Sorted by (time, shard) — the order the fleet's event
        loop consumes them — and deterministic per (seed, run_index).
        """
        kills = {
            s: f * float(horizon_s)
            for s, f in self.forced_shard_kills
            if s < num_shards
        }
        if self.shard_kill_rate > 0:
            u = self.uniforms(num_shards, "shard", run_index)
            t = self.uniforms(num_shards, "shard-time", run_index)
            for s in np.flatnonzero(u < self.shard_kill_rate).tolist():
                kills.setdefault(int(s), float(t[s]) * float(horizon_s))
        return sorted(kills.items(), key=lambda kv: (kv[1], kv[0]))


@dataclass
class TileFaultOutcome:
    """Adjusted schedule totals after applying per-tile faults."""

    cycles: int
    extra_tensor_bytes: int
    extra_matrix_bytes: int


class RunFaultContext:
    """Fault draws, accounting and events for one kernel execution.

    Created by :meth:`FaultState.begin_run`; the accelerator asks it (in
    order) whether the launch aborts, how many lanes survive, and what the
    per-tile fault adjustment to the tile schedule is. Counters accumulate
    here and are folded into ``SimReport.faults`` by ``finish``.
    """

    def __init__(self, plan: FaultPlan, kernel: str, run_index: int, epoch: int) -> None:
        self.plan = plan
        self.kernel = kernel
        self.run_index = run_index
        self.epoch = epoch
        self.counters: Dict[str, int] = {}
        self.structural: Dict[str, int] = {}
        self.events: List[FaultEvent] = []

    # ------------------------------------------------------------------
    def _draw(self, n: int, label: str) -> np.ndarray:
        return self.plan.uniforms(
            n, self.kernel, self.run_index, self.epoch, label
        )

    def _count(self, key: str, amount: int) -> None:
        if amount:
            self.counters[key] = self.counters.get(key, 0) + int(amount)

    def _event(self, kind: str, location: Tuple[object, ...],
               detected: bool = True, info: str = "") -> None:
        if len(self.events) < MAX_EVENTS_PER_RUN:
            self.events.append(FaultEvent(kind, location, detected, info))

    # ------------------------------------------------------------------
    def check_launch_abort(self) -> None:
        """Raise :class:`FaultError` when this launch is drawn to abort."""
        rate = self.plan.launch_abort_rate
        if rate <= 0:
            return
        if float(self._draw(1, "abort")[0]) < rate:
            self._event(LAUNCH_ABORT, ("run", self.run_index))
            raise FaultError(
                f"injected launch abort (kernel={self.kernel}, "
                f"run={self.run_index}, epoch={self.epoch})"
            )

    def active_lanes(self, rows: int) -> int:
        """Surviving PE lanes for this run (at least one always survives)."""
        plan = self.plan
        dropped = set(l for l in plan.forced_lane_drops if 0 <= l < rows)
        if plan.pe_lane_dropout_rate > 0:
            u = self._draw(rows, "lane")
            dropped.update(np.flatnonzero(u < plan.pe_lane_dropout_rate).tolist())
        if len(dropped) >= rows:  # keep the machine minimally alive
            dropped = set(sorted(dropped)[: rows - 1])
        for lane in sorted(dropped):
            self._event(LANE_DROPOUT, ("lane", int(lane)))
        lanes = rows - len(dropped)
        self.structural["lanes_dropped"] = len(dropped)
        self.structural["active_lanes"] = lanes
        return lanes

    # ------------------------------------------------------------------
    def apply_tile_faults(
        self,
        compute_cycles: np.ndarray,
        t_bytes: np.ndarray,
        m_bytes: np.ndarray,
        o_bytes: np.ndarray,
        bytes_per_cycle: float,
        tile_overhead: int,
    ) -> TileFaultOutcome:
        """Fault-adjusted schedule total over per-tile cost arrays.

        The clean per-tile cost is ``max(compute, ceil(bytes/bpc)) +
        overhead``; this reproduces that arithmetic, overlays checksum
        cycles, stall/outage memory penalties and detected-flip replays,
        and records the itemized overhead counters. All inputs are
        length-``num_tiles`` arrays (int64 for cycles/bytes).
        """
        plan = self.plan
        compute_cycles = np.asarray(compute_cycles, dtype=np.int64)
        t_bytes = np.asarray(t_bytes, dtype=np.int64)
        m_bytes = np.asarray(m_bytes, dtype=np.int64)
        o_bytes = np.asarray(o_bytes, dtype=np.int64)
        n = int(compute_cycles.shape[0])
        total_bytes = t_bytes + m_bytes + o_bytes
        clean_mem = np.ceil(total_bytes / bytes_per_cycle).astype(np.int64)
        clean_tiles = np.maximum(compute_cycles, clean_mem) + tile_overhead
        clean_total = int(clean_tiles.sum())
        if n == 0:
            return TileFaultOutcome(0, 0, 0)

        # --- SPM protection: checksum verify on every tile, replay on a
        # detected flip.
        compute_f = compute_cycles
        flips = np.zeros(n, dtype=bool)
        detected = np.zeros(n, dtype=bool)
        if plan.models_spm_faults:
            compute_f = compute_cycles + plan.checksum_cycles
            self._count("checksum_cycles", n * plan.checksum_cycles)
            flips = self._draw(n, "spm-flip") < plan.spm_bitflip_rate
            if plan.detection_coverage >= 1.0:
                detected = flips
            else:
                detected = flips & (
                    self._draw(n, "spm-detect") < plan.detection_coverage
                )
            self._count("spm_bitflips", int(flips.sum()))
            self._count("detected_bitflips", int(detected.sum()))
            self._count("silent_corruptions", int((flips & ~detected).sum()))
            for g in np.flatnonzero(flips):
                self._event(SPM_BITFLIP, ("tile", int(g)), bool(detected[g]))

        # --- HBM faults: stalls lengthen the memory phase, outages take a
        # channel away for the affected tile.
        mem_f = clean_mem
        if plan.hbm_outage_rate > 0:
            outages = self._draw(n, "hbm-outage") < plan.hbm_outage_rate
            degraded = bytes_per_cycle * (plan.hbm_channels - 1) / plan.hbm_channels
            mem_f = np.where(
                outages,
                np.ceil(total_bytes / degraded).astype(np.int64),
                mem_f,
            )
            self._count("hbm_outages", int(outages.sum()))
            for g in np.flatnonzero(outages):
                self._event(HBM_OUTAGE, ("tile", int(g)))
        if plan.hbm_stall_rate > 0:
            stalls = self._draw(n, "hbm-stall") < plan.hbm_stall_rate
            mem_f = mem_f + stalls * plan.hbm_stall_cycles
            self._count("hbm_stalls", int(stalls.sum()))
            self._count("hbm_stall_cycles", int(stalls.sum()) * plan.hbm_stall_cycles)
            for g in np.flatnonzero(stalls):
                self._event(HBM_STALL, ("tile", int(g)))

        tiles = np.maximum(compute_f, mem_f) + tile_overhead
        replay = detected * (tiles + plan.replay_penalty_cycles)
        total = int((tiles + replay).sum())
        self._count("tile_replays", int(detected.sum()))
        self._count("replay_cycles", int(replay.sum()))
        self._count("fault_overhead_cycles", total - clean_total)
        return TileFaultOutcome(
            cycles=total,
            extra_tensor_bytes=int((detected * t_bytes).sum()),
            extra_matrix_bytes=int((detected * m_bytes).sum()),
        )

    # ------------------------------------------------------------------
    def finish(self, passes: int = 1) -> Dict[str, int]:
        """The ``SimReport.faults`` mapping: per-pass counters scaled by
        the pass count plus the structural (unscaled) entries."""
        out = {k: int(v) * int(passes) for k, v in self.counters.items()}
        out.update(self.structural)
        return out


class FaultState:
    """Per-accelerator fault bookkeeping: run counter and retry epoch.

    The run counter makes successive kernel invocations (the three MTTKRPs
    of a CP-ALS sweep, say) draw from distinct but reproducible streams;
    the epoch is bumped by host-side recovery (driver RESET-retry,
    checkpoint resume, sweep re-attempts) so a retried launch does not
    deterministically re-suffer the identical fault.
    """

    def __init__(self, plan: Optional[FaultPlan], epoch: int = 0) -> None:
        self.plan = plan
        self.epoch = int(epoch)
        self.runs = 0

    @property
    def enabled(self) -> bool:
        return self.plan is not None and self.plan.enabled

    def advance_epoch(self) -> None:
        self.epoch += 1

    def begin_run(self, kernel: str) -> Optional[RunFaultContext]:
        """A fresh per-run context, or ``None`` when injection is off."""
        if not self.enabled:
            return None
        ctx = RunFaultContext(self.plan, kernel, self.runs, self.epoch)
        self.runs += 1
        return ctx
