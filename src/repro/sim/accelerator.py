"""Top-level Tensaurus simulator (Fig. 5).

:class:`Tensaurus` executes any of the eight supported kernels against the
configured design point and returns a :class:`~repro.sim.report.SimReport`
with cycles, operation counts and per-stream byte traffic.

Execution model
---------------
The operands are tiled per :mod:`repro.sim.tiling`. Each sparse tile is
CISS-encoded with the real encoder (so load balance, headers and padding are
the actual format's), then analyzed by :mod:`repro.sim.lanes` for per-lane
cycles, SPM bank conflicts and op counts. Per tile, compute and the three
memory streams (TLU tensor stream, MLU matrix tiles, MSU output) overlap
through the double buffers, so a tile costs ``max(compute, memory)`` plus a
fixed swap/fill overhead; tiles execute back to back. Rank ranges wider
than one PE-array pass multiply the whole schedule (the tensor is
re-streamed per pass, Section 5.2.4).

Dense kernels use the same cost model in closed form: a dense tile's record
stream is perfectly uniform, so its lane statistics are exact without
materializing a CISS encoding (the TLU builds entries on the fly and the
crossbar broadcasts, Section 5.2.4), and the tensor stream carries raw
values with no index overhead.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.formats.ciss import CISSMatrix, CISSTensor
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.kernels.matmul import gemm as gemm_ref
from repro.kernels.matmul import gemv as gemv_ref
from repro.kernels.matmul import spmm as spmm_ref
from repro.kernels.matmul import spmv as spmv_ref
from repro.kernels.mttkrp import mttkrp_dense_factored, mttkrp_sparse_factored
from repro.kernels.ttmc import ttmc_dense_factored, ttmc_sparse_factored
from repro.sim.config import TensaurusConfig
from repro.sim.costs import kernel_costs
from repro.sim.lanes import LaneStats, analyze_lanes
from repro.sim.report import SimReport
from repro.sim.tiling import TilingPlan, make_plan, tile_count
from repro.tensor import SparseTensor
from repro.util.errors import KernelError

MatrixLike = Union[CSRMatrix, COOMatrix, np.ndarray]


class Tensaurus:
    """The simulated accelerator."""

    def __init__(self, config: Optional[TensaurusConfig] = None) -> None:
        self.config = config or TensaurusConfig()

    # ------------------------------------------------------------------
    # Public kernel entry points
    # ------------------------------------------------------------------
    def run_mttkrp(
        self,
        tensor: Union[SparseTensor, np.ndarray],
        mat_b: np.ndarray,
        mat_c: np.ndarray,
        mode: int = 0,
        msu_mode: str = "auto",
        compute_output: bool = True,
    ) -> SimReport:
        """MTTKRP along ``mode``; sparse or dense by operand type.

        ``mat_b`` / ``mat_c`` are the factors of the first / second
        remaining mode in increasing mode order (as in
        :mod:`repro.kernels.mttkrp`).
        """
        mat_b = np.asarray(mat_b, dtype=np.float64)
        mat_c = np.asarray(mat_c, dtype=np.float64)
        rank = mat_b.shape[1]
        if isinstance(tensor, SparseTensor):
            return self._run_sparse_tensor(
                "spmttkrp", tensor, mat_b, mat_c, mode, rank, 0,
                msu_mode, compute_output,
            )
        return self._run_dense_tensor(
            "dmttkrp", np.asarray(tensor, dtype=np.float64), mat_b, mat_c,
            mode, rank, 0, msu_mode, compute_output,
        )

    def run_ttmc(
        self,
        tensor: Union[SparseTensor, np.ndarray],
        mat_b: np.ndarray,
        mat_c: np.ndarray,
        mode: int = 0,
        msu_mode: str = "auto",
        compute_output: bool = True,
    ) -> SimReport:
        """TTMc along ``mode``; output is the dense (I x F1 x F2) tensor."""
        mat_b = np.asarray(mat_b, dtype=np.float64)
        mat_c = np.asarray(mat_c, dtype=np.float64)
        if isinstance(tensor, SparseTensor):
            return self._run_sparse_tensor(
                "spttmc", tensor, mat_b, mat_c, mode,
                mat_b.shape[1], mat_c.shape[1], msu_mode, compute_output,
            )
        return self._run_dense_tensor(
            "dttmc", np.asarray(tensor, dtype=np.float64), mat_b, mat_c,
            mode, mat_b.shape[1], mat_c.shape[1], msu_mode, compute_output,
        )

    def run_spmm(
        self,
        a: MatrixLike,
        mat_b: np.ndarray,
        msu_mode: str = "auto",
        compute_output: bool = True,
    ) -> SimReport:
        """Sparse (CSR/COO operand) or dense (ndarray operand) matrix-matrix."""
        mat_b = np.asarray(mat_b, dtype=np.float64)
        if isinstance(a, np.ndarray):
            return self._run_dense_matrix(
                "gemm", a, mat_b, msu_mode, compute_output
            )
        coo = a.to_coo() if isinstance(a, CSRMatrix) else a
        return self._run_sparse_matrix(
            "spmm", coo, mat_b, msu_mode, compute_output
        )

    def run_spmv(
        self,
        a: MatrixLike,
        vec: np.ndarray,
        msu_mode: str = "auto",
        compute_output: bool = True,
    ) -> SimReport:
        """Sparse or dense matrix-vector."""
        vec = np.asarray(vec, dtype=np.float64)
        if isinstance(a, np.ndarray):
            return self._run_dense_matrix(
                "gemv", a, vec, msu_mode, compute_output
            )
        coo = a.to_coo() if isinstance(a, CSRMatrix) else a
        return self._run_sparse_matrix(
            "spmv", coo, vec, msu_mode, compute_output
        )

    # ------------------------------------------------------------------
    # Shared mechanics
    # ------------------------------------------------------------------
    @property
    def _bpc(self) -> float:
        """Off-chip bytes deliverable per accelerator cycle."""
        return self.config.hbm_bytes_per_cycle

    @property
    def _tile_overhead(self) -> int:
        """Buffer-swap plus systolic fill cycles charged per tile."""
        return self.config.rows + self.config.cols + 16

    def _out_elems(self, plan: TilingPlan) -> int:
        """Output elements per slice/row per pass."""
        if plan.kernel == "ttmc":
            return plan.f1_tile * plan.fiber_elems
        return plan.fiber_elems

    def _resolve_msu_mode(
        self,
        kernel: str,
        dims: tuple,
        msu_mode: str,
        rank: int,
        rank2: int,
        estimate,
    ) -> str:
        """Pick buffered vs direct reduction by estimated traffic."""
        if msu_mode != "auto":
            return msu_mode
        best_mode, best_bytes = None, None
        for mode in ("buffered", "direct"):
            plan = make_plan(kernel, self.config, dims, mode, rank, rank2)
            total = estimate(plan)
            if best_bytes is None or total < best_bytes:
                best_mode, best_bytes = mode, total
        return best_mode

    # ------------------------------------------------------------------
    # Sparse 3-d tensor kernels (SpMTTKRP / SpTTMc)
    # ------------------------------------------------------------------
    def _run_sparse_tensor(
        self,
        kernel: str,
        tensor: SparseTensor,
        mat_b: np.ndarray,
        mat_c: np.ndarray,
        mode: int,
        rank: int,
        rank2: int,
        msu_mode: str,
        compute_output: bool,
    ) -> SimReport:
        if tensor.ndim != 3:
            raise KernelError("the accelerator's tensor kernels are 3-d")
        cfg = self.config
        rest = [m for m in range(3) if m != mode]
        perm = tensor if mode == 0 else tensor.permute_modes([mode] + rest)
        dims = perm.shape
        coords, vals = perm.coords, perm.values
        base = "mttkrp" if kernel == "spmttkrp" else "ttmc"

        def estimate(plan: TilingPlan) -> float:
            return self._estimate_tensor_traffic(plan, coords, dims)

        resolved = self._resolve_msu_mode(base, dims, msu_mode, rank, rank2, estimate)
        plan = make_plan(base, cfg, dims, resolved, rank, rank2)
        costs = kernel_costs(kernel, cfg, plan.fiber_elems, plan.f1_tile)
        entry_bytes = cfg.ciss_entry_bytes(index_fields=2)
        dw = cfg.data_width
        out_elems = self._out_elems(plan)

        nj = tile_count(dims[1], plan.j_tile)
        nk = tile_count(dims[2], plan.k_tile)
        ib = coords[:, 0] // plan.i_tile
        jb = coords[:, 1] // plan.j_tile
        kb = coords[:, 2] // plan.k_tile
        tid = (ib * nj + jb) * nk + kb
        order = np.lexsort((coords[:, 2], coords[:, 1], coords[:, 0], tid))
        coords_s = coords[order]
        vals_s = vals[order]
        tid_s = tid[order]
        uniq, first = np.unique(tid_s, return_index=True)
        bounds = np.append(first, perm.nnz)

        cycles = 0
        ops = 0
        tensor_bytes = 0
        matrix_bytes = 0
        output_bytes = 0
        total_entries = 0
        total_fibers = 0
        total_headers = 0
        total_conflicts = 0
        nonempty_slices = int(np.unique(coords[:, 0]).shape[0])

        for g, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:])):
            sub = SparseTensor(
                dims, coords_s[lo:hi], vals_s[lo:hi], canonical=True
            )
            ciss = CISSTensor.from_sparse(sub, cfg.rows, mode=0)
            stats = analyze_lanes(
                ciss.kinds, ciss.a_idx, ciss.k_idx, costs, cfg.spm_banks
            )
            g_tid = int(uniq[g])
            g_jb = (g_tid // nk) % nj
            g_kb = g_tid % nk
            jx = min(plan.j_tile, dims[1] - g_jb * plan.j_tile)
            kx = min(plan.k_tile, dims[2] - g_kb * plan.k_tile)
            t_bytes = ciss.num_entries * entry_bytes
            if kernel == "spttmc":
                m_bytes = (jx * plan.f1_tile + kx * plan.fiber_elems) * dw
            else:
                m_bytes = (jx + kx) * plan.fiber_elems * dw
            o_bytes = 0
            if plan.msu_mode == "direct":
                o_bytes = stats.num_headers * out_elems * dw * 2
            mem_cycles = math.ceil((t_bytes + m_bytes + o_bytes) / self._bpc)
            cycles += max(stats.compute_cycles, mem_cycles) + self._tile_overhead
            ops += stats.ops
            tensor_bytes += t_bytes
            matrix_bytes += m_bytes
            output_bytes += o_bytes
            total_entries += stats.num_entries
            total_fibers += stats.num_fibers
            total_headers += stats.num_headers
            total_conflicts += stats.conflict_stalls

        if plan.msu_mode == "buffered":
            write_bytes = nonempty_slices * out_elems * dw
            output_bytes += write_bytes
            cycles += math.ceil(write_bytes / self._bpc)

        cycles *= plan.passes
        ops *= plan.passes
        tensor_bytes *= plan.passes
        matrix_bytes *= plan.passes
        output_bytes *= plan.passes

        output = None
        if compute_output:
            factors = [mat_b, mat_c]
            if kernel == "spmttkrp":
                output = mttkrp_sparse_factored(tensor, factors, mode)
            else:
                output = ttmc_sparse_factored(tensor, factors, mode)
        return SimReport(
            kernel=kernel,
            cycles=int(cycles),
            ops=int(ops),
            tensor_bytes=int(tensor_bytes),
            matrix_bytes=int(matrix_bytes),
            output_bytes=int(output_bytes),
            clock_ghz=cfg.clock_ghz,
            output=output,
            detail={
                "msu_mode": plan.msu_mode,
                "passes": plan.passes,
                "entries": total_entries,
                "fibers": total_fibers,
                "headers": total_headers,
                "conflict_stalls": total_conflicts,
                "nnz": perm.nnz,
            },
        )

    def _estimate_tensor_traffic(
        self, plan: TilingPlan, coords: np.ndarray, dims: tuple
    ) -> float:
        """Cheap traffic estimate for MSU-mode selection (no encoding)."""
        cfg = self.config
        dw = cfg.data_width
        out_elems = self._out_elems(plan)
        nj = tile_count(dims[1], plan.j_tile)
        nk = tile_count(dims[2], plan.k_tile)
        ib = coords[:, 0] // plan.i_tile
        jb = coords[:, 1] // plan.j_tile
        kb = coords[:, 2] // plan.k_tile
        tid = (ib * nj + jb) * nk + kb
        groups = np.unique(tid)
        # Matrix traffic: each nonempty group loads its j and k tiles.
        if plan.kernel == "ttmc":
            per_group = (plan.j_tile * plan.f1_tile + plan.k_tile * plan.fiber_elems)
        else:
            per_group = (plan.j_tile + plan.k_tile) * plan.fiber_elems
        matrix = groups.shape[0] * per_group * dw
        entry_bytes = cfg.ciss_entry_bytes(2)
        tensor = (coords.shape[0] / cfg.rows + groups.shape[0]) * entry_bytes
        if plan.msu_mode == "direct":
            slice_visits = np.unique(tid * (dims[0] + 1) + coords[:, 0]).shape[0]
            output = slice_visits * out_elems * dw * 2
        else:
            output = np.unique(coords[:, 0]).shape[0] * out_elems * dw
        return float((matrix + tensor + output) * plan.passes)

    # ------------------------------------------------------------------
    # Sparse matrix kernels (SpMM / SpMV)
    # ------------------------------------------------------------------
    def _run_sparse_matrix(
        self,
        kernel: str,
        coo: COOMatrix,
        dense_operand: np.ndarray,
        msu_mode: str,
        compute_output: bool,
    ) -> SimReport:
        cfg = self.config
        dims = coo.shape
        ncols = dense_operand.shape[1] if kernel == "spmm" else 1

        def estimate(plan: TilingPlan) -> float:
            return self._estimate_matrix_traffic(plan, coo, dims)

        resolved = self._resolve_msu_mode(kernel, dims, msu_mode, ncols, 0, estimate)
        plan = make_plan(kernel, cfg, dims, resolved, ncols)
        costs = kernel_costs(kernel, cfg, plan.fiber_elems)
        entry_bytes = cfg.ciss_entry_bytes(index_fields=1)
        dw = cfg.data_width
        out_elems = self._out_elems(plan)

        nj = tile_count(dims[1], plan.j_tile)
        ib = coo.rows // plan.i_tile
        jb = coo.cols // plan.j_tile
        tid = ib * nj + jb
        order = np.lexsort((coo.cols, coo.rows, tid))
        rows_s = coo.rows[order]
        cols_s = coo.cols[order]
        vals_s = vals_sorted = coo.vals[order]
        uniq, first = np.unique(tid[order], return_index=True)
        bounds = np.append(first, coo.nnz)

        cycles = 0
        ops = 0
        tensor_bytes = 0
        matrix_bytes = 0
        output_bytes = 0
        total_entries = 0
        total_headers = 0
        total_conflicts = 0
        nonempty_rows = int(np.unique(coo.rows).shape[0])

        for g, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:])):
            sub = COOMatrix(dims, rows_s[lo:hi], cols_s[lo:hi], vals_s[lo:hi])
            ciss = CISSMatrix.from_coo(sub, cfg.rows)
            stats = analyze_lanes(
                ciss.kinds, ciss.a_idx, ciss.k_idx, costs, cfg.spm_banks
            )
            g_jb = int(uniq[g]) % nj
            jx = min(plan.j_tile, dims[1] - g_jb * plan.j_tile)
            t_bytes = ciss.num_entries * entry_bytes
            m_bytes = jx * plan.fiber_elems * dw
            o_bytes = 0
            if plan.msu_mode == "direct":
                o_bytes = stats.num_headers * out_elems * dw * 2
            mem_cycles = math.ceil((t_bytes + m_bytes + o_bytes) / self._bpc)
            cycles += max(stats.compute_cycles, mem_cycles) + self._tile_overhead
            ops += stats.ops
            tensor_bytes += t_bytes
            matrix_bytes += m_bytes
            output_bytes += o_bytes
            total_entries += stats.num_entries
            total_headers += stats.num_headers
            total_conflicts += stats.conflict_stalls

        if plan.msu_mode == "buffered":
            write_bytes = nonempty_rows * out_elems * dw
            output_bytes += write_bytes
            cycles += math.ceil(write_bytes / self._bpc)

        cycles *= plan.passes
        ops *= plan.passes
        tensor_bytes *= plan.passes
        matrix_bytes *= plan.passes
        output_bytes *= plan.passes

        output = None
        if compute_output:
            csr = CSRMatrix.from_coo(coo)
            if kernel == "spmm":
                output = spmm_ref(csr, dense_operand)
            else:
                output = spmv_ref(csr, dense_operand)
        return SimReport(
            kernel=kernel,
            cycles=int(cycles),
            ops=int(ops),
            tensor_bytes=int(tensor_bytes),
            matrix_bytes=int(matrix_bytes),
            output_bytes=int(output_bytes),
            clock_ghz=cfg.clock_ghz,
            output=output,
            detail={
                "msu_mode": plan.msu_mode,
                "passes": plan.passes,
                "entries": total_entries,
                "headers": total_headers,
                "conflict_stalls": total_conflicts,
                "nnz": coo.nnz,
            },
        )

    def _estimate_matrix_traffic(
        self, plan: TilingPlan, coo: COOMatrix, dims: tuple
    ) -> float:
        cfg = self.config
        dw = cfg.data_width
        out_elems = self._out_elems(plan)
        nj = tile_count(dims[1], plan.j_tile)
        tid = (coo.rows // plan.i_tile) * nj + (coo.cols // plan.j_tile)
        groups = np.unique(tid)
        matrix = groups.shape[0] * plan.j_tile * plan.fiber_elems * dw
        tensor = (coo.nnz / cfg.rows + groups.shape[0]) * cfg.ciss_entry_bytes(1)
        if plan.msu_mode == "direct":
            visits = np.unique(tid * (dims[0] + 1) + coo.rows).shape[0]
            output = visits * out_elems * dw * 2
        else:
            output = np.unique(coo.rows).shape[0] * out_elems * dw
        return float((matrix + tensor + output) * plan.passes)

    # ------------------------------------------------------------------
    # Dense kernels (closed-form uniform tiles)
    # ------------------------------------------------------------------
    def _dense_tile_stats(
        self,
        costs,
        records: int,
        headers: int,
        fibers: int,
    ) -> Tuple[int, int]:
        """(compute_cycles, ops) of a uniform dense tile.

        Records distribute evenly across lanes (the on-the-fly CISS builder
        deals equal slices), so the slowest lane carries ``ceil`` shares.
        Dense mode broadcasts SPM reads — no bank conflicts.
        """
        rows = self.config.rows
        lane_records = math.ceil(records / rows)
        lane_headers = math.ceil(headers / rows)
        lane_fibers = math.ceil(fibers / rows) if costs.uses_fibers else 0
        lane_slices = lane_headers  # one drain per slice per lane
        lane_cycles = (
            costs.nnz_cycles * lane_records
            + costs.header_cycles * lane_headers
            + costs.fold_cycles * lane_fibers
            + costs.drain_cycles * lane_slices
        )
        ops = costs.ops_per_nnz * records
        if costs.uses_fibers:
            ops += costs.ops_per_fold * fibers
        return int(lane_cycles), int(ops)

    def _run_dense_tensor(
        self,
        kernel: str,
        tensor: np.ndarray,
        mat_b: np.ndarray,
        mat_c: np.ndarray,
        mode: int,
        rank: int,
        rank2: int,
        msu_mode: str,
        compute_output: bool,
    ) -> SimReport:
        if tensor.ndim != 3:
            raise KernelError("the accelerator's tensor kernels are 3-d")
        cfg = self.config
        rest = [m for m in range(3) if m != mode]
        dims = tuple(tensor.shape[m] for m in [mode] + rest)
        base = "mttkrp" if kernel == "dmttkrp" else "ttmc"
        resolved = "buffered" if msu_mode == "auto" else msu_mode
        plan = make_plan(base, cfg, dims, resolved, rank, rank2)
        costs = kernel_costs(kernel, cfg, plan.fiber_elems, plan.f1_tile)
        dw = cfg.data_width
        out_elems = self._out_elems(plan)

        cycles = 0
        ops = 0
        tensor_bytes = 0
        matrix_bytes = 0
        output_bytes = 0
        i_dim, j_dim, k_dim = dims
        for i_lo in range(0, i_dim, plan.i_tile):
            ix = min(plan.i_tile, i_dim - i_lo)
            for j_lo in range(0, j_dim, plan.j_tile):
                jx = min(plan.j_tile, j_dim - j_lo)
                for k_lo in range(0, k_dim, plan.k_tile):
                    kx = min(plan.k_tile, k_dim - k_lo)
                    records = ix * jx * kx
                    headers = ix
                    fibers = ix * jx
                    compute, tile_ops = self._dense_tile_stats(
                        costs, records, headers, fibers
                    )
                    t_bytes = records * dw
                    if kernel == "dttmc":
                        m_bytes = (jx * plan.f1_tile + kx * plan.fiber_elems) * dw
                    else:
                        m_bytes = (jx + kx) * plan.fiber_elems * dw
                    o_bytes = 0
                    if plan.msu_mode == "direct":
                        o_bytes = ix * out_elems * dw * 2
                    mem = math.ceil((t_bytes + m_bytes + o_bytes) / self._bpc)
                    cycles += max(compute, mem) + self._tile_overhead
                    ops += tile_ops
                    tensor_bytes += t_bytes
                    matrix_bytes += m_bytes
                    output_bytes += o_bytes
            if plan.msu_mode == "buffered":
                write = ix * out_elems * dw
                output_bytes += write
                cycles += math.ceil(write / self._bpc)

        cycles *= plan.passes
        ops *= plan.passes
        tensor_bytes *= plan.passes
        matrix_bytes *= plan.passes
        output_bytes *= plan.passes

        output = None
        if compute_output:
            factors = [mat_b, mat_c]
            if kernel == "dmttkrp":
                output = mttkrp_dense_factored(tensor, factors, mode)
            else:
                output = ttmc_dense_factored(tensor, factors, mode)
        return SimReport(
            kernel=kernel,
            cycles=int(cycles),
            ops=int(ops),
            tensor_bytes=int(tensor_bytes),
            matrix_bytes=int(matrix_bytes),
            output_bytes=int(output_bytes),
            clock_ghz=cfg.clock_ghz,
            output=output,
            detail={"msu_mode": plan.msu_mode, "passes": plan.passes},
        )

    def _run_dense_matrix(
        self,
        kernel: str,
        a: np.ndarray,
        dense_operand: np.ndarray,
        msu_mode: str,
        compute_output: bool,
    ) -> SimReport:
        cfg = self.config
        a = np.asarray(a, dtype=np.float64)
        dims = a.shape
        ncols = dense_operand.shape[1] if kernel == "gemm" else 1
        base = "spmm" if kernel == "gemm" else "spmv"
        resolved = "buffered" if msu_mode == "auto" else msu_mode
        plan = make_plan(base, cfg, dims, resolved, ncols)
        costs = kernel_costs(kernel, cfg, plan.fiber_elems)
        dw = cfg.data_width
        out_elems = self._out_elems(plan)

        cycles = 0
        ops = 0
        tensor_bytes = 0
        matrix_bytes = 0
        output_bytes = 0
        i_dim, j_dim = dims
        for i_lo in range(0, i_dim, plan.i_tile):
            ix = min(plan.i_tile, i_dim - i_lo)
            for j_lo in range(0, j_dim, plan.j_tile):
                jx = min(plan.j_tile, j_dim - j_lo)
                records = ix * jx
                headers = ix
                compute, tile_ops = self._dense_tile_stats(
                    costs, records, headers, 0
                )
                t_bytes = records * dw
                m_bytes = jx * plan.fiber_elems * dw
                o_bytes = 0
                if plan.msu_mode == "direct":
                    o_bytes = ix * out_elems * dw * 2
                mem = math.ceil((t_bytes + m_bytes + o_bytes) / self._bpc)
                cycles += max(compute, mem) + self._tile_overhead
                ops += tile_ops
                tensor_bytes += t_bytes
                matrix_bytes += m_bytes
                output_bytes += o_bytes
            if plan.msu_mode == "buffered":
                write = ix * out_elems * dw
                output_bytes += write
                cycles += math.ceil(write / self._bpc)

        cycles *= plan.passes
        ops *= plan.passes
        tensor_bytes *= plan.passes
        matrix_bytes *= plan.passes
        output_bytes *= plan.passes

        output = None
        if compute_output:
            if kernel == "gemm":
                output = gemm_ref(a, dense_operand)
            else:
                output = gemv_ref(a, dense_operand)
        return SimReport(
            kernel=kernel,
            cycles=int(cycles),
            ops=int(ops),
            tensor_bytes=int(tensor_bytes),
            matrix_bytes=int(matrix_bytes),
            output_bytes=int(output_bytes),
            clock_ghz=cfg.clock_ghz,
            output=output,
            detail={"msu_mode": plan.msu_mode, "passes": plan.passes},
        )
