"""Top-level Tensaurus simulator (Fig. 5).

:class:`Tensaurus` executes any of the eight supported kernels against the
configured design point and returns a :class:`~repro.sim.report.SimReport`
with cycles, operation counts and per-stream byte traffic.

Execution model
---------------
The operands are tiled per :mod:`repro.sim.tiling`. Each sparse tile is
CISS-encoded (so load balance, headers and padding are the actual
format's), then analyzed for per-lane cycles, SPM bank conflicts and op
counts. Per tile, compute and the three memory streams (TLU tensor stream,
MLU matrix tiles, MSU output) overlap through the double buffers, so a tile
costs ``max(compute, memory)`` plus a fixed swap/fill overhead; tiles
execute back to back. Rank ranges wider than one PE-array pass multiply the
whole schedule (the tensor is re-streamed per pass, Section 5.2.4).

Two sparse tile engines produce bit-identical timing:

- the **batched** pipeline (default, ``config.batch_tiles``) analyzes the
  whole tile-sorted record stream at once via
  :func:`repro.sim.batch.analyze_tile_stream` segment reductions, and
  memoizes tile partitions and lane statistics in the per-instance
  :class:`~repro.sim.batch.EncodingCache`;
- the **per-tile** path materializes one sparse slice per tile, encodes it
  with the real :class:`~repro.formats.ciss.CISSTensor` encoder and runs
  :func:`repro.sim.lanes.analyze_lanes` — the debugging reference the
  batched path is validated against.

Dense kernels use the same cost model in closed form: a dense tile's record
stream is perfectly uniform, so its lane statistics are exact without
materializing a CISS encoding (the TLU builds entries on the fly and the
crossbar broadcasts, Section 5.2.4), and the tensor stream carries raw
values with no index overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.formats.ciss import CISSMatrix, CISSTensor
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.kernels.matmul import gemm as gemm_ref
from repro.kernels.matmul import gemv as gemv_ref
from repro.kernels.matmul import spmm as spmm_ref
from repro.kernels.matmul import spmv as spmv_ref
from repro.kernels.mttkrp import mttkrp_dense_factored, mttkrp_sparse_factored
from repro.kernels.ttmc import ttmc_dense_factored, ttmc_sparse_factored
from repro.sim.batch import (
    EncodingCache,
    MatrixTilePartition,
    TensorTilePartition,
    analyze_tile_stream,
    fingerprint_arrays,
)
from repro.sim.config import TensaurusConfig
from repro.sim.costs import KernelCosts, kernel_costs
from repro.sim.faults import FaultPlan, FaultState, RunFaultContext
from repro.sim.lanes import analyze_lanes
from repro.sim.report import SimReport
from repro.sim.tiling import TilingPlan, make_plan
from repro.tensor import SparseTensor
from repro.util.errors import KernelError

MatrixLike = Union[CSRMatrix, COOMatrix, np.ndarray]

TilePartition = Union[TensorTilePartition, MatrixTilePartition]


@dataclass
class _TileTotals:
    """Accumulated per-pass tile costs of one sparse kernel execution."""

    cycles: int
    ops: int
    tensor_bytes: int
    matrix_bytes: int
    output_bytes: int
    entries: int
    fibers: int
    headers: int
    conflicts: int
    #: Per-pass cycle decomposition (stream/compute/stall/drain[/recovery])
    #: summing exactly to ``cycles``; computed only while observation is
    #: active, None otherwise. Never feeds back into the report.
    phases: Optional[Dict[str, int]] = None


@dataclass
class _TileStatArrays:
    """Per-tile statistic arrays in the shape `_combine_tile_costs` folds
    (the per-tile reference engine's stand-in for batched lane stats)."""

    ops: np.ndarray
    num_entries: np.ndarray
    num_fibers: np.ndarray
    num_headers: np.ndarray
    conflict_stalls: np.ndarray


class Tensaurus:
    """The simulated accelerator.

    ``fault_plan`` (or ``config.fault_plan``) arms the deterministic fault
    layer of :mod:`repro.sim.faults`; ``fault_epoch`` seeds the retry epoch
    so host-side recovery can re-draw faults on a retried launch. With no
    plan (or an all-zero plan) every code path is the exact fault-free
    arithmetic and reports are bit-identical to earlier versions.
    """

    def __init__(
        self,
        config: Optional[TensaurusConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        fault_epoch: int = 0,
    ) -> None:
        self.config = config or TensaurusConfig()
        self._cache = EncodingCache(self.config.encoding_cache_entries)
        plan = fault_plan if fault_plan is not None else self.config.fault_plan
        self._faults = FaultState(plan, fault_epoch)

    # ------------------------------------------------------------------
    # Fault-injection state
    # ------------------------------------------------------------------
    @property
    def fault_state(self) -> FaultState:
        """Run counter + retry epoch of the fault-injection layer."""
        return self._faults

    @property
    def fault_plan(self) -> Optional[FaultPlan]:
        return self._faults.plan

    def advance_fault_epoch(self) -> None:
        """Host-side recovery hook: retried launches re-draw their faults
        from a fresh stream instead of deterministically re-failing."""
        self._faults.advance_epoch()

    # ------------------------------------------------------------------
    # Encoding-cache access
    # ------------------------------------------------------------------
    @property
    def cache(self) -> EncodingCache:
        """The per-instance tile-partition / lane-statistics memo."""
        return self._cache

    def cache_info(self) -> Dict[str, int]:
        """Current hit/miss/occupancy counters (see :meth:`reset_cache_stats`
        for scoping them to one run)."""
        return self._cache.info()

    def reset_cache_stats(self) -> None:
        """Zero the hit/miss counters without evicting cached entries.

        ``cache_info`` counters otherwise accumulate across unrelated
        runs on a shared accelerator, which makes per-run cache metrics
        wrong; call this before the run you want to attribute.
        """
        self._cache.reset_stats()

    def clear_cache(self) -> None:
        self._cache.clear()

    # ------------------------------------------------------------------
    # Public kernel entry points
    # ------------------------------------------------------------------
    def run_mttkrp(
        self,
        tensor: Union[SparseTensor, np.ndarray],
        mat_b: np.ndarray,
        mat_c: np.ndarray,
        mode: int = 0,
        msu_mode: str = "auto",
        compute_output: bool = True,
    ) -> SimReport:
        """MTTKRP along ``mode``; sparse or dense by operand type.

        ``mat_b`` / ``mat_c`` are the factors of the first / second
        remaining mode in increasing mode order (as in
        :mod:`repro.kernels.mttkrp`).
        """
        mat_b = np.asarray(mat_b, dtype=np.float64)
        mat_c = np.asarray(mat_c, dtype=np.float64)
        rank = mat_b.shape[1]
        if isinstance(tensor, SparseTensor):
            return self._run_sparse_tensor(
                "spmttkrp", tensor, mat_b, mat_c, mode, rank, 0,
                msu_mode, compute_output,
            )
        return self._run_dense_tensor(
            "dmttkrp", np.asarray(tensor, dtype=np.float64), mat_b, mat_c,
            mode, rank, 0, msu_mode, compute_output,
        )

    def run_ttmc(
        self,
        tensor: Union[SparseTensor, np.ndarray],
        mat_b: np.ndarray,
        mat_c: np.ndarray,
        mode: int = 0,
        msu_mode: str = "auto",
        compute_output: bool = True,
    ) -> SimReport:
        """TTMc along ``mode``; output is the dense (I x F1 x F2) tensor."""
        mat_b = np.asarray(mat_b, dtype=np.float64)
        mat_c = np.asarray(mat_c, dtype=np.float64)
        if isinstance(tensor, SparseTensor):
            return self._run_sparse_tensor(
                "spttmc", tensor, mat_b, mat_c, mode,
                mat_b.shape[1], mat_c.shape[1], msu_mode, compute_output,
            )
        return self._run_dense_tensor(
            "dttmc", np.asarray(tensor, dtype=np.float64), mat_b, mat_c,
            mode, mat_b.shape[1], mat_c.shape[1], msu_mode, compute_output,
        )

    def run_spmm(
        self,
        a: MatrixLike,
        mat_b: np.ndarray,
        msu_mode: str = "auto",
        compute_output: bool = True,
    ) -> SimReport:
        """Sparse (CSR/COO operand) or dense (ndarray operand) matrix-matrix."""
        mat_b = np.asarray(mat_b, dtype=np.float64)
        if isinstance(a, np.ndarray):
            return self._run_dense_matrix(
                "gemm", a, mat_b, msu_mode, compute_output
            )
        coo = a.to_coo() if isinstance(a, CSRMatrix) else a
        return self._run_sparse_matrix(
            "spmm", coo, mat_b, msu_mode, compute_output
        )

    def run_spmv(
        self,
        a: MatrixLike,
        vec: np.ndarray,
        msu_mode: str = "auto",
        compute_output: bool = True,
    ) -> SimReport:
        """Sparse or dense matrix-vector."""
        vec = np.asarray(vec, dtype=np.float64)
        if isinstance(a, np.ndarray):
            return self._run_dense_matrix(
                "gemv", a, vec, msu_mode, compute_output
            )
        coo = a.to_coo() if isinstance(a, CSRMatrix) else a
        return self._run_sparse_matrix(
            "spmv", coo, vec, msu_mode, compute_output
        )

    # ------------------------------------------------------------------
    # Shared mechanics
    # ------------------------------------------------------------------
    @property
    def _bpc(self) -> float:
        """Off-chip bytes deliverable per accelerator cycle."""
        return self.config.hbm_bytes_per_cycle

    @property
    def _tile_overhead(self) -> int:
        """Buffer-swap plus systolic fill cycles charged per tile."""
        return self.config.rows + self.config.cols + 16

    def _out_elems(self, plan: TilingPlan) -> int:
        """Output elements per slice/row per pass."""
        if plan.kernel == "ttmc":
            return plan.f1_tile * plan.fiber_elems
        return plan.fiber_elems

    def _resolve_msu_mode(
        self,
        kernel: str,
        dims: tuple,
        msu_mode: str,
        rank: int,
        rank2: int,
        estimate,
    ) -> str:
        """Pick buffered vs direct reduction by estimated traffic."""
        if msu_mode != "auto":
            return msu_mode
        best_mode, best_bytes = None, None
        for mode in ("buffered", "direct"):
            plan = make_plan(kernel, self.config, dims, mode, rank, rank2)
            total = estimate(plan)
            if best_bytes is None or total < best_bytes:
                best_mode, best_bytes = mode, total
        return best_mode

    # ------------------------------------------------------------------
    # Shared sparse mechanics: partitions, fingerprints, cached stats
    # ------------------------------------------------------------------
    def _permuted_coords(
        self, tensor: SparseTensor, mode: int, rest: Sequence[int],
        fp: Optional[bytes],
    ) -> np.ndarray:
        """Canonical coordinates of the mode-permuted tensor (values-free).

        The batched engine never materializes per-tile values, so for
        non-leading modes only the reordered coordinate array is needed;
        it is cached per (operand, mode) so CP-ALS's three MTTKRP modes
        each permute once across all iterations.
        """

        def build() -> np.ndarray:
            pc = tensor.coords[:, [mode] + list(rest)]
            order = np.lexsort((pc[:, 2], pc[:, 1], pc[:, 0]))
            out = np.ascontiguousarray(pc[order])
            out.setflags(write=False)
            return out

        if fp is None:
            return build()
        return self._cache.get(("perm-coords", fp, mode), build)

    def _partition_getter(
        self,
        namespace: str,
        fp: Optional[bytes],
        mode: int,
        dims: tuple,
        build_partition: Callable[[TilingPlan], TilePartition],
    ) -> Callable[[TilingPlan], TilePartition]:
        """A memoized plan->partition lookup shared by the MSU-mode
        estimates and the subsequent run, so tile ids and the tile-major
        lexsort are computed once per tile geometry per operand."""
        local: Dict[tuple, TilePartition] = {}

        def get(plan: TilingPlan) -> TilePartition:
            geo = (plan.i_tile, plan.j_tile, plan.k_tile)
            part = local.get(geo)
            if part is None:
                if fp is None:
                    part = build_partition(plan)
                else:
                    part = self._cache.get(
                        (namespace, fp, mode, dims, geo),
                        lambda: build_partition(plan),
                    )
                local[geo] = part
            return part

        return get

    def _batched_tile_stats(
        self,
        part: TilePartition,
        costs: KernelCosts,
        fp: Optional[bytes],
        mode: int,
        lanes: int,
    ):
        """Segmented per-tile lane statistics, memoized per cost table.

        ``lanes`` is the surviving PE-lane count (``config.rows`` unless the
        fault layer dropped lanes); the CISS deal redistributes records over
        however many lanes remain, so it is part of the cache key.
        """
        cfg = self.config

        def build():
            slice_col, a_col, k_col = part.stream_columns()
            return analyze_tile_stream(
                slice_col, a_col, k_col, part.bounds, costs,
                lanes, cfg.spm_banks,
            )

        if fp is None:
            return build()
        key = (
            "tile-stats", fp, mode, part.dims,
            (part.i_tile, part.j_tile, getattr(part, "k_tile", None)),
            lanes, cfg.spm_banks, costs,
        )
        return self._cache.get(key, build)

    def _combine_tile_costs(
        self,
        stats,
        compute_cycles: np.ndarray,
        t_bytes: np.ndarray,
        m_bytes: np.ndarray,
        o_bytes: np.ndarray,
        ctx: Optional[RunFaultContext] = None,
    ) -> _TileTotals:
        """Fold per-tile arrays into the schedule totals.

        Shared by the batched and per-tile engines so both price tiles —
        and, when ``ctx`` is armed, tile-level faults — identically. With
        no fault context this is the exact pre-fault arithmetic.
        """
        num_tiles = int(np.asarray(t_bytes).shape[0])
        extra_t = extra_m = 0
        want_phases = obs.enabled()
        phases: Optional[Dict[str, int]] = None
        mem_cycles = np.ceil(
            (t_bytes + m_bytes + o_bytes) / self._bpc
        ).astype(np.int64)
        if ctx is None:
            cycles = int(np.maximum(compute_cycles, mem_cycles).sum())
            cycles += num_tiles * self._tile_overhead
            if want_phases:
                phases = self._tile_phases(
                    compute_cycles, mem_cycles, stats.conflict_stalls, num_tiles
                )
        else:
            outcome = ctx.apply_tile_faults(
                compute_cycles, t_bytes, m_bytes, o_bytes,
                self._bpc, self._tile_overhead,
            )
            cycles = outcome.cycles
            extra_t = outcome.extra_tensor_bytes
            extra_m = outcome.extra_matrix_bytes
            if want_phases:
                phases = self._tile_phases(
                    compute_cycles, mem_cycles, stats.conflict_stalls, num_tiles
                )
                # Anything the fault overlay added on top of the clean
                # schedule (checksum replays, HBM stall padding, lane
                # re-deals) is recovery time.
                phases["recovery"] = int(cycles - sum(phases.values()))
        return _TileTotals(
            cycles=cycles,
            ops=int(stats.ops.sum()),
            tensor_bytes=int(t_bytes.sum()) + extra_t,
            matrix_bytes=int(m_bytes.sum()) + extra_m,
            output_bytes=int(o_bytes.sum()),
            entries=int(stats.num_entries.sum()),
            fibers=int(stats.num_fibers.sum()),
            headers=int(stats.num_headers.sum()),
            conflicts=int(stats.conflict_stalls.sum()),
            phases=phases,
        )

    # ------------------------------------------------------------------
    # Observability (off by default; never alters the report)
    # ------------------------------------------------------------------
    def _tile_phases(
        self,
        compute_cycles: np.ndarray,
        mem_cycles: np.ndarray,
        conflict_stalls: Optional[np.ndarray],
        num_tiles: int,
    ) -> Dict[str, int]:
        """Attribute the clean tile schedule to stream/compute/stall/drain.

        A tile costs ``max(compute, mem)``: memory-bound tiles spend their
        cycles streaming operands, compute-bound tiles spend theirs in the
        PE array — minus the SPM bank-conflict stalls already folded into
        their compute time, which are broken out as ``stall``. The fixed
        per-tile swap/fill overhead plus the buffered-MSU writeback (added
        by the caller) is ``drain``. By construction the phases sum to the
        schedule's cycles exactly.
        """
        comp = np.asarray(compute_cycles, dtype=np.int64)
        mem = np.asarray(mem_cycles, dtype=np.int64)
        comp_bound = comp >= mem
        if conflict_stalls is None:
            stall = 0
        else:
            stall = int(np.asarray(conflict_stalls, dtype=np.int64)[comp_bound].sum())
        return {
            "stream": int(mem[~comp_bound].sum()),
            "compute": int(comp[comp_bound].sum()) - stall,
            "stall": stall,
            "drain": num_tiles * self._tile_overhead,
        }

    def _finish_launch_obs(
        self,
        report: SimReport,
        passes: int,
        phases: Optional[Dict[str, int]],
        write_cycles: int = 0,
    ) -> None:
        """Report one finished launch to the active tracer and registry.

        ``phases`` is the per-pass decomposition from the tile fold;
        ``write_cycles`` is the buffered-MSU writeback the caller added on
        top. Both are folded and scaled by ``passes`` here so the emitted
        phase totals sum exactly to ``report.cycles``. Purely
        observational: the report is never modified.
        """
        tr = obs.tracer()
        reg = obs.metrics()
        if not (tr.enabled or reg.enabled):
            return
        scaled: Dict[str, int] = {}
        if phases is not None:
            merged = dict(phases)
            merged["drain"] = merged.get("drain", 0) + write_cycles
            scaled = {k: int(v) * int(passes) for k, v in merged.items()}
        kernel = report.kernel
        tr.add_launch(
            kernel, report.cycles, scaled,
            args={
                "msu_mode": report.detail.get("msu_mode"),
                "passes": passes,
                "ops": report.ops,
                "nnz": report.detail.get("nnz"),
            },
        )
        if not reg.enabled:
            return
        reg.counter(
            "sim.launches", "kernel launches", ("kernel",)
        ).labels(kernel=kernel).inc()
        reg.counter(
            "sim.cycles", "total launch cycles", ("kernel",)
        ).labels(kernel=kernel).inc(report.cycles)
        reg.counter(
            "sim.ops", "MAC operations", ("kernel",)
        ).labels(kernel=kernel).inc(report.ops)
        phase_counter = reg.counter(
            "sim.phase_cycles", "launch cycles by phase", ("kernel", "phase")
        )
        for phase, width in scaled.items():
            if width:
                phase_counter.labels(kernel=kernel, phase=phase).inc(width)
        byte_counter = reg.counter(
            "sim.bytes", "HBM bytes by stream", ("kernel", "stream")
        )
        byte_counter.labels(kernel=kernel, stream="tensor").inc(report.tensor_bytes)
        byte_counter.labels(kernel=kernel, stream="matrix").inc(report.matrix_bytes)
        byte_counter.labels(kernel=kernel, stream="output").inc(report.output_bytes)
        conflicts = report.detail.get("conflict_stalls", 0)
        if conflicts:
            reg.counter(
                "sim.spm_conflict_stalls",
                "per-pass SPM bank-conflict stall cycles",
            ).inc(conflicts)
        if report.faults:
            recovery = report.faults.get("fault_overhead_cycles", 0)
            if recovery:
                reg.counter(
                    "sim.fault.recovery_cycles",
                    "cycles added by fault detection and recovery",
                ).inc(recovery)
            event_counter = reg.counter(
                "sim.fault.events", "fault events by kind", ("kind",)
            )
            for event in report.fault_events:
                event_counter.labels(kind=event.kind).inc()

    # ------------------------------------------------------------------
    # Sparse 3-d tensor kernels (SpMTTKRP / SpTTMc)
    # ------------------------------------------------------------------
    def _run_sparse_tensor(
        self,
        kernel: str,
        tensor: SparseTensor,
        mat_b: np.ndarray,
        mat_c: np.ndarray,
        mode: int,
        rank: int,
        rank2: int,
        msu_mode: str,
        compute_output: bool,
    ) -> SimReport:
        if tensor.ndim != 3:
            raise KernelError("the accelerator's tensor kernels are 3-d")
        cfg = self.config
        ctx = self._faults.begin_run(kernel)
        if ctx is not None:
            ctx.check_launch_abort()
            lanes = ctx.active_lanes(cfg.rows)
        else:
            lanes = cfg.rows
        rest = [m for m in range(3) if m != mode]
        dims = (tensor.shape[mode],) + tuple(tensor.shape[m] for m in rest)
        use_batch = cfg.batch_tiles
        fp = (
            fingerprint_arrays(tensor.coords, tensor.values)
            if self._cache.enabled
            else None
        )

        perm_vals: Optional[np.ndarray] = None
        if mode == 0:
            coords = tensor.coords
            perm_vals = tensor.values
        elif use_batch:
            coords = self._permuted_coords(tensor, mode, rest, fp)
        else:
            perm = tensor.permute_modes([mode] + rest)
            coords = perm.coords
            perm_vals = perm.values
        nnz = int(coords.shape[0])
        nonempty_slices = int(np.unique(coords[:, 0]).shape[0])
        base = "mttkrp" if kernel == "spmttkrp" else "ttmc"

        get_partition = self._partition_getter(
            "tensor-partition", fp, mode, dims,
            lambda plan: TensorTilePartition(
                coords, dims, plan.i_tile, plan.j_tile, plan.k_tile
            ),
        )

        def estimate(plan: TilingPlan) -> float:
            return self._estimate_tensor_traffic(
                plan, get_partition(plan), nnz, nonempty_slices, lanes
            )

        resolved = self._resolve_msu_mode(base, dims, msu_mode, rank, rank2, estimate)
        plan = make_plan(base, cfg, dims, resolved, rank, rank2)
        costs = kernel_costs(kernel, cfg, plan.fiber_elems, plan.f1_tile)
        entry_bytes = cfg.ciss_entry_bytes(index_fields=2, lanes=lanes)
        dw = cfg.data_width
        out_elems = self._out_elems(plan)
        part = get_partition(plan)

        with obs.tracer().span(
            f"{kernel}.tiles", args={"tiles": part.num_tiles, "nnz": nnz}
        ):
            if use_batch:
                totals = self._tensor_totals_batched(
                    kernel, plan, costs, part, fp, mode, entry_bytes,
                    out_elems, lanes, ctx,
                )
            else:
                totals = self._tensor_totals_per_tile(
                    kernel, plan, costs, part, perm_vals, entry_bytes,
                    out_elems, lanes, ctx,
                )

        cycles = totals.cycles
        output_bytes = totals.output_bytes
        write_cycles = 0
        if plan.msu_mode == "buffered":
            write_bytes = nonempty_slices * out_elems * dw
            output_bytes += write_bytes
            write_cycles = math.ceil(write_bytes / self._bpc)
            cycles += write_cycles

        output = None
        if compute_output:
            factors = [mat_b, mat_c]
            if kernel == "spmttkrp":
                output = mttkrp_sparse_factored(tensor, factors, mode)
            else:
                output = ttmc_sparse_factored(tensor, factors, mode)
        report = SimReport(
            kernel=kernel,
            cycles=int(cycles * plan.passes),
            ops=int(totals.ops * plan.passes),
            tensor_bytes=int(totals.tensor_bytes * plan.passes),
            matrix_bytes=int(totals.matrix_bytes * plan.passes),
            output_bytes=int(output_bytes * plan.passes),
            clock_ghz=cfg.clock_ghz,
            output=output,
            detail={
                "msu_mode": plan.msu_mode,
                "passes": plan.passes,
                "entries": totals.entries,
                "fibers": totals.fibers,
                "headers": totals.headers,
                "conflict_stalls": totals.conflicts,
                "nnz": nnz,
            },
            faults=ctx.finish(plan.passes) if ctx is not None else {},
            fault_events=list(ctx.events) if ctx is not None else [],
        )
        self._finish_launch_obs(report, plan.passes, totals.phases, write_cycles)
        return report

    def _tensor_tile_extents(
        self, plan: TilingPlan, part: TensorTilePartition
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Resident j/k extents of each nonempty tile (edge tiles clip)."""
        dims = part.dims
        g_jb = (part.uniq // part.nk) % part.nj
        g_kb = part.uniq % part.nk
        jx = np.minimum(plan.j_tile, dims[1] - g_jb * plan.j_tile)
        kx = np.minimum(plan.k_tile, dims[2] - g_kb * plan.k_tile)
        return jx, kx

    def _tensor_totals_batched(
        self,
        kernel: str,
        plan: TilingPlan,
        costs: KernelCosts,
        part: TensorTilePartition,
        fp: Optional[bytes],
        mode: int,
        entry_bytes: int,
        out_elems: int,
        lanes: int,
        ctx: Optional[RunFaultContext],
    ) -> _TileTotals:
        dw = self.config.data_width
        stats = self._batched_tile_stats(part, costs, fp, mode, lanes)
        jx, kx = self._tensor_tile_extents(plan, part)
        t_bytes = stats.num_entries * entry_bytes
        if kernel == "spttmc":
            m_bytes = (jx * plan.f1_tile + kx * plan.fiber_elems) * dw
        else:
            m_bytes = (jx + kx) * plan.fiber_elems * dw
        if plan.msu_mode == "direct":
            o_bytes = stats.num_headers * out_elems * dw * 2
        else:
            o_bytes = np.zeros_like(t_bytes)
        return self._combine_tile_costs(
            stats, stats.compute_cycles, t_bytes, m_bytes, o_bytes, ctx
        )

    def _tensor_totals_per_tile(
        self,
        kernel: str,
        plan: TilingPlan,
        costs: KernelCosts,
        part: TensorTilePartition,
        perm_vals: np.ndarray,
        entry_bytes: int,
        out_elems: int,
        lanes: int,
        ctx: Optional[RunFaultContext],
    ) -> _TileTotals:
        """Reference engine: encode and analyze every tile separately.

        Collects per-tile cost arrays and folds them through the same
        :meth:`_combine_tile_costs` as the batched engine, so the two stay
        bit-identical with and without an armed fault context.
        """
        cfg = self.config
        dw = cfg.data_width
        dims = part.dims
        coords_s = part.coords_s
        vals_s = perm_vals[part.order]
        uniq, bounds = part.uniq, part.bounds
        comp, tb, mb, ob = [], [], [], []
        ops, entries, fibers, headers, conflicts = [], [], [], [], []
        for g, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:])):
            sub = SparseTensor(
                dims, coords_s[lo:hi], vals_s[lo:hi], canonical=True
            )
            ciss = CISSTensor.from_sparse(sub, lanes, mode=0)
            stats = analyze_lanes(
                ciss.kinds, ciss.a_idx, ciss.k_idx, costs, cfg.spm_banks
            )
            g_tid = int(uniq[g])
            g_jb = (g_tid // part.nk) % part.nj
            g_kb = g_tid % part.nk
            jx = min(plan.j_tile, dims[1] - g_jb * plan.j_tile)
            kx = min(plan.k_tile, dims[2] - g_kb * plan.k_tile)
            t_bytes = ciss.num_entries * entry_bytes
            if kernel == "spttmc":
                m_bytes = (jx * plan.f1_tile + kx * plan.fiber_elems) * dw
            else:
                m_bytes = (jx + kx) * plan.fiber_elems * dw
            o_bytes = 0
            if plan.msu_mode == "direct":
                o_bytes = stats.num_headers * out_elems * dw * 2
            comp.append(stats.compute_cycles)
            tb.append(t_bytes)
            mb.append(m_bytes)
            ob.append(o_bytes)
            ops.append(stats.ops)
            entries.append(stats.num_entries)
            fibers.append(stats.num_fibers)
            headers.append(stats.num_headers)
            conflicts.append(stats.conflict_stalls)
        agg = _TileStatArrays(
            ops=np.asarray(ops, dtype=np.int64),
            num_entries=np.asarray(entries, dtype=np.int64),
            num_fibers=np.asarray(fibers, dtype=np.int64),
            num_headers=np.asarray(headers, dtype=np.int64),
            conflict_stalls=np.asarray(conflicts, dtype=np.int64),
        )
        return self._combine_tile_costs(
            agg,
            np.asarray(comp, dtype=np.int64),
            np.asarray(tb, dtype=np.int64),
            np.asarray(mb, dtype=np.int64),
            np.asarray(ob, dtype=np.int64),
            ctx,
        )

    def _estimate_tensor_traffic(
        self,
        plan: TilingPlan,
        part: TensorTilePartition,
        nnz: int,
        nonempty_slices: int,
        lanes: int,
    ) -> float:
        """Cheap traffic estimate for MSU-mode selection (no encoding)."""
        cfg = self.config
        dw = cfg.data_width
        out_elems = self._out_elems(plan)
        groups = part.num_tiles
        # Matrix traffic: each nonempty group loads its j and k tiles.
        if plan.kernel == "ttmc":
            per_group = (plan.j_tile * plan.f1_tile + plan.k_tile * plan.fiber_elems)
        else:
            per_group = (plan.j_tile + plan.k_tile) * plan.fiber_elems
        matrix = groups * per_group * dw
        entry_bytes = cfg.ciss_entry_bytes(2, lanes=lanes)
        tensor = (nnz / lanes + groups) * entry_bytes
        if plan.msu_mode == "direct":
            output = part.slice_visits * out_elems * dw * 2
        else:
            output = nonempty_slices * out_elems * dw
        return float((matrix + tensor + output) * plan.passes)

    # ------------------------------------------------------------------
    # Sparse matrix kernels (SpMM / SpMV)
    # ------------------------------------------------------------------
    def _run_sparse_matrix(
        self,
        kernel: str,
        coo: COOMatrix,
        dense_operand: np.ndarray,
        msu_mode: str,
        compute_output: bool,
    ) -> SimReport:
        cfg = self.config
        ctx = self._faults.begin_run(kernel)
        if ctx is not None:
            ctx.check_launch_abort()
            lanes = ctx.active_lanes(cfg.rows)
        else:
            lanes = cfg.rows
        dims = coo.shape
        ncols = dense_operand.shape[1] if kernel == "spmm" else 1
        use_batch = cfg.batch_tiles
        fp = (
            fingerprint_arrays(coo.rows, coo.cols, coo.vals)
            if self._cache.enabled
            else None
        )
        nonempty_rows = int(np.unique(coo.rows).shape[0])

        get_partition = self._partition_getter(
            "matrix-partition", fp, 0, dims,
            lambda plan: MatrixTilePartition(
                coo.rows, coo.cols, dims, plan.i_tile, plan.j_tile
            ),
        )

        def estimate(plan: TilingPlan) -> float:
            return self._estimate_matrix_traffic(
                plan, get_partition(plan), coo.nnz, nonempty_rows, lanes
            )

        resolved = self._resolve_msu_mode(kernel, dims, msu_mode, ncols, 0, estimate)
        plan = make_plan(kernel, cfg, dims, resolved, ncols)
        costs = kernel_costs(kernel, cfg, plan.fiber_elems)
        entry_bytes = cfg.ciss_entry_bytes(index_fields=1, lanes=lanes)
        dw = cfg.data_width
        out_elems = self._out_elems(plan)
        part = get_partition(plan)

        with obs.tracer().span(
            f"{kernel}.tiles", args={"tiles": part.num_tiles, "nnz": coo.nnz}
        ):
            if use_batch:
                totals = self._matrix_totals_batched(
                    plan, costs, part, fp, entry_bytes, out_elems, lanes, ctx
                )
            else:
                totals = self._matrix_totals_per_tile(
                    plan, costs, part, coo.vals, entry_bytes, out_elems,
                    lanes, ctx,
                )

        cycles = totals.cycles
        output_bytes = totals.output_bytes
        write_cycles = 0
        if plan.msu_mode == "buffered":
            write_bytes = nonempty_rows * out_elems * dw
            output_bytes += write_bytes
            write_cycles = math.ceil(write_bytes / self._bpc)
            cycles += write_cycles

        output = None
        if compute_output:
            csr = CSRMatrix.from_coo(coo)
            if kernel == "spmm":
                output = spmm_ref(csr, dense_operand)
            else:
                output = spmv_ref(csr, dense_operand)
        report = SimReport(
            kernel=kernel,
            cycles=int(cycles * plan.passes),
            ops=int(totals.ops * plan.passes),
            tensor_bytes=int(totals.tensor_bytes * plan.passes),
            matrix_bytes=int(totals.matrix_bytes * plan.passes),
            output_bytes=int(output_bytes * plan.passes),
            clock_ghz=cfg.clock_ghz,
            output=output,
            detail={
                "msu_mode": plan.msu_mode,
                "passes": plan.passes,
                "entries": totals.entries,
                "headers": totals.headers,
                "conflict_stalls": totals.conflicts,
                "nnz": coo.nnz,
            },
            faults=ctx.finish(plan.passes) if ctx is not None else {},
            fault_events=list(ctx.events) if ctx is not None else [],
        )
        self._finish_launch_obs(report, plan.passes, totals.phases, write_cycles)
        return report

    def _matrix_totals_batched(
        self,
        plan: TilingPlan,
        costs: KernelCosts,
        part: MatrixTilePartition,
        fp: Optional[bytes],
        entry_bytes: int,
        out_elems: int,
        lanes: int,
        ctx: Optional[RunFaultContext],
    ) -> _TileTotals:
        dw = self.config.data_width
        stats = self._batched_tile_stats(part, costs, fp, 0, lanes)
        g_jb = part.uniq % part.nj
        jx = np.minimum(plan.j_tile, part.dims[1] - g_jb * plan.j_tile)
        t_bytes = stats.num_entries * entry_bytes
        m_bytes = jx * plan.fiber_elems * dw
        if plan.msu_mode == "direct":
            o_bytes = stats.num_headers * out_elems * dw * 2
        else:
            o_bytes = np.zeros_like(t_bytes)
        return self._combine_tile_costs(
            stats, stats.compute_cycles, t_bytes, m_bytes, o_bytes, ctx
        )

    def _matrix_totals_per_tile(
        self,
        plan: TilingPlan,
        costs: KernelCosts,
        part: MatrixTilePartition,
        vals: np.ndarray,
        entry_bytes: int,
        out_elems: int,
        lanes: int,
        ctx: Optional[RunFaultContext],
    ) -> _TileTotals:
        """Reference engine: encode and analyze every tile separately."""
        cfg = self.config
        dw = cfg.data_width
        dims = part.dims
        rows_s, cols_s = part.rows_s, part.cols_s
        vals_s = vals[part.order]
        uniq, bounds = part.uniq, part.bounds
        comp, tb, mb, ob = [], [], [], []
        ops, entries, fibers, headers, conflicts = [], [], [], [], []
        for g, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:])):
            sub = COOMatrix(dims, rows_s[lo:hi], cols_s[lo:hi], vals_s[lo:hi])
            ciss = CISSMatrix.from_coo(sub, lanes)
            stats = analyze_lanes(
                ciss.kinds, ciss.a_idx, ciss.k_idx, costs, cfg.spm_banks
            )
            g_jb = int(uniq[g]) % part.nj
            jx = min(plan.j_tile, dims[1] - g_jb * plan.j_tile)
            t_bytes = ciss.num_entries * entry_bytes
            m_bytes = jx * plan.fiber_elems * dw
            o_bytes = 0
            if plan.msu_mode == "direct":
                o_bytes = stats.num_headers * out_elems * dw * 2
            comp.append(stats.compute_cycles)
            tb.append(t_bytes)
            mb.append(m_bytes)
            ob.append(o_bytes)
            ops.append(stats.ops)
            entries.append(stats.num_entries)
            fibers.append(stats.num_fibers)
            headers.append(stats.num_headers)
            conflicts.append(stats.conflict_stalls)
        agg = _TileStatArrays(
            ops=np.asarray(ops, dtype=np.int64),
            num_entries=np.asarray(entries, dtype=np.int64),
            num_fibers=np.asarray(fibers, dtype=np.int64),
            num_headers=np.asarray(headers, dtype=np.int64),
            conflict_stalls=np.asarray(conflicts, dtype=np.int64),
        )
        return self._combine_tile_costs(
            agg,
            np.asarray(comp, dtype=np.int64),
            np.asarray(tb, dtype=np.int64),
            np.asarray(mb, dtype=np.int64),
            np.asarray(ob, dtype=np.int64),
            ctx,
        )

    def _estimate_matrix_traffic(
        self,
        plan: TilingPlan,
        part: MatrixTilePartition,
        nnz: int,
        nonempty_rows: int,
        lanes: int,
    ) -> float:
        cfg = self.config
        dw = cfg.data_width
        out_elems = self._out_elems(plan)
        groups = part.num_tiles
        matrix = groups * plan.j_tile * plan.fiber_elems * dw
        tensor = (nnz / lanes + groups) * cfg.ciss_entry_bytes(1, lanes=lanes)
        if plan.msu_mode == "direct":
            output = part.slice_visits * out_elems * dw * 2
        else:
            output = nonempty_rows * out_elems * dw
        return float((matrix + tensor + output) * plan.passes)

    # ------------------------------------------------------------------
    # Dense kernels (closed-form uniform tiles)
    # ------------------------------------------------------------------
    def _dense_tile_stats(
        self,
        costs,
        records: int,
        headers: int,
        fibers: int,
        lanes: Optional[int] = None,
    ) -> Tuple[int, int]:
        """(compute_cycles, ops) of a uniform dense tile.

        Records distribute evenly across lanes (the on-the-fly CISS builder
        deals equal slices), so the slowest lane carries ``ceil`` shares.
        Dense mode broadcasts SPM reads — no bank conflicts. ``lanes``
        narrows the deal when the fault layer dropped PE lanes.
        """
        rows = lanes if lanes is not None else self.config.rows
        lane_records = math.ceil(records / rows)
        lane_headers = math.ceil(headers / rows)
        lane_fibers = math.ceil(fibers / rows) if costs.uses_fibers else 0
        lane_slices = lane_headers  # one drain per slice per lane
        lane_cycles = (
            costs.nnz_cycles * lane_records
            + costs.header_cycles * lane_headers
            + costs.fold_cycles * lane_fibers
            + costs.drain_cycles * lane_slices
        )
        ops = costs.ops_per_nnz * records
        if costs.uses_fibers:
            ops += costs.ops_per_fold * fibers
        return int(lane_cycles), int(ops)

    def _fold_dense_tiles(
        self,
        comp_l: list,
        tb_l: list,
        mb_l: list,
        ob_l: list,
        ctx: Optional[RunFaultContext],
    ) -> Tuple[int, int, int, Optional[Dict[str, int]]]:
        """(tile cycles, extra tensor bytes, extra matrix bytes, phases)
        over the collected per-tile cost lists — exact fault-free
        arithmetic when no fault context is armed, tile-fault overlay
        otherwise. ``phases`` is the observational cycle decomposition
        (None unless observation is active; dense tiles never stall on
        SPM banks, so there is no stall phase)."""
        comp = np.asarray(comp_l, dtype=np.int64)
        t_arr = np.asarray(tb_l, dtype=np.int64)
        m_arr = np.asarray(mb_l, dtype=np.int64)
        o_arr = np.asarray(ob_l, dtype=np.int64)
        want_phases = obs.enabled()
        phases: Optional[Dict[str, int]] = None
        mem = np.ceil((t_arr + m_arr + o_arr) / self._bpc).astype(np.int64)
        if ctx is None:
            cycles = int(np.maximum(comp, mem).sum())
            cycles += comp.shape[0] * self._tile_overhead
            if want_phases:
                phases = self._tile_phases(comp, mem, None, comp.shape[0])
            return cycles, 0, 0, phases
        outcome = ctx.apply_tile_faults(
            comp, t_arr, m_arr, o_arr, self._bpc, self._tile_overhead
        )
        if want_phases:
            phases = self._tile_phases(comp, mem, None, comp.shape[0])
            phases["recovery"] = int(outcome.cycles - sum(phases.values()))
        return (
            outcome.cycles,
            outcome.extra_tensor_bytes,
            outcome.extra_matrix_bytes,
            phases,
        )

    def _run_dense_tensor(
        self,
        kernel: str,
        tensor: np.ndarray,
        mat_b: np.ndarray,
        mat_c: np.ndarray,
        mode: int,
        rank: int,
        rank2: int,
        msu_mode: str,
        compute_output: bool,
    ) -> SimReport:
        if tensor.ndim != 3:
            raise KernelError("the accelerator's tensor kernels are 3-d")
        cfg = self.config
        ctx = self._faults.begin_run(kernel)
        if ctx is not None:
            ctx.check_launch_abort()
            lanes = ctx.active_lanes(cfg.rows)
        else:
            lanes = cfg.rows
        rest = [m for m in range(3) if m != mode]
        dims = tuple(tensor.shape[m] for m in [mode] + rest)
        base = "mttkrp" if kernel == "dmttkrp" else "ttmc"
        resolved = "buffered" if msu_mode == "auto" else msu_mode
        plan = make_plan(base, cfg, dims, resolved, rank, rank2)
        costs = kernel_costs(kernel, cfg, plan.fiber_elems, plan.f1_tile)
        dw = cfg.data_width
        out_elems = self._out_elems(plan)

        ops = 0
        tensor_bytes = 0
        matrix_bytes = 0
        output_bytes = 0
        write_cycles = 0
        comp_l, tb_l, mb_l, ob_l = [], [], [], []
        i_dim, j_dim, k_dim = dims
        for i_lo in range(0, i_dim, plan.i_tile):
            ix = min(plan.i_tile, i_dim - i_lo)
            for j_lo in range(0, j_dim, plan.j_tile):
                jx = min(plan.j_tile, j_dim - j_lo)
                for k_lo in range(0, k_dim, plan.k_tile):
                    kx = min(plan.k_tile, k_dim - k_lo)
                    records = ix * jx * kx
                    headers = ix
                    fibers = ix * jx
                    compute, tile_ops = self._dense_tile_stats(
                        costs, records, headers, fibers, lanes
                    )
                    t_bytes = records * dw
                    if kernel == "dttmc":
                        m_bytes = (jx * plan.f1_tile + kx * plan.fiber_elems) * dw
                    else:
                        m_bytes = (jx + kx) * plan.fiber_elems * dw
                    o_bytes = 0
                    if plan.msu_mode == "direct":
                        o_bytes = ix * out_elems * dw * 2
                    comp_l.append(compute)
                    tb_l.append(t_bytes)
                    mb_l.append(m_bytes)
                    ob_l.append(o_bytes)
                    ops += tile_ops
                    tensor_bytes += t_bytes
                    matrix_bytes += m_bytes
                    output_bytes += o_bytes
            if plan.msu_mode == "buffered":
                write = ix * out_elems * dw
                output_bytes += write
                write_cycles += math.ceil(write / self._bpc)

        tile_cycles, extra_t, extra_m, fold_phases = self._fold_dense_tiles(
            comp_l, tb_l, mb_l, ob_l, ctx
        )
        cycles = tile_cycles + write_cycles
        tensor_bytes += extra_t
        matrix_bytes += extra_m

        cycles *= plan.passes
        ops *= plan.passes
        tensor_bytes *= plan.passes
        matrix_bytes *= plan.passes
        output_bytes *= plan.passes

        output = None
        if compute_output:
            factors = [mat_b, mat_c]
            if kernel == "dmttkrp":
                output = mttkrp_dense_factored(tensor, factors, mode)
            else:
                output = ttmc_dense_factored(tensor, factors, mode)
        report = SimReport(
            kernel=kernel,
            cycles=int(cycles),
            ops=int(ops),
            tensor_bytes=int(tensor_bytes),
            matrix_bytes=int(matrix_bytes),
            output_bytes=int(output_bytes),
            clock_ghz=cfg.clock_ghz,
            output=output,
            detail={"msu_mode": plan.msu_mode, "passes": plan.passes},
            faults=ctx.finish(plan.passes) if ctx is not None else {},
            fault_events=list(ctx.events) if ctx is not None else [],
        )
        self._finish_launch_obs(report, plan.passes, fold_phases, write_cycles)
        return report

    def _run_dense_matrix(
        self,
        kernel: str,
        a: np.ndarray,
        dense_operand: np.ndarray,
        msu_mode: str,
        compute_output: bool,
    ) -> SimReport:
        cfg = self.config
        ctx = self._faults.begin_run(kernel)
        if ctx is not None:
            ctx.check_launch_abort()
            lanes = ctx.active_lanes(cfg.rows)
        else:
            lanes = cfg.rows
        a = np.asarray(a, dtype=np.float64)
        dims = a.shape
        ncols = dense_operand.shape[1] if kernel == "gemm" else 1
        base = "spmm" if kernel == "gemm" else "spmv"
        resolved = "buffered" if msu_mode == "auto" else msu_mode
        plan = make_plan(base, cfg, dims, resolved, ncols)
        costs = kernel_costs(kernel, cfg, plan.fiber_elems)
        dw = cfg.data_width
        out_elems = self._out_elems(plan)

        ops = 0
        tensor_bytes = 0
        matrix_bytes = 0
        output_bytes = 0
        write_cycles = 0
        comp_l, tb_l, mb_l, ob_l = [], [], [], []
        i_dim, j_dim = dims
        for i_lo in range(0, i_dim, plan.i_tile):
            ix = min(plan.i_tile, i_dim - i_lo)
            for j_lo in range(0, j_dim, plan.j_tile):
                jx = min(plan.j_tile, j_dim - j_lo)
                records = ix * jx
                headers = ix
                compute, tile_ops = self._dense_tile_stats(
                    costs, records, headers, 0, lanes
                )
                t_bytes = records * dw
                m_bytes = jx * plan.fiber_elems * dw
                o_bytes = 0
                if plan.msu_mode == "direct":
                    o_bytes = ix * out_elems * dw * 2
                comp_l.append(compute)
                tb_l.append(t_bytes)
                mb_l.append(m_bytes)
                ob_l.append(o_bytes)
                ops += tile_ops
                tensor_bytes += t_bytes
                matrix_bytes += m_bytes
                output_bytes += o_bytes
            if plan.msu_mode == "buffered":
                write = ix * out_elems * dw
                output_bytes += write
                write_cycles += math.ceil(write / self._bpc)

        tile_cycles, extra_t, extra_m, fold_phases = self._fold_dense_tiles(
            comp_l, tb_l, mb_l, ob_l, ctx
        )
        cycles = tile_cycles + write_cycles
        tensor_bytes += extra_t
        matrix_bytes += extra_m

        cycles *= plan.passes
        ops *= plan.passes
        tensor_bytes *= plan.passes
        matrix_bytes *= plan.passes
        output_bytes *= plan.passes

        output = None
        if compute_output:
            if kernel == "gemm":
                output = gemm_ref(a, dense_operand)
            else:
                output = gemv_ref(a, dense_operand)
        report = SimReport(
            kernel=kernel,
            cycles=int(cycles),
            ops=int(ops),
            tensor_bytes=int(tensor_bytes),
            matrix_bytes=int(matrix_bytes),
            output_bytes=int(output_bytes),
            clock_ghz=cfg.clock_ghz,
            output=output,
            detail={"msu_mode": plan.msu_mode, "passes": plan.passes},
            faults=ctx.finish(plan.passes) if ctx is not None else {},
            fault_events=list(ctx.events) if ctx is not None else [],
        )
        self._finish_launch_obs(report, plan.passes, fold_phases, write_cycles)
        return report
