"""Vectorized lane-stream analysis for the PE array.

Given the record planes of a CISS-encoded tile and a :class:`KernelCosts`
table, compute per-lane cycle counts, fiber/slice structure, operation
counts and SPM bank-conflict stalls — the quantities the accelerator model
combines into per-tile timing. The exact per-record interpreter in
:mod:`repro.sim.pe` implements the same semantics one record at a time; the
test suite asserts the two agree cycle-for-cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.ciss import KIND_HEADER, KIND_NNZ, KIND_PAD
from repro.sim.costs import KernelCosts


@dataclass
class LaneStats:
    """Aggregate structure and timing of one CISS tile on the PE array."""

    lane_cycles: np.ndarray  # per-lane compute cycles
    conflict_stalls: int  # SPM bank-conflict serialization cycles
    num_nnz: int
    num_headers: int  # slice/row headers == groups scheduled
    num_fibers: int  # (i, j) fiber count (0 for kernels without fiber1)
    num_entries: int
    ops: int  # scalar operations across the PE row

    @property
    def compute_cycles(self) -> int:
        """Array compute time: slowest lane plus serialization stalls."""
        slowest = int(self.lane_cycles.max()) if self.lane_cycles.size else 0
        return slowest + int(self.conflict_stalls)

    @property
    def imbalance(self) -> float:
        """Max/mean lane-cycle ratio — 1.0 is perfectly balanced."""
        if self.lane_cycles.size == 0:
            return 1.0
        mean = float(self.lane_cycles.mean())
        if mean == 0:
            return 1.0
        return float(self.lane_cycles.max()) / mean


def lane_cycle_model(costs: KernelCosts, nnz, headers, fibers, slice_ends):
    """Per-lane cycle formula: record issue + header decode + fiber folds
    (for kernels with a second operand) + slice drains.

    Shared, elementwise over scalars or arrays, by :func:`analyze_lanes`
    and the segmented batch analyzer (:mod:`repro.sim.batch`), so the two
    engines cannot drift apart on the cost arithmetic.
    """
    cycles = (
        costs.nnz_cycles * nnz
        + costs.header_cycles * headers
        + costs.drain_cycles * slice_ends
    )
    if costs.uses_fibers:
        cycles = cycles + costs.fold_cycles * fibers
    return cycles


def op_count_model(costs: KernelCosts, nnz, fibers):
    """Scalar-operation count: MACs per nonzero plus per-fiber fold ops."""
    ops = costs.ops_per_nnz * nnz
    if costs.uses_fibers:
        ops = ops + costs.ops_per_fold * fibers
    return ops


def analyze_lanes(
    kinds: np.ndarray,
    a_idx: np.ndarray,
    k_idx: np.ndarray,
    costs: KernelCosts,
    spm_banks: int,
) -> LaneStats:
    """Analyze a CISS tile's record planes under one kernel's cost table.

    ``kinds``/``a_idx``/``k_idx`` are the ``(entries, lanes)`` planes of a
    :class:`repro.formats.CISSTensor` or :class:`~repro.formats.CISSMatrix`.
    """
    kinds = np.asarray(kinds)
    entries, lanes = kinds.shape if kinds.ndim == 2 else (0, 0)
    if entries == 0:
        return LaneStats(
            lane_cycles=np.zeros(max(lanes, 1), dtype=np.int64),
            conflict_stalls=0,
            num_nnz=0,
            num_headers=0,
            num_fibers=0,
            num_entries=0,
            ops=0,
        )
    is_nnz = kinds == KIND_NNZ
    is_header = kinds == KIND_HEADER
    # Next-record planes (PAD past the end of the stream).
    nxt_kind = np.vstack([kinds[1:], np.full((1, lanes), KIND_PAD, kinds.dtype)])
    nxt_a = np.vstack([a_idx[1:], np.full((1, lanes), -1, a_idx.dtype)])
    # A fiber ends at a nonzero whose successor is not a nonzero with the
    # same mode-1 index; a slice ends at a nonzero whose successor is a
    # header or the end of the lane stream.
    fiber_end = is_nnz & (~(nxt_kind == KIND_NNZ) | (nxt_a != a_idx))
    slice_end = is_nnz & (nxt_kind != KIND_NNZ)
    nnz_per_lane = is_nnz.sum(axis=0)
    header_per_lane = is_header.sum(axis=0)
    fiber_per_lane = fiber_end.sum(axis=0)
    slice_per_lane = slice_end.sum(axis=0)
    lane_cycles = lane_cycle_model(
        costs, nnz_per_lane, header_per_lane, fiber_per_lane, slice_per_lane
    ).astype(np.int64)
    # SPM bank conflicts: simultaneous nonzero records in one entry whose
    # bank indices collide serialize through the crossbar. Dense kernels
    # broadcast (only the first PE row issues addresses), so no conflicts.
    conflict_stalls = 0
    if not costs.dense and spm_banks >= 1 and lanes > 1:
        key = k_idx if costs.bank_key == "k" else a_idx
        bank = np.where(is_nnz, key % spm_banks, -1)
        occupancy = np.zeros((entries, spm_banks), dtype=np.int64)
        rows = np.repeat(np.arange(entries), lanes)
        flat_bank = bank.ravel()
        valid = flat_bank >= 0
        np.add.at(occupancy, (rows[valid], flat_bank[valid]), 1)
        worst = occupancy.max(axis=1)
        conflict_stalls = int(np.clip(worst - 1, 0, None).sum())
    num_fibers = int(fiber_per_lane.sum()) if costs.uses_fibers else 0
    ops = int(op_count_model(costs, int(nnz_per_lane.sum()), num_fibers))
    return LaneStats(
        lane_cycles=lane_cycles,
        conflict_stalls=conflict_stalls,
        num_nnz=int(nnz_per_lane.sum()),
        num_headers=int(header_per_lane.sum()),
        num_fibers=num_fibers,
        num_entries=entries,
        ops=ops,
    )
