"""Three-tier graceful-degradation ladder.

Under light load every request gets the real thing: a cycle-accurate
simulation with numeric output, bit-identical to calling
:meth:`repro.sim.Tensaurus.run_mttkrp` directly. As deadline headroom
or queue capacity shrinks the server steps down the ladder:

- ``full``     — cycle simulator, ``compute_output=True``;
- ``batched``  — cycle simulator, ``compute_output=False`` (identical
  timing numbers, no numeric output — flagged degraded);
- ``analytic`` — :class:`repro.sim.perfmodel.FastModel` closed-form
  estimate (flagged degraded, with a calibrated cycle-error bound).

The analytic tier needs no backend at all, which is also what keeps the
server answering when every replica's circuit breaker is open.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.sim.config import TensaurusConfig
from repro.sim.perfmodel import FastModel
from repro.sim.report import SimReport
from repro.util.errors import ConfigError
from repro.util.rng import derive_seed

TIER_FULL = "full"
TIER_BATCHED = "batched"
TIER_ANALYTIC = "analytic"

#: Tiers in decreasing-fidelity order (the ladder).
TIERS = (TIER_FULL, TIER_BATCHED, TIER_ANALYTIC)


def calibrate_analytic_error(
    sim_config: TensaurusConfig,
    pool,
    seed: int = 0,
    probes: int = 4,
) -> float:
    """Measured worst-case relative cycle error of the analytic tier.

    Runs ``probes`` seeded (kernel, workload) pairs through both the
    cycle simulator and :class:`FastModel` and returns the maximum
    relative cycle discrepancy — the ``error_bound`` attached to every
    analytic-tier response. Deterministic for a given pool and seed.
    """
    from repro.sim.accelerator import Tensaurus
    from repro.util.rng import make_rng

    if probes <= 0:
        raise ConfigError("probes must be positive")
    pairs = pool.choices()
    rng = make_rng(derive_seed(seed, "ladder", "calibration"))
    picks = sorted(
        int(i) for i in rng.choice(len(pairs), size=min(probes, len(pairs)),
                                   replace=False)
    )
    acc = Tensaurus(sim_config)
    fast = FastModel(sim_config)
    worst = 0.0
    for i in picks:
        kernel, workload = pairs[i]
        item = pool[workload]
        simulated = item.run(kernel, acc, compute_output=False)
        predicted = item.analytic(kernel, fast)
        err = abs(predicted.cycles - simulated.cycles) / max(simulated.cycles, 1)
        worst = max(worst, err)
    return worst


class DegradationLadder:
    """Executes a workload at a chosen fidelity tier.

    Holds the shared :class:`FastModel` (the analytic tier is host-side
    and backend-free) and the calibrated analytic error bound. The
    ``accelerator`` argument of :meth:`execute` is only consulted for
    the two simulator tiers.
    """

    def __init__(
        self,
        sim_config: Optional[TensaurusConfig] = None,
        analytic_error_bound: float = 0.0,
    ) -> None:
        self.sim_config = sim_config or TensaurusConfig()
        self.fast = FastModel(self.sim_config)
        self.analytic_error_bound = float(analytic_error_bound)

    def execute(
        self, tier: str, item, kernel: str, accelerator=None
    ) -> Tuple[SimReport, bool, float]:
        """Run ``item``'s ``kernel`` at ``tier``.

        Returns ``(report, degraded, error_bound)``. Simulator tiers may
        raise :class:`repro.util.errors.FaultError` (the caller's breaker
        handles that); the analytic tier cannot fault.
        """
        if tier == TIER_FULL:
            if accelerator is None:
                raise ConfigError("full tier requires an accelerator")
            return item.run(kernel, accelerator, compute_output=True), False, 0.0
        if tier == TIER_BATCHED:
            if accelerator is None:
                raise ConfigError("batched tier requires an accelerator")
            # Timing-exact but no numeric output: degraded, zero error.
            return item.run(kernel, accelerator, compute_output=False), True, 0.0
        if tier == TIER_ANALYTIC:
            return (
                item.analytic(kernel, self.fast),
                True,
                self.analytic_error_bound,
            )
        raise ConfigError(f"unknown degradation tier {tier!r}")

    @staticmethod
    def next_lower(tier: str) -> Optional[str]:
        """The tier one rung down, or None below the analytic floor."""
        idx = TIERS.index(tier)
        return TIERS[idx + 1] if idx + 1 < len(TIERS) else None
