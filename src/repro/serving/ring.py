"""Seeded deterministic consistent-hash ring for shard routing.

The fleet routes every request by its workload's content fingerprint so
repeat tenants land on the shard whose :class:`~repro.sim.batch.
EncodingCache` / :class:`~repro.artifacts.ArtifactStore` already hold
their data hot. Consistent hashing gives the two properties failover
needs: keys spread evenly across shards (each shard owns ``vnodes``
pseudo-random arcs of the ring), and adding or removing a shard moves
only the keys on that shard's arcs — every other key keeps its warm
cache.

All hashing goes through ``blake2b`` keyed by the ring seed: placements
never depend on Python's per-process ``hash()`` randomization, so the
same (seed, shards) lays out the identical ring in every process — the
decision-log replay gate depends on this.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

from repro.util.errors import ConfigError


class HashRing:
    """Consistent-hash ring mapping string keys to integer shard ids."""

    def __init__(
        self,
        shards: Iterable[int] = (),
        vnodes: int = 64,
        seed: int = 0,
    ) -> None:
        if vnodes <= 0:
            raise ConfigError("vnodes must be positive")
        self.vnodes = int(vnodes)
        self.seed = int(seed)
        #: sorted (point, shard) pairs — the ring itself.
        self._points: List[Tuple[int, int]] = []
        self._shards: set = set()
        for shard in shards:
            self.add(shard)

    # ------------------------------------------------------------------
    def _point(self, label: str) -> int:
        digest = hashlib.blake2b(
            f"{self.seed}:{label}".encode("utf-8"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big")

    def add(self, shard: int) -> None:
        """Place ``shard``'s ``vnodes`` arcs on the ring."""
        shard = int(shard)
        if shard in self._shards:
            raise ConfigError(f"shard {shard} is already on the ring")
        self._shards.add(shard)
        for v in range(self.vnodes):
            bisect.insort(
                self._points, (self._point(f"shard:{shard}:{v}"), shard)
            )

    def remove(self, shard: int) -> None:
        """Take ``shard`` off the ring; its keys redistribute to the
        immediate ring successors (everyone else's keys stay put)."""
        shard = int(shard)
        if shard not in self._shards:
            raise ConfigError(f"shard {shard} is not on the ring")
        self._shards.discard(shard)
        self._points = [(p, s) for p, s in self._points if s != shard]

    def route(self, key: str) -> int:
        """The shard owning ``key``: first ring point clockwise of it."""
        if not self._points:
            raise ConfigError("cannot route on an empty ring")
        h = self._point(f"key:{key}")
        idx = bisect.bisect_left(self._points, (h,))
        if idx == len(self._points):
            idx = 0
        return self._points[idx][1]

    # ------------------------------------------------------------------
    @property
    def shards(self) -> List[int]:
        return sorted(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: int) -> bool:
        return int(shard) in self._shards

    def ownership(self, keys: Iterable[str]) -> Dict[str, int]:
        """Route many keys at once (test/diagnostic helper)."""
        return {k: self.route(k) for k in keys}

    def __repr__(self) -> str:
        return (
            f"HashRing(shards={self.shards}, vnodes={self.vnodes}, "
            f"seed={self.seed})"
        )
