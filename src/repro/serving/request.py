"""Request/response value objects for the serving layer.

A :class:`ServingRequest` is pure data — kernel name, workload key,
virtual arrival time, deadline budget, priority — so traces serialize
trivially and replay deterministically. A :class:`ServingResponse`
records what the server decided and (for served requests) the actual
:class:`repro.sim.SimReport` the backend produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.util.errors import ConfigError

#: Terminal request statuses.
STATUS_OK = "ok"
STATUS_REJECTED = "rejected"  # token bucket / queue bound said no
STATUS_SHED = "shed"          # infeasible deadline or evicted under load
STATUS_FAILED = "failed"      # every fallback (including analytic) failed


@dataclass(frozen=True)
class ServingRequest:
    """One unit of work offered to the server.

    ``deadline_s`` is a *relative* budget: the absolute deadline is
    ``arrival_s + deadline_s``. Priorities are small ints, higher wins;
    under queue pressure a new high-priority arrival may evict a queued
    strictly-lower-priority request. ``tenant`` names the quota bucket
    the fleet charges this request against (single-server traces can
    leave the default).
    """

    request_id: int
    arrival_s: float
    kernel: str
    workload: str
    deadline_s: float
    priority: int = 1
    tenant: str = "default"

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ConfigError("arrival_s must be non-negative")
        if self.deadline_s <= 0:
            raise ConfigError("deadline_s must be positive")

    @property
    def absolute_deadline_s(self) -> float:
        return self.arrival_s + self.deadline_s


@dataclass
class ServingResponse:
    """Outcome of one request: decision, timing, and (if served) report."""

    request_id: int
    status: str
    tier: Optional[str] = None
    degraded: bool = False
    error_bound: float = 0.0
    shard: Optional[int] = None
    epoch: int = 0
    replica: Optional[int] = None
    arrival_s: float = 0.0
    start_s: Optional[float] = None
    finish_s: Optional[float] = None
    deadline_s: float = 0.0
    retry_after_s: float = 0.0
    hedged: bool = False
    hedge_won: bool = False
    report: Any = None  # SimReport for served requests, else None
    detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def served(self) -> bool:
        return self.status == STATUS_OK

    @property
    def latency_s(self) -> Optional[float]:
        """Arrival-to-finish virtual latency; None for unserved requests."""
        if self.finish_s is None:
            return None
        return self.finish_s - self.arrival_s

    @property
    def deadline_hit(self) -> bool:
        """Served within budget (unserved requests never hit)."""
        if self.finish_s is None or self.status != STATUS_OK:
            return False
        return self.finish_s <= self.arrival_s + self.deadline_s + 1e-12

    def log_row(self) -> Tuple:
        """Deterministic flat tuple for decision-log comparison."""
        return (
            self.request_id,
            self.status,
            self.tier,
            self.degraded,
            self.shard,
            self.epoch,
            self.replica,
            self.hedged,
            self.hedge_won,
            None if self.finish_s is None else round(self.finish_s, 12),
        )
