"""Per-tenant admission quotas and weighted-fair usage accounting.

The fleet serves many tenants from one pool of shards, which raises the
classic noisy-neighbor problem: one tenant flooding requests must not
starve everyone else. Two mechanisms compose here:

1. **Per-tenant token buckets** — each tenant owns an independent
   :class:`~repro.serving.breaker.TokenBucket`; a tenant over its rate
   is rejected with a ``retry_after`` hint *before* touching any shard
   queue, no matter how much fleet capacity is idle.
2. **Weighted-fair scheduling** — every served request charges its
   virtual service time divided by the tenant's weight to a running
   usage counter; shard dispatch picks the queued request of the
   least-served tenant first. A flood that does get admitted therefore
   queues behind the light tenants' traffic instead of in front of it.

Both are pure functions of (call sequence, virtual time), so fleet
decision logs replay bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.serving.breaker import TokenBucket
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class TenantQuota:
    """Admission rate, burst, and fair-share weight for one tenant.

    ``rate`` / ``burst`` parameterize the tenant's token bucket
    (requests per virtual second, burst capacity). ``weight`` scales the
    tenant's fair share of shard time: a weight-2 tenant accrues usage
    at half speed, so the scheduler serves it twice as much before
    considering it "ahead".
    """

    rate: float = 200.0
    burst: int = 16
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigError(f"tenant rate must be positive, got {self.rate!r}")
        if self.burst <= 0:
            raise ConfigError(
                f"tenant burst must be positive, got {self.burst!r}"
            )
        if self.weight <= 0:
            raise ConfigError(
                f"tenant weight must be positive, got {self.weight!r}"
            )


class TenantGovernor:
    """Quota enforcement plus weighted-fair usage for a tenant set.

    Tenants materialize lazily on first sight with ``default_quota``
    unless an explicit quota was registered; every bucket and counter is
    keyed by tenant name, so isolation is exact — one tenant's state
    never leaks into another's.
    """

    def __init__(
        self,
        default_quota: Optional[TenantQuota] = None,
        quotas: Optional[Dict[str, TenantQuota]] = None,
    ) -> None:
        self.default_quota = default_quota or TenantQuota()
        self._quotas: Dict[str, TenantQuota] = dict(quotas or {})
        self._buckets: Dict[str, TokenBucket] = {}
        self._usage: Dict[str, float] = {}
        self.admitted: Dict[str, int] = {}
        self.rejected: Dict[str, int] = {}
        self.served: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def quota(self, tenant: str) -> TenantQuota:
        return self._quotas.get(tenant, self.default_quota)

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            q = self.quota(tenant)
            bucket = TokenBucket(q.rate, q.burst)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str, now: float) -> Tuple[bool, float]:
        """Spend one admission token for ``tenant`` at virtual ``now``."""
        ok, retry_after = self._bucket(tenant).try_acquire(now)
        book = self.admitted if ok else self.rejected
        book[tenant] = book.get(tenant, 0) + 1
        return ok, retry_after

    # ------------------------------------------------------------------
    def usage(self, tenant: str) -> float:
        """Weighted service-seconds consumed so far (0 for new tenants)."""
        return self._usage.get(tenant, 0.0)

    def charge(self, tenant: str, service_s: float) -> None:
        """Account ``service_s`` of shard time against ``tenant``."""
        if service_s < 0:
            raise ConfigError("service_s must be non-negative")
        weight = self.quota(tenant).weight
        self._usage[tenant] = self.usage(tenant) + service_s / weight
        self.served[tenant] = self.served.get(tenant, 0) + 1

    def fairness_key(self, tenant: str) -> float:
        """Sort key for dispatch: the least-served tenant goes first.

        Rounded so replayed float accumulation cannot flip an ordering
        between bit-identical runs.
        """
        return round(self.usage(tenant), 12)

    # ------------------------------------------------------------------
    def tenants(self) -> List[str]:
        names = (
            set(self._buckets) | set(self._usage) | set(self._quotas)
        )
        return sorted(names)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant accounting for results/benchmark JSON."""
        out: Dict[str, Dict[str, float]] = {}
        for t in self.tenants():
            q = self.quota(t)
            out[t] = {
                "admitted": self.admitted.get(t, 0),
                "rejected": self.rejected.get(t, 0),
                "served": self.served.get(t, 0),
                "usage_s": round(self.usage(t), 9),
                "weight": q.weight,
                "rate": q.rate,
            }
        return out

    def __repr__(self) -> str:
        return f"TenantGovernor(tenants={self.tenants()})"
