"""Shard health assessment for the serving fleet.

Folds the two robustness signals the fleet already produces — each
replica's :class:`~repro.serving.breaker.CircuitBreaker` state and the
shard's queue backlog — into one score and a small state enum the
autoscaler and failover logic key off:

- ``healthy``  — breakers closed, queue shallow; full routing weight.
- ``degraded`` — some breakers probing/open or a meaningful backlog;
  still serves, but autoscaling counts it as pressure.
- ``critical`` — most replicas unreachable or the queue at capacity;
  scale-up trigger.
- ``dead``     — the shard was killed or fully drained; it owns no
  ring arcs and its work has been re-dealt.

Scores are deterministic functions of observable state (no clocks, no
randomness), so health decisions replay exactly with the fleet's
decision log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.serving.breaker import (
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
)
from repro.util.errors import ConfigError

HEALTH_HEALTHY = "healthy"
HEALTH_DEGRADED = "degraded"
HEALTH_CRITICAL = "critical"
HEALTH_DEAD = "dead"

#: Stable numeric encoding for the ``fleet.shard_health`` gauge.
HEALTH_CODE = {
    HEALTH_HEALTHY: 0,
    HEALTH_DEGRADED: 1,
    HEALTH_CRITICAL: 2,
    HEALTH_DEAD: 3,
}


@dataclass(frozen=True)
class ShardHealth:
    """One shard's folded health at a point in virtual time."""

    shard: int
    state: str
    score: float
    open_breakers: int
    half_open_breakers: int
    queue_depth: int
    busy_replicas: int

    @property
    def code(self) -> int:
        return HEALTH_CODE[self.state]

    @property
    def routable(self) -> bool:
        """Dead shards never receive new work; everything else does
        (degraded/critical shards still serve, they just raise scaling
        pressure)."""
        return self.state != HEALTH_DEAD


class HealthMonitor:
    """Scores shards from breaker state + queue depth.

    ``score = 0.6 * open_fraction + 0.2 * half_open_fraction +
    0.4 * queue_fill`` (clamped to 1): a shard with every breaker open
    or a full queue saturates, one with a probing breaker and a light
    backlog sits in the degraded band. The two thresholds carve the
    score into the three live states.
    """

    def __init__(
        self,
        queue_capacity: int,
        degraded_score: float = 0.25,
        critical_score: float = 0.7,
    ) -> None:
        if queue_capacity <= 0:
            raise ConfigError("queue_capacity must be positive")
        if not 0 < degraded_score < critical_score <= 1.5:
            raise ConfigError(
                "need 0 < degraded_score < critical_score <= 1.5"
            )
        self.queue_capacity = int(queue_capacity)
        self.degraded_score = float(degraded_score)
        self.critical_score = float(critical_score)
        #: last observed state per shard, for transition logging.
        self.last_state: Dict[int, str] = {}
        self.transitions: List = []

    def assess(
        self,
        shard: int,
        breakers: Sequence[CircuitBreaker],
        queue_depth: int,
        busy_replicas: int,
        now: float,
        alive: bool = True,
    ) -> ShardHealth:
        n = max(1, len(breakers))
        open_b = sum(1 for b in breakers if b.state == BREAKER_OPEN)
        half_b = sum(1 for b in breakers if b.state == BREAKER_HALF_OPEN)
        fill = min(1.0, queue_depth / self.queue_capacity)
        score = min(
            1.0, 0.6 * (open_b / n) + 0.2 * (half_b / n) + 0.4 * fill
        )
        if not alive:
            state = HEALTH_DEAD
        elif score >= self.critical_score:
            state = HEALTH_CRITICAL
        elif score >= self.degraded_score:
            state = HEALTH_DEGRADED
        else:
            state = HEALTH_HEALTHY
        previous = self.last_state.get(shard)
        if previous != state:
            self.transitions.append(
                (round(now, 12), shard, previous, state)
            )
            self.last_state[shard] = state
        return ShardHealth(
            shard=shard,
            state=state,
            score=round(score, 12),
            open_breakers=open_b,
            half_open_breakers=half_b,
            queue_depth=int(queue_depth),
            busy_replicas=int(busy_replicas),
        )

    def __repr__(self) -> str:
        return (
            f"HealthMonitor(queue_capacity={self.queue_capacity}, "
            f"transitions={len(self.transitions)})"
        )
