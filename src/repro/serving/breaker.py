"""Token-bucket rate limiter and per-backend circuit breaker.

Both primitives take an explicit ``now`` (virtual seconds) on every
call — the serving layer schedules against simulated time, so neither
ever reads the host clock. That makes their state machines pure
functions of the call sequence and trivially replayable.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.util.errors import ConfigError

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

#: Stable numeric encoding for the ``serving.breaker_state`` gauge.
_STATE_CODE = {BREAKER_CLOSED: 0, BREAKER_OPEN: 1, BREAKER_HALF_OPEN: 2}


class TokenBucket:
    """Classic token bucket over virtual time.

    ``try_acquire(now)`` refills ``rate`` tokens per second up to
    ``capacity``, then either spends one token or reports how long the
    caller should wait (the ``retry_after`` hint surfaced in rejected
    responses).
    """

    def __init__(self, rate: float, capacity: int) -> None:
        # ConfigError subclasses ValueError, so plain ``except ValueError``
        # callers catch these too.
        if rate <= 0:
            raise ConfigError(
                f"token bucket rate must be positive, got {rate!r}"
            )
        if capacity <= 0:
            raise ConfigError(
                f"token bucket capacity must be positive, got {capacity!r}"
            )
        self.rate = float(rate)
        self.capacity = int(capacity)
        self.tokens = float(capacity)
        self._last_s = 0.0
        self.acquired = 0
        self.rejected = 0

    def _refill(self, now: float) -> None:
        if now > self._last_s:
            self.tokens = min(
                self.capacity, self.tokens + (now - self._last_s) * self.rate
            )
            self._last_s = now

    def try_acquire(self, now: float) -> Tuple[bool, float]:
        """Spend one token at ``now``; returns ``(ok, retry_after_s)``."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.acquired += 1
            return True, 0.0
        self.rejected += 1
        if self.rate <= 0:
            # Defensive: a bucket mutated to zero rate after construction
            # can never refill — "retry never" beats ZeroDivisionError.
            return False, float("inf")
        return False, (1.0 - self.tokens) / self.rate

    def __repr__(self) -> str:
        return (
            f"TokenBucket(rate={self.rate}, capacity={self.capacity}, "
            f"tokens={self.tokens:.2f})"
        )


class CircuitBreaker:
    """closed -> open -> half-open state machine guarding one backend.

    ``failure_threshold`` consecutive failures trip the breaker open;
    after ``cooldown_s`` virtual seconds it admits ``halfopen_probes``
    trial launches, and that many consecutive successes close it again.
    A failure during half-open re-opens immediately (restarting the
    cooldown). Every transition is appended to :attr:`transitions` as
    ``(now, from_state, to_state)`` for the chaos tests.

    Half-open admits **one probe in flight at a time**: a caller that
    actually launches must reserve the slot with :meth:`start_probe`,
    and the slot is released by the matching ``record_success`` /
    ``record_failure``. While the slot is taken, :meth:`allow` returns
    False — concurrent callers cannot race a second probe through a
    breaker that is still waiting to learn whether the backend healed.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 0.02,
        halfopen_probes: int = 1,
    ) -> None:
        if failure_threshold <= 0:
            raise ConfigError("failure_threshold must be positive")
        if cooldown_s < 0:
            raise ConfigError("cooldown_s must be non-negative")
        if halfopen_probes <= 0:
            raise ConfigError("halfopen_probes must be positive")
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self.halfopen_probes = int(halfopen_probes)
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.probe_successes = 0
        self.probe_inflight = 0
        self.opened_at_s = 0.0
        self.transitions: List[Tuple[float, str, str]] = []

    # ------------------------------------------------------------------
    def _move(self, now: float, new_state: str) -> None:
        if new_state != self.state:
            self.transitions.append((now, self.state, new_state))
            self.state = new_state
            self.probe_inflight = 0

    def allow(self, now: float) -> bool:
        """May a launch be routed to this backend at ``now``?"""
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            if now - self.opened_at_s >= self.cooldown_s:
                self._move(now, BREAKER_HALF_OPEN)
                self.probe_successes = 0
                return True
            return False
        # Half-open: admit one probe at a time — the slot frees when the
        # in-flight probe records its outcome.
        return self.probe_inflight < 1

    def start_probe(self, now: float) -> bool:
        """Reserve the half-open probe slot before actually launching.

        Returns True when the caller may proceed (always, outside
        half-open — closed breakers need no reservation and open ones
        should have been filtered by :meth:`allow`). In half-open the
        slot is exclusive: a second caller gets False until the first
        probe's ``record_success`` / ``record_failure`` releases it.
        """
        if self.state != BREAKER_HALF_OPEN:
            return self.state == BREAKER_CLOSED
        if self.probe_inflight >= 1:
            return False
        self.probe_inflight += 1
        return True

    def record_success(self, now: float) -> None:
        self.consecutive_failures = 0
        if self.state == BREAKER_HALF_OPEN:
            self.probe_inflight = max(0, self.probe_inflight - 1)
            self.probe_successes += 1
            if self.probe_successes >= self.halfopen_probes:
                self._move(now, BREAKER_CLOSED)

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.state == BREAKER_HALF_OPEN:
            self.opened_at_s = now
            self._move(now, BREAKER_OPEN)
        elif (
            self.state == BREAKER_CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.opened_at_s = now
            self._move(now, BREAKER_OPEN)

    @property
    def state_code(self) -> int:
        """0=closed, 1=open, 2=half-open (for the state gauge)."""
        return _STATE_CODE[self.state]

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self.consecutive_failures}, "
            f"transitions={len(self.transitions)})"
        )
