"""Configuration for the overload-safe serving layer.

One frozen dataclass gathers every knob of the admission / degradation
pipeline so a serving experiment is reproducible from ``(ServingConfig,
trace seed)`` alone. The service-time cost model lives here too: the
server schedules against *virtual* seconds derived from these
coefficients, never the host clock, which is what makes every decision
replayable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigError
from repro.util.rng import DEFAULT_SEED


@dataclass(frozen=True)
class ServingConfig:
    """Knobs for :class:`repro.serving.server.TensaurusServer`.

    Parameters
    ----------
    seed:
        Root seed; every stochastic choice (replica speed jitter, probe
        calibration) derives a child stream from it via
        :func:`repro.util.rng.derive_seed`.
    replicas:
        Number of simulated accelerator backends requests fan out over.
    queue_depth:
        Bounded admission queue length. Arrivals beyond it are shed (or
        evict a strictly lower-priority entry). ``shedding=False``
        disables the bound (the naive baseline).
    bucket_rate / bucket_burst:
        Token-bucket admission rate (requests per virtual second) and
        burst capacity. A drained bucket rejects with a ``retry_after``
        hint instead of queueing.
    breaker_failure_threshold:
        Consecutive backend failures that trip a replica's breaker open.
    breaker_cooldown_s:
        Virtual seconds an open breaker waits before allowing a
        half-open probe.
    breaker_halfopen_probes:
        Successful probes required to close a half-open breaker.
    default_deadline_s:
        Deadline budget for requests that do not carry their own.
    full_headroom / batched_headroom:
        Fractions of the remaining deadline budget the estimated service
        time must fit inside to stay at the full / batched tier. Misses
        degrade one tier further; requests that cannot even fit the
        analytic tier are shed as infeasible.
    degrade_queue_depth:
        Queue backlog at or above which dispatch skips the full tier
        outright (load-based degradation, independent of deadlines).
    hedge_enabled / hedge_trigger:
        Launch a backup copy on the least-loaded idle replica when the
        primary's (deterministically jittered) service time exceeds
        ``hedge_trigger`` times the nominal estimate; first finisher
        wins, the loser is cancelled.
    service_jitter:
        Scale of the exponential tail on per-launch replica speed:
        ``factor = 1 + service_jitter * Exp(1)`` drawn from a seeded
        stream. Zero makes every replica run at nominal speed.
    full_base_s / full_per_nnz_s:
        Virtual service-time model for the full tier (per-launch
        overhead plus per-nonzero cost). The *simulated* kernel time is
        added on top, so heavier workloads really take longer.
    batched_base_s / batched_per_nnz_s:
        Same for the batched tier (no numeric output, cheaper).
    analytic_base_s:
        Flat virtual cost of a closed-form estimate.
    shedding:
        ``False`` switches off the bucket, the queue bound, degradation
        and hedging — the naive unbounded FIFO baseline the benchmark
        compares against.
    """

    seed: int = DEFAULT_SEED
    replicas: int = 2
    queue_depth: int = 8
    bucket_rate: float = 400.0
    bucket_burst: int = 16
    breaker_failure_threshold: int = 3
    breaker_cooldown_s: float = 0.02
    breaker_halfopen_probes: int = 1
    default_deadline_s: float = 0.05
    full_headroom: float = 0.8
    batched_headroom: float = 0.9
    degrade_queue_depth: int = 6
    hedge_enabled: bool = True
    hedge_trigger: float = 1.6
    service_jitter: float = 0.25
    full_base_s: float = 2.0e-3
    full_per_nnz_s: float = 2.0e-6
    batched_base_s: float = 8.0e-4
    batched_per_nnz_s: float = 5.0e-7
    analytic_base_s: float = 1.0e-4
    shedding: bool = True

    def __post_init__(self) -> None:
        if self.replicas <= 0:
            raise ConfigError("replicas must be positive")
        if self.queue_depth <= 0:
            raise ConfigError("queue_depth must be positive")
        if self.bucket_rate <= 0 or self.bucket_burst <= 0:
            raise ConfigError("token bucket rate and burst must be positive")
        if self.breaker_failure_threshold <= 0:
            raise ConfigError("breaker_failure_threshold must be positive")
        if self.breaker_cooldown_s < 0:
            raise ConfigError("breaker_cooldown_s must be non-negative")
        if self.breaker_halfopen_probes <= 0:
            raise ConfigError("breaker_halfopen_probes must be positive")
        if self.default_deadline_s <= 0:
            raise ConfigError("default_deadline_s must be positive")
        if not 0 < self.full_headroom <= 1 or not 0 < self.batched_headroom <= 1:
            raise ConfigError("headroom fractions must be in (0, 1]")
        if self.hedge_trigger < 1:
            raise ConfigError("hedge_trigger must be >= 1")
        if self.service_jitter < 0:
            raise ConfigError("service_jitter must be non-negative")
        for name in (
            "full_base_s", "full_per_nnz_s", "batched_base_s",
            "batched_per_nnz_s", "analytic_base_s",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
